//! Quickstart: sort data that does not fit in memory, on one node.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Demonstrates the lowest layer of the library: a simulated disk, a
//! workload written to it, and the polyphase merge sort (the paper's
//! sequential building block) sorting it with a bounded memory budget.

use extsort::{fingerprint_file, is_sorted_file, ExtSortConfig};
use pdm::{Disk, DiskModel, PdmParams};
use workloads::{generate_to_disk, Benchmark, Layout};

fn main() {
    // One simulated SCSI disk with 32 KiB blocks. Swap `in_memory` for
    // `Disk::on_files(dir, ...)` to hit the real filesystem.
    let disk = Disk::in_memory(32 * 1024).with_model(DiskModel::scsi_2000());

    // Two million uniform 32-bit keys — but only 128 Ki records of memory.
    let n: u64 = 2 << 20;
    let mem = 128 * 1024;
    generate_to_disk(&disk, "input", Benchmark::Uniform, 42, Layout::single(n)).expect("generate");
    println!("wrote {n} records ({} MiB) to 'input'", (n * 4) >> 20);

    // Polyphase merge sort with the paper's 16-file setup.
    let cfg = ExtSortConfig::new(mem).with_tapes(16);
    let report =
        extsort::polyphase_sort::<u32>(&disk, "input", "sorted", "job", &cfg).expect("sort");

    println!(
        "sorted {} records: {} initial runs, {} merge phases, {} comparisons",
        report.records, report.initial_runs, report.merge_phases, report.comparisons
    );
    println!(
        "block I/O: {} reads + {} writes = {} transfers",
        report.io.blocks_read,
        report.io.blocks_written,
        report.io.total_blocks()
    );

    // How close to the PDM optimum was that?
    let params = PdmParams::new(n, mem as u64, (32 * 1024 / 4) as u64, 1, 1);
    println!(
        "PDM Sort(N) bound: {} transfers -> measured/bound = {:.3}",
        params.sort_io_bound(),
        report.io.total_blocks() as f64 / params.sort_io_bound() as f64
    );

    // Verify: sorted and a permutation of the input.
    assert!(is_sorted_file::<u32>(&disk, "sorted").expect("read back"));
    assert_eq!(
        fingerprint_file::<u32>(&disk, "input").expect("fp in"),
        fingerprint_file::<u32>(&disk, "sorted").expect("fp out"),
    );
    println!("verified: output is sorted and a permutation of the input");
}
