//! Wall-clock mode: measure *real* elapsed time instead of the analytic
//! cost model, with heterogeneity produced by a real CPU throttle —
//! exactly how the paper created its slow nodes (competitor load), but
//! reproducible.
//!
//! ```sh
//! cargo run --release --example measured_wallclock
//! ```
//!
//! The virtual-time (`Modeled`) policy drives all table reproductions; this
//! example shows the alternative `Measured` policy, where each compute
//! section charges its real duration × the node's slowdown. The printed
//! ratio demonstrates that the two policies agree on *shape*: declaring the
//! true perf vector still wins on loaded hardware.

use cluster::{ClusterSpec, StorageKind, TimePolicy};
use hetsort::{psrs_external, ExternalPsrsConfig, PerfVector};
use sim::Throttle;
use workloads::{generate_to_disk, Benchmark, Layout};

fn run(declared: PerfVector) -> f64 {
    let hardware = vec![1u64, 1, 4, 4];
    let n = declared.padded_size(1 << 19);
    let shares = declared.shares(n);
    let layouts = Layout::cluster(&shares);
    let spec = ClusterSpec::new(hardware)
        .with_storage(StorageKind::Memory)
        .with_time_policy(TimePolicy::Measured)
        .with_block_bytes(4096) // small blocks so the 32 Ki-record memory streams 8 tapes
        .with_seed(21);
    let cfg = ExternalPsrsConfig {
        perf: declared,
        mem_records: 1 << 15,
        tapes: 8,
        msg_records: 4096,
        input: "input".into(),
        output: "output".into(),
        fused_redistribution: false,
        streaming_merge: false,
        pipeline: extsort::PipelineConfig::off(),
        kernel: extsort::SortKernel::default(),
        splitter: hetsort::SplitterStrategy::Flat,
    };
    let report = cluster::run_cluster(&spec, async move |ctx| {
        generate_to_disk(
            &ctx.disk,
            "input",
            Benchmark::Uniform,
            21,
            layouts[ctx.rank],
        )
        .unwrap();
        ctx.reset_timing().await;
        // Demonstrate the real-time throttle alongside the Measured policy:
        // burn genuine CPU proportional to this node's slowdown before the
        // sort, the way the paper's competitor processes would.
        let throttle = Throttle::new(ctx.charger.slowdown());
        throttle.run(|| std::hint::black_box((0..10_000u64).sum::<u64>()));
        psrs_external::<u32>(ctx, &cfg).await.unwrap();
        assert!(extsort::is_sorted_file::<u32>(&ctx.disk, "output").unwrap());
    });
    // Per-phase durations come straight off the cluster report now — no
    // hand-differencing of cumulative phase stamps.
    for pb in report.phase_breakdown() {
        println!(
            "    phase {:<12} {:.4}s on the slowest node",
            pb.name,
            pb.max().as_secs()
        );
    }
    report.makespan.as_secs()
}

fn main() {
    println!("Measured (wall-clock × slowdown) time policy, loaded cluster {{1,1,4,4}}:\n");
    println!("declared {{1,1,1,1}}:");
    let t_wrong = run(PerfVector::homogeneous(4));
    println!("  => {t_wrong:.4}s of measured virtual time");
    println!("declared {{1,1,4,4}}:");
    let t_right = run(PerfVector::paper_1144());
    println!("  => {t_right:.4}s of measured virtual time");
    println!(
        "\ncalibrated vector wins by {:.2}x under the Measured policy too",
        t_wrong / t_right
    );
    assert!(
        t_right < t_wrong,
        "the paper's conclusion must hold under wall-clock measurement"
    );
}
