//! BSP cost analysis of Algorithm 1 (the paper's §5 heritage: "our
//! previous codes were developed under the framework of BSP").
//!
//! ```sh
//! cargo run --release --example bsp_analysis
//! ```
//!
//! Runs the external sort on the `{1,1,4,4}` cluster, then prices every
//! phase as a BSP superstep (`w + g·h + L`) and compares the summed
//! prediction with the simulated makespan. The two cost models agree when
//! waiting is barrier-shaped; the simulation comes in under the BSP bound
//! because point-to-point messages pipeline.

use cluster::bsp::{analyze, predicted_total, BspModel};
use cluster::{run_cluster, ClusterSpec, NetworkModel};
use hetsort::{psrs_external, ExternalPsrsConfig, PerfVector};
use workloads::{generate_to_disk, Benchmark, Layout};

fn main() {
    let perf = PerfVector::paper_1144();
    let n = perf.padded_size(1 << 20);
    let shares = perf.shares(n);
    let layouts = Layout::cluster(&shares);
    let net = NetworkModel::fast_ethernet();
    let spec = ClusterSpec::new(vec![1, 1, 4, 4])
        .with_net(net.clone())
        .with_seed(33);
    let msg_records = 8 * 1024;
    let cfg = ExternalPsrsConfig::new(perf, 1 << 18).with_msg_records(msg_records);

    let report = run_cluster(&spec, async move |ctx| {
        generate_to_disk(
            &ctx.disk,
            "input",
            Benchmark::Uniform,
            33,
            layouts[ctx.rank],
        )
        .unwrap();
        ctx.reset_timing().await;
        psrs_external::<u32>(ctx, &cfg).await.unwrap();
    });

    let model = BspModel::from_network(&net, 4, msg_records * 4);
    let steps = analyze(&report, &model);

    println!(
        "external PSRS of {n} records as BSP supersteps (g = {:.2e} s/B, L = {:.1} ms):\n",
        model.g,
        model.l * 1e3
    );
    println!(
        "{:<14} {:>10} {:>12} {:>12}",
        "superstep", "w (s)", "h (MiB)", "w + g·h + L"
    );
    for s in &steps {
        println!(
            "{:<14} {:>10.3} {:>12.2} {:>11.3}s",
            s.name,
            s.w.as_secs(),
            s.h_bytes as f64 / (1 << 20) as f64,
            s.predicted.as_secs()
        );
    }
    let predicted = predicted_total(&steps).as_secs();
    let measured = report.makespan.as_secs();
    println!("\nBSP predicted total: {predicted:.3}s");
    println!("simulated makespan:  {measured:.3}s");
    println!(
        "ratio {:.2} — BSP upper-bounds the pipelined simulation, as expected",
        predicted / measured
    );
    assert!(predicted >= measured * 0.8);
}
