//! The paper's headline experiment in one program: out-of-core PSRS on a
//! 4-node cluster where two nodes are 4× slower, declared correctly
//! (`{1,1,4,4}`) vs ignored (`{1,1,1,1}`).
//!
//! ```sh
//! cargo run --release --example heterogeneous_cluster
//! ```

use hetsort::{run_trial, PerfVector, SortAlgo, TrialConfig};
use workloads::Benchmark;

fn run(declared: PerfVector, label: &str) -> f64 {
    // Hardware: the loaded cluster — nodes 0 and 1 are 4x slower.
    let hardware = vec![1u64, 1, 4, 4];
    let mut cfg = TrialConfig::new(hardware, declared, 1 << 20);
    cfg.bench = Benchmark::Uniform;
    cfg.mem_records = 1 << 18; // holds one 32 KiB block per tape, out-of-core by 4x
    cfg.tapes = 16;
    cfg.msg_records = 8 * 1024; // the paper's tuned 32 Kb messages
    cfg.seed = 7;
    cfg.jitter = 0.02;
    cfg.algo = SortAlgo::ExternalPsrs;
    let result = run_trial(&cfg).expect("trial");

    println!("-- {label} --");
    println!(
        "  sorted n = {} records in {:.3} virtual seconds",
        result.n, result.time_secs
    );
    println!(
        "  final partition sizes: {:?} (targets {:?})",
        result.balance.sizes, result.balance.expected
    );
    println!(
        "  sublist expansion S(max) = {:.4}",
        result.balance.expansion()
    );
    for pb in &result.phase_breakdown {
        let per_node: Vec<String> = pb
            .per_node
            .iter()
            .map(|d| format!("{:.3}", d.as_secs()))
            .collect();
        println!(
            "  phase {:<12} {:.3}s on the slowest node (per node: {}s)",
            pb.name,
            pb.max().as_secs(),
            per_node.join("/")
        );
    }
    println!(
        "  traffic: {:.1} MiB over the network, {} block I/Os total\n",
        result.sent_bytes as f64 / (1 << 20) as f64,
        result.total_io_blocks
    );
    result.time_secs
}

fn main() {
    println!("external PSRS on a heterogeneous cluster (hardware speeds 1,1,4,4)\n");
    let t_wrong = run(
        PerfVector::homogeneous(4),
        "declared {1,1,1,1} — pretend the cluster is homogeneous",
    );
    let t_right = run(
        PerfVector::paper_1144(),
        "declared {1,1,4,4} — the paper's calibrated vector",
    );
    println!(
        "declaring the true speeds is {:.2}x faster ({:.3}s vs {:.3}s) — the paper's Table 3",
        t_wrong / t_right,
        t_right,
        t_wrong
    );
    assert!(t_right < t_wrong);
}
