//! The paper's calibration protocol: fill the `perf` array by timing the
//! sequential external sort on every node.
//!
//! ```sh
//! cargo run --release --example calibration
//! ```
//!
//! "For an input size of N integers on a p-processor machine, we first
//! execute the sequential external sort used in the parallel code on N/p
//! data … the ratios to the slower execution time allow us to fill the
//! perf array." — §5. We reproduce that: time each (simulated) node,
//! compute the ratios, round, and hand the resulting vector to the sort.

use hetsort::{run_trial, PerfVector, SortAlgo, TrialConfig};
use hetsort_bench::sequential_polyphase_trial;
use workloads::Benchmark;

fn main() {
    // The unknown hardware: some nodes are loaded. (In a real deployment
    // you would not know these numbers — that is what calibration is for.)
    let hardware = vec![2u64, 1, 4, 4];
    let p = hardware.len();
    let n_total: u64 = 1 << 20;
    let n_probe = n_total / p as u64;

    println!("calibrating {p} nodes with a {n_probe}-record sequential sort each…");
    let max_speed = *hardware.iter().max().unwrap() as f64;
    let times: Vec<f64> = hardware
        .iter()
        .map(|&speed| {
            let slowdown = max_speed / speed as f64;
            sequential_polyphase_trial(
                n_probe,
                (n_probe / 4) as usize,
                8,
                slowdown,
                11,
                0.02, // a little measurement noise, like real timings
                false,
                Benchmark::Uniform,
            )
            .0
        })
        .collect();

    let slowest = times.iter().cloned().fold(0.0f64, f64::max);
    let ratios: Vec<f64> = times.iter().map(|t| slowest / t).collect();
    let perf: Vec<u64> = ratios.iter().map(|r| r.round().max(1.0) as u64).collect();
    for (i, (t, r)) in times.iter().zip(&ratios).enumerate() {
        println!(
            "  node {i}: {t:.3}s  -> ratio to slowest {r:.2} -> perf {}",
            perf[i]
        );
    }
    let declared = PerfVector::new(perf);
    println!("calibrated perf vector: {declared}");

    // Now sort with it, on the same hardware.
    let mut cfg = TrialConfig::new(hardware, declared.clone(), n_total);
    cfg.bench = Benchmark::Uniform;
    cfg.mem_records = 1 << 16;
    cfg.tapes = 8;
    cfg.seed = 11;
    cfg.jitter = 0.02;
    cfg.algo = SortAlgo::ExternalPsrs;
    let with_cal = run_trial(&cfg).expect("trial");

    let mut naive_cfg = cfg.clone();
    naive_cfg.declared = PerfVector::homogeneous(declared.p());
    let naive = run_trial(&naive_cfg).expect("trial");

    println!(
        "\nsort with calibrated {declared}: {:.3}s (expansion {:.4})",
        with_cal.time_secs,
        with_cal.balance.expansion()
    );
    println!(
        "sort with naive {{1,1,1,1}}:      {:.3}s (expansion {:.4})",
        naive.time_secs,
        naive.balance.expansion()
    );
    println!(
        "calibration pays: {:.2}x faster",
        naive.time_secs / with_cal.time_secs
    );
    assert!(with_cal.time_secs < naive.time_secs);
}
