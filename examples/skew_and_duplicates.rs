//! Robustness tour: the external sort across all nine input distributions,
//! including the adversarial and duplicate-heavy ones.
//!
//! ```sh
//! cargo run --release --example skew_and_duplicates
//! ```
//!
//! PSRS's selling point (and the reason the paper builds on it) is that
//! regular sampling keeps the load balanced *regardless of the input
//! distribution*; this example shows the sublist expansion staying near 1
//! everywhere except the degenerate all-equal input.

use hetsort::{run_trial, PerfVector, SortAlgo, TrialConfig};
use workloads::{generate_whole, max_duplicate_count, Benchmark};

fn main() {
    let perf = PerfVector::paper_1144();
    let hardware = vec![1u64, 1, 4, 4];
    let n = perf.padded_size(200_000);

    println!("external PSRS of {n} records on the {{1,1,4,4}} cluster, all workloads:\n");
    println!(
        "{:<16} {:>9} {:>8} {:>10} {:>8}",
        "benchmark", "time (s)", "S(max)", "max dup d", "d/n"
    );
    for bench in Benchmark::ALL {
        let mut cfg = TrialConfig::new(hardware.clone(), perf.clone(), n);
        cfg.bench = bench;
        cfg.mem_records = 1 << 15;
        cfg.tapes = 8;
        cfg.block_bytes = 4096;
        cfg.msg_records = 4096;
        cfg.seed = 3;
        cfg.jitter = 0.0;
        cfg.algo = SortAlgo::ExternalPsrs;
        let result = run_trial(&cfg).expect("trial");
        let input = generate_whole(bench, 3, &perf.shares(result.n));
        let d = max_duplicate_count(&input);
        println!(
            "{:<16} {:>9.3} {:>8.4} {:>10} {:>7.1}%",
            bench.to_string(),
            result.time_secs,
            result.balance.expansion(),
            d,
            100.0 * d as f64 / result.n as f64,
        );
        // The paper's §3.1 bound: 2x the share plus the duplicate count.
        assert!(
            result.balance.within_psrs_bound(d),
            "{bench}: U + d bound violated"
        );
    }
    println!("\nall nine inputs sorted correctly, all within the 2x + d bound");
}
