#!/usr/bin/env python3
"""Validate a BENCH_overlap.json file (stdlib only).

Usage: python3 schemas/validate_overlap.py BENCH_overlap.json

Checks the output of the `overlap_speedup` bench binary: staged vs
streamed exchange-merge rows across the message-size ladder on both
perf configurations, strict receiver-side I/O savings, and the
headline 1-1-4-4 speedup at 1 Ki-record messages.
"""

import json
import sys

MSG_LADDER = [8, 64, 1024, 8192]
PERFS = {"homogeneous", "1-1-4-4"}
ROW_KEYS = {
    "perf", "msg_records", "staged_secs", "streamed_secs", "speedup",
    "staged_io_blocks", "streamed_io_blocks", "io_saving_pct",
}


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main(path):
    with open(path) as f:
        doc = json.load(f)

    if doc.get("bench") != "overlap_speedup":
        fail(f"bench must be 'overlap_speedup', got {doc.get('bench')!r}")
    if not isinstance(doc.get("n"), int) or doc["n"] <= 0:
        fail("n must be a positive integer")
    if doc.get("msg_ladder") != MSG_LADDER:
        fail(f"msg_ladder must be {MSG_LADDER}, got {doc.get('msg_ladder')!r}")

    rows = doc.get("rows")
    if not isinstance(rows, list) or len(rows) != len(PERFS) * len(MSG_LADDER):
        fail(f"expected {len(PERFS) * len(MSG_LADDER)} rows, got "
             f"{len(rows) if isinstance(rows, list) else rows!r}")

    seen = set()
    for row in rows:
        if set(row) != ROW_KEYS:
            fail(f"row keys {sorted(row)} != expected {sorted(ROW_KEYS)}")
        perf, msg = row["perf"], row["msg_records"]
        if perf not in PERFS:
            fail(f"unknown perf {perf!r}")
        if msg not in MSG_LADDER:
            fail(f"unknown msg_records {msg}")
        if (perf, msg) in seen:
            fail(f"duplicate row ({perf}, {msg})")
        seen.add((perf, msg))
        for key in ("staged_secs", "streamed_secs", "speedup"):
            if not isinstance(row[key], (int, float)) or row[key] <= 0:
                fail(f"({perf}, {msg}): {key} must be positive")
        for key in ("staged_io_blocks", "streamed_io_blocks"):
            if not isinstance(row[key], int) or row[key] <= 0:
                fail(f"({perf}, {msg}): {key} must be a positive integer")
        if row["streamed_io_blocks"] >= row["staged_io_blocks"]:
            fail(f"({perf}, {msg}): streamed must move strictly fewer blocks "
                 f"({row['streamed_io_blocks']} vs {row['staged_io_blocks']})")

    headline = doc.get("speedup_1144_1ki")
    if not isinstance(headline, (int, float)):
        fail("speedup_1144_1ki must be a number")
    if headline <= 1.0:
        fail(f"1-1-4-4 speedup at 1 Ki messages must exceed 1.0, got {headline}")
    ref = next(r for r in rows if r["perf"] == "1-1-4-4" and r["msg_records"] == 1024)
    if abs(ref["speedup"] - headline) > 1e-3:
        fail(f"speedup_1144_1ki {headline} disagrees with its row {ref['speedup']}")

    print(f"overlap ok: {len(rows)} rows, 1-1-4-4 speedup at 1 Ki msgs "
          f"{headline:.2f}x")


if __name__ == "__main__":
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    main(sys.argv[1])
