#!/usr/bin/env python3
"""Validate a hetsort Chrome trace_event JSON file (stdlib only).

Usage: python3 schemas/validate_trace.py trace.json

Checks the structural contract the `obs::chrome_trace` exporter promises:
a `traceEvents` array of "X" (complete) and "M" (metadata) events, one
process per node, spans on the virtual-time axis in microseconds, and the
paper's five Algorithm 1 phases present as distinct spans on every node.
"""

import json
import sys

PHASES = ["local-sort", "pivots", "partition", "redistribute", "merge"]
FUSED = "partition+redistribute"
STREAMED = "exchange-merge"
KINDS = {"phase", "collective", "task"}

# Wall-clock task spans nested inside phases: the pipelined engine's
# per-worker chunk sorts, the range-partitioned merge's per-worker range
# spans, and the extsort stage markers. Bare names (no -N suffix) cover
# worker indices past the static-name tables.
TASK_NAMES = {"chunk-sort", "merge.worker", "extsort.run-formation",
              "extsort.merge-pass", "extsort.kway-merge"}
TASK_PREFIXES = ("chunk-sort-", "merge.worker-")


def task_name_ok(name):
    if name in TASK_NAMES:
        return True
    for prefix in TASK_PREFIXES:
        if name.startswith(prefix) and name[len(prefix):].isdigit():
            return True
    return False


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main(path):
    with open(path) as f:
        doc = json.load(f)

    if not isinstance(doc, dict):
        fail("top level must be an object")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("traceEvents must be a non-empty array")

    pids = set()
    phase_names = {}  # pid -> set of phase span names
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(f"event {i} is not an object")
        ph = ev.get("ph")
        if ph not in ("X", "M"):
            fail(f"event {i}: unexpected ph {ph!r}")
        if not isinstance(ev.get("pid"), int):
            fail(f"event {i}: pid must be an integer node rank")
        pids.add(ev["pid"])
        if ph == "M":
            if ev.get("name") not in ("process_name", "thread_name"):
                fail(f"event {i}: unknown metadata {ev.get('name')!r}")
            continue
        # "X" complete event.
        for key in ("name", "cat", "tid", "ts", "dur"):
            if key not in ev:
                fail(f"event {i}: X event missing {key!r}")
        if ev["cat"] not in KINDS:
            fail(f"event {i}: unknown span kind {ev['cat']!r}")
        if not isinstance(ev["ts"], (int, float)) or ev["ts"] < 0:
            fail(f"event {i}: ts must be a non-negative number (µs)")
        if not isinstance(ev["dur"], (int, float)) or ev["dur"] < 0:
            fail(f"event {i}: dur must be a non-negative number (µs)")
        if ev["cat"] == "task" and not task_name_ok(ev["name"]):
            fail(f"event {i}: unknown task span name {ev['name']!r}")
        if ev["cat"] == "phase":
            phase_names.setdefault(ev["pid"], set()).add(ev["name"])

    if not pids:
        fail("no events")
    for pid in sorted(pids):
        names = phase_names.get(pid, set())
        for phase in PHASES:
            # The fused path stamps partition+redistribute as one span; the
            # streaming path fuses steps 3-5 into a single exchange-merge.
            if phase in ("partition", "redistribute") and FUSED in names:
                continue
            if phase in ("partition", "redistribute", "merge") and STREAMED in names:
                continue
            if phase not in names:
                fail(f"node {pid}: phase span {phase!r} missing (has {sorted(names)})")

    print(
        f"trace ok: {len(events)} events, {len(pids)} nodes, "
        f"all five Algorithm 1 phases present per node"
    )


if __name__ == "__main__":
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    main(sys.argv[1])
