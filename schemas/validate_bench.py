#!/usr/bin/env python3
"""Validate any hetsort JSON artifact (stdlib only).

Usage: python3 schemas/validate_bench.py FILE [FILE ...]

One dispatcher for every machine-readable artifact the workspace emits,
replacing the per-file validate_*.py scripts:

* `BENCH_*.json` bench outputs, dispatched on their `"bench"` field
  (pipeline_speedup, kernel_speedup, overlap_speedup, parmerge_speedup,
  planner_speedup, wallclock_speedup, critpath_report, scale);
* `--metrics-out` documents (`"schema": "hetsort-metrics-v1"`);
* `--critpath-out` documents (`"schema": "hetsort-critpath-v1"`),
  delegated to validate_critpath.py;
* the trend baseline registry (`"schema": "hetsort-trend-v1"`);
* Chrome `trace_event` files (`"traceEvents"` array).

Each check enforces the same structural contract and headline claims the
retired standalone validators did; any failure exits 1 naming the file.
"""

import json
import sys

import validate_critpath

PHASES = {"local-sort", "pivots", "partition", "redistribute", "merge",
          "partition+redistribute", "exchange-merge"}


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


# ---------------------------------------------------------------- metrics

REQUIRED_NODE_COUNTERS = ["io.blocks_read", "io.blocks_written",
                          "net.sent_bytes", "io.queue.wait_us"]
REQUIRED_CLUSTER_GAUGES = ["skew.expansion", "skew.bound", "skew.within_bound"]


def check_metric_registry(m, where):
    if not isinstance(m, dict):
        fail(f"{where}: metrics must be an object")
    for section in ("counters", "gauges", "histograms"):
        if section not in m or not isinstance(m[section], dict):
            fail(f"{where}: missing {section!r} object")
    for name, v in m["counters"].items():
        if not isinstance(v, int) or v < 0:
            fail(f"{where}: counter {name!r} must be a non-negative integer")
    for name, v in m["gauges"].items():
        if not isinstance(v, (int, float)):
            fail(f"{where}: gauge {name!r} must be a number")
    for name, h in m["histograms"].items():
        if not isinstance(h, dict):
            fail(f"{where}: histogram {name!r} must be an object")
        for key in ("count", "sum", "min", "max", "mean", "buckets"):
            if key not in h:
                fail(f"{where}: histogram {name!r} missing {key!r}")
        total = 0
        for b in h["buckets"]:
            if "le" not in b or "count" not in b:
                fail(f"{where}: histogram {name!r} bucket missing le/count")
            # Power-of-two upper bounds: le is 2^k - 1.
            le = b["le"]
            if not isinstance(le, int) or (le & (le + 1)) != 0:
                fail(f"{where}: histogram {name!r} bucket le {le} is not 2^k-1")
            total += b["count"]
        if total != h["count"]:
            fail(f"{where}: histogram {name!r} bucket counts {total} != "
                 f"count {h['count']}")
    for section in ("counters", "gauges", "histograms"):
        for name in m[section]:
            if "." not in name:
                fail(f"{where}: metric {name!r} lacks a dotted subsystem prefix")


def check_metrics(doc):
    nodes = doc.get("nodes")
    if not isinstance(nodes, list) or not nodes:
        fail("nodes must be a non-empty array")
    for node in nodes:
        rank = node.get("node")
        if not isinstance(rank, int):
            fail("node entry missing integer 'node' rank")
        where = f"node {rank}"
        if not isinstance(node.get("label"), str):
            fail(f"{where}: missing string label")
        phases = node.get("phases")
        if not isinstance(phases, list) or not phases:
            fail(f"{where}: phases must be a non-empty array")
        for p in phases:
            if p.get("name") not in PHASES:
                fail(f"{where}: unknown phase {p.get('name')!r}")
            for key in ("virt_secs", "wall_secs"):
                if not isinstance(p.get(key), (int, float)) or p[key] < 0:
                    fail(f"{where}: phase {p['name']!r} bad {key}")
        check_metric_registry(node.get("metrics"), where)
        for name in REQUIRED_NODE_COUNTERS:
            if name not in node["metrics"]["counters"]:
                fail(f"{where}: required counter {name!r} missing")
    cluster = doc.get("cluster")
    check_metric_registry(cluster, "cluster")
    for name in REQUIRED_CLUSTER_GAUGES:
        if name not in cluster["gauges"]:
            fail(f"cluster: required skew gauge {name!r} missing")

    print(
        f"metrics ok: {len(nodes)} nodes, skew expansion "
        f"{cluster['gauges']['skew.expansion']:.4f} "
        f"(bound {cluster['gauges']['skew.bound']:.4f})"
    )


# ------------------------------------------------------------------ trace

ALG1_PHASES = ["local-sort", "pivots", "partition", "redistribute", "merge"]
FUSED = "partition+redistribute"
STREAMED = "exchange-merge"
KINDS = {"phase", "collective", "task"}

# Wall-clock task spans nested inside phases: the pipelined engine's
# per-worker chunk sorts, the range-partitioned merge's per-worker range
# spans, and the extsort stage markers. Bare names (no -N suffix) cover
# worker indices past the static-name tables.
TASK_NAMES = {"chunk-sort", "merge.worker", "extsort.run-formation",
              "extsort.merge-pass", "extsort.kway-merge"}
TASK_PREFIXES = ("chunk-sort-", "merge.worker-")


def task_name_ok(name):
    if name in TASK_NAMES:
        return True
    for prefix in TASK_PREFIXES:
        if name.startswith(prefix) and name[len(prefix):].isdigit():
            return True
    return False


def check_trace(doc):
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("traceEvents must be a non-empty array")

    pids = set()
    phase_names = {}  # pid -> set of phase span names
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(f"event {i} is not an object")
        ph = ev.get("ph")
        if ph not in ("X", "M"):
            fail(f"event {i}: unexpected ph {ph!r}")
        if not isinstance(ev.get("pid"), int):
            fail(f"event {i}: pid must be an integer node rank")
        pids.add(ev["pid"])
        if ph == "M":
            if ev.get("name") not in ("process_name", "thread_name"):
                fail(f"event {i}: unknown metadata {ev.get('name')!r}")
            continue
        # "X" complete event.
        for key in ("name", "cat", "tid", "ts", "dur"):
            if key not in ev:
                fail(f"event {i}: X event missing {key!r}")
        if ev["cat"] not in KINDS:
            fail(f"event {i}: unknown span kind {ev['cat']!r}")
        if not isinstance(ev["ts"], (int, float)) or ev["ts"] < 0:
            fail(f"event {i}: ts must be a non-negative number (µs)")
        if not isinstance(ev["dur"], (int, float)) or ev["dur"] < 0:
            fail(f"event {i}: dur must be a non-negative number (µs)")
        if ev["cat"] == "task" and not task_name_ok(ev["name"]):
            fail(f"event {i}: unknown task span name {ev['name']!r}")
        if ev["cat"] == "phase":
            phase_names.setdefault(ev["pid"], set()).add(ev["name"])

    if not pids:
        fail("no events")
    for pid in sorted(pids):
        names = phase_names.get(pid, set())
        for phase in ALG1_PHASES:
            # The fused path stamps partition+redistribute as one span; the
            # streaming path fuses steps 3-5 into a single exchange-merge.
            if phase in ("partition", "redistribute") and FUSED in names:
                continue
            if phase in ("partition", "redistribute", "merge") \
                    and STREAMED in names:
                continue
            if phase not in names:
                fail(f"node {pid}: phase span {phase!r} missing "
                     f"(has {sorted(names)})")

    print(
        f"trace ok: {len(events)} events, {len(pids)} nodes, "
        f"all five Algorithm 1 phases present per node"
    )


# ---------------------------------------------------------------- benches

def check_overlap(doc):
    MSG_LADDER = [8, 64, 1024, 8192]
    PERFS = {"homogeneous", "1-1-4-4"}
    ROW_KEYS = {
        "perf", "msg_records", "staged_secs", "streamed_secs", "speedup",
        "staged_io_blocks", "streamed_io_blocks", "io_saving_pct",
    }
    if not isinstance(doc.get("n"), int) or doc["n"] <= 0:
        fail("n must be a positive integer")
    if doc.get("msg_ladder") != MSG_LADDER:
        fail(f"msg_ladder must be {MSG_LADDER}, got {doc.get('msg_ladder')!r}")

    rows = doc.get("rows")
    if not isinstance(rows, list) or len(rows) != len(PERFS) * len(MSG_LADDER):
        fail(f"expected {len(PERFS) * len(MSG_LADDER)} rows, got "
             f"{len(rows) if isinstance(rows, list) else rows!r}")

    seen = set()
    for row in rows:
        if set(row) != ROW_KEYS:
            fail(f"row keys {sorted(row)} != expected {sorted(ROW_KEYS)}")
        perf, msg = row["perf"], row["msg_records"]
        if perf not in PERFS:
            fail(f"unknown perf {perf!r}")
        if msg not in MSG_LADDER:
            fail(f"unknown msg_records {msg}")
        if (perf, msg) in seen:
            fail(f"duplicate row ({perf}, {msg})")
        seen.add((perf, msg))
        for key in ("staged_secs", "streamed_secs", "speedup"):
            if not isinstance(row[key], (int, float)) or row[key] <= 0:
                fail(f"({perf}, {msg}): {key} must be positive")
        for key in ("staged_io_blocks", "streamed_io_blocks"):
            if not isinstance(row[key], int) or row[key] <= 0:
                fail(f"({perf}, {msg}): {key} must be a positive integer")
        if row["streamed_io_blocks"] >= row["staged_io_blocks"]:
            fail(f"({perf}, {msg}): streamed must move strictly fewer blocks "
                 f"({row['streamed_io_blocks']} vs {row['staged_io_blocks']})")

    headline = doc.get("speedup_1144_1ki")
    if not isinstance(headline, (int, float)):
        fail("speedup_1144_1ki must be a number")
    if headline <= 1.0:
        fail(f"1-1-4-4 speedup at 1 Ki messages must exceed 1.0, "
             f"got {headline}")
    ref = next(r for r in rows
               if r["perf"] == "1-1-4-4" and r["msg_records"] == 1024)
    if abs(ref["speedup"] - headline) > 1e-3:
        fail(f"speedup_1144_1ki {headline} disagrees with its row "
             f"{ref['speedup']}")

    print(f"overlap ok: {len(rows)} rows, 1-1-4-4 speedup at 1 Ki msgs "
          f"{headline:.2f}x")


def check_parmerge(doc):
    WORKER_LADDER = [1, 2, 4]
    KERNELS = {"comparison", "radix"}
    ROW_KEYS = {
        "kernel", "workers", "virtual_secs", "virtual_secs_scsi",
        "virtual_secs_scsi_shared", "speedup", "probe_random_reads",
        "wall_secs",
    }
    if not isinstance(doc.get("n"), int) or doc["n"] <= 0:
        fail("n must be a positive integer")
    if doc.get("worker_ladder") != WORKER_LADDER:
        fail(f"worker_ladder must be {WORKER_LADDER}, "
             f"got {doc.get('worker_ladder')!r}")
    if not isinstance(doc.get("runs"), int) or doc["runs"] < 2:
        fail("runs must be an integer >= 2")

    rows = doc.get("rows")
    if not isinstance(rows, list) \
            or len(rows) != len(KERNELS) * len(WORKER_LADDER):
        fail(f"expected {len(KERNELS) * len(WORKER_LADDER)} rows, got "
             f"{len(rows) if isinstance(rows, list) else rows!r}")

    seen = set()
    for row in rows:
        if set(row) != ROW_KEYS:
            fail(f"row keys {sorted(row)} != expected {sorted(ROW_KEYS)}")
        kernel, workers = row["kernel"], row["workers"]
        if kernel not in KERNELS:
            fail(f"unknown kernel {kernel!r}")
        if workers not in WORKER_LADDER:
            fail(f"unknown workers {workers}")
        if (kernel, workers) in seen:
            fail(f"duplicate row ({kernel}, {workers})")
        seen.add((kernel, workers))
        for key in ("virtual_secs", "virtual_secs_scsi",
                    "virtual_secs_scsi_shared", "speedup"):
            if not isinstance(row[key], (int, float)) or row[key] <= 0:
                fail(f"({kernel}, {workers}): {key} must be positive")
        # Sharing the disk can only add queueing delay on top of the
        # dedicated SCSI price; a lone stream pays exactly the old price.
        if row["virtual_secs_scsi_shared"] < row["virtual_secs_scsi"] - 1e-9:
            fail(f"({kernel}, {workers}): contention-priced SCSI time "
                 "undercuts the dedicated price")
        if workers == 1 and abs(row["virtual_secs_scsi_shared"]
                                - row["virtual_secs_scsi"]) > 1e-9:
            fail(f"({kernel}, 1): one stream must pay the dedicated price")
        if not isinstance(row["probe_random_reads"], int) \
                or row["probe_random_reads"] < 0:
            fail(f"({kernel}, {workers}): probe_random_reads must be a "
                 "non-negative integer")
        if workers == 1:
            if abs(row["speedup"] - 1.0) > 1e-6:
                fail(f"({kernel}, 1): baseline speedup must be 1.0, "
                     f"got {row['speedup']}")
            if row["probe_random_reads"] != 0:
                fail(f"({kernel}, 1): the sequential row must not probe")
        else:
            if row["probe_random_reads"] == 0:
                fail(f"({kernel}, {workers}): parallel rows must meter "
                     "splitter probes")
            if row["speedup"] <= 1.0:
                fail(f"({kernel}, {workers}): parallel speedup must exceed "
                     f"1.0, got {row['speedup']}")

    headline = doc.get("speedup_4_workers")
    if not isinstance(headline, (int, float)):
        fail("speedup_4_workers must be a number")
    if headline < 2.0:
        fail(f"comparison-kernel speedup at 4 workers must be >= 2.0, "
             f"got {headline}")
    ref = next(r for r in rows
               if r["kernel"] == "comparison" and r["workers"] == 4)
    if abs(ref["speedup"] - headline) > 1e-3:
        fail(f"speedup_4_workers {headline} disagrees with its row "
             f"{ref['speedup']}")

    print(f"parmerge ok: {len(rows)} rows, comparison-kernel speedup at "
          f"4 workers {headline:.2f}x")


def check_planner(doc):
    FIXED_LADDER = [1, 2, 4]
    DEVICES = {"scsi_2000", "nvme_modern"}
    PLANS = {"fixed", "adaptive"}
    ROW_KEYS = {"device", "plan", "workers", "virtual_secs", "speedup",
                "wall_secs"}
    if not isinstance(doc.get("n"), int) or doc["n"] <= 0:
        fail("n must be a positive integer")
    if doc.get("fixed_ladder") != FIXED_LADDER:
        fail(f"fixed_ladder must be {FIXED_LADDER}, "
             f"got {doc.get('fixed_ladder')!r}")
    if doc.get("pricing") != "shared_service_time":
        fail("pricing must be 'shared_service_time' (the contention model)")
    if set(doc.get("devices", [])) != DEVICES:
        fail(f"devices must be {sorted(DEVICES)}, got {doc.get('devices')!r}")

    rows = doc.get("rows")
    expected = len(DEVICES) * (len(FIXED_LADDER) + 1)
    if not isinstance(rows, list) or len(rows) != expected:
        fail(f"expected {expected} rows, got "
             f"{len(rows) if isinstance(rows, list) else rows!r}")

    seen = set()
    times = {}
    for row in rows:
        if set(row) != ROW_KEYS:
            fail(f"row keys {sorted(row)} != expected {sorted(ROW_KEYS)}")
        device, plan, workers = row["device"], row["plan"], row["workers"]
        if device not in DEVICES:
            fail(f"unknown device {device!r}")
        if plan not in PLANS:
            fail(f"unknown plan {plan!r}")
        if plan == "fixed" and workers not in FIXED_LADDER:
            fail(f"fixed workers must be in {FIXED_LADDER}, got {workers}")
        if plan == "adaptive" and not (1 <= workers <= doc["advisory_cap"]):
            fail(f"adaptive workers {workers} outside "
                 f"[1, {doc['advisory_cap']}]")
        key = (device, plan, workers if plan == "fixed" else None)
        if key in seen:
            fail(f"duplicate row {key}")
        seen.add(key)
        for k in ("virtual_secs", "speedup"):
            if not isinstance(row[k], (int, float)) or row[k] <= 0:
                fail(f"{device}/{plan}/{workers}: {k} must be positive")
        times[(device, plan, workers if plan == "fixed" else "ada")] = \
            row["virtual_secs"]

    for device in DEVICES:
        seq = times[(device, "fixed", 1)]
        ada = times[(device, "adaptive", "ada")]
        best = min(times[(device, "fixed", w)] for w in FIXED_LADDER)
        if ada > seq * (1 + 1e-9):
            fail(f"{device}: adaptive plan {ada} worse than sequential {seq}")
        if ada > best * 1.05:
            fail(f"{device}: adaptive plan {ada} more than 5% off the best "
                 f"fixed config {best}")

    vs_best = doc.get("scsi_adaptive_vs_best_fixed")
    if not isinstance(vs_best, (int, float)) or vs_best > 1.05:
        fail(f"scsi_adaptive_vs_best_fixed must be <= 1.05, got {vs_best!r}")
    vs_seq = doc.get("scsi_adaptive_vs_sequential")
    if not isinstance(vs_seq, (int, float)) or vs_seq > 1.0 + 1e-9:
        fail(f"scsi_adaptive_vs_sequential must be <= 1.0, got {vs_seq!r}")
    nvme = doc.get("nvme_adaptive_speedup")
    if not isinstance(nvme, (int, float)) or nvme <= 1.0:
        fail(f"nvme_adaptive_speedup must exceed 1.0, got {nvme!r}")

    print(f"planner ok: {len(rows)} rows, scsi adaptive/best {vs_best:.3f}, "
          f"nvme adaptive speedup {nvme:.2f}x")


def check_wallclock(doc):
    KERNELS = ["radix", "ips4o"]
    CODECS = ["copy", "zerocopy"]
    BACKENDS = ["serial", "batched"]
    ROW_KEYS = {"kernel", "codec", "io_backend", "wall_secs",
                "records_per_sec", "mb_per_sec"}
    GATE_MIN_N = 1 << 26
    SPEEDUP_GATE = 1.5
    for key in ("n", "record_bytes", "mem_records", "tapes", "block_bytes",
                "sort_workers", "prefetch_depth"):
        if not isinstance(doc.get(key), int) or doc[key] <= 0:
            fail(f"{key} must be a positive integer")
    ref = doc.get("reference")
    upg = doc.get("upgraded")
    if ref != {"kernel": "radix", "codec": "copy", "io_backend": "serial"}:
        fail(f"unexpected reference cell {ref!r}")
    if upg != {"kernel": "ips4o", "codec": "zerocopy",
               "io_backend": "batched"}:
        fail(f"unexpected upgraded cell {upg!r}")

    rows = doc.get("rows")
    expected = 1 + len(KERNELS) * len(CODECS) * len(BACKENDS)
    if not isinstance(rows, list) or len(rows) != expected:
        fail(f"expected {expected} rows (baseline + grid), got "
             f"{len(rows) if isinstance(rows, list) else rows!r}")

    baseline = rows[0]
    if baseline.get("kernel") != "std_slice_sort":
        fail("first row must be the std_slice_sort baseline")
    if baseline.get("codec") is not None \
            or baseline.get("io_backend") is not None:
        fail("baseline row must have null codec/io_backend")

    seen = set()
    for row in rows:
        if set(row) != ROW_KEYS:
            fail(f"row keys {sorted(row)} != expected {sorted(ROW_KEYS)}")
        for key in ("wall_secs", "records_per_sec", "mb_per_sec"):
            if not isinstance(row[key], (int, float)) or row[key] <= 0:
                fail(f"{row['kernel']}: {key} must be positive")
        if row["kernel"] == "std_slice_sort":
            continue
        cell = (row["kernel"], row["codec"], row["io_backend"])
        if row["kernel"] not in KERNELS or row["codec"] not in CODECS \
                or row["io_backend"] not in BACKENDS:
            fail(f"unknown grid cell {cell}")
        if cell in seen:
            fail(f"duplicate grid cell {cell}")
        seen.add(cell)
    if len(seen) != expected - 1:
        fail(f"grid incomplete: {len(seen)} of {expected - 1} cells")

    headline = doc.get("speedup_upgraded")
    if not isinstance(headline, (int, float)) or headline <= 0:
        fail(f"speedup_upgraded must be positive, got {headline!r}")
    ref_row = next(r for r in rows
                   if (r["kernel"], r["codec"], r["io_backend"])
                   == ("radix", "copy", "serial"))
    upg_row = next(r for r in rows
                   if (r["kernel"], r["codec"], r["io_backend"])
                   == ("ips4o", "zerocopy", "batched"))
    derived = ref_row["wall_secs"] / upg_row["wall_secs"]
    if abs(derived - headline) > 0.01 * max(derived, headline):
        fail(f"speedup_upgraded {headline} disagrees with its rows "
             f"{derived:.4f}")

    if doc["n"] >= GATE_MIN_N and headline < SPEEDUP_GATE:
        fail(f"at n={doc['n']} the upgraded cell must be >= {SPEEDUP_GATE}x "
             f"the reference, got {headline:.2f}x")

    scale = "GB-scale" if doc["n"] >= GATE_MIN_N else "reduced-scale"
    print(f"wallclock ok ({scale}): {len(rows)} rows, upgraded speedup "
          f"{headline:.2f}x")


def check_kernels(doc):
    for key in ("n", "mem_records", "tapes", "block_bytes",
                "cpu_model", "disk_model", "speedup_uniform", "rows"):
        if key not in doc:
            fail(f"missing top-level key {key!r}")
    if not doc["rows"]:
        fail("rows must be non-empty")
    for row in doc["rows"]:
        for key in ("workload", "kernel", "comparisons", "key_ops",
                    "cpu_secs", "io_secs", "virtual_secs", "speedup"):
            if key not in row:
                fail(f"missing row key {key!r}")
        if row["kernel"] not in ("comparison", "radix"):
            fail(f"unknown kernel {row['kernel']!r}")
    if doc["speedup_uniform"] < 1.5:
        fail(f"speedup_uniform must be >= 1.5, got {doc['speedup_uniform']}")
    print(f"kernels ok: {len(doc['rows'])} rows, "
          f"uniform speedup {doc['speedup_uniform']}x")


def check_pipeline(doc):
    if not isinstance(doc.get("n"), int) or doc["n"] <= 0:
        fail("n must be a positive integer")
    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        fail("rows must be a non-empty array")
    for row in rows:
        for key in ("mode", "workers", "virtual_secs", "speedup"):
            if key not in row:
                fail(f"missing row key {key!r}")
        if not isinstance(row["virtual_secs"], (int, float)) \
                or row["virtual_secs"] <= 0:
            fail(f"{row['mode']}: virtual_secs must be positive")
    headline = doc.get("speedup_4_workers")
    if not isinstance(headline, (int, float)) or headline <= 1.0:
        fail(f"speedup_4_workers must exceed 1.0, got {headline!r}")
    print(f"pipeline ok: {len(rows)} rows, 4-worker speedup {headline:.2f}x")


def check_scale(doc):
    P_LADDER = [4, 16, 64, 256, 1024]
    RUNTIMES = {"threads", "events"}
    WORKLOADS = {"ring", "psrs"}
    SPLITTERS = {"flat", "grouped"}
    BASE_KEYS = {"workload", "p", "runtime", "size", "makespan_sim_secs",
                 "wall_secs", "sim_per_wall"}
    SHARE_KEYS = {"splitter_share", "alltoall_share"}
    SPLIT_KEYS = {"split_sample_gather_secs", "split_leader_sort_secs",
                  "split_boundary_exchange_secs"}
    HEADLINE_GATE = 10.0
    FLAT_SHARE_FLOOR = 0.60
    GROUPED_SHARE_CEIL = 0.25
    if doc.get("p_ladder") != P_LADDER:
        fail(f"p_ladder must be {P_LADDER}, got {doc.get('p_ladder')!r}")
    threads_max = doc.get("threads_max_p")
    if threads_max not in P_LADDER:
        fail(f"threads_max_p must be on the ladder, got {threads_max!r}")
    flat_max = doc.get("flat_max_p")
    if flat_max not in P_LADDER:
        fail(f"flat_max_p must be on the ladder, got {flat_max!r}")
    headline_p = doc.get("headline_p")
    if headline_p not in P_LADDER or headline_p > threads_max:
        fail(f"headline_p {headline_p!r} must be a ladder width both "
             "runtimes cover")
    if not isinstance(doc.get("ring_rounds"), int) or doc["ring_rounds"] <= 0:
        fail("ring_rounds must be a positive integer")
    if not isinstance(doc.get("n"), int) or doc["n"] <= 0:
        fail("n must be a positive integer")

    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        fail("rows must be a non-empty array")
    seen = {}
    for row in rows:
        workload, p, runtime = row.get("workload"), row.get("p"), \
            row.get("runtime")
        if workload not in WORKLOADS:
            fail(f"unknown workload {workload!r}")
        if p not in P_LADDER:
            fail(f"unknown p {p!r}")
        if runtime not in RUNTIMES:
            fail(f"unknown runtime {runtime!r}")
        splitter = row.get("splitter")
        if workload == "psrs":
            if splitter not in SPLITTERS:
                fail(f"(psrs, {p}, {runtime}): splitter must be one of "
                     f"{sorted(SPLITTERS)}, got {splitter!r}")
            want = BASE_KEYS | {"splitter"} | SHARE_KEYS
            if splitter == "grouped":
                want = want | SPLIT_KEYS
        else:
            if splitter is not None:
                fail(f"(ring, {p}, {runtime}): ring rows carry no splitter")
            want = BASE_KEYS
        if set(row) != want:
            fail(f"({workload}, {p}, {runtime}): row keys {sorted(row)} != "
                 f"expected {sorted(want)}")
        if runtime == "threads" and p > threads_max:
            fail(f"({workload}, {p}): thread runtime swept past "
                 f"threads_max_p {threads_max}")
        if splitter == "flat" and p > flat_max:
            fail(f"(psrs, {p}): flat splitter swept past flat_max_p "
                 f"{flat_max}")
        key = (workload, p, runtime, splitter)
        if key in seen:
            fail(f"duplicate row {key}")
        seen[key] = row
        for k in ("makespan_sim_secs", "wall_secs", "sim_per_wall"):
            if not isinstance(row[k], (int, float)) or row[k] <= 0:
                fail(f"({workload}, {p}, {runtime}): {k} must be positive")
        if not isinstance(row["size"], int) or row["size"] <= 0:
            fail(f"({workload}, {p}, {runtime}): size must be a positive "
                 "integer")
        if workload == "psrs":
            for k in SHARE_KEYS:
                if not isinstance(row[k], (int, float)) \
                        or not 0.0 <= row[k] <= 1.0:
                    fail(f"(psrs, {p}, {runtime}): {k} must be in [0, 1]")
        if splitter == "grouped":
            for k in SPLIT_KEYS:
                if not isinstance(row[k], (int, float)) or row[k] < 0.0:
                    fail(f"(psrs, {p}, {runtime}): {k} must be >= 0")

    for p in P_LADDER:
        if ("ring", p, "events", None) not in seen:
            fail(f"event runtime must cover p={p} on 'ring' "
                 "(the full ladder including 1024)")
        if ("psrs", p, "events", "grouped") not in seen:
            fail(f"grouped splitter must cover p={p} on 'psrs' "
                 "(the full ladder including 1024)")
        if p <= flat_max and ("psrs", p, "events", "flat") not in seen:
            fail(f"flat splitter must cover p={p} on 'psrs' up to "
                 f"flat_max_p {flat_max}")
        variants = [("ring", None)] if p > threads_max else \
            [("ring", None), ("psrs", "flat"), ("psrs", "grouped")]
        for workload, splitter in variants:
            if p > threads_max:
                continue
            if (workload, p, "threads", splitter) not in seen:
                fail(f"thread runtime must cover p={p} on {workload!r} "
                     f"(splitter {splitter!r})")
            # Blocking exchanges only: both schedulers simulate the exact
            # same virtual run, so the makespans must agree exactly.
            t = seen[(workload, p, "threads", splitter)]["makespan_sim_secs"]
            e = seen[(workload, p, "events", splitter)]["makespan_sim_secs"]
            if t != e:
                fail(f"({workload}, {p}, {splitter}): simulated makespan "
                     f"differs across runtimes ({t} vs {e})")

    headline = doc.get("events_vs_threads_p64")
    if not isinstance(headline, (int, float)):
        fail("events_vs_threads_p64 must be a number")
    derived = seen[("ring", headline_p, "events", None)]["sim_per_wall"] \
        / seen[("ring", headline_p, "threads", None)]["sim_per_wall"]
    if abs(derived - headline) > 0.02 * max(derived, headline):
        fail(f"events_vs_threads_p64 {headline} disagrees with its ring "
             f"rows {derived:.4f}")
    if headline < HEADLINE_GATE:
        fail(f"event runtime must clear {HEADLINE_GATE}x the thread "
             f"runtime's throughput at p={headline_p}, got {headline}")

    flat256 = seen[("psrs", 256, "events", "flat")]
    grouped256 = seen[("psrs", 256, "events", "grouped")]
    if flat256["splitter_share"] < FLAT_SHARE_FLOOR:
        fail(f"flat splitter share at p=256 should exhibit the O(p^2) "
             f"bottleneck (>= {FLAT_SHARE_FLOOR}), got "
             f"{flat256['splitter_share']}")
    if grouped256["splitter_share"] >= GROUPED_SHARE_CEIL:
        fail(f"grouped splitter share at p=256 must stay < "
             f"{GROUPED_SHARE_CEIL}, got {grouped256['splitter_share']}")
    speedup = doc.get("grouped_speedup_p256")
    if not isinstance(speedup, (int, float)):
        fail("grouped_speedup_p256 must be a number")
    derived = flat256["makespan_sim_secs"] / grouped256["makespan_sim_secs"]
    if abs(derived - speedup) > 0.02 * max(derived, speedup):
        fail(f"grouped_speedup_p256 {speedup} disagrees with its psrs "
             f"rows {derived:.4f}")
    if speedup <= 1.0:
        fail(f"grouped splitter must beat flat at p=256, got {speedup}x")

    print(f"scale ok: {len(rows)} rows, events/threads at p={headline_p} "
          f"{headline:.1f}x, p=256 splitter share flat "
          f"{flat256['splitter_share']:.3f} -> grouped "
          f"{grouped256['splitter_share']:.3f} ({speedup:.2f}x makespan)")


def check_trend(doc):
    baselines = doc.get("baselines")
    if not isinstance(baselines, list) or not baselines:
        fail("baselines must be a non-empty array")
    seen = set()
    for b in baselines:
        for key in ("bench", "n", "key", "value"):
            if key not in b:
                fail(f"baseline entry missing {key!r}")
        if not isinstance(b["value"], (int, float)) or b["value"] <= 0:
            fail(f"{b['bench']}: baseline value must be positive")
        triple = (b["bench"], b["n"], b["key"])
        if triple in seen:
            fail(f"duplicate baseline {triple}")
        seen.add(triple)
    print(f"trend ok: {len(baselines)} baselines")


# --------------------------------------------------------------- dispatch

BENCH_CHECKS = {
    "overlap_speedup": check_overlap,
    "parmerge_speedup": check_parmerge,
    "planner_speedup": check_planner,
    "wallclock_speedup": check_wallclock,
    "kernel_speedup": check_kernels,
    "pipeline_speedup": check_pipeline,
    "critpath_report": validate_critpath.check_bench,
    "scale": check_scale,
}


def dispatch(path):
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict):
        fail(f"{path}: top level must be an object")
    print(f"{path}: ", end="")
    schema = doc.get("schema")
    if schema == "hetsort-metrics-v1":
        check_metrics(doc)
    elif schema == "hetsort-critpath-v1":
        validate_critpath.check_export(doc)
    elif schema == "hetsort-trend-v1":
        check_trend(doc)
    elif "traceEvents" in doc:
        check_trace(doc)
    elif doc.get("bench") in BENCH_CHECKS:
        BENCH_CHECKS[doc["bench"]](doc)
    else:
        fail(f"{path}: unrecognized document (schema {schema!r}, "
             f"bench {doc.get('bench')!r})")


if __name__ == "__main__":
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    for p in sys.argv[1:]:
        dispatch(p)
