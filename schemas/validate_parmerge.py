#!/usr/bin/env python3
"""Validate a BENCH_parmerge.json file (stdlib only).

Usage: python3 schemas/validate_parmerge.py BENCH_parmerge.json

Checks the output of the `parmerge_speedup` bench binary: both kernels
across the merge-worker ladder, positive virtual times under both disk
models, probe reads only on the parallel rows, and the headline
4-worker speedup on the comparison kernel.
"""

import json
import sys

WORKER_LADDER = [1, 2, 4]
KERNELS = {"comparison", "radix"}
ROW_KEYS = {
    "kernel", "workers", "virtual_secs", "virtual_secs_scsi",
    "virtual_secs_scsi_shared", "speedup", "probe_random_reads", "wall_secs",
}


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main(path):
    with open(path) as f:
        doc = json.load(f)

    if doc.get("bench") != "parmerge_speedup":
        fail(f"bench must be 'parmerge_speedup', got {doc.get('bench')!r}")
    if not isinstance(doc.get("n"), int) or doc["n"] <= 0:
        fail("n must be a positive integer")
    if doc.get("worker_ladder") != WORKER_LADDER:
        fail(f"worker_ladder must be {WORKER_LADDER}, "
             f"got {doc.get('worker_ladder')!r}")
    if not isinstance(doc.get("runs"), int) or doc["runs"] < 2:
        fail("runs must be an integer >= 2")

    rows = doc.get("rows")
    if not isinstance(rows, list) or len(rows) != len(KERNELS) * len(WORKER_LADDER):
        fail(f"expected {len(KERNELS) * len(WORKER_LADDER)} rows, got "
             f"{len(rows) if isinstance(rows, list) else rows!r}")

    seen = set()
    for row in rows:
        if set(row) != ROW_KEYS:
            fail(f"row keys {sorted(row)} != expected {sorted(ROW_KEYS)}")
        kernel, workers = row["kernel"], row["workers"]
        if kernel not in KERNELS:
            fail(f"unknown kernel {kernel!r}")
        if workers not in WORKER_LADDER:
            fail(f"unknown workers {workers}")
        if (kernel, workers) in seen:
            fail(f"duplicate row ({kernel}, {workers})")
        seen.add((kernel, workers))
        for key in ("virtual_secs", "virtual_secs_scsi",
                    "virtual_secs_scsi_shared", "speedup"):
            if not isinstance(row[key], (int, float)) or row[key] <= 0:
                fail(f"({kernel}, {workers}): {key} must be positive")
        # Sharing the disk can only add queueing delay on top of the
        # dedicated SCSI price; a lone stream pays exactly the old price.
        if row["virtual_secs_scsi_shared"] < row["virtual_secs_scsi"] - 1e-9:
            fail(f"({kernel}, {workers}): contention-priced SCSI time "
                 "undercuts the dedicated price")
        if workers == 1 and abs(row["virtual_secs_scsi_shared"]
                                - row["virtual_secs_scsi"]) > 1e-9:
            fail(f"({kernel}, 1): one stream must pay the dedicated price")
        if not isinstance(row["probe_random_reads"], int) or row["probe_random_reads"] < 0:
            fail(f"({kernel}, {workers}): probe_random_reads must be a "
             "non-negative integer")
        if workers == 1:
            if abs(row["speedup"] - 1.0) > 1e-6:
                fail(f"({kernel}, 1): baseline speedup must be 1.0, "
                     f"got {row['speedup']}")
            if row["probe_random_reads"] != 0:
                fail(f"({kernel}, 1): the sequential row must not probe")
        else:
            if row["probe_random_reads"] == 0:
                fail(f"({kernel}, {workers}): parallel rows must meter "
                     "splitter probes")
            if row["speedup"] <= 1.0:
                fail(f"({kernel}, {workers}): parallel speedup must exceed "
                     f"1.0, got {row['speedup']}")

    headline = doc.get("speedup_4_workers")
    if not isinstance(headline, (int, float)):
        fail("speedup_4_workers must be a number")
    if headline < 2.0:
        fail(f"comparison-kernel speedup at 4 workers must be >= 2.0, "
             f"got {headline}")
    ref = next(r for r in rows
               if r["kernel"] == "comparison" and r["workers"] == 4)
    if abs(ref["speedup"] - headline) > 1e-3:
        fail(f"speedup_4_workers {headline} disagrees with its row "
             f"{ref['speedup']}")

    print(f"parmerge ok: {len(rows)} rows, comparison-kernel speedup at "
          f"4 workers {headline:.2f}x")


if __name__ == "__main__":
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    main(sys.argv[1])
