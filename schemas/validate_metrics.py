#!/usr/bin/env python3
"""Validate a hetsort metrics.json file (stdlib only).

Usage: python3 schemas/validate_metrics.py metrics.json

Checks the `hetsort-metrics-v1` schema emitted by `obs::metrics_json`:
per-node phase durations, counters/gauges/histograms with the dotted
naming scheme, power-of-two histogram buckets, and the cluster-level
PSRS skew gauges.
"""

import json
import sys

PHASES = {"local-sort", "pivots", "partition", "redistribute", "merge",
          "partition+redistribute", "exchange-merge"}
REQUIRED_NODE_COUNTERS = ["io.blocks_read", "io.blocks_written", "net.sent_bytes",
                          "io.queue.wait_us"]
REQUIRED_CLUSTER_GAUGES = ["skew.expansion", "skew.bound", "skew.within_bound"]


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_metrics(m, where):
    if not isinstance(m, dict):
        fail(f"{where}: metrics must be an object")
    for section in ("counters", "gauges", "histograms"):
        if section not in m or not isinstance(m[section], dict):
            fail(f"{where}: missing {section!r} object")
    for name, v in m["counters"].items():
        if not isinstance(v, int) or v < 0:
            fail(f"{where}: counter {name!r} must be a non-negative integer")
    for name, v in m["gauges"].items():
        if not isinstance(v, (int, float)):
            fail(f"{where}: gauge {name!r} must be a number")
    for name, h in m["histograms"].items():
        if not isinstance(h, dict):
            fail(f"{where}: histogram {name!r} must be an object")
        for key in ("count", "sum", "min", "max", "mean", "buckets"):
            if key not in h:
                fail(f"{where}: histogram {name!r} missing {key!r}")
        total = 0
        for b in h["buckets"]:
            if "le" not in b or "count" not in b:
                fail(f"{where}: histogram {name!r} bucket missing le/count")
            # Power-of-two upper bounds: le is 2^k - 1.
            le = b["le"]
            if not isinstance(le, int) or (le & (le + 1)) != 0:
                fail(f"{where}: histogram {name!r} bucket le {le} is not 2^k-1")
            total += b["count"]
        if total != h["count"]:
            fail(f"{where}: histogram {name!r} bucket counts {total} != count {h['count']}")
    for section in ("counters", "gauges", "histograms"):
        for name in m[section]:
            if "." not in name:
                fail(f"{where}: metric {name!r} lacks a dotted subsystem prefix")


def main(path):
    with open(path) as f:
        doc = json.load(f)

    if doc.get("schema") != "hetsort-metrics-v1":
        fail(f"schema must be 'hetsort-metrics-v1', got {doc.get('schema')!r}")
    nodes = doc.get("nodes")
    if not isinstance(nodes, list) or not nodes:
        fail("nodes must be a non-empty array")
    for node in nodes:
        rank = node.get("node")
        if not isinstance(rank, int):
            fail("node entry missing integer 'node' rank")
        where = f"node {rank}"
        if not isinstance(node.get("label"), str):
            fail(f"{where}: missing string label")
        phases = node.get("phases")
        if not isinstance(phases, list) or not phases:
            fail(f"{where}: phases must be a non-empty array")
        for p in phases:
            if p.get("name") not in PHASES:
                fail(f"{where}: unknown phase {p.get('name')!r}")
            for key in ("virt_secs", "wall_secs"):
                if not isinstance(p.get(key), (int, float)) or p[key] < 0:
                    fail(f"{where}: phase {p['name']!r} bad {key}")
        check_metrics(node.get("metrics"), where)
        for name in REQUIRED_NODE_COUNTERS:
            if name not in node["metrics"]["counters"]:
                fail(f"{where}: required counter {name!r} missing")
    cluster = doc.get("cluster")
    check_metrics(cluster, "cluster")
    for name in REQUIRED_CLUSTER_GAUGES:
        if name not in cluster["gauges"]:
            fail(f"cluster: required skew gauge {name!r} missing")

    print(
        f"metrics ok: {len(nodes)} nodes, skew expansion "
        f"{cluster['gauges']['skew.expansion']:.4f} "
        f"(bound {cluster['gauges']['skew.bound']:.4f})"
    )


if __name__ == "__main__":
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    main(sys.argv[1])
