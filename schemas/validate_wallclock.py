#!/usr/bin/env python3
"""Validate a BENCH_wallclock.json file (stdlib only).

Usage: python3 schemas/validate_wallclock.py BENCH_wallclock.json

Checks the output of the `wallclock_speedup` bench binary: the full
kernel x codec x io-backend grid plus the std_slice_sort baseline row,
positive wall times and throughputs everywhere, and the headline
upgraded-vs-reference speedup. The >= 1.5x throughput gate only applies
at GB scale (n >= 2**26); smaller runs (CI's --quick) are dominated by
constant overheads and only have their structure checked.
"""

import json
import sys

KERNELS = ["radix", "ips4o"]
CODECS = ["copy", "zerocopy"]
BACKENDS = ["serial", "batched"]
ROW_KEYS = {"kernel", "codec", "io_backend", "wall_secs", "records_per_sec",
            "mb_per_sec"}
GATE_MIN_N = 1 << 26
SPEEDUP_GATE = 1.5


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main(path):
    with open(path) as f:
        doc = json.load(f)

    if doc.get("bench") != "wallclock_speedup":
        fail(f"bench must be 'wallclock_speedup', got {doc.get('bench')!r}")
    for key in ("n", "record_bytes", "mem_records", "tapes", "block_bytes",
                "sort_workers", "prefetch_depth"):
        if not isinstance(doc.get(key), int) or doc[key] <= 0:
            fail(f"{key} must be a positive integer")
    ref = doc.get("reference")
    upg = doc.get("upgraded")
    if ref != {"kernel": "radix", "codec": "copy", "io_backend": "serial"}:
        fail(f"unexpected reference cell {ref!r}")
    if upg != {"kernel": "ips4o", "codec": "zerocopy", "io_backend": "batched"}:
        fail(f"unexpected upgraded cell {upg!r}")

    rows = doc.get("rows")
    expected = 1 + len(KERNELS) * len(CODECS) * len(BACKENDS)
    if not isinstance(rows, list) or len(rows) != expected:
        fail(f"expected {expected} rows (baseline + grid), got "
             f"{len(rows) if isinstance(rows, list) else rows!r}")

    baseline = rows[0]
    if baseline.get("kernel") != "std_slice_sort":
        fail("first row must be the std_slice_sort baseline")
    if baseline.get("codec") is not None or baseline.get("io_backend") is not None:
        fail("baseline row must have null codec/io_backend")

    seen = set()
    for row in rows:
        if set(row) != ROW_KEYS:
            fail(f"row keys {sorted(row)} != expected {sorted(ROW_KEYS)}")
        for key in ("wall_secs", "records_per_sec", "mb_per_sec"):
            if not isinstance(row[key], (int, float)) or row[key] <= 0:
                fail(f"{row['kernel']}: {key} must be positive")
        if row["kernel"] == "std_slice_sort":
            continue
        cell = (row["kernel"], row["codec"], row["io_backend"])
        if row["kernel"] not in KERNELS or row["codec"] not in CODECS \
                or row["io_backend"] not in BACKENDS:
            fail(f"unknown grid cell {cell}")
        if cell in seen:
            fail(f"duplicate grid cell {cell}")
        seen.add(cell)
    if len(seen) != expected - 1:
        fail(f"grid incomplete: {len(seen)} of {expected - 1} cells")

    headline = doc.get("speedup_upgraded")
    if not isinstance(headline, (int, float)) or headline <= 0:
        fail(f"speedup_upgraded must be positive, got {headline!r}")
    ref_row = next(r for r in rows
                   if (r["kernel"], r["codec"], r["io_backend"])
                   == ("radix", "copy", "serial"))
    upg_row = next(r for r in rows
                   if (r["kernel"], r["codec"], r["io_backend"])
                   == ("ips4o", "zerocopy", "batched"))
    derived = ref_row["wall_secs"] / upg_row["wall_secs"]
    if abs(derived - headline) > 0.01 * max(derived, headline):
        fail(f"speedup_upgraded {headline} disagrees with its rows {derived:.4f}")

    if doc["n"] >= GATE_MIN_N and headline < SPEEDUP_GATE:
        fail(f"at n={doc['n']} the upgraded cell must be >= {SPEEDUP_GATE}x "
             f"the reference, got {headline:.2f}x")

    scale = "GB-scale" if doc["n"] >= GATE_MIN_N else "reduced-scale"
    print(f"wallclock ok ({scale}): {len(rows)} rows, upgraded speedup "
          f"{headline:.2f}x")


if __name__ == "__main__":
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    main(sys.argv[1])
