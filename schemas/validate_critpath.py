#!/usr/bin/env python3
"""Validate critical-path profiler JSON (stdlib only).

Usage: python3 schemas/validate_critpath.py FILE

Accepts either artifact of the critical-path profiler:

* the CLI's `--critpath-out` export (`"schema": "hetsort-critpath-v1"`):
  blame totals, the what-if ranking and the path segments, with the
  invariants that blame sums to the makespan within 1% and the segments
  tile `[0, makespan]` contiguously;
* the bench binary's `BENCH_critpath.json` (`"bench": "critpath_report"`):
  the same blame/what-if tables plus the planner-residual headline.
"""

import json
import sys

CATEGORIES = {"cpu", "io-read", "io-write", "queue-wait", "net-transfer",
              "credit-stall", "idle-straggler"}


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_blame(blame, makespan, where):
    if not isinstance(blame, dict) or set(blame) != CATEGORIES:
        fail(f"{where}: blame must map exactly the 7 categories, "
             f"got {sorted(blame) if isinstance(blame, dict) else blame!r}")
    for cat, secs in blame.items():
        if not isinstance(secs, (int, float)) or secs < 0:
            fail(f"{where}: blame[{cat!r}] must be a non-negative number")
    total = sum(blame.values())
    if makespan > 0 and abs(total - makespan) > 0.01 * makespan:
        fail(f"{where}: blame sums to {total:.6f}, not within 1% of the "
             f"makespan {makespan:.6f}")


def check_whatif(rows, makespan):
    if not isinstance(rows, list) or len(rows) != len(CATEGORIES):
        fail(f"whatif must have {len(CATEGORIES)} rows, got "
             f"{len(rows) if isinstance(rows, list) else rows!r}")
    seen = set()
    for row in rows:
        cat = row.get("category")
        if cat not in CATEGORIES:
            fail(f"whatif: unknown category {cat!r}")
        if cat in seen:
            fail(f"whatif: duplicate category {cat!r}")
        seen.add(cat)
        for key in ("path_secs", "estimate_secs", "speedup"):
            if not isinstance(row.get(key), (int, float)) or row[key] < 0:
                fail(f"whatif[{cat}]: {key} must be a non-negative number")
        expected = max(0.0, makespan - row["path_secs"])
        if abs(row["estimate_secs"] - expected) > 1e-6 * max(1.0, makespan):
            fail(f"whatif[{cat}]: estimate {row['estimate_secs']} != "
                 f"makespan - path share {expected}")
    for a, b in zip(rows, rows[1:]):
        if a["path_secs"] < b["path_secs"] - 1e-12:
            fail("whatif rows must be ranked by path share, descending")


def check_export(doc):
    makespan = doc.get("makespan_secs")
    if not isinstance(makespan, (int, float)) or makespan <= 0:
        fail("makespan_secs must be a positive number")
    err = doc.get("blame_sum_rel_err")
    if not isinstance(err, (int, float)) or err > 0.01:
        fail(f"blame_sum_rel_err must be <= 0.01, got {err!r}")
    check_blame(doc.get("blame"), makespan, "path")
    check_whatif(doc.get("whatif"), makespan)

    segments = doc.get("segments")
    if not isinstance(segments, list) or not segments:
        fail("segments must be a non-empty array")
    prev_end = 0.0
    tol = 1e-6 * max(1.0, makespan)
    for i, seg in enumerate(segments):
        for key in ("node", "phase", "start", "end", "blame"):
            if key not in seg:
                fail(f"segment {i}: missing {key!r}")
        if not isinstance(seg["node"], int) or seg["node"] < 0:
            fail(f"segment {i}: node must be a non-negative integer")
        if abs(seg["start"] - prev_end) > tol:
            fail(f"segment {i}: starts at {seg['start']}, previous ended at "
                 f"{prev_end} — segments must tile contiguously")
        dur = seg["end"] - seg["start"]
        if dur < -tol:
            fail(f"segment {i}: negative duration")
        total = sum(seg["blame"].values())
        if set(seg["blame"]) != CATEGORIES:
            fail(f"segment {i}: blame must map exactly the 7 categories")
        if abs(total - dur) > tol:
            fail(f"segment {i}: blame sums to {total}, duration is {dur}")
        prev_end = seg["end"]
    if abs(prev_end - makespan) > tol:
        fail(f"segments end at {prev_end}, makespan is {makespan}")

    print(f"critpath ok: makespan {makespan:.4f}s over {len(segments)} "
          f"segments, blame sum rel err {err:.2e}")


def check_bench(doc):
    makespan = doc.get("makespan_secs")
    if not isinstance(makespan, (int, float)) or makespan <= 0:
        fail("makespan_secs must be a positive number")
    if not isinstance(doc.get("n"), int) or doc["n"] <= 0:
        fail("n must be a positive integer")
    err = doc.get("blame_sum_rel_err")
    if not isinstance(err, (int, float)) or err > 0.01:
        fail(f"blame_sum_rel_err must be <= 0.01, got {err!r}")
    check_blame(doc.get("blame"), makespan, "path")
    check_whatif(doc.get("whatif"), makespan)
    for key in ("planner_residual_mean_rel", "planner_residual_max_rel"):
        v = doc.get(key)
        if not isinstance(v, (int, float)) or v < 0:
            fail(f"{key} must be a non-negative number")
    top = doc.get("whatif_top_category")
    if top not in CATEGORIES:
        fail(f"whatif_top_category {top!r} unknown")
    headline = doc.get("whatif_top_speedup")
    if not isinstance(headline, (int, float)) or headline < 1.0:
        fail(f"whatif_top_speedup must be >= 1.0, got {headline!r}")
    ranked = doc["whatif"][0]
    if ranked["category"] != top or abs(ranked["speedup"] - headline) > 1e-3:
        fail(f"headline ({top}, {headline}) disagrees with the top whatif "
             f"row ({ranked['category']}, {ranked['speedup']})")

    print(f"critpath bench ok: n = {doc['n']}, top category {top} "
          f"({headline:.2f}x if free), planner residual mean "
          f"{doc['planner_residual_mean_rel']:.1%}")


def check(doc):
    if doc.get("schema") == "hetsort-critpath-v1":
        check_export(doc)
    elif doc.get("bench") == "critpath_report":
        check_bench(doc)
    else:
        fail("document is neither a hetsort-critpath-v1 export nor a "
             "critpath_report bench artifact")


def main(path):
    with open(path) as f:
        check(json.load(f))


if __name__ == "__main__":
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    main(sys.argv[1])
