#!/usr/bin/env python3
"""Validate a BENCH_planner.json file (stdlib only).

Usage: python3 schemas/validate_planner.py BENCH_planner.json

Checks the output of the `planner_speedup` bench binary: both devices
across the fixed worker ladder plus one adaptive row each, positive
contention-priced virtual times, and the planner's headline claims —
on scsi_2000 the adaptive plan is within 5% of the best fixed
configuration and never worse than sequential; on nvme_modern it picks
a wide plan that beats sequential.
"""

import json
import sys

FIXED_LADDER = [1, 2, 4]
DEVICES = {"scsi_2000", "nvme_modern"}
PLANS = {"fixed", "adaptive"}
ROW_KEYS = {"device", "plan", "workers", "virtual_secs", "speedup",
            "wall_secs"}


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main(path):
    with open(path) as f:
        doc = json.load(f)

    if doc.get("bench") != "planner_speedup":
        fail(f"bench must be 'planner_speedup', got {doc.get('bench')!r}")
    if not isinstance(doc.get("n"), int) or doc["n"] <= 0:
        fail("n must be a positive integer")
    if doc.get("fixed_ladder") != FIXED_LADDER:
        fail(f"fixed_ladder must be {FIXED_LADDER}, "
             f"got {doc.get('fixed_ladder')!r}")
    if doc.get("pricing") != "shared_service_time":
        fail("pricing must be 'shared_service_time' (the contention model)")
    if set(doc.get("devices", [])) != DEVICES:
        fail(f"devices must be {sorted(DEVICES)}, got {doc.get('devices')!r}")

    rows = doc.get("rows")
    expected = len(DEVICES) * (len(FIXED_LADDER) + 1)
    if not isinstance(rows, list) or len(rows) != expected:
        fail(f"expected {expected} rows, got "
             f"{len(rows) if isinstance(rows, list) else rows!r}")

    seen = set()
    times = {}
    for row in rows:
        if set(row) != ROW_KEYS:
            fail(f"row keys {sorted(row)} != expected {sorted(ROW_KEYS)}")
        device, plan, workers = row["device"], row["plan"], row["workers"]
        if device not in DEVICES:
            fail(f"unknown device {device!r}")
        if plan not in PLANS:
            fail(f"unknown plan {plan!r}")
        if plan == "fixed" and workers not in FIXED_LADDER:
            fail(f"fixed workers must be in {FIXED_LADDER}, got {workers}")
        if plan == "adaptive" and not (1 <= workers <= doc["advisory_cap"]):
            fail(f"adaptive workers {workers} outside "
                 f"[1, {doc['advisory_cap']}]")
        key = (device, plan, workers if plan == "fixed" else None)
        if key in seen:
            fail(f"duplicate row {key}")
        seen.add(key)
        for k in ("virtual_secs", "speedup"):
            if not isinstance(row[k], (int, float)) or row[k] <= 0:
                fail(f"{device}/{plan}/{workers}: {k} must be positive")
        times[(device, plan, workers if plan == "fixed" else "ada")] = \
            row["virtual_secs"]

    for device in DEVICES:
        seq = times[(device, "fixed", 1)]
        ada = times[(device, "adaptive", "ada")]
        best = min(times[(device, "fixed", w)] for w in FIXED_LADDER)
        if ada > seq * (1 + 1e-9):
            fail(f"{device}: adaptive plan {ada} worse than sequential {seq}")
        if ada > best * 1.05:
            fail(f"{device}: adaptive plan {ada} more than 5% off the best "
                 f"fixed config {best}")

    vs_best = doc.get("scsi_adaptive_vs_best_fixed")
    if not isinstance(vs_best, (int, float)) or vs_best > 1.05:
        fail(f"scsi_adaptive_vs_best_fixed must be <= 1.05, got {vs_best!r}")
    vs_seq = doc.get("scsi_adaptive_vs_sequential")
    if not isinstance(vs_seq, (int, float)) or vs_seq > 1.0 + 1e-9:
        fail(f"scsi_adaptive_vs_sequential must be <= 1.0, got {vs_seq!r}")
    nvme = doc.get("nvme_adaptive_speedup")
    if not isinstance(nvme, (int, float)) or nvme <= 1.0:
        fail(f"nvme_adaptive_speedup must exceed 1.0, got {nvme!r}")

    print(f"planner ok: {len(rows)} rows, scsi adaptive/best {vs_best:.3f}, "
          f"nvme adaptive speedup {nvme:.2f}x")


if __name__ == "__main__":
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    main(sys.argv[1])
