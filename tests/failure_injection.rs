//! Failure-injection tests: corrupted or missing storage must surface as
//! errors (never as silently wrong sorted output), and the system's own
//! verification machinery must catch manufactured violations.

use extsort::{fingerprint_slice, ExtSortConfig};
use pdm::{Disk, PdmError};
use workloads::{generate_to_disk, Benchmark, Layout};

#[test]
fn sorting_a_missing_input_errors() {
    let disk = Disk::in_memory(1024);
    let cfg = ExtSortConfig::new(4096).with_tapes(4);
    let err = extsort::polyphase_sort::<u32>(&disk, "nope", "out", "j", &cfg).unwrap_err();
    assert!(matches!(err, PdmError::NotFound(_)), "{err}");
}

#[test]
fn sorting_a_torn_input_errors() {
    let disk = Disk::in_memory(1024);
    generate_to_disk(&disk, "in", Benchmark::Uniform, 1, Layout::single(5000)).unwrap();
    // A torn write: byte length no longer a record multiple.
    disk.truncate("in", 5000 * 4 - 3).unwrap();
    let cfg = ExtSortConfig::new(1024).with_tapes(4);
    let err = extsort::polyphase_sort::<u32>(&disk, "in", "out", "j", &cfg).unwrap_err();
    assert!(matches!(err, PdmError::Corrupt { .. }), "{err}");
}

#[test]
fn truncation_mid_read_detected() {
    let disk = Disk::in_memory(1024);
    generate_to_disk(&disk, "in", Benchmark::Uniform, 2, Layout::single(4096)).unwrap();
    let mut rd = disk.open_reader::<u32>("in").unwrap();
    assert!(rd.next_record().unwrap().is_some());
    // Concurrent truncation to a record-aligned but shorter length: the
    // reader's declared length is now a lie and refills must fail loudly.
    disk.truncate("in", 1024).unwrap();
    rd.seek(2048);
    let err = rd.next_record().unwrap_err();
    assert!(matches!(err, PdmError::Corrupt { .. }), "{err}");
}

#[test]
fn double_create_errors_instead_of_clobbering() {
    let disk = Disk::in_memory(1024);
    disk.write_file::<u32>("out", &[1, 2, 3]).unwrap();
    let err = disk.create_writer::<u32>("out").unwrap_err();
    assert!(matches!(err, PdmError::AlreadyExists(_)), "{err}");
    // Original content survives.
    assert_eq!(disk.read_file::<u32>("out").unwrap(), vec![1, 2, 3]);
}

#[test]
fn fingerprints_catch_manufactured_corruption() {
    // If a sort (or a network transfer) dropped, duplicated or altered a
    // record, the multiset fingerprint comparison must notice.
    let good: Vec<u32> = (0..10_000u32)
        .map(|i| i.wrapping_mul(2654435761) % 100_000)
        .collect();
    let fp = fingerprint_slice(&good);

    let mut dropped = good.clone();
    dropped.pop();
    assert_ne!(fp, fingerprint_slice(&dropped));

    let mut duplicated = good.clone();
    duplicated.push(good[0]);
    assert_ne!(fp, fingerprint_slice(&duplicated));

    let mut flipped = good.clone();
    flipped[5000] ^= 1;
    assert_ne!(fp, fingerprint_slice(&flipped));

    let mut swapped = good.clone();
    swapped.swap(1, 9_000);
    assert_eq!(fp, fingerprint_slice(&swapped), "order must not matter");
}

#[test]
fn out_of_range_sampling_errors() {
    let disk = Disk::in_memory(1024);
    disk.write_file::<u32>("f", &[1, 2, 3]).unwrap();
    let mut rd = disk.open_reader::<u32>("f").unwrap();
    let err = rd.read_at(3).unwrap_err();
    assert!(matches!(err, PdmError::OutOfRange { .. }), "{err}");
}

#[test]
fn blocksize_smaller_than_record_rejected() {
    let disk = Disk::in_memory(8); // KeyPayload is 16 bytes
    let err = disk
        .create_writer::<pdm::record::KeyPayload>("x")
        .unwrap_err();
    assert!(matches!(err, PdmError::InvalidConfig(_)), "{err}");
    assert!(
        err.to_string().contains("smaller than record size"),
        "{err}"
    );
    assert!(
        !disk.exists("x"),
        "failed create must not leave a file behind"
    );
}
