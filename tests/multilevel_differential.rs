//! Grouped-vs-flat splitter differential.
//!
//! The two-level √p-group splitter selection (`hetsort::multilevel`)
//! must be *observationally equivalent* to the paper's flat root-gather
//! on every workload distribution, perf vector and cluster scheduler:
//! the concatenated sorted output is byte-identical (a sorted multiset
//! is unique), every node's final share stays within the PSRS theorem's
//! `2·expected + duplicates` bound, and on the blocking staged path the
//! thread and event runtimes agree bit-for-bit on the virtual clocks.
//!
//! Hand-rolled rather than `proptest`-driven because the offline
//! workspace carries no dev-dependencies (see `runtime_differential.rs`
//! for the idiom): the layout property sweep draws node counts from the
//! simulator's own [`sim::Pcg64`] under a fixed master seed, so a
//! failure reproduces exactly.

use cluster::{ClusterSpec, RuntimeKind, StorageKind};
use hetsort::{
    psrs_external, ExternalPsrsConfig, GroupLayout, LoadBalance, PerfVector, SplitterStrategy,
};
use sim::rng::Rng;
use sim::Pcg64;
use workloads::{generate_to_disk, max_duplicate_count, Benchmark, Layout};

/// Runs the external PSRS pipeline and returns each node's sorted output.
fn run(
    perf: &PerfVector,
    bench: Benchmark,
    n: u64,
    splitter: SplitterStrategy,
    runtime: RuntimeKind,
    streaming: bool,
) -> cluster::ClusterReport<Vec<u32>> {
    let layouts = Layout::cluster(&perf.shares(n));
    let spec = ClusterSpec::new(perf.as_slice().to_vec())
        .with_storage(StorageKind::Memory)
        .with_block_bytes(1024)
        .with_seed(0xD1FF)
        .with_runtime(runtime);
    let cfg = ExternalPsrsConfig::new(perf.clone(), 1 << 12)
        .with_tapes(4)
        .with_msg_records(128)
        .with_streaming_merge(streaming)
        .with_splitter(splitter);
    let bench_seed = 0xD1FF ^ n;
    cluster::run_cluster(&spec, async move |ctx| {
        generate_to_disk(&ctx.disk, "input", bench, bench_seed, layouts[ctx.rank]).unwrap();
        psrs_external::<u32>(ctx, &cfg).await.unwrap();
        ctx.disk.read_file::<u32>("output").unwrap()
    })
}

fn concat(report: &cluster::ClusterReport<Vec<u32>>) -> Vec<u32> {
    report
        .nodes
        .iter()
        .flat_map(|nd| nd.value.iter().copied())
        .collect()
}

/// The perf vectors under test: the paper's loaded cluster (p=4, two
/// groups of two) and a 9-node mixed-speed cluster (p=9, three groups
/// of three — the first non-trivial √p grid).
fn perf_vectors() -> [PerfVector; 2] {
    [
        PerfVector::paper_1144(),
        PerfVector::new(vec![1, 2, 1, 4, 1, 2, 4, 1, 2]),
    ]
}

#[test]
fn grouped_matches_flat_on_every_distribution() {
    for perf in &perf_vectors() {
        let n = perf.padded_size(1_000 * perf.p() as u64);
        for bench in Benchmark::ALL {
            let flat = run(
                perf,
                bench,
                n,
                SplitterStrategy::Flat,
                RuntimeKind::Threads,
                false,
            );
            let grouped = run(
                perf,
                bench,
                n,
                SplitterStrategy::grouped(),
                RuntimeKind::Threads,
                false,
            );
            let f = concat(&flat);
            let g = concat(&grouped);
            assert_eq!(f.len() as u64, n, "{bench:?} p={}: lost records", perf.p());
            assert!(
                g.windows(2).all(|w| w[0] <= w[1]),
                "{bench:?} p={}: grouped output not globally sorted",
                perf.p()
            );
            // A sorted multiset is unique, so the concatenations must be
            // byte-identical even though the per-node cuts may differ.
            assert_eq!(
                f,
                g,
                "{bench:?} p={}: grouped concatenation diverged from flat",
                perf.p()
            );

            // PSRS theorem: within 2x the proportional share plus the
            // duplicate multiplicity (+ the sampling-stride slack).
            let sizes: Vec<u64> = grouped
                .nodes
                .iter()
                .map(|nd| nd.value.len() as u64)
                .collect();
            let lb = LoadBalance::new(sizes, perf);
            let dups = max_duplicate_count(&g);
            let slack = 64 * perf.p() as u64;
            assert!(
                lb.within_psrs_bound(dups + slack),
                "{bench:?} p={}: grouped sizes {:?} exceed 2x+d bound (d={dups})",
                perf.p(),
                lb.sizes
            );

            // On the all-equal distribution the origin tie-break is what
            // spreads the run across nodes: flat sends every record to
            // partition 0, grouped must never do worse.
            if bench == Benchmark::Zero {
                let flat_sizes: Vec<u64> =
                    flat.nodes.iter().map(|nd| nd.value.len() as u64).collect();
                let flat_lb = LoadBalance::new(flat_sizes, perf);
                assert!(
                    lb.expansion() <= flat_lb.expansion() + 1e-9,
                    "Zero p={}: grouped expansion {} worse than flat {}",
                    perf.p(),
                    lb.expansion(),
                    flat_lb.expansion()
                );
            }
        }
    }
}

#[test]
fn grouped_agrees_across_runtimes() {
    // The grouped selection's subset collectives and the tie-broken
    // partitioning receive at deterministic program points, so on the
    // blocking staged path the schedulers agree on everything — output,
    // metered I/O, traffic, and the virtual clocks bit-for-bit.
    for perf in &perf_vectors() {
        let n = perf.padded_size(1_000 * perf.p() as u64);
        for bench in [Benchmark::Uniform, Benchmark::ZipfDuplicates] {
            let threads = run(
                perf,
                bench,
                n,
                SplitterStrategy::grouped(),
                RuntimeKind::Threads,
                false,
            );
            let events = run(
                perf,
                bench,
                n,
                SplitterStrategy::grouped(),
                RuntimeKind::Events,
                false,
            );
            for (rank, (a, b)) in threads.nodes.iter().zip(&events.nodes).enumerate() {
                assert_eq!(a.value, b.value, "{bench:?} node {rank}: output differs");
                assert_eq!(a.io, b.io, "{bench:?} node {rank}: IoSnapshot differs");
                assert_eq!(
                    a.sent_bytes, b.sent_bytes,
                    "{bench:?} node {rank}: traffic differs"
                );
                assert_eq!(a.finish, b.finish, "{bench:?} node {rank}: clock differs");
            }
            assert_eq!(
                threads.makespan,
                events.makespan,
                "{bench:?} p={}: makespan differs across runtimes",
                perf.p()
            );
        }
    }
}

#[test]
fn grouped_streamed_exchange_stays_correct() {
    // The streamed exchange-merge path composes with grouped selection:
    // tie-broken pivots drive the pump scan, credits stagger the fan-in.
    for perf in &perf_vectors() {
        let n = perf.padded_size(1_000 * perf.p() as u64);
        for bench in [Benchmark::Uniform, Benchmark::Zero] {
            let flat = run(
                perf,
                bench,
                n,
                SplitterStrategy::Flat,
                RuntimeKind::Events,
                true,
            );
            let grouped = run(
                perf,
                bench,
                n,
                SplitterStrategy::grouped(),
                RuntimeKind::Events,
                true,
            );
            assert_eq!(
                concat(&flat),
                concat(&grouped),
                "{bench:?} p={}: streamed grouped diverged",
                perf.p()
            );
        }
    }
}

#[test]
fn group_layout_never_exceeds_ceil_balanced_sizes() {
    // Property sweep: for every p the layout forms g = ceil(sqrt(p))
    // groups whose sizes are ceil-balanced — each group holds floor(p/g)
    // or ceil(p/g) members, contiguously, covering every rank once.
    let mut rng = Pcg64::new(0x6e0_0702);
    let check = |p: usize| {
        let layout = GroupLayout::new(p);
        let g = layout.groups();
        assert!(g * g >= p, "p={p}: g={g} too small");
        if g > 1 {
            assert!((g - 1) * (g - 1) < p, "p={p}: g={g} not minimal");
        }
        let floor = p / g;
        let ceil = p.div_ceil(g);
        let mut covered = 0usize;
        for gi in 0..g {
            let members = layout.members(gi);
            assert!(
                members.len() == floor || members.len() == ceil,
                "p={p} group {gi}: size {} outside [{floor}, {ceil}]",
                members.len()
            );
            assert_eq!(members.len(), layout.group_size(gi));
            assert_eq!(members[0], layout.leader(gi));
            for (offset, &rank) in members.iter().enumerate() {
                assert_eq!(rank, covered + offset, "p={p} group {gi}: not contiguous");
                assert_eq!(layout.group_of(rank), gi);
            }
            covered += members.len();
        }
        assert_eq!(covered, p, "p={p}: ranks not covered exactly once");
        assert_eq!(layout.max_group_size(), ceil);
    };
    for p in 1..=128 {
        check(p);
    }
    for _ in 0..500 {
        check(1 + (rng.next_u64() % 4096) as usize);
    }
}
