//! The full pipeline with 16-byte key+payload records — the sorters are
//! generic over the record type, not specialized to the paper's 4-byte
//! integers, and payloads must travel with their keys.

use cluster::{run_cluster, ClusterSpec};
use extsort::ExtSortConfig;
use hetsort::{psrs_external, ExternalPsrsConfig, PerfVector};
use pdm::record::KeyPayload;
use pdm::Disk;
use sim::rng::{Pcg64, Rng};

fn payload_for(key: u64) -> u64 {
    sim::SplitMix64::mix(key)
}

fn make_records(n: u64, seed: u64) -> Vec<KeyPayload> {
    let mut rng = Pcg64::new(seed);
    (0..n)
        .map(|_| {
            let key = rng.next_u64() % 100_000; // plenty of duplicate keys
            KeyPayload::new(key, payload_for(key))
        })
        .collect()
}

fn assert_payloads_intact(sorted: &[KeyPayload]) {
    for r in sorted {
        assert_eq!(r.payload, payload_for(r.key), "payload detached from key");
    }
}

#[test]
fn polyphase_sorts_wide_records() {
    let disk = Disk::in_memory(256);
    let data = make_records(5000, 1);
    disk.write_file("in", &data).unwrap();
    let cfg = ExtSortConfig::new(512).with_tapes(4);
    let report = extsort::polyphase_sort::<KeyPayload>(&disk, "in", "out", "pp", &cfg).unwrap();
    assert_eq!(report.records, 5000);
    let out = disk.read_file::<KeyPayload>("out").unwrap();
    assert!(out.windows(2).all(|w| w[0] <= w[1]));
    assert_payloads_intact(&out);
    assert_eq!(
        extsort::fingerprint_slice(&out),
        extsort::fingerprint_slice(&data)
    );
}

#[test]
fn external_psrs_sorts_wide_records_heterogeneous() {
    let perf = PerfVector::paper_1144();
    let n = perf.padded_size(8_000);
    let shares = perf.shares(n);
    let spec = ClusterSpec::new(vec![1, 1, 4, 4]).with_block_bytes(512);
    let cfg = ExternalPsrsConfig {
        perf: perf.clone(),
        mem_records: 512,
        tapes: 4,
        msg_records: 128,
        input: "input".into(),
        output: "output".into(),
        fused_redistribution: false,
        streaming_merge: false,
        pipeline: extsort::PipelineConfig::off(),
        kernel: extsort::SortKernel::default(),
        splitter: hetsort::SplitterStrategy::Flat,
    };
    let report = run_cluster(&spec, async move |ctx| {
        // Each node materializes its share of one deterministic stream.
        let offset: u64 = shares[..ctx.rank].iter().sum();
        let all = make_records(n, 9);
        ctx.disk
            .write_file(
                "input",
                &all[offset as usize..(offset + shares[ctx.rank]) as usize],
            )
            .unwrap();
        psrs_external::<KeyPayload>(ctx, &cfg).await.unwrap();
        ctx.disk.read_file::<KeyPayload>("output").unwrap()
    });
    let flat: Vec<KeyPayload> = report
        .nodes
        .iter()
        .flat_map(|nd| nd.value.iter().copied())
        .collect();
    assert_eq!(flat.len() as u64, n);
    assert!(flat.windows(2).all(|w| w[0] <= w[1]), "global order broken");
    assert_payloads_intact(&flat);
    assert_eq!(
        extsort::fingerprint_slice(&flat),
        extsort::fingerprint_slice(&make_records(n, 9))
    );
}
