//! Cross-crate integration tests: the full Algorithm 1 pipeline
//! (workload generation → cluster → external PSRS → verification) under
//! many configurations.

use cluster::{ClusterSpec, NetworkModel, StorageKind};
use hetsort::{run_trial, PerfVector, SortAlgo, TrialConfig};
use workloads::Benchmark;

fn base(hardware: Vec<u64>, declared: PerfVector, n: u64) -> TrialConfig {
    let mut cfg = TrialConfig::new(hardware, declared, n);
    cfg.mem_records = 1 << 12;
    cfg.tapes = 6;
    cfg.msg_records = 512;
    cfg.block_bytes = 1024;
    cfg.jitter = 0.0;
    cfg
}

#[test]
fn external_psrs_every_benchmark_homogeneous() {
    for bench in Benchmark::ALL {
        let mut cfg = base(vec![1; 4], PerfVector::homogeneous(4), 20_000);
        cfg.bench = bench;
        cfg.seed = 100 + bench.id() as u64;
        let result = run_trial(&cfg).expect("trial");
        assert!(result.verified, "{bench} failed verification");
    }
}

#[test]
fn external_psrs_every_benchmark_heterogeneous() {
    for bench in Benchmark::ALL {
        let mut cfg = base(vec![1, 1, 4, 4], PerfVector::paper_1144(), 20_000);
        cfg.bench = bench;
        cfg.seed = 200 + bench.id() as u64;
        let result = run_trial(&cfg).expect("trial");
        assert!(result.verified, "{bench} failed verification");
        assert!(
            result.balance.expansion() < 2.0 || bench.duplicate_heavy(),
            "{bench}: expansion {}",
            result.balance.expansion()
        );
    }
}

#[test]
fn assorted_perf_vectors() {
    for perf in [
        PerfVector::new(vec![8, 5, 3, 1]), // the paper's worked example
        PerfVector::new(vec![2, 3]),
        PerfVector::new(vec![1, 2, 3, 4, 5]),
        PerfVector::new(vec![7]), // single node
        PerfVector::new(vec![16, 1]),
    ] {
        let hardware = perf.as_slice().to_vec();
        let mut cfg = base(hardware, perf.clone(), 15_000);
        cfg.seed = perf.total();
        let result = run_trial(&cfg).expect("trial");
        assert!(result.verified, "perf {perf} failed");
        assert_eq!(result.balance.sizes.len(), perf.p());
    }
}

#[test]
fn file_backend_end_to_end() {
    let mut cfg = base(vec![1, 1, 4, 4], PerfVector::paper_1144(), 12_000);
    cfg.storage = StorageKind::Files;
    cfg.seed = 5;
    let result = run_trial(&cfg).expect("trial");
    assert!(result.verified);
}

#[test]
fn overpartitioning_external_all_benchmarks() {
    for bench in [Benchmark::Uniform, Benchmark::Staggered, Benchmark::Sorted] {
        let mut cfg = base(vec![1; 3], PerfVector::homogeneous(3), 9_000);
        cfg.bench = bench;
        cfg.algo = SortAlgo::OverpartitionExternal;
        cfg.seed = 300 + bench.id() as u64;
        let result = run_trial(&cfg).expect("trial");
        assert!(result.verified, "{bench} failed under overpartitioning");
    }
}

#[test]
fn declared_vector_beats_homogeneous_on_loaded_hardware() {
    // The central claim of the paper, end to end.
    let mut right = base(vec![1, 1, 4, 4], PerfVector::paper_1144(), 40_000);
    right.seed = 9;
    let mut wrong = base(vec![1, 1, 4, 4], PerfVector::homogeneous(4), 40_000);
    wrong.seed = 9;
    let t_right = run_trial(&right).expect("trial").time_secs;
    let t_wrong = run_trial(&wrong).expect("trial").time_secs;
    assert!(
        t_right < t_wrong,
        "correct vector {t_right:.3}s must beat homogeneous split {t_wrong:.3}s"
    );
}

#[test]
fn myrinet_vs_fast_ethernet_shape() {
    let mut fe = base(vec![1, 1, 4, 4], PerfVector::paper_1144(), 40_000);
    fe.seed = 11;
    let mut my = fe.clone();
    my.net = NetworkModel::myrinet();
    let t_fe = run_trial(&fe).expect("trial").time_secs;
    let t_my = run_trial(&my).expect("trial").time_secs;
    // Myrinet helps a little but must not transform the run time: the
    // algorithm moves each record at most once (paper's observation).
    assert!(t_my <= t_fe);
    assert!(
        t_fe / t_my < 1.7,
        "network-bound behaviour: {t_fe:.3} vs {t_my:.3}"
    );
}

#[test]
fn two_and_eight_node_clusters() {
    for p in [2usize, 8] {
        let mut cfg = base(vec![1; p], PerfVector::homogeneous(p), 16_000);
        cfg.seed = p as u64;
        let result = run_trial(&cfg).expect("trial");
        assert!(result.verified, "p = {p} failed");
    }
}

#[test]
fn in_core_psrs_matches_external_ownership() {
    // The in-core and external algorithms use the same pivot machinery,
    // so on identical data their final partition sizes must agree.
    use cluster::run_cluster;
    use workloads::{generate_block, Layout};

    let perf = PerfVector::paper_1144();
    let n = perf.padded_size(10_000);
    let shares = perf.shares(n);
    let layouts = Layout::cluster(&shares);
    let spec = ClusterSpec::new(vec![1, 1, 4, 4]).with_seed(13);
    let pv = perf.clone();
    let incore_sizes: Vec<u64> = run_cluster(&spec, async move |ctx| {
        let local = generate_block(Benchmark::Uniform, 13, layouts[ctx.rank]);
        hetsort::psrs_incore(ctx, &pv, local).await.sorted.len() as u64
    })
    .nodes
    .into_iter()
    .map(|nd| nd.value)
    .collect();

    let mut cfg = base(vec![1, 1, 4, 4], perf, n);
    cfg.seed = 13;
    let external = run_trial(&cfg).expect("trial");
    assert_eq!(external.balance.sizes, incore_sizes);
}
