//! Cross-crate property tests: for arbitrary inputs, perf vectors and
//! geometry, the sorters produce sorted permutations and respect the
//! paper's invariants.

#![cfg(feature = "proptests")]
// Requires the `proptest` dev-dependency, not vendored offline; see README.

use proptest::collection::vec;
use proptest::prelude::*;

use cluster::{run_cluster, ClusterSpec};
use extsort::{fingerprint_slice, ExtSortConfig, RunFormation};
use hetsort::{psrs_incore, PerfVector};
use pdm::Disk;

/// A small, valid perf vector.
fn perf_vector() -> impl Strategy<Value = PerfVector> {
    vec(1u64..6, 1..5).prop_map(PerfVector::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn polyphase_sorts_arbitrary_data(
        data in vec(any::<u32>(), 0..3000),
        mem in 16usize..200,
        tapes in 3usize..8,
        rf in prop_oneof![Just(RunFormation::ChunkSort), Just(RunFormation::ReplacementSelection)],
    ) {
        let block_bytes = 32; // 8 records per block
        let mem = mem.max(tapes * (block_bytes / 4));
        let disk = Disk::in_memory(block_bytes);
        disk.write_file("in", &data).unwrap();
        let cfg = ExtSortConfig::new(mem).with_tapes(tapes).with_run_formation(rf);
        let report = extsort::polyphase_sort::<u32>(&disk, "in", "out", "pp", &cfg).unwrap();
        prop_assert_eq!(report.records, data.len() as u64);
        let out = disk.read_file::<u32>("out").unwrap();
        prop_assert!(out.windows(2).all(|w| w[0] <= w[1]));
        prop_assert_eq!(fingerprint_slice(&out), fingerprint_slice(&data));
    }

    #[test]
    fn balanced_kway_sorts_arbitrary_data(
        data in vec(any::<u32>(), 0..2000),
        tapes in 4usize..8,
    ) {
        let disk = Disk::in_memory(32);
        disk.write_file("in", &data).unwrap();
        let cfg = ExtSortConfig::new(64).with_tapes(tapes);
        extsort::balanced_kway_sort::<u32>(&disk, "in", "out", "kw", &cfg).unwrap();
        let out = disk.read_file::<u32>("out").unwrap();
        prop_assert!(out.windows(2).all(|w| w[0] <= w[1]));
        prop_assert_eq!(fingerprint_slice(&out), fingerprint_slice(&data));
    }

    #[test]
    fn equation2_padding_is_tight_and_valid(
        perf in perf_vector(),
        n in 1u64..1_000_000,
    ) {
        let padded = perf.padded_size(n);
        prop_assert!(padded >= n);
        prop_assert!(perf.is_valid_size(padded));
        prop_assert!(padded - n < perf.granule());
        let shares = perf.shares(padded);
        prop_assert_eq!(shares.iter().sum::<u64>(), padded);
        // Shares proportional to perf exactly.
        for (i, &s) in shares.iter().enumerate() {
            prop_assert_eq!(s * perf.total(), padded * perf.get(i));
        }
    }

    #[test]
    fn incore_psrs_sorts_arbitrary_multisets(
        perf in perf_vector(),
        granules in 1u64..20,
        seed in any::<u64>(),
        key_space in 1u32..1000,
    ) {
        // Duplicate-rich data (small key space) over arbitrary perf.
        let n = perf.granule() * granules * 4;
        let shares = perf.shares(n);
        let spec = ClusterSpec::new(perf.as_slice().to_vec()).with_seed(seed);
        let pv = perf.clone();
        let report = run_cluster(&spec, async move |ctx| {
            use sim::rng::Rng;
            let local: Vec<u32> = (0..shares[ctx.rank])
                .map(|_| ctx.rng.next_u32() % key_space)
                .collect();
            let out = psrs_incore(ctx, &pv, local.clone()).await;
            (local, out.sorted)
        });
        let mut input: Vec<u32> = Vec::new();
        let mut output: Vec<u32> = Vec::new();
        for node in &report.nodes {
            input.extend(&node.value.0);
            output.extend(&node.value.1);
        }
        prop_assert!(output.windows(2).all(|w| w[0] <= w[1]));
        input.sort_unstable();
        prop_assert_eq!(input, output);
    }

    #[test]
    fn psrs_load_bound_holds_on_unique_keys(
        perf in perf_vector(),
        granules in 2u64..16,
        seed in any::<u64>(),
    ) {
        // With (nearly) unique keys, every node ends within 2x its share
        // plus the p·stride sampling slack (the theorem's constant).
        let n = perf.granule() * granules * 8;
        let shares = perf.shares(n);
        let spec = ClusterSpec::new(perf.as_slice().to_vec()).with_seed(seed);
        let pv = perf.clone();
        let report = run_cluster(&spec, async move |ctx| {
            use sim::rng::Rng;
            let local: Vec<u32> = (0..shares[ctx.rank]).map(|_| ctx.rng.next_u32()).collect();
            psrs_incore(ctx, &pv, local).await.sorted.len() as u64
        });
        let sizes: Vec<u64> = report.nodes.iter().map(|nd| nd.value).collect();
        for (i, (&got, &want)) in sizes.iter().zip(&perf.shares(n)).enumerate() {
            prop_assert!(
                got <= 2 * want + 64,
                "node {} got {} of expected {} (perf {})",
                i, got, want, perf
            );
        }
    }
}
