//! Opt-in stress tests (run with `cargo test --release -- --ignored`):
//! paper-scale inputs through the full pipeline, checking correctness and
//! the load-balance theorem at size.

use hetsort::{run_trial, PerfVector, SortAlgo, TrialConfig};
use workloads::Benchmark;

fn paper_scale_cfg(n: u64) -> TrialConfig {
    let mut cfg = TrialConfig::new(vec![1, 1, 4, 4], PerfVector::paper_1144(), n);
    cfg.bench = Benchmark::Uniform;
    cfg.mem_records = (n / 16) as usize;
    cfg.tapes = 16;
    cfg.msg_records = 8 * 1024;
    cfg.jitter = 0.0;
    cfg.seed = 20_02;
    cfg
}

#[test]
#[ignore = "paper-scale; run with --ignored in release mode"]
fn table3_size_heterogeneous_verified() {
    // The paper's full 2^24-record experiment, verification on.
    let result = run_trial(&paper_scale_cfg(1 << 24)).expect("trial");
    assert!(result.verified);
    assert!(
        result.balance.expansion() < 1.1,
        "expansion {}",
        result.balance.expansion()
    );
}

#[test]
#[ignore = "paper-scale; run with --ignored in release mode"]
fn fused_matches_plain_at_scale() {
    let mut plain = paper_scale_cfg(1 << 22);
    plain.verify = true;
    let mut fused = plain.clone();
    fused.fused = true;
    let a = run_trial(&plain).expect("plain");
    let b = run_trial(&fused).expect("fused");
    assert_eq!(a.balance.sizes, b.balance.sizes);
    assert!(b.total_io_blocks < a.total_io_blocks);
}

#[test]
#[ignore = "paper-scale; run with --ignored in release mode"]
fn every_benchmark_at_four_million() {
    for bench in Benchmark::ALL {
        let mut cfg = paper_scale_cfg(1 << 22);
        cfg.bench = bench;
        cfg.seed = 77 + bench.id() as u64;
        let result = run_trial(&cfg).expect("trial");
        assert!(result.verified, "{bench} failed at scale");
    }
}

#[test]
#[ignore = "paper-scale; run with --ignored in release mode"]
fn overpartitioning_at_scale() {
    let mut cfg = paper_scale_cfg(1 << 22);
    cfg.algo = SortAlgo::OverpartitionExternal;
    let result = run_trial(&cfg).expect("trial");
    assert!(result.verified);
}
