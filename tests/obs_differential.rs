//! Differential test: the phase-span tracer must be a pure observer.
//!
//! Runs the full external PSRS pipeline on the paper's loaded 4-node
//! cluster twice — tracing off and tracing on — and asserts the two runs
//! are observationally identical: byte-identical sorted outputs, identical
//! per-node I/O counters, identical virtual finish times and network
//! traffic. The tracer only *reads* the virtual clock; if it ever charged
//! time or drew jitter, the clocks (and therefore the deterministic
//! per-node RNG streams) would diverge and this test would catch it.

use cluster::{ClusterReport, ClusterSpec, StorageKind};
use hetsort::{psrs_external, ExternalPsrsConfig, PerfVector};
use workloads::{generate_to_disk, Benchmark, Layout};

const PHASES: [&str; 5] = ["local-sort", "pivots", "partition", "redistribute", "merge"];

fn run(tracing: bool) -> ClusterReport<Vec<u32>> {
    let declared = PerfVector::paper_1144();
    let hardware = vec![1u64, 1, 4, 4];
    let n = declared.padded_size(20_000);
    let shares = declared.shares(n);
    let layouts = Layout::cluster(&shares);
    let spec = ClusterSpec::new(hardware)
        .with_storage(StorageKind::Memory)
        .with_block_bytes(1024)
        .with_seed(42)
        .with_jitter(0.03) // non-zero so an extra RNG draw would be visible
        .with_tracing(tracing);
    let cfg = ExternalPsrsConfig {
        perf: declared,
        mem_records: 1 << 12,
        tapes: 6,
        msg_records: 512,
        input: "input".into(),
        output: "output".into(),
        fused_redistribution: false,
        streaming_merge: false,
        pipeline: extsort::PipelineConfig::off(),
        kernel: extsort::SortKernel::default(),
    };
    cluster::run_cluster(&spec, move |ctx| {
        generate_to_disk(
            &ctx.disk,
            "input",
            Benchmark::Uniform,
            42,
            layouts[ctx.rank],
        )
        .unwrap();
        ctx.reset_timing();
        psrs_external::<u32>(ctx, &cfg).unwrap();
        // Return the node's full sorted output so the byte-level
        // comparison happens outside the cluster.
        ctx.disk.read_file::<u32>("output").unwrap()
    })
}

#[test]
fn tracing_is_observationally_invisible() {
    let off = run(false);
    let on = run(true);

    assert_eq!(off.makespan, on.makespan, "makespan changed under tracing");
    assert_eq!(off.nodes.len(), on.nodes.len());
    for (a, b) in off.nodes.iter().zip(&on.nodes) {
        assert_eq!(a.value, b.value, "sorted output differs under tracing");
        assert_eq!(a.io, b.io, "I/O counters differ under tracing");
        assert_eq!(a.finish, b.finish, "finish time differs under tracing");
        assert_eq!(a.sent_bytes, b.sent_bytes, "traffic differs under tracing");
        assert_eq!(a.cpu_time, b.cpu_time);
        assert_eq!(a.io_time, b.io_time);
        assert_eq!(a.wait_time, b.wait_time);
        assert_eq!(a.phases.len(), b.phases.len());
        for (pa, pb) in a.phases.iter().zip(&b.phases) {
            assert_eq!(pa.name, pb.name);
            assert_eq!(pa.at, pb.at, "phase stamp {} moved under tracing", pa.name);
        }
    }

    // The untraced run must carry no observability data at all.
    for node in &off.nodes {
        assert!(node.obs.spans.is_empty());
        assert!(node.obs.metrics.is_empty());
    }

    // The traced run must show all five Algorithm 1 phases per node, and
    // both exporters must produce valid JSON containing them.
    let obs = on.cluster_obs();
    for node in &obs.nodes {
        let names: Vec<&str> = node.phases().map(|s| s.name).collect();
        for phase in PHASES {
            assert!(
                names.contains(&phase),
                "node {}: phase span {phase:?} missing (has {names:?})",
                node.node
            );
        }
        // Phase spans carry virtual time matching the recorded marks.
        let virt_end = node.virt_end();
        assert!(virt_end > 0.0);
    }
    let trace = obs::chrome_trace(&obs);
    obs::validate(&trace).expect("chrome trace must be valid JSON");
    let metrics = obs::metrics_json(&obs);
    obs::validate(&metrics).expect("metrics must be valid JSON");
    for phase in PHASES {
        assert!(trace.contains(phase), "trace missing {phase}");
        assert!(metrics.contains(phase), "metrics missing {phase}");
    }
}
