//! Differential test: the phase-span tracer must be a pure observer.
//!
//! Runs the full external PSRS pipeline on the paper's loaded 4-node
//! cluster twice — tracing off and tracing on — and asserts the two runs
//! are observationally identical: byte-identical sorted outputs, identical
//! per-node I/O counters, identical virtual finish times and network
//! traffic. The tracer only *reads* the virtual clock; if it ever charged
//! time or drew jitter, the clocks (and therefore the deterministic
//! per-node RNG streams) would diverge and this test would catch it.
//!
//! The same pairing covers the critical-path recorder: every exchange
//! variant (staged, fused, streamed, parallel merge) must keep tracing
//! invisible AND produce a blame attribution that tiles the run — blame
//! categories sum to the end-to-end virtual time within 1%, and a what-if
//! replay that zeroes no category reproduces it exactly.
//!
//! One carve-out, **thread runtime only**: the streamed exchange-merge
//! polls for arrivals, so under the thread-per-node scheduler its *virtual
//! timing* (not its data flow) is sensitive to real message timing; see
//! [`Variant::timing_exact`]. Its outputs, I/O counts and traffic are
//! still required to be bit-identical under tracing. Under the event
//! runtime the schedule is a pure function of virtual time, so even the
//! streamed variant must match bit-exactly — no tolerance — and the
//! blocking variants must agree bit-for-bit *across* the two runtimes.

use cluster::{ClusterReport, ClusterSpec, RuntimeKind, StorageKind};
use hetsort::{psrs_external, ExternalPsrsConfig, PerfVector};
use workloads::{generate_to_disk, Benchmark, Layout};

const PHASES: [&str; 5] = ["local-sort", "pivots", "partition", "redistribute", "merge"];

#[derive(Clone, Copy, Debug)]
struct Variant {
    name: &'static str,
    fused: bool,
    streaming: bool,
    merge_workers: usize,
    /// Whether virtual timing is exactly reproducible run-to-run **under
    /// the thread runtime**. The staged/fused/parmerge paths receive at
    /// deterministic program points (blocking, selective), so their clocks
    /// are bit-identical across runs on either scheduler. The streamed
    /// exchange-merge absorbs messages opportunistically (`try_recv_any`
    /// polling): its data flow and I/O counts are still deterministic, but
    /// on the thread runtime the interleaving of send charges and Lamport
    /// merges — and therefore the makespan — varies with real arrival
    /// timing, and the tracer's wall-clock overhead perturbs that race.
    /// The event runtime has no such race: scheduling is a pure function
    /// of virtual time, so every variant is timing-exact there.
    timing_exact: bool,
}

const VARIANTS: [Variant; 4] = [
    Variant {
        name: "staged",
        fused: false,
        streaming: false,
        merge_workers: 1,
        timing_exact: true,
    },
    Variant {
        name: "fused",
        fused: true,
        streaming: false,
        merge_workers: 1,
        timing_exact: true,
    },
    Variant {
        name: "streamed",
        fused: false,
        streaming: true,
        merge_workers: 1,
        timing_exact: false,
    },
    Variant {
        name: "parmerge",
        fused: false,
        streaming: false,
        merge_workers: 4,
        timing_exact: true,
    },
];

/// Tolerance on the streamed variant's makespan drift between runs under
/// the **thread runtime only**: the race only reassigns jitter draws and
/// reorders wait merges, so the drift stays within a few percent
/// (measured ~1%). The event runtime needs no tolerance anywhere.
const STREAMED_TIMING_TOL: f64 = 0.05;

/// Per-node result: the virtual clock at the end of the sort (before the
/// verification read of the output file) and the full sorted output.
type SortOutcome = (f64, Vec<u32>);

fn run(tracing: bool, v: Variant, runtime: RuntimeKind) -> ClusterReport<SortOutcome> {
    let declared = PerfVector::paper_1144();
    let hardware = vec![1u64, 1, 4, 4];
    let n = declared.padded_size(20_000);
    let shares = declared.shares(n);
    let layouts = Layout::cluster(&shares);
    let spec = ClusterSpec::new(hardware)
        .with_storage(StorageKind::Memory)
        .with_block_bytes(1024)
        .with_seed(42)
        .with_jitter(0.03) // non-zero so an extra RNG draw would be visible
        .with_tracing(tracing)
        .with_runtime(runtime);
    let pipeline = if v.merge_workers > 1 {
        extsort::PipelineConfig::off().with_merge_workers(v.merge_workers)
    } else {
        extsort::PipelineConfig::off()
    };
    let cfg = ExternalPsrsConfig {
        perf: declared,
        mem_records: 1 << 12,
        tapes: 6,
        msg_records: 512,
        input: "input".into(),
        output: "output".into(),
        fused_redistribution: v.fused,
        streaming_merge: v.streaming,
        pipeline,
        kernel: extsort::SortKernel::default(),
        splitter: hetsort::SplitterStrategy::Flat,
    };
    cluster::run_cluster(&spec, async move |ctx| {
        generate_to_disk(
            &ctx.disk,
            "input",
            Benchmark::Uniform,
            42,
            layouts[ctx.rank],
        )
        .unwrap();
        ctx.reset_timing().await;
        psrs_external::<u32>(ctx, &cfg).await.unwrap();
        // The sort's end-to-end virtual time, before the output read below
        // (which is test verification, not part of the algorithm's window).
        let sort_end = ctx.charger.now().as_secs();
        // Return the node's full sorted output so the byte-level
        // comparison happens outside the cluster.
        (sort_end, ctx.disk.read_file::<u32>("output").unwrap())
    })
}

/// The critical-path invariants every traced configuration must satisfy:
/// the path spans the full run, blame tiles it within 1%, and the
/// no-category what-if replay is exact.
fn assert_critpath_invariants(report: &ClusterReport<SortOutcome>, variant: &str) {
    let obs = report.cluster_obs();
    for node in &obs.nodes {
        assert!(
            !node.phase_costs.is_empty(),
            "{variant}: node {} recorded no phase costs under tracing",
            node.node
        );
    }
    let path = obs::critical_path(&obs)
        .unwrap_or_else(|| panic!("{variant}: no critical path from a traced run"));
    // End-to-end virtual time of the sort itself: the report makespan also
    // covers the harness's post-sort output read, so use the clock each
    // node snapshot right after `psrs_external` returned.
    let total = report
        .nodes
        .iter()
        .map(|n| n.value.0)
        .fold(0.0f64, f64::max);
    assert!(
        (path.makespan - total).abs() <= 0.01 * total,
        "{variant}: path makespan {:.6} vs end-to-end virtual time {total:.6}",
        path.makespan
    );
    let err = path.blame_sum_rel_err();
    assert!(
        err <= 0.01,
        "{variant}: blame must sum to the makespan within 1%, rel err {err:.3e}"
    );
    let replay = obs::estimate_without(&path, None);
    assert!(
        replay == path.makespan,
        "{variant}: no-category what-if replay must be exact: {replay} vs {}",
        path.makespan
    );
    // Segments tile [0, makespan] contiguously.
    let first = path.segments.first().unwrap();
    let last = path.segments.last().unwrap();
    assert!(first.start.abs() < 1e-9, "{variant}: path must start at 0");
    assert!(
        (last.end - path.makespan).abs() < 1e-9,
        "{variant}: path must end at the makespan"
    );
    for pair in path.segments.windows(2) {
        assert!(
            (pair[0].end - pair[1].start).abs() < 1e-9,
            "{variant}: segments must tile contiguously"
        );
    }
    let json = obs::critpath_json(&path);
    obs::validate(&json).unwrap_or_else(|e| panic!("{variant}: critpath JSON must be valid: {e}"));
}

#[test]
fn tracing_is_observationally_invisible() {
    let staged = VARIANTS[0];
    let off = run(false, staged, RuntimeKind::Threads);
    let on = run(true, staged, RuntimeKind::Threads);

    assert_eq!(off.makespan, on.makespan, "makespan changed under tracing");
    assert_eq!(off.nodes.len(), on.nodes.len());
    for (a, b) in off.nodes.iter().zip(&on.nodes) {
        assert_eq!(a.value, b.value, "sorted output differs under tracing");
        assert_eq!(a.io, b.io, "I/O counters differ under tracing");
        assert_eq!(a.finish, b.finish, "finish time differs under tracing");
        assert_eq!(a.sent_bytes, b.sent_bytes, "traffic differs under tracing");
        assert_eq!(a.cpu_time, b.cpu_time);
        assert_eq!(a.io_time, b.io_time);
        assert_eq!(a.wait_time, b.wait_time);
        assert_eq!(a.phases.len(), b.phases.len());
        for (pa, pb) in a.phases.iter().zip(&b.phases) {
            assert_eq!(pa.name, pb.name);
            assert_eq!(pa.at, pb.at, "phase stamp {} moved under tracing", pa.name);
        }
    }

    // The untraced run must carry no observability data at all — spans,
    // metrics AND the critical-path cost records.
    for node in &off.nodes {
        assert!(node.obs.spans.is_empty());
        assert!(node.obs.metrics.is_empty());
        assert!(node.obs.phase_costs.is_empty());
    }

    // The traced run must show all five Algorithm 1 phases per node, and
    // both exporters must produce valid JSON containing them.
    let obs = on.cluster_obs();
    for node in &obs.nodes {
        let names: Vec<&str> = node.phases().map(|s| s.name).collect();
        for phase in PHASES {
            assert!(
                names.contains(&phase),
                "node {}: phase span {phase:?} missing (has {names:?})",
                node.node
            );
        }
        // Phase spans carry virtual time matching the recorded marks.
        let virt_end = node.virt_end();
        assert!(virt_end > 0.0);
    }
    let trace = obs::chrome_trace(&obs);
    obs::validate(&trace).expect("chrome trace must be valid JSON");
    let metrics = obs::metrics_json(&obs);
    obs::validate(&metrics).expect("metrics must be valid JSON");
    for phase in PHASES {
        assert!(trace.contains(phase), "trace missing {phase}");
        assert!(metrics.contains(phase), "metrics missing {phase}");
    }

    assert_critpath_invariants(&on, staged.name);
}

#[test]
fn critpath_recorder_is_invisible_on_every_variant() {
    // The staged pair is exercised exhaustively above; here every exchange
    // variant gets the same off/on pairing (outputs, I/O, clocks) plus the
    // blame-tiling invariants on its traced run.
    for v in &VARIANTS[1..] {
        let off = run(false, *v, RuntimeKind::Threads);
        let on = run(true, *v, RuntimeKind::Threads);
        if v.timing_exact {
            assert_eq!(
                off.makespan, on.makespan,
                "{}: makespan changed under tracing",
                v.name
            );
        } else {
            let (a, b) = (off.makespan.as_secs(), on.makespan.as_secs());
            assert!(
                (a - b).abs() <= STREAMED_TIMING_TOL * a,
                "{}: makespan drifted beyond the race tolerance: {a:.6} vs {b:.6}",
                v.name
            );
        }
        for (a, b) in off.nodes.iter().zip(&on.nodes) {
            // Data flow is deterministic on EVERY variant: the sorted
            // bytes, the block-I/O counts and the network traffic must be
            // identical whether or not the profiler is on.
            assert_eq!(a.value.1, b.value.1, "{}: output differs", v.name);
            assert_eq!(a.io, b.io, "{}: I/O counters differ", v.name);
            assert_eq!(a.sent_bytes, b.sent_bytes, "{}: traffic differs", v.name);
            if v.timing_exact {
                assert_eq!(a.finish, b.finish, "{}: finish time differs", v.name);
            }
            assert!(a.obs.phase_costs.is_empty(), "{}: untraced costs", v.name);
        }
        assert_critpath_invariants(&on, v.name);
    }
}

#[test]
fn event_runtime_is_timing_exact_on_every_variant() {
    // Under the event scheduler there is no arrival race to tolerate:
    // every variant — including the streamed exchange-merge that needs
    // STREAMED_TIMING_TOL on the thread runtime — must be bit-exact
    // between its traced and untraced runs.
    for v in &VARIANTS {
        let off = run(false, *v, RuntimeKind::Events);
        let on = run(true, *v, RuntimeKind::Events);
        assert_eq!(
            off.makespan, on.makespan,
            "{}: makespan changed under tracing on the event runtime",
            v.name
        );
        for (a, b) in off.nodes.iter().zip(&on.nodes) {
            assert_eq!(a.value, b.value, "{}: outcome differs", v.name);
            assert_eq!(a.io, b.io, "{}: I/O counters differ", v.name);
            assert_eq!(a.finish, b.finish, "{}: finish time differs", v.name);
            assert_eq!(a.sent_bytes, b.sent_bytes, "{}: traffic differs", v.name);
            assert_eq!(a.cpu_time, b.cpu_time, "{}: cpu time differs", v.name);
            assert_eq!(a.wait_time, b.wait_time, "{}: wait time differs", v.name);
            for (pa, pb) in a.phases.iter().zip(&b.phases) {
                assert_eq!(pa.at, pb.at, "{}: phase stamp {} moved", v.name, pa.name);
            }
        }
        assert_critpath_invariants(&on, v.name);
    }
}

#[test]
fn runtimes_agree_bitwise_on_blocking_variants() {
    // The virtual-time arithmetic is transport-independent and the
    // blocking variants receive at deterministic program points, so the
    // thread and event schedulers must produce bit-identical clocks,
    // outputs and I/O on staged, fused and parmerge.
    for v in VARIANTS.iter().filter(|v| v.timing_exact) {
        let threads = run(false, *v, RuntimeKind::Threads);
        let events = run(false, *v, RuntimeKind::Events);
        assert_eq!(
            threads.makespan, events.makespan,
            "{}: makespan differs across runtimes",
            v.name
        );
        for (a, b) in threads.nodes.iter().zip(&events.nodes) {
            assert_eq!(a.value, b.value, "{}: outcome differs", v.name);
            assert_eq!(a.io, b.io, "{}: I/O counters differ", v.name);
            assert_eq!(a.finish, b.finish, "{}: finish time differs", v.name);
            assert_eq!(a.sent_bytes, b.sent_bytes, "{}: traffic differs", v.name);
            assert_eq!(a.cpu_time, b.cpu_time, "{}: cpu time differs", v.name);
            assert_eq!(a.wait_time, b.wait_time, "{}: wait time differs", v.name);
        }
    }
}

#[test]
fn runtimes_agree_on_streamed_data_flow() {
    // The streamed variant's data flow (bytes sorted, blocks moved,
    // traffic) is scheduler-independent; only its thread-runtime timing
    // races. So across runtimes: byte-identical outputs and IoSnapshots,
    // makespans within the documented thread-side tolerance.
    let streamed = VARIANTS[2];
    assert!(streamed.streaming && !streamed.timing_exact);
    let threads = run(false, streamed, RuntimeKind::Threads);
    let events = run(false, streamed, RuntimeKind::Events);
    for (a, b) in threads.nodes.iter().zip(&events.nodes) {
        assert_eq!(a.value.1, b.value.1, "streamed: output differs");
        assert_eq!(a.io, b.io, "streamed: I/O counters differ");
        assert_eq!(a.sent_bytes, b.sent_bytes, "streamed: traffic differs");
    }
    let (t, e) = (threads.makespan.as_secs(), events.makespan.as_secs());
    assert!(
        (t - e).abs() <= STREAMED_TIMING_TOL * t,
        "streamed: cross-runtime makespan drift beyond tolerance: {t:.6} vs {e:.6}"
    );
}
