//! Randomized cluster-shape differential: threads vs events.
//!
//! The fixed-shape suites (`obs_differential`, the runtime unit tests)
//! prove the thread and event schedulers agree on the paper's 1-1-4-4
//! cluster. This suite hand-rolls a shape fuzzer over the knobs that
//! change the communication pattern — node count, speed vector, message
//! size, workload distribution, jitter amplitude — and asserts for every
//! drawn shape that the two runtimes are observationally identical:
//! byte-identical sorted outputs, identical per-node [`pdm::IoSnapshot`]s
//! and traffic, and (for the blocking exchange variants) bit-identical
//! virtual clocks.
//!
//! Hand-rolled rather than `proptest`-driven because the offline
//! workspace carries no dev-dependencies: shapes are drawn from the
//! simulator's own [`sim::Pcg64`] under a fixed master seed, so a failure
//! reproduces exactly and prints the offending shape.

use cluster::{ClusterSpec, RuntimeKind, StorageKind};
use hetsort::{psrs_external, ExternalPsrsConfig, PerfVector};
use sim::rng::Rng;
use sim::Pcg64;
use workloads::{generate_to_disk, Benchmark, Layout};

/// One drawn cluster shape.
#[derive(Debug, Clone)]
struct Shape {
    perf: Vec<u64>,
    n_per_node: u64,
    msg_records: usize,
    tapes: usize,
    bench: Benchmark,
    seed: u64,
    jitter: f64,
    streaming: bool,
}

fn draw(rng: &mut Pcg64) -> Shape {
    let below = |rng: &mut Pcg64, n: u64| rng.next_u64() % n;
    let p = 2 + below(rng, 4) as usize; // 2..=5 nodes
    let perf: Vec<u64> = (0..p).map(|_| 1 + below(rng, 4)).collect(); // speeds 1..=4
    Shape {
        perf,
        n_per_node: 1_000 + below(rng, 3_000),
        msg_records: (32 << below(rng, 4)) as usize, // 32, 64, 128 or 256
        tapes: 4 + below(rng, 3) as usize,
        bench: Benchmark::from_id(below(rng, Benchmark::ALL.len() as u64) as usize),
        seed: rng.next_u64(),
        jitter: below(rng, 6) as f64 / 100.0, // 0.00..=0.05
        streaming: below(rng, 4) == 0,        // streamed exchange 1 time in 4
    }
}

/// Runs the external PSRS pipeline for `shape` on the given scheduler;
/// returns the cluster report carrying each node's sorted output bytes.
fn run(shape: &Shape, runtime: RuntimeKind) -> cluster::ClusterReport<Vec<u32>> {
    let declared = PerfVector::new(shape.perf.clone());
    let n = declared.padded_size(shape.n_per_node * shape.perf.len() as u64);
    let layouts = Layout::cluster(&declared.shares(n));
    let spec = ClusterSpec::new(shape.perf.clone())
        .with_storage(StorageKind::Memory)
        .with_block_bytes(1024)
        .with_seed(shape.seed)
        .with_jitter(shape.jitter)
        .with_runtime(runtime);
    let cfg = ExternalPsrsConfig::new(declared, 1 << 12)
        .with_tapes(shape.tapes)
        .with_msg_records(shape.msg_records)
        .with_streaming_merge(shape.streaming);
    let bench = shape.bench;
    let seed = shape.seed;
    cluster::run_cluster(&spec, async move |ctx| {
        generate_to_disk(&ctx.disk, "input", bench, seed, layouts[ctx.rank]).unwrap();
        psrs_external::<u32>(ctx, &cfg).await.unwrap();
        ctx.disk.read_file::<u32>("output").unwrap()
    })
}

#[test]
fn random_shapes_agree_across_runtimes() {
    let mut rng = Pcg64::new(0x5ee1_0702_2002);
    for case in 0..10 {
        let shape = draw(&mut rng);
        let threads = run(&shape, RuntimeKind::Threads);
        let events = run(&shape, RuntimeKind::Events);
        assert_eq!(threads.nodes.len(), events.nodes.len());
        let mut merged: Vec<u32> = Vec::new();
        for (rank, (a, b)) in threads.nodes.iter().zip(&events.nodes).enumerate() {
            // Observable behaviour is scheduler-independent on EVERY
            // shape: sorted bytes, metered I/O and network traffic.
            assert_eq!(
                a.value, b.value,
                "case {case} node {rank}: sorted output differs across runtimes\n{shape:?}"
            );
            assert_eq!(
                a.io, b.io,
                "case {case} node {rank}: IoSnapshot differs across runtimes\n{shape:?}"
            );
            assert_eq!(
                a.sent_bytes, b.sent_bytes,
                "case {case} node {rank}: traffic differs across runtimes\n{shape:?}"
            );
            if !shape.streaming {
                // Blocking exchanges receive at deterministic program
                // points, so the virtual clocks agree bit-for-bit too.
                assert_eq!(
                    a.finish, b.finish,
                    "case {case} node {rank}: finish time differs across runtimes\n{shape:?}"
                );
                assert_eq!(a.cpu_time, b.cpu_time, "case {case} node {rank}\n{shape:?}");
                assert_eq!(
                    a.wait_time, b.wait_time,
                    "case {case} node {rank}\n{shape:?}"
                );
            }
            merged.extend_from_slice(&a.value);
        }
        if !shape.streaming {
            assert_eq!(
                threads.makespan, events.makespan,
                "case {case}: makespan differs across runtimes\n{shape:?}"
            );
        }
        // And the run actually sorted: concatenated node outputs are the
        // globally ordered sequence of the padded input size.
        let declared = PerfVector::new(shape.perf.clone());
        let n = declared.padded_size(shape.n_per_node * shape.perf.len() as u64);
        assert_eq!(
            merged.len() as u64,
            n,
            "case {case}: lost records\n{shape:?}"
        );
        assert!(
            merged.windows(2).all(|w| w[0] <= w[1]),
            "case {case}: output not globally sorted\n{shape:?}"
        );
    }
}
