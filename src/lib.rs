//! Umbrella crate for the out-of-core heterogeneous sorting workspace.
//!
//! This package exists to host the cross-crate integration tests
//! (`tests/`) and the runnable examples (`examples/`); the library code
//! lives in the member crates:
//!
//! * [`sim`] — virtual time, deterministic PRNGs, statistics;
//! * [`pdm`] — the Parallel Disk Model storage substrate;
//! * [`extsort`] — sequential external sorting (polyphase et al.);
//! * [`cluster`] — the simulated heterogeneous message-passing cluster;
//! * [`hetsort`] — the paper's algorithms (external/in-core PSRS,
//!   overpartitioning) and the trial runner;
//! * [`workloads`] — the benchmark input distributions.

pub use cluster;
pub use extsort;
pub use hetsort;
pub use pdm;
pub use sim;
pub use workloads;
