/root/repo/target/debug/deps/wide_records-fd7591f108d08877.d: tests/wide_records.rs Cargo.toml

/root/repo/target/debug/deps/libwide_records-fd7591f108d08877.rmeta: tests/wide_records.rs Cargo.toml

tests/wide_records.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
