/root/repo/target/debug/deps/fig_msgsize-24c0b590bb8e4591.d: crates/bench/src/bin/fig_msgsize.rs Cargo.toml

/root/repo/target/debug/deps/libfig_msgsize-24c0b590bb8e4591.rmeta: crates/bench/src/bin/fig_msgsize.rs Cargo.toml

crates/bench/src/bin/fig_msgsize.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
