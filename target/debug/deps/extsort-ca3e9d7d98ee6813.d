/root/repo/target/debug/deps/extsort-ca3e9d7d98ee6813.d: crates/extsort/src/lib.rs crates/extsort/src/config.rs crates/extsort/src/distribution.rs crates/extsort/src/kernel.rs crates/extsort/src/kway.rs crates/extsort/src/loser_tree.rs crates/extsort/src/polyphase.rs crates/extsort/src/report.rs crates/extsort/src/run_formation.rs crates/extsort/src/stream.rs crates/extsort/src/striped.rs crates/extsort/src/verify.rs Cargo.toml

/root/repo/target/debug/deps/libextsort-ca3e9d7d98ee6813.rmeta: crates/extsort/src/lib.rs crates/extsort/src/config.rs crates/extsort/src/distribution.rs crates/extsort/src/kernel.rs crates/extsort/src/kway.rs crates/extsort/src/loser_tree.rs crates/extsort/src/polyphase.rs crates/extsort/src/report.rs crates/extsort/src/run_formation.rs crates/extsort/src/stream.rs crates/extsort/src/striped.rs crates/extsort/src/verify.rs Cargo.toml

crates/extsort/src/lib.rs:
crates/extsort/src/config.rs:
crates/extsort/src/distribution.rs:
crates/extsort/src/kernel.rs:
crates/extsort/src/kway.rs:
crates/extsort/src/loser_tree.rs:
crates/extsort/src/polyphase.rs:
crates/extsort/src/report.rs:
crates/extsort/src/run_formation.rs:
crates/extsort/src/stream.rs:
crates/extsort/src/striped.rs:
crates/extsort/src/verify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
