/root/repo/target/debug/deps/kernel_speedup-5532bd9867c3a52f.d: crates/bench/src/bin/kernel_speedup.rs

/root/repo/target/debug/deps/kernel_speedup-5532bd9867c3a52f: crates/bench/src/bin/kernel_speedup.rs

crates/bench/src/bin/kernel_speedup.rs:
