/root/repo/target/debug/deps/kernel_speedup-c73257839ce527a9.d: crates/bench/src/bin/kernel_speedup.rs Cargo.toml

/root/repo/target/debug/deps/libkernel_speedup-c73257839ce527a9.rmeta: crates/bench/src/bin/kernel_speedup.rs Cargo.toml

crates/bench/src/bin/kernel_speedup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
