/root/repo/target/debug/deps/hetsort-f3844aa3b56e5159.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/hetsort-f3844aa3b56e5159: crates/cli/src/main.rs

crates/cli/src/main.rs:
