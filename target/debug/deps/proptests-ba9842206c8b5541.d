/root/repo/target/debug/deps/proptests-ba9842206c8b5541.d: crates/core/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-ba9842206c8b5541.rmeta: crates/core/tests/proptests.rs Cargo.toml

crates/core/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
