/root/repo/target/debug/deps/hetsort-f3bc1a5a23ef07fe.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libhetsort-f3bc1a5a23ef07fe.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
