/root/repo/target/debug/deps/proptests-38caf0fe2c347db5.d: crates/extsort/tests/proptests.rs

/root/repo/target/debug/deps/proptests-38caf0fe2c347db5: crates/extsort/tests/proptests.rs

crates/extsort/tests/proptests.rs:
