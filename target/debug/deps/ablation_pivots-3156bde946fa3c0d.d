/root/repo/target/debug/deps/ablation_pivots-3156bde946fa3c0d.d: crates/bench/src/bin/ablation_pivots.rs

/root/repo/target/debug/deps/ablation_pivots-3156bde946fa3c0d: crates/bench/src/bin/ablation_pivots.rs

crates/bench/src/bin/ablation_pivots.rs:
