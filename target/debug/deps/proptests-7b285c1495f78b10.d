/root/repo/target/debug/deps/proptests-7b285c1495f78b10.d: crates/extsort/tests/proptests.rs

/root/repo/target/debug/deps/proptests-7b285c1495f78b10: crates/extsort/tests/proptests.rs

crates/extsort/tests/proptests.rs:
