/root/repo/target/debug/deps/wide_records-00ee9c075fc22870.d: tests/wide_records.rs

/root/repo/target/debug/deps/wide_records-00ee9c075fc22870: tests/wide_records.rs

tests/wide_records.rs:
