/root/repo/target/debug/deps/fig_heterogeneity-157b269ddaad49c2.d: crates/bench/src/bin/fig_heterogeneity.rs

/root/repo/target/debug/deps/fig_heterogeneity-157b269ddaad49c2: crates/bench/src/bin/fig_heterogeneity.rs

crates/bench/src/bin/fig_heterogeneity.rs:
