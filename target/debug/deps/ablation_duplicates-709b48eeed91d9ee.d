/root/repo/target/debug/deps/ablation_duplicates-709b48eeed91d9ee.d: crates/bench/src/bin/ablation_duplicates.rs Cargo.toml

/root/repo/target/debug/deps/libablation_duplicates-709b48eeed91d9ee.rmeta: crates/bench/src/bin/ablation_duplicates.rs Cargo.toml

crates/bench/src/bin/ablation_duplicates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
