/root/repo/target/debug/deps/table2-f9ab38a680aa089b.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-f9ab38a680aa089b: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
