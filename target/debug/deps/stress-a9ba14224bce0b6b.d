/root/repo/target/debug/deps/stress-a9ba14224bce0b6b.d: tests/stress.rs

/root/repo/target/debug/deps/stress-a9ba14224bce0b6b: tests/stress.rs

tests/stress.rs:
