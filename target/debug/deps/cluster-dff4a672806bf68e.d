/root/repo/target/debug/deps/cluster-dff4a672806bf68e.d: crates/cluster/src/lib.rs crates/cluster/src/bsp.rs crates/cluster/src/charge.rs crates/cluster/src/clock.rs crates/cluster/src/collectives.rs crates/cluster/src/comm.rs crates/cluster/src/cost.rs crates/cluster/src/net.rs crates/cluster/src/runtime.rs crates/cluster/src/spec.rs

/root/repo/target/debug/deps/libcluster-dff4a672806bf68e.rlib: crates/cluster/src/lib.rs crates/cluster/src/bsp.rs crates/cluster/src/charge.rs crates/cluster/src/clock.rs crates/cluster/src/collectives.rs crates/cluster/src/comm.rs crates/cluster/src/cost.rs crates/cluster/src/net.rs crates/cluster/src/runtime.rs crates/cluster/src/spec.rs

/root/repo/target/debug/deps/libcluster-dff4a672806bf68e.rmeta: crates/cluster/src/lib.rs crates/cluster/src/bsp.rs crates/cluster/src/charge.rs crates/cluster/src/clock.rs crates/cluster/src/collectives.rs crates/cluster/src/comm.rs crates/cluster/src/cost.rs crates/cluster/src/net.rs crates/cluster/src/runtime.rs crates/cluster/src/spec.rs

crates/cluster/src/lib.rs:
crates/cluster/src/bsp.rs:
crates/cluster/src/charge.rs:
crates/cluster/src/clock.rs:
crates/cluster/src/collectives.rs:
crates/cluster/src/comm.rs:
crates/cluster/src/cost.rs:
crates/cluster/src/net.rs:
crates/cluster/src/runtime.rs:
crates/cluster/src/spec.rs:
