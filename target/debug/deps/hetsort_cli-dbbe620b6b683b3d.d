/root/repo/target/debug/deps/hetsort_cli-dbbe620b6b683b3d.d: crates/cli/src/lib.rs

/root/repo/target/debug/deps/hetsort_cli-dbbe620b6b683b3d: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
