/root/repo/target/debug/deps/ablation_duplicates-1b1edd0e4b110a7b.d: crates/bench/src/bin/ablation_duplicates.rs

/root/repo/target/debug/deps/ablation_duplicates-1b1edd0e4b110a7b: crates/bench/src/bin/ablation_duplicates.rs

crates/bench/src/bin/ablation_duplicates.rs:
