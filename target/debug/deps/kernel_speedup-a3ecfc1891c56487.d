/root/repo/target/debug/deps/kernel_speedup-a3ecfc1891c56487.d: crates/bench/src/bin/kernel_speedup.rs

/root/repo/target/debug/deps/kernel_speedup-a3ecfc1891c56487: crates/bench/src/bin/kernel_speedup.rs

crates/bench/src/bin/kernel_speedup.rs:
