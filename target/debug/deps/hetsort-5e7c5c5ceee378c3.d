/root/repo/target/debug/deps/hetsort-5e7c5c5ceee378c3.d: crates/core/src/lib.rs crates/core/src/external.rs crates/core/src/incore.rs crates/core/src/metrics.rs crates/core/src/overpartition.rs crates/core/src/partition.rs crates/core/src/perf.rs crates/core/src/pivots.rs crates/core/src/runner.rs crates/core/src/sampling.rs

/root/repo/target/debug/deps/libhetsort-5e7c5c5ceee378c3.rlib: crates/core/src/lib.rs crates/core/src/external.rs crates/core/src/incore.rs crates/core/src/metrics.rs crates/core/src/overpartition.rs crates/core/src/partition.rs crates/core/src/perf.rs crates/core/src/pivots.rs crates/core/src/runner.rs crates/core/src/sampling.rs

/root/repo/target/debug/deps/libhetsort-5e7c5c5ceee378c3.rmeta: crates/core/src/lib.rs crates/core/src/external.rs crates/core/src/incore.rs crates/core/src/metrics.rs crates/core/src/overpartition.rs crates/core/src/partition.rs crates/core/src/perf.rs crates/core/src/pivots.rs crates/core/src/runner.rs crates/core/src/sampling.rs

crates/core/src/lib.rs:
crates/core/src/external.rs:
crates/core/src/incore.rs:
crates/core/src/metrics.rs:
crates/core/src/overpartition.rs:
crates/core/src/partition.rs:
crates/core/src/perf.rs:
crates/core/src/pivots.rs:
crates/core/src/runner.rs:
crates/core/src/sampling.rs:
