/root/repo/target/debug/deps/fig_speedup-90e1c88624939c2a.d: crates/bench/src/bin/fig_speedup.rs

/root/repo/target/debug/deps/fig_speedup-90e1c88624939c2a: crates/bench/src/bin/fig_speedup.rs

crates/bench/src/bin/fig_speedup.rs:
