/root/repo/target/debug/deps/ablation_seqsort-9282553cf67a6481.d: crates/bench/src/bin/ablation_seqsort.rs Cargo.toml

/root/repo/target/debug/deps/libablation_seqsort-9282553cf67a6481.rmeta: crates/bench/src/bin/ablation_seqsort.rs Cargo.toml

crates/bench/src/bin/ablation_seqsort.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
