/root/repo/target/debug/deps/ablation_fused-22e2e3a6cd84d093.d: crates/bench/src/bin/ablation_fused.rs

/root/repo/target/debug/deps/ablation_fused-22e2e3a6cd84d093: crates/bench/src/bin/ablation_fused.rs

crates/bench/src/bin/ablation_fused.rs:
