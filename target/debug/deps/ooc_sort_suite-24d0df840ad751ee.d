/root/repo/target/debug/deps/ooc_sort_suite-24d0df840ad751ee.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libooc_sort_suite-24d0df840ad751ee.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
