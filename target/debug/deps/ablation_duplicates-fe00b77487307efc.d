/root/repo/target/debug/deps/ablation_duplicates-fe00b77487307efc.d: crates/bench/src/bin/ablation_duplicates.rs

/root/repo/target/debug/deps/ablation_duplicates-fe00b77487307efc: crates/bench/src/bin/ablation_duplicates.rs

crates/bench/src/bin/ablation_duplicates.rs:
