/root/repo/target/debug/deps/pdm-f2605883594b93b3.d: crates/pdm/src/lib.rs crates/pdm/src/disk.rs crates/pdm/src/error.rs crates/pdm/src/file.rs crates/pdm/src/model.rs crates/pdm/src/params.rs crates/pdm/src/pipeline.rs crates/pdm/src/pool.rs crates/pdm/src/record.rs crates/pdm/src/stats.rs crates/pdm/src/stripe.rs crates/pdm/src/tempdir.rs Cargo.toml

/root/repo/target/debug/deps/libpdm-f2605883594b93b3.rmeta: crates/pdm/src/lib.rs crates/pdm/src/disk.rs crates/pdm/src/error.rs crates/pdm/src/file.rs crates/pdm/src/model.rs crates/pdm/src/params.rs crates/pdm/src/pipeline.rs crates/pdm/src/pool.rs crates/pdm/src/record.rs crates/pdm/src/stats.rs crates/pdm/src/stripe.rs crates/pdm/src/tempdir.rs Cargo.toml

crates/pdm/src/lib.rs:
crates/pdm/src/disk.rs:
crates/pdm/src/error.rs:
crates/pdm/src/file.rs:
crates/pdm/src/model.rs:
crates/pdm/src/params.rs:
crates/pdm/src/pipeline.rs:
crates/pdm/src/pool.rs:
crates/pdm/src/record.rs:
crates/pdm/src/stats.rs:
crates/pdm/src/stripe.rs:
crates/pdm/src/tempdir.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
