/root/repo/target/debug/deps/hetsort-b07ed60458fd35e6.d: crates/core/src/lib.rs crates/core/src/external.rs crates/core/src/incore.rs crates/core/src/metrics.rs crates/core/src/overpartition.rs crates/core/src/partition.rs crates/core/src/perf.rs crates/core/src/pivots.rs crates/core/src/runner.rs crates/core/src/sampling.rs

/root/repo/target/debug/deps/hetsort-b07ed60458fd35e6: crates/core/src/lib.rs crates/core/src/external.rs crates/core/src/incore.rs crates/core/src/metrics.rs crates/core/src/overpartition.rs crates/core/src/partition.rs crates/core/src/perf.rs crates/core/src/pivots.rs crates/core/src/runner.rs crates/core/src/sampling.rs

crates/core/src/lib.rs:
crates/core/src/external.rs:
crates/core/src/incore.rs:
crates/core/src/metrics.rs:
crates/core/src/overpartition.rs:
crates/core/src/partition.rs:
crates/core/src/perf.rs:
crates/core/src/pivots.rs:
crates/core/src/runner.rs:
crates/core/src/sampling.rs:
