/root/repo/target/debug/deps/proptests-2eb8b3245e6235b8.d: crates/extsort/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-2eb8b3245e6235b8.rmeta: crates/extsort/tests/proptests.rs Cargo.toml

crates/extsort/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
