/root/repo/target/debug/deps/workloads-7bf327160730e461.d: crates/workloads/src/lib.rs crates/workloads/src/dist.rs crates/workloads/src/gen.rs Cargo.toml

/root/repo/target/debug/deps/libworkloads-7bf327160730e461.rmeta: crates/workloads/src/lib.rs crates/workloads/src/dist.rs crates/workloads/src/gen.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/dist.rs:
crates/workloads/src/gen.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
