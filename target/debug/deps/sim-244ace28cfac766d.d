/root/repo/target/debug/deps/sim-244ace28cfac766d.d: crates/sim/src/lib.rs crates/sim/src/jitter.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/throttle.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/libsim-244ace28cfac766d.rlib: crates/sim/src/lib.rs crates/sim/src/jitter.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/throttle.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/libsim-244ace28cfac766d.rmeta: crates/sim/src/lib.rs crates/sim/src/jitter.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/throttle.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/jitter.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/throttle.rs:
crates/sim/src/time.rs:
