/root/repo/target/debug/deps/ablation_pivots-4dc26290fce42487.d: crates/bench/src/bin/ablation_pivots.rs Cargo.toml

/root/repo/target/debug/deps/libablation_pivots-4dc26290fce42487.rmeta: crates/bench/src/bin/ablation_pivots.rs Cargo.toml

crates/bench/src/bin/ablation_pivots.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
