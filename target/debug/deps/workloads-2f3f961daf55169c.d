/root/repo/target/debug/deps/workloads-2f3f961daf55169c.d: crates/workloads/src/lib.rs crates/workloads/src/dist.rs crates/workloads/src/gen.rs

/root/repo/target/debug/deps/libworkloads-2f3f961daf55169c.rlib: crates/workloads/src/lib.rs crates/workloads/src/dist.rs crates/workloads/src/gen.rs

/root/repo/target/debug/deps/libworkloads-2f3f961daf55169c.rmeta: crates/workloads/src/lib.rs crates/workloads/src/dist.rs crates/workloads/src/gen.rs

crates/workloads/src/lib.rs:
crates/workloads/src/dist.rs:
crates/workloads/src/gen.rs:
