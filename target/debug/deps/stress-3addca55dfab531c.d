/root/repo/target/debug/deps/stress-3addca55dfab531c.d: tests/stress.rs Cargo.toml

/root/repo/target/debug/deps/libstress-3addca55dfab531c.rmeta: tests/stress.rs Cargo.toml

tests/stress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
