/root/repo/target/debug/deps/hetsort_bench-626997c24597e7a6.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libhetsort_bench-626997c24597e7a6.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libhetsort_bench-626997c24597e7a6.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
