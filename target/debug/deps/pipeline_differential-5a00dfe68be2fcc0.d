/root/repo/target/debug/deps/pipeline_differential-5a00dfe68be2fcc0.d: crates/extsort/tests/pipeline_differential.rs

/root/repo/target/debug/deps/pipeline_differential-5a00dfe68be2fcc0: crates/extsort/tests/pipeline_differential.rs

crates/extsort/tests/pipeline_differential.rs:
