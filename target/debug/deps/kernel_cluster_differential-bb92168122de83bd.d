/root/repo/target/debug/deps/kernel_cluster_differential-bb92168122de83bd.d: crates/core/tests/kernel_cluster_differential.rs Cargo.toml

/root/repo/target/debug/deps/libkernel_cluster_differential-bb92168122de83bd.rmeta: crates/core/tests/kernel_cluster_differential.rs Cargo.toml

crates/core/tests/kernel_cluster_differential.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
