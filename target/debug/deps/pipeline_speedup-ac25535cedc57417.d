/root/repo/target/debug/deps/pipeline_speedup-ac25535cedc57417.d: crates/bench/src/bin/pipeline_speedup.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline_speedup-ac25535cedc57417.rmeta: crates/bench/src/bin/pipeline_speedup.rs Cargo.toml

crates/bench/src/bin/pipeline_speedup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
