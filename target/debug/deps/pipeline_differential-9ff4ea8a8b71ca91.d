/root/repo/target/debug/deps/pipeline_differential-9ff4ea8a8b71ca91.d: crates/extsort/tests/pipeline_differential.rs

/root/repo/target/debug/deps/pipeline_differential-9ff4ea8a8b71ca91: crates/extsort/tests/pipeline_differential.rs

crates/extsort/tests/pipeline_differential.rs:
