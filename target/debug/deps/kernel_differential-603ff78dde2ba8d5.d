/root/repo/target/debug/deps/kernel_differential-603ff78dde2ba8d5.d: crates/extsort/tests/kernel_differential.rs

/root/repo/target/debug/deps/kernel_differential-603ff78dde2ba8d5: crates/extsort/tests/kernel_differential.rs

crates/extsort/tests/kernel_differential.rs:
