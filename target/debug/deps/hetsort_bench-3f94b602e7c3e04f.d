/root/repo/target/debug/deps/hetsort_bench-3f94b602e7c3e04f.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhetsort_bench-3f94b602e7c3e04f.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
