/root/repo/target/debug/deps/ooc_sort_suite-09b5dda6587f9c40.d: src/lib.rs

/root/repo/target/debug/deps/ooc_sort_suite-09b5dda6587f9c40: src/lib.rs

src/lib.rs:
