/root/repo/target/debug/deps/fig_msgsize-2ac46ca1f638993f.d: crates/bench/src/bin/fig_msgsize.rs

/root/repo/target/debug/deps/fig_msgsize-2ac46ca1f638993f: crates/bench/src/bin/fig_msgsize.rs

crates/bench/src/bin/fig_msgsize.rs:
