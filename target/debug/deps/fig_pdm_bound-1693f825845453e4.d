/root/repo/target/debug/deps/fig_pdm_bound-1693f825845453e4.d: crates/bench/src/bin/fig_pdm_bound.rs

/root/repo/target/debug/deps/fig_pdm_bound-1693f825845453e4: crates/bench/src/bin/fig_pdm_bound.rs

crates/bench/src/bin/fig_pdm_bound.rs:
