/root/repo/target/debug/deps/pipeline_speedup-49972c1efde2b457.d: crates/bench/src/bin/pipeline_speedup.rs

/root/repo/target/debug/deps/pipeline_speedup-49972c1efde2b457: crates/bench/src/bin/pipeline_speedup.rs

crates/bench/src/bin/pipeline_speedup.rs:
