/root/repo/target/debug/deps/fig_speedup-a52cfb86fd5febb8.d: crates/bench/src/bin/fig_speedup.rs Cargo.toml

/root/repo/target/debug/deps/libfig_speedup-a52cfb86fd5febb8.rmeta: crates/bench/src/bin/fig_speedup.rs Cargo.toml

crates/bench/src/bin/fig_speedup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
