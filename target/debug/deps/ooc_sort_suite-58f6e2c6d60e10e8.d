/root/repo/target/debug/deps/ooc_sort_suite-58f6e2c6d60e10e8.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libooc_sort_suite-58f6e2c6d60e10e8.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
