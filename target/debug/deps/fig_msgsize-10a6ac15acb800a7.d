/root/repo/target/debug/deps/fig_msgsize-10a6ac15acb800a7.d: crates/bench/src/bin/fig_msgsize.rs

/root/repo/target/debug/deps/fig_msgsize-10a6ac15acb800a7: crates/bench/src/bin/fig_msgsize.rs

crates/bench/src/bin/fig_msgsize.rs:
