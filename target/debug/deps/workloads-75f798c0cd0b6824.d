/root/repo/target/debug/deps/workloads-75f798c0cd0b6824.d: crates/workloads/src/lib.rs crates/workloads/src/dist.rs crates/workloads/src/gen.rs

/root/repo/target/debug/deps/workloads-75f798c0cd0b6824: crates/workloads/src/lib.rs crates/workloads/src/dist.rs crates/workloads/src/gen.rs

crates/workloads/src/lib.rs:
crates/workloads/src/dist.rs:
crates/workloads/src/gen.rs:
