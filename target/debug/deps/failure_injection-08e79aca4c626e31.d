/root/repo/target/debug/deps/failure_injection-08e79aca4c626e31.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-08e79aca4c626e31: tests/failure_injection.rs

tests/failure_injection.rs:
