/root/repo/target/debug/deps/hetsort_cli-9eab0d9e85358e33.d: crates/cli/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhetsort_cli-9eab0d9e85358e33.rmeta: crates/cli/src/lib.rs Cargo.toml

crates/cli/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
