/root/repo/target/debug/deps/sim-9a6a8b5b99c0a2bd.d: crates/sim/src/lib.rs crates/sim/src/jitter.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/throttle.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/sim-9a6a8b5b99c0a2bd: crates/sim/src/lib.rs crates/sim/src/jitter.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/throttle.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/jitter.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/throttle.rs:
crates/sim/src/time.rs:
