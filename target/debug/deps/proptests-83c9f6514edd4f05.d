/root/repo/target/debug/deps/proptests-83c9f6514edd4f05.d: crates/workloads/tests/proptests.rs

/root/repo/target/debug/deps/proptests-83c9f6514edd4f05: crates/workloads/tests/proptests.rs

crates/workloads/tests/proptests.rs:
