/root/repo/target/debug/deps/properties-f3f4ce2da16cdf0e.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-f3f4ce2da16cdf0e.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
