/root/repo/target/debug/deps/ablation_fused-908dd372d4e1e3f9.d: crates/bench/src/bin/ablation_fused.rs

/root/repo/target/debug/deps/ablation_fused-908dd372d4e1e3f9: crates/bench/src/bin/ablation_fused.rs

crates/bench/src/bin/ablation_fused.rs:
