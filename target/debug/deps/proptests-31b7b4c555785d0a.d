/root/repo/target/debug/deps/proptests-31b7b4c555785d0a.d: crates/sim/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-31b7b4c555785d0a.rmeta: crates/sim/tests/proptests.rs Cargo.toml

crates/sim/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
