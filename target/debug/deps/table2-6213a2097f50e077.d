/root/repo/target/debug/deps/table2-6213a2097f50e077.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-6213a2097f50e077: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
