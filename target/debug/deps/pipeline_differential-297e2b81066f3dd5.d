/root/repo/target/debug/deps/pipeline_differential-297e2b81066f3dd5.d: crates/extsort/tests/pipeline_differential.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline_differential-297e2b81066f3dd5.rmeta: crates/extsort/tests/pipeline_differential.rs Cargo.toml

crates/extsort/tests/pipeline_differential.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
