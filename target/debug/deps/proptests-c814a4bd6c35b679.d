/root/repo/target/debug/deps/proptests-c814a4bd6c35b679.d: crates/pdm/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-c814a4bd6c35b679.rmeta: crates/pdm/tests/proptests.rs Cargo.toml

crates/pdm/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
