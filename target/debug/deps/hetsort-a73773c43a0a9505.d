/root/repo/target/debug/deps/hetsort-a73773c43a0a9505.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/hetsort-a73773c43a0a9505: crates/cli/src/main.rs

crates/cli/src/main.rs:
