/root/repo/target/debug/deps/extsort-c06d0ab94d5171ba.d: crates/extsort/src/lib.rs crates/extsort/src/config.rs crates/extsort/src/distribution.rs crates/extsort/src/kernel.rs crates/extsort/src/kway.rs crates/extsort/src/loser_tree.rs crates/extsort/src/polyphase.rs crates/extsort/src/report.rs crates/extsort/src/run_formation.rs crates/extsort/src/stream.rs crates/extsort/src/striped.rs crates/extsort/src/verify.rs

/root/repo/target/debug/deps/extsort-c06d0ab94d5171ba: crates/extsort/src/lib.rs crates/extsort/src/config.rs crates/extsort/src/distribution.rs crates/extsort/src/kernel.rs crates/extsort/src/kway.rs crates/extsort/src/loser_tree.rs crates/extsort/src/polyphase.rs crates/extsort/src/report.rs crates/extsort/src/run_formation.rs crates/extsort/src/stream.rs crates/extsort/src/striped.rs crates/extsort/src/verify.rs

crates/extsort/src/lib.rs:
crates/extsort/src/config.rs:
crates/extsort/src/distribution.rs:
crates/extsort/src/kernel.rs:
crates/extsort/src/kway.rs:
crates/extsort/src/loser_tree.rs:
crates/extsort/src/polyphase.rs:
crates/extsort/src/report.rs:
crates/extsort/src/run_formation.rs:
crates/extsort/src/stream.rs:
crates/extsort/src/striped.rs:
crates/extsort/src/verify.rs:
