/root/repo/target/debug/deps/ablation_pivots-70127e4084d11acd.d: crates/bench/src/bin/ablation_pivots.rs

/root/repo/target/debug/deps/ablation_pivots-70127e4084d11acd: crates/bench/src/bin/ablation_pivots.rs

crates/bench/src/bin/ablation_pivots.rs:
