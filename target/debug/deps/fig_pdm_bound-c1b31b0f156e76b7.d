/root/repo/target/debug/deps/fig_pdm_bound-c1b31b0f156e76b7.d: crates/bench/src/bin/fig_pdm_bound.rs

/root/repo/target/debug/deps/fig_pdm_bound-c1b31b0f156e76b7: crates/bench/src/bin/fig_pdm_bound.rs

crates/bench/src/bin/fig_pdm_bound.rs:
