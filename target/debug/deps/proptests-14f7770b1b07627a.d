/root/repo/target/debug/deps/proptests-14f7770b1b07627a.d: crates/workloads/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-14f7770b1b07627a.rmeta: crates/workloads/tests/proptests.rs Cargo.toml

crates/workloads/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
