/root/repo/target/debug/deps/workloads-6a5fdd0fc46e2212.d: crates/workloads/src/lib.rs crates/workloads/src/dist.rs crates/workloads/src/gen.rs Cargo.toml

/root/repo/target/debug/deps/libworkloads-6a5fdd0fc46e2212.rmeta: crates/workloads/src/lib.rs crates/workloads/src/dist.rs crates/workloads/src/gen.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/dist.rs:
crates/workloads/src/gen.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
