/root/repo/target/debug/deps/sim-681f11a79214d49a.d: crates/sim/src/lib.rs crates/sim/src/jitter.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/throttle.rs crates/sim/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libsim-681f11a79214d49a.rmeta: crates/sim/src/lib.rs crates/sim/src/jitter.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/throttle.rs crates/sim/src/time.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/jitter.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/throttle.rs:
crates/sim/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
