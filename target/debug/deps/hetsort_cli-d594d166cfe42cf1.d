/root/repo/target/debug/deps/hetsort_cli-d594d166cfe42cf1.d: crates/cli/src/lib.rs

/root/repo/target/debug/deps/libhetsort_cli-d594d166cfe42cf1.rlib: crates/cli/src/lib.rs

/root/repo/target/debug/deps/libhetsort_cli-d594d166cfe42cf1.rmeta: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
