/root/repo/target/debug/deps/ablation_seqsort-d0f73982f8108972.d: crates/bench/src/bin/ablation_seqsort.rs

/root/repo/target/debug/deps/ablation_seqsort-d0f73982f8108972: crates/bench/src/bin/ablation_seqsort.rs

crates/bench/src/bin/ablation_seqsort.rs:
