/root/repo/target/debug/deps/fig_speedup-5d5f3891b87b9a90.d: crates/bench/src/bin/fig_speedup.rs Cargo.toml

/root/repo/target/debug/deps/libfig_speedup-5d5f3891b87b9a90.rmeta: crates/bench/src/bin/fig_speedup.rs Cargo.toml

crates/bench/src/bin/fig_speedup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
