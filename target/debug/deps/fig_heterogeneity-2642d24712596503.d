/root/repo/target/debug/deps/fig_heterogeneity-2642d24712596503.d: crates/bench/src/bin/fig_heterogeneity.rs

/root/repo/target/debug/deps/fig_heterogeneity-2642d24712596503: crates/bench/src/bin/fig_heterogeneity.rs

crates/bench/src/bin/fig_heterogeneity.rs:
