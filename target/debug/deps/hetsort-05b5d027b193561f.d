/root/repo/target/debug/deps/hetsort-05b5d027b193561f.d: crates/core/src/lib.rs crates/core/src/external.rs crates/core/src/incore.rs crates/core/src/metrics.rs crates/core/src/overpartition.rs crates/core/src/partition.rs crates/core/src/perf.rs crates/core/src/pivots.rs crates/core/src/runner.rs crates/core/src/sampling.rs Cargo.toml

/root/repo/target/debug/deps/libhetsort-05b5d027b193561f.rmeta: crates/core/src/lib.rs crates/core/src/external.rs crates/core/src/incore.rs crates/core/src/metrics.rs crates/core/src/overpartition.rs crates/core/src/partition.rs crates/core/src/perf.rs crates/core/src/pivots.rs crates/core/src/runner.rs crates/core/src/sampling.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/external.rs:
crates/core/src/incore.rs:
crates/core/src/metrics.rs:
crates/core/src/overpartition.rs:
crates/core/src/partition.rs:
crates/core/src/perf.rs:
crates/core/src/pivots.rs:
crates/core/src/runner.rs:
crates/core/src/sampling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
