/root/repo/target/debug/deps/table1-71dc37be9c72a014.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-71dc37be9c72a014: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
