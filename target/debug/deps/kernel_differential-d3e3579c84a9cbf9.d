/root/repo/target/debug/deps/kernel_differential-d3e3579c84a9cbf9.d: crates/extsort/tests/kernel_differential.rs Cargo.toml

/root/repo/target/debug/deps/libkernel_differential-d3e3579c84a9cbf9.rmeta: crates/extsort/tests/kernel_differential.rs Cargo.toml

crates/extsort/tests/kernel_differential.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
