/root/repo/target/debug/deps/kernel_cluster_differential-ec0688f3d2336b85.d: crates/core/tests/kernel_cluster_differential.rs

/root/repo/target/debug/deps/kernel_cluster_differential-ec0688f3d2336b85: crates/core/tests/kernel_cluster_differential.rs

crates/core/tests/kernel_cluster_differential.rs:
