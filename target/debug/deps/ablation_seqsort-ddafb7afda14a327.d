/root/repo/target/debug/deps/ablation_seqsort-ddafb7afda14a327.d: crates/bench/src/bin/ablation_seqsort.rs

/root/repo/target/debug/deps/ablation_seqsort-ddafb7afda14a327: crates/bench/src/bin/ablation_seqsort.rs

crates/bench/src/bin/ablation_seqsort.rs:
