/root/repo/target/debug/deps/fig_pdm_bound-18b5c6bbd85e3b80.d: crates/bench/src/bin/fig_pdm_bound.rs Cargo.toml

/root/repo/target/debug/deps/libfig_pdm_bound-18b5c6bbd85e3b80.rmeta: crates/bench/src/bin/fig_pdm_bound.rs Cargo.toml

crates/bench/src/bin/fig_pdm_bound.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
