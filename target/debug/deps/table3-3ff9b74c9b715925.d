/root/repo/target/debug/deps/table3-3ff9b74c9b715925.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-3ff9b74c9b715925: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
