/root/repo/target/debug/deps/pipeline_differential-a6d40c00b4a51863.d: crates/extsort/tests/pipeline_differential.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline_differential-a6d40c00b4a51863.rmeta: crates/extsort/tests/pipeline_differential.rs Cargo.toml

crates/extsort/tests/pipeline_differential.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
