/root/repo/target/debug/deps/proptests-e8b42de64756086e.d: crates/sim/tests/proptests.rs

/root/repo/target/debug/deps/proptests-e8b42de64756086e: crates/sim/tests/proptests.rs

crates/sim/tests/proptests.rs:
