/root/repo/target/debug/deps/pipeline_speedup-3e1e56cb8b299acc.d: crates/bench/src/bin/pipeline_speedup.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline_speedup-3e1e56cb8b299acc.rmeta: crates/bench/src/bin/pipeline_speedup.rs Cargo.toml

crates/bench/src/bin/pipeline_speedup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
