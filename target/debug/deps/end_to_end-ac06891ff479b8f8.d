/root/repo/target/debug/deps/end_to_end-ac06891ff479b8f8.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-ac06891ff479b8f8: tests/end_to_end.rs

tests/end_to_end.rs:
