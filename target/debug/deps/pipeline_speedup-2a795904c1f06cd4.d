/root/repo/target/debug/deps/pipeline_speedup-2a795904c1f06cd4.d: crates/bench/src/bin/pipeline_speedup.rs

/root/repo/target/debug/deps/pipeline_speedup-2a795904c1f06cd4: crates/bench/src/bin/pipeline_speedup.rs

crates/bench/src/bin/pipeline_speedup.rs:
