/root/repo/target/debug/deps/pdm-e956d68dba2f5105.d: crates/pdm/src/lib.rs crates/pdm/src/disk.rs crates/pdm/src/error.rs crates/pdm/src/file.rs crates/pdm/src/model.rs crates/pdm/src/params.rs crates/pdm/src/pipeline.rs crates/pdm/src/pool.rs crates/pdm/src/record.rs crates/pdm/src/stats.rs crates/pdm/src/stripe.rs crates/pdm/src/tempdir.rs

/root/repo/target/debug/deps/pdm-e956d68dba2f5105: crates/pdm/src/lib.rs crates/pdm/src/disk.rs crates/pdm/src/error.rs crates/pdm/src/file.rs crates/pdm/src/model.rs crates/pdm/src/params.rs crates/pdm/src/pipeline.rs crates/pdm/src/pool.rs crates/pdm/src/record.rs crates/pdm/src/stats.rs crates/pdm/src/stripe.rs crates/pdm/src/tempdir.rs

crates/pdm/src/lib.rs:
crates/pdm/src/disk.rs:
crates/pdm/src/error.rs:
crates/pdm/src/file.rs:
crates/pdm/src/model.rs:
crates/pdm/src/params.rs:
crates/pdm/src/pipeline.rs:
crates/pdm/src/pool.rs:
crates/pdm/src/record.rs:
crates/pdm/src/stats.rs:
crates/pdm/src/stripe.rs:
crates/pdm/src/tempdir.rs:
