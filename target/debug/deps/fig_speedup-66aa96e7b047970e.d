/root/repo/target/debug/deps/fig_speedup-66aa96e7b047970e.d: crates/bench/src/bin/fig_speedup.rs

/root/repo/target/debug/deps/fig_speedup-66aa96e7b047970e: crates/bench/src/bin/fig_speedup.rs

crates/bench/src/bin/fig_speedup.rs:
