/root/repo/target/debug/deps/cluster-c103be107e4356c3.d: crates/cluster/src/lib.rs crates/cluster/src/bsp.rs crates/cluster/src/charge.rs crates/cluster/src/clock.rs crates/cluster/src/collectives.rs crates/cluster/src/comm.rs crates/cluster/src/cost.rs crates/cluster/src/net.rs crates/cluster/src/runtime.rs crates/cluster/src/spec.rs Cargo.toml

/root/repo/target/debug/deps/libcluster-c103be107e4356c3.rmeta: crates/cluster/src/lib.rs crates/cluster/src/bsp.rs crates/cluster/src/charge.rs crates/cluster/src/clock.rs crates/cluster/src/collectives.rs crates/cluster/src/comm.rs crates/cluster/src/cost.rs crates/cluster/src/net.rs crates/cluster/src/runtime.rs crates/cluster/src/spec.rs Cargo.toml

crates/cluster/src/lib.rs:
crates/cluster/src/bsp.rs:
crates/cluster/src/charge.rs:
crates/cluster/src/clock.rs:
crates/cluster/src/collectives.rs:
crates/cluster/src/comm.rs:
crates/cluster/src/cost.rs:
crates/cluster/src/net.rs:
crates/cluster/src/runtime.rs:
crates/cluster/src/spec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
