/root/repo/target/debug/deps/proptests-eb5b30e48313f776.d: crates/extsort/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-eb5b30e48313f776.rmeta: crates/extsort/tests/proptests.rs Cargo.toml

crates/extsort/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
