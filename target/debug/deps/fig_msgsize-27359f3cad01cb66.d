/root/repo/target/debug/deps/fig_msgsize-27359f3cad01cb66.d: crates/bench/src/bin/fig_msgsize.rs Cargo.toml

/root/repo/target/debug/deps/libfig_msgsize-27359f3cad01cb66.rmeta: crates/bench/src/bin/fig_msgsize.rs Cargo.toml

crates/bench/src/bin/fig_msgsize.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
