/root/repo/target/debug/deps/properties-b1cca1c9c9711456.d: tests/properties.rs

/root/repo/target/debug/deps/properties-b1cca1c9c9711456: tests/properties.rs

tests/properties.rs:
