/root/repo/target/debug/deps/extsort-927fefb43dbb06cd.d: crates/extsort/src/lib.rs crates/extsort/src/config.rs crates/extsort/src/distribution.rs crates/extsort/src/kernel.rs crates/extsort/src/kway.rs crates/extsort/src/loser_tree.rs crates/extsort/src/polyphase.rs crates/extsort/src/report.rs crates/extsort/src/run_formation.rs crates/extsort/src/stream.rs crates/extsort/src/striped.rs crates/extsort/src/verify.rs

/root/repo/target/debug/deps/libextsort-927fefb43dbb06cd.rlib: crates/extsort/src/lib.rs crates/extsort/src/config.rs crates/extsort/src/distribution.rs crates/extsort/src/kernel.rs crates/extsort/src/kway.rs crates/extsort/src/loser_tree.rs crates/extsort/src/polyphase.rs crates/extsort/src/report.rs crates/extsort/src/run_formation.rs crates/extsort/src/stream.rs crates/extsort/src/striped.rs crates/extsort/src/verify.rs

/root/repo/target/debug/deps/libextsort-927fefb43dbb06cd.rmeta: crates/extsort/src/lib.rs crates/extsort/src/config.rs crates/extsort/src/distribution.rs crates/extsort/src/kernel.rs crates/extsort/src/kway.rs crates/extsort/src/loser_tree.rs crates/extsort/src/polyphase.rs crates/extsort/src/report.rs crates/extsort/src/run_formation.rs crates/extsort/src/stream.rs crates/extsort/src/striped.rs crates/extsort/src/verify.rs

crates/extsort/src/lib.rs:
crates/extsort/src/config.rs:
crates/extsort/src/distribution.rs:
crates/extsort/src/kernel.rs:
crates/extsort/src/kway.rs:
crates/extsort/src/loser_tree.rs:
crates/extsort/src/polyphase.rs:
crates/extsort/src/report.rs:
crates/extsort/src/run_formation.rs:
crates/extsort/src/stream.rs:
crates/extsort/src/striped.rs:
crates/extsort/src/verify.rs:
