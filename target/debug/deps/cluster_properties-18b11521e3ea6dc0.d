/root/repo/target/debug/deps/cluster_properties-18b11521e3ea6dc0.d: crates/cluster/tests/cluster_properties.rs

/root/repo/target/debug/deps/cluster_properties-18b11521e3ea6dc0: crates/cluster/tests/cluster_properties.rs

crates/cluster/tests/cluster_properties.rs:
