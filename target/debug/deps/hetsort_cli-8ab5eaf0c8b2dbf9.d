/root/repo/target/debug/deps/hetsort_cli-8ab5eaf0c8b2dbf9.d: crates/cli/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhetsort_cli-8ab5eaf0c8b2dbf9.rmeta: crates/cli/src/lib.rs Cargo.toml

crates/cli/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
