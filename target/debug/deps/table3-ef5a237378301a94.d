/root/repo/target/debug/deps/table3-ef5a237378301a94.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-ef5a237378301a94: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
