/root/repo/target/debug/deps/proptests-a52aaf6b2b71210d.d: crates/pdm/tests/proptests.rs

/root/repo/target/debug/deps/proptests-a52aaf6b2b71210d: crates/pdm/tests/proptests.rs

crates/pdm/tests/proptests.rs:
