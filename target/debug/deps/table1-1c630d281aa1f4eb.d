/root/repo/target/debug/deps/table1-1c630d281aa1f4eb.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-1c630d281aa1f4eb: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
