/root/repo/target/debug/deps/kernel_speedup-7a7237ea68107c95.d: crates/bench/src/bin/kernel_speedup.rs Cargo.toml

/root/repo/target/debug/deps/libkernel_speedup-7a7237ea68107c95.rmeta: crates/bench/src/bin/kernel_speedup.rs Cargo.toml

crates/bench/src/bin/kernel_speedup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
