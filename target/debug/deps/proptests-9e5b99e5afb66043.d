/root/repo/target/debug/deps/proptests-9e5b99e5afb66043.d: crates/core/tests/proptests.rs

/root/repo/target/debug/deps/proptests-9e5b99e5afb66043: crates/core/tests/proptests.rs

crates/core/tests/proptests.rs:
