/root/repo/target/debug/deps/fig_heterogeneity-4fc7b56b9b6bea86.d: crates/bench/src/bin/fig_heterogeneity.rs Cargo.toml

/root/repo/target/debug/deps/libfig_heterogeneity-4fc7b56b9b6bea86.rmeta: crates/bench/src/bin/fig_heterogeneity.rs Cargo.toml

crates/bench/src/bin/fig_heterogeneity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
