/root/repo/target/debug/deps/hetsort_bench-5444289d3524c9b9.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhetsort_bench-5444289d3524c9b9.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
