/root/repo/target/debug/deps/hetsort_bench-30ecd93d3deb8191.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/hetsort_bench-30ecd93d3deb8191: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
