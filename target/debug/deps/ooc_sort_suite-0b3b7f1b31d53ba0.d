/root/repo/target/debug/deps/ooc_sort_suite-0b3b7f1b31d53ba0.d: src/lib.rs

/root/repo/target/debug/deps/libooc_sort_suite-0b3b7f1b31d53ba0.rlib: src/lib.rs

/root/repo/target/debug/deps/libooc_sort_suite-0b3b7f1b31d53ba0.rmeta: src/lib.rs

src/lib.rs:
