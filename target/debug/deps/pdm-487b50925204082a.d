/root/repo/target/debug/deps/pdm-487b50925204082a.d: crates/pdm/src/lib.rs crates/pdm/src/disk.rs crates/pdm/src/error.rs crates/pdm/src/file.rs crates/pdm/src/model.rs crates/pdm/src/params.rs crates/pdm/src/pipeline.rs crates/pdm/src/pool.rs crates/pdm/src/record.rs crates/pdm/src/stats.rs crates/pdm/src/stripe.rs crates/pdm/src/tempdir.rs

/root/repo/target/debug/deps/libpdm-487b50925204082a.rlib: crates/pdm/src/lib.rs crates/pdm/src/disk.rs crates/pdm/src/error.rs crates/pdm/src/file.rs crates/pdm/src/model.rs crates/pdm/src/params.rs crates/pdm/src/pipeline.rs crates/pdm/src/pool.rs crates/pdm/src/record.rs crates/pdm/src/stats.rs crates/pdm/src/stripe.rs crates/pdm/src/tempdir.rs

/root/repo/target/debug/deps/libpdm-487b50925204082a.rmeta: crates/pdm/src/lib.rs crates/pdm/src/disk.rs crates/pdm/src/error.rs crates/pdm/src/file.rs crates/pdm/src/model.rs crates/pdm/src/params.rs crates/pdm/src/pipeline.rs crates/pdm/src/pool.rs crates/pdm/src/record.rs crates/pdm/src/stats.rs crates/pdm/src/stripe.rs crates/pdm/src/tempdir.rs

crates/pdm/src/lib.rs:
crates/pdm/src/disk.rs:
crates/pdm/src/error.rs:
crates/pdm/src/file.rs:
crates/pdm/src/model.rs:
crates/pdm/src/params.rs:
crates/pdm/src/pipeline.rs:
crates/pdm/src/pool.rs:
crates/pdm/src/record.rs:
crates/pdm/src/stats.rs:
crates/pdm/src/stripe.rs:
crates/pdm/src/tempdir.rs:
