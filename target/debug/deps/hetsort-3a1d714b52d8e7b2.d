/root/repo/target/debug/deps/hetsort-3a1d714b52d8e7b2.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libhetsort-3a1d714b52d8e7b2.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
