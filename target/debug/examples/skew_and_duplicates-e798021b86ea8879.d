/root/repo/target/debug/examples/skew_and_duplicates-e798021b86ea8879.d: examples/skew_and_duplicates.rs

/root/repo/target/debug/examples/skew_and_duplicates-e798021b86ea8879: examples/skew_and_duplicates.rs

examples/skew_and_duplicates.rs:
