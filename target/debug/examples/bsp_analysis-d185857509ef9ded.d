/root/repo/target/debug/examples/bsp_analysis-d185857509ef9ded.d: examples/bsp_analysis.rs Cargo.toml

/root/repo/target/debug/examples/libbsp_analysis-d185857509ef9ded.rmeta: examples/bsp_analysis.rs Cargo.toml

examples/bsp_analysis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
