/root/repo/target/debug/examples/calibration-d9b9e60517948c7b.d: examples/calibration.rs Cargo.toml

/root/repo/target/debug/examples/libcalibration-d9b9e60517948c7b.rmeta: examples/calibration.rs Cargo.toml

examples/calibration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
