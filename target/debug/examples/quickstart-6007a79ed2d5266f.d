/root/repo/target/debug/examples/quickstart-6007a79ed2d5266f.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-6007a79ed2d5266f: examples/quickstart.rs

examples/quickstart.rs:
