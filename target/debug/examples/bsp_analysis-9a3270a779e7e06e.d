/root/repo/target/debug/examples/bsp_analysis-9a3270a779e7e06e.d: examples/bsp_analysis.rs

/root/repo/target/debug/examples/bsp_analysis-9a3270a779e7e06e: examples/bsp_analysis.rs

examples/bsp_analysis.rs:
