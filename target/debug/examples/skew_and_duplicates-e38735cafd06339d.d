/root/repo/target/debug/examples/skew_and_duplicates-e38735cafd06339d.d: examples/skew_and_duplicates.rs Cargo.toml

/root/repo/target/debug/examples/libskew_and_duplicates-e38735cafd06339d.rmeta: examples/skew_and_duplicates.rs Cargo.toml

examples/skew_and_duplicates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
