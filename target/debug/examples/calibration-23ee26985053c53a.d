/root/repo/target/debug/examples/calibration-23ee26985053c53a.d: examples/calibration.rs

/root/repo/target/debug/examples/calibration-23ee26985053c53a: examples/calibration.rs

examples/calibration.rs:
