/root/repo/target/debug/examples/measured_wallclock-b729f65c3818ff2a.d: examples/measured_wallclock.rs

/root/repo/target/debug/examples/measured_wallclock-b729f65c3818ff2a: examples/measured_wallclock.rs

examples/measured_wallclock.rs:
