/root/repo/target/debug/examples/measured_wallclock-9791c837c13ceb4e.d: examples/measured_wallclock.rs Cargo.toml

/root/repo/target/debug/examples/libmeasured_wallclock-9791c837c13ceb4e.rmeta: examples/measured_wallclock.rs Cargo.toml

examples/measured_wallclock.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
