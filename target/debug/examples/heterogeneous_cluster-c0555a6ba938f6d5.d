/root/repo/target/debug/examples/heterogeneous_cluster-c0555a6ba938f6d5.d: examples/heterogeneous_cluster.rs

/root/repo/target/debug/examples/heterogeneous_cluster-c0555a6ba938f6d5: examples/heterogeneous_cluster.rs

examples/heterogeneous_cluster.rs:
