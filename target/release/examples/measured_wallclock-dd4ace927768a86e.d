/root/repo/target/release/examples/measured_wallclock-dd4ace927768a86e.d: examples/measured_wallclock.rs

/root/repo/target/release/examples/measured_wallclock-dd4ace927768a86e: examples/measured_wallclock.rs

examples/measured_wallclock.rs:
