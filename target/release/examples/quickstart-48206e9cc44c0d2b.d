/root/repo/target/release/examples/quickstart-48206e9cc44c0d2b.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-48206e9cc44c0d2b: examples/quickstart.rs

examples/quickstart.rs:
