/root/repo/target/release/deps/workloads-154e69e0cf6e36e8.d: crates/workloads/src/lib.rs crates/workloads/src/dist.rs crates/workloads/src/gen.rs

/root/repo/target/release/deps/libworkloads-154e69e0cf6e36e8.rlib: crates/workloads/src/lib.rs crates/workloads/src/dist.rs crates/workloads/src/gen.rs

/root/repo/target/release/deps/libworkloads-154e69e0cf6e36e8.rmeta: crates/workloads/src/lib.rs crates/workloads/src/dist.rs crates/workloads/src/gen.rs

crates/workloads/src/lib.rs:
crates/workloads/src/dist.rs:
crates/workloads/src/gen.rs:
