/root/repo/target/release/deps/hetsort_bench-0eea06d3a6c693a2.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libhetsort_bench-0eea06d3a6c693a2.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libhetsort_bench-0eea06d3a6c693a2.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
