/root/repo/target/release/deps/ablation_fused-aec1b3999845220a.d: crates/bench/src/bin/ablation_fused.rs

/root/repo/target/release/deps/ablation_fused-aec1b3999845220a: crates/bench/src/bin/ablation_fused.rs

crates/bench/src/bin/ablation_fused.rs:
