/root/repo/target/release/deps/cluster-85211619797a7f1c.d: crates/cluster/src/lib.rs crates/cluster/src/bsp.rs crates/cluster/src/charge.rs crates/cluster/src/clock.rs crates/cluster/src/collectives.rs crates/cluster/src/comm.rs crates/cluster/src/cost.rs crates/cluster/src/net.rs crates/cluster/src/runtime.rs crates/cluster/src/spec.rs

/root/repo/target/release/deps/libcluster-85211619797a7f1c.rlib: crates/cluster/src/lib.rs crates/cluster/src/bsp.rs crates/cluster/src/charge.rs crates/cluster/src/clock.rs crates/cluster/src/collectives.rs crates/cluster/src/comm.rs crates/cluster/src/cost.rs crates/cluster/src/net.rs crates/cluster/src/runtime.rs crates/cluster/src/spec.rs

/root/repo/target/release/deps/libcluster-85211619797a7f1c.rmeta: crates/cluster/src/lib.rs crates/cluster/src/bsp.rs crates/cluster/src/charge.rs crates/cluster/src/clock.rs crates/cluster/src/collectives.rs crates/cluster/src/comm.rs crates/cluster/src/cost.rs crates/cluster/src/net.rs crates/cluster/src/runtime.rs crates/cluster/src/spec.rs

crates/cluster/src/lib.rs:
crates/cluster/src/bsp.rs:
crates/cluster/src/charge.rs:
crates/cluster/src/clock.rs:
crates/cluster/src/collectives.rs:
crates/cluster/src/comm.rs:
crates/cluster/src/cost.rs:
crates/cluster/src/net.rs:
crates/cluster/src/runtime.rs:
crates/cluster/src/spec.rs:
