/root/repo/target/release/deps/hetsort_cli-b7188a6c98af4d79.d: crates/cli/src/lib.rs

/root/repo/target/release/deps/libhetsort_cli-b7188a6c98af4d79.rlib: crates/cli/src/lib.rs

/root/repo/target/release/deps/libhetsort_cli-b7188a6c98af4d79.rmeta: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
