/root/repo/target/release/deps/ablation_seqsort-04a8fb3a287e8db4.d: crates/bench/src/bin/ablation_seqsort.rs

/root/repo/target/release/deps/ablation_seqsort-04a8fb3a287e8db4: crates/bench/src/bin/ablation_seqsort.rs

crates/bench/src/bin/ablation_seqsort.rs:
