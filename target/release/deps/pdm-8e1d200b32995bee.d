/root/repo/target/release/deps/pdm-8e1d200b32995bee.d: crates/pdm/src/lib.rs crates/pdm/src/disk.rs crates/pdm/src/error.rs crates/pdm/src/file.rs crates/pdm/src/model.rs crates/pdm/src/params.rs crates/pdm/src/pipeline.rs crates/pdm/src/pool.rs crates/pdm/src/record.rs crates/pdm/src/stats.rs crates/pdm/src/stripe.rs crates/pdm/src/tempdir.rs

/root/repo/target/release/deps/libpdm-8e1d200b32995bee.rlib: crates/pdm/src/lib.rs crates/pdm/src/disk.rs crates/pdm/src/error.rs crates/pdm/src/file.rs crates/pdm/src/model.rs crates/pdm/src/params.rs crates/pdm/src/pipeline.rs crates/pdm/src/pool.rs crates/pdm/src/record.rs crates/pdm/src/stats.rs crates/pdm/src/stripe.rs crates/pdm/src/tempdir.rs

/root/repo/target/release/deps/libpdm-8e1d200b32995bee.rmeta: crates/pdm/src/lib.rs crates/pdm/src/disk.rs crates/pdm/src/error.rs crates/pdm/src/file.rs crates/pdm/src/model.rs crates/pdm/src/params.rs crates/pdm/src/pipeline.rs crates/pdm/src/pool.rs crates/pdm/src/record.rs crates/pdm/src/stats.rs crates/pdm/src/stripe.rs crates/pdm/src/tempdir.rs

crates/pdm/src/lib.rs:
crates/pdm/src/disk.rs:
crates/pdm/src/error.rs:
crates/pdm/src/file.rs:
crates/pdm/src/model.rs:
crates/pdm/src/params.rs:
crates/pdm/src/pipeline.rs:
crates/pdm/src/pool.rs:
crates/pdm/src/record.rs:
crates/pdm/src/stats.rs:
crates/pdm/src/stripe.rs:
crates/pdm/src/tempdir.rs:
