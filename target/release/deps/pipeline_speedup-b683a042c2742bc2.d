/root/repo/target/release/deps/pipeline_speedup-b683a042c2742bc2.d: crates/bench/src/bin/pipeline_speedup.rs

/root/repo/target/release/deps/pipeline_speedup-b683a042c2742bc2: crates/bench/src/bin/pipeline_speedup.rs

crates/bench/src/bin/pipeline_speedup.rs:
