/root/repo/target/release/deps/fig_speedup-6ffca0eb44777863.d: crates/bench/src/bin/fig_speedup.rs

/root/repo/target/release/deps/fig_speedup-6ffca0eb44777863: crates/bench/src/bin/fig_speedup.rs

crates/bench/src/bin/fig_speedup.rs:
