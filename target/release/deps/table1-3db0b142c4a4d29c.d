/root/repo/target/release/deps/table1-3db0b142c4a4d29c.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-3db0b142c4a4d29c: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
