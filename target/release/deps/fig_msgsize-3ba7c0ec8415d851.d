/root/repo/target/release/deps/fig_msgsize-3ba7c0ec8415d851.d: crates/bench/src/bin/fig_msgsize.rs

/root/repo/target/release/deps/fig_msgsize-3ba7c0ec8415d851: crates/bench/src/bin/fig_msgsize.rs

crates/bench/src/bin/fig_msgsize.rs:
