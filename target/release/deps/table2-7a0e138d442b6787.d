/root/repo/target/release/deps/table2-7a0e138d442b6787.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-7a0e138d442b6787: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
