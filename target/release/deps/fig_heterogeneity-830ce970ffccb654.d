/root/repo/target/release/deps/fig_heterogeneity-830ce970ffccb654.d: crates/bench/src/bin/fig_heterogeneity.rs

/root/repo/target/release/deps/fig_heterogeneity-830ce970ffccb654: crates/bench/src/bin/fig_heterogeneity.rs

crates/bench/src/bin/fig_heterogeneity.rs:
