/root/repo/target/release/deps/ablation_duplicates-d071740e3ed066a6.d: crates/bench/src/bin/ablation_duplicates.rs

/root/repo/target/release/deps/ablation_duplicates-d071740e3ed066a6: crates/bench/src/bin/ablation_duplicates.rs

crates/bench/src/bin/ablation_duplicates.rs:
