/root/repo/target/release/deps/ooc_sort_suite-51092861d2efc16b.d: src/lib.rs

/root/repo/target/release/deps/libooc_sort_suite-51092861d2efc16b.rlib: src/lib.rs

/root/repo/target/release/deps/libooc_sort_suite-51092861d2efc16b.rmeta: src/lib.rs

src/lib.rs:
