/root/repo/target/release/deps/table3-a51901ac9acbc3fb.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-a51901ac9acbc3fb: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
