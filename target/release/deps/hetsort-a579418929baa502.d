/root/repo/target/release/deps/hetsort-a579418929baa502.d: crates/core/src/lib.rs crates/core/src/external.rs crates/core/src/incore.rs crates/core/src/metrics.rs crates/core/src/overpartition.rs crates/core/src/partition.rs crates/core/src/perf.rs crates/core/src/pivots.rs crates/core/src/runner.rs crates/core/src/sampling.rs

/root/repo/target/release/deps/libhetsort-a579418929baa502.rlib: crates/core/src/lib.rs crates/core/src/external.rs crates/core/src/incore.rs crates/core/src/metrics.rs crates/core/src/overpartition.rs crates/core/src/partition.rs crates/core/src/perf.rs crates/core/src/pivots.rs crates/core/src/runner.rs crates/core/src/sampling.rs

/root/repo/target/release/deps/libhetsort-a579418929baa502.rmeta: crates/core/src/lib.rs crates/core/src/external.rs crates/core/src/incore.rs crates/core/src/metrics.rs crates/core/src/overpartition.rs crates/core/src/partition.rs crates/core/src/perf.rs crates/core/src/pivots.rs crates/core/src/runner.rs crates/core/src/sampling.rs

crates/core/src/lib.rs:
crates/core/src/external.rs:
crates/core/src/incore.rs:
crates/core/src/metrics.rs:
crates/core/src/overpartition.rs:
crates/core/src/partition.rs:
crates/core/src/perf.rs:
crates/core/src/pivots.rs:
crates/core/src/runner.rs:
crates/core/src/sampling.rs:
