/root/repo/target/release/deps/ablation_pivots-8753c0fa33a5135a.d: crates/bench/src/bin/ablation_pivots.rs

/root/repo/target/release/deps/ablation_pivots-8753c0fa33a5135a: crates/bench/src/bin/ablation_pivots.rs

crates/bench/src/bin/ablation_pivots.rs:
