/root/repo/target/release/deps/kernel_speedup-ecf98c4b9a4a37b6.d: crates/bench/src/bin/kernel_speedup.rs

/root/repo/target/release/deps/kernel_speedup-ecf98c4b9a4a37b6: crates/bench/src/bin/kernel_speedup.rs

crates/bench/src/bin/kernel_speedup.rs:
