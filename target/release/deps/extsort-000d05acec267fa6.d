/root/repo/target/release/deps/extsort-000d05acec267fa6.d: crates/extsort/src/lib.rs crates/extsort/src/config.rs crates/extsort/src/distribution.rs crates/extsort/src/kernel.rs crates/extsort/src/kway.rs crates/extsort/src/loser_tree.rs crates/extsort/src/polyphase.rs crates/extsort/src/report.rs crates/extsort/src/run_formation.rs crates/extsort/src/stream.rs crates/extsort/src/striped.rs crates/extsort/src/verify.rs

/root/repo/target/release/deps/libextsort-000d05acec267fa6.rlib: crates/extsort/src/lib.rs crates/extsort/src/config.rs crates/extsort/src/distribution.rs crates/extsort/src/kernel.rs crates/extsort/src/kway.rs crates/extsort/src/loser_tree.rs crates/extsort/src/polyphase.rs crates/extsort/src/report.rs crates/extsort/src/run_formation.rs crates/extsort/src/stream.rs crates/extsort/src/striped.rs crates/extsort/src/verify.rs

/root/repo/target/release/deps/libextsort-000d05acec267fa6.rmeta: crates/extsort/src/lib.rs crates/extsort/src/config.rs crates/extsort/src/distribution.rs crates/extsort/src/kernel.rs crates/extsort/src/kway.rs crates/extsort/src/loser_tree.rs crates/extsort/src/polyphase.rs crates/extsort/src/report.rs crates/extsort/src/run_formation.rs crates/extsort/src/stream.rs crates/extsort/src/striped.rs crates/extsort/src/verify.rs

crates/extsort/src/lib.rs:
crates/extsort/src/config.rs:
crates/extsort/src/distribution.rs:
crates/extsort/src/kernel.rs:
crates/extsort/src/kway.rs:
crates/extsort/src/loser_tree.rs:
crates/extsort/src/polyphase.rs:
crates/extsort/src/report.rs:
crates/extsort/src/run_formation.rs:
crates/extsort/src/stream.rs:
crates/extsort/src/striped.rs:
crates/extsort/src/verify.rs:
