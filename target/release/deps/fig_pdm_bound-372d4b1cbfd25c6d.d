/root/repo/target/release/deps/fig_pdm_bound-372d4b1cbfd25c6d.d: crates/bench/src/bin/fig_pdm_bound.rs

/root/repo/target/release/deps/fig_pdm_bound-372d4b1cbfd25c6d: crates/bench/src/bin/fig_pdm_bound.rs

crates/bench/src/bin/fig_pdm_bound.rs:
