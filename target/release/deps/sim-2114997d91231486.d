/root/repo/target/release/deps/sim-2114997d91231486.d: crates/sim/src/lib.rs crates/sim/src/jitter.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/throttle.rs crates/sim/src/time.rs

/root/repo/target/release/deps/libsim-2114997d91231486.rlib: crates/sim/src/lib.rs crates/sim/src/jitter.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/throttle.rs crates/sim/src/time.rs

/root/repo/target/release/deps/libsim-2114997d91231486.rmeta: crates/sim/src/lib.rs crates/sim/src/jitter.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/throttle.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/jitter.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/throttle.rs:
crates/sim/src/time.rs:
