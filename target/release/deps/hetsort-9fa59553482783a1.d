/root/repo/target/release/deps/hetsort-9fa59553482783a1.d: crates/cli/src/main.rs

/root/repo/target/release/deps/hetsort-9fa59553482783a1: crates/cli/src/main.rs

crates/cli/src/main.rs:
