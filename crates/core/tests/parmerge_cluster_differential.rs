//! Cluster-level parallel-merge differential tests: Algorithm 1 with
//! range-partitioned merge workers must produce byte-identical per-node
//! outputs and identical non-seek block-I/O to the sequential merge, on
//! homogeneous and on the paper's `{1,1,4,4}` performance vector, across
//! every benchmark distribution. The worker count may only add metered
//! seeking reads (splitter probes, boundary prefills) and change how fast
//! the virtual clock runs — never what any node writes or transfers.

use cluster::{run_cluster, ClusterSpec};
use hetsort::{psrs_external, ExternalPsrsConfig, PerfVector};
use pdm::{Codec, IoBackend, IoSnapshot};
use workloads::{generate_to_disk, Benchmark, Layout};

/// Runs staged external PSRS on every node, returning per-node
/// (output, io-delta).
fn run_external(
    hardware: &[u64],
    perf: &PerfVector,
    bench: Benchmark,
    n: u64,
    merge_workers: usize,
    seed: u64,
) -> Vec<(Vec<u32>, IoSnapshot)> {
    let spec = ClusterSpec::new(hardware.to_vec()).with_block_bytes(64);
    let shares = perf.shares(n);
    let layouts = Layout::cluster(&shares);
    let cfg = ExternalPsrsConfig::new(perf.clone(), 256)
        .with_tapes(4)
        .with_msg_records(64)
        .with_merge_workers(merge_workers);
    let report = run_cluster(&spec, async move |ctx| {
        generate_to_disk(&ctx.disk, "input", bench, seed, layouts[ctx.rank]).unwrap();
        let before = ctx.disk.stats().snapshot();
        psrs_external::<u32>(ctx, &cfg).await.unwrap();
        let io = ctx.disk.stats().snapshot().delta(&before);
        (ctx.disk.read_file::<u32>("output").unwrap(), io)
    });
    report.nodes.into_iter().map(|nd| nd.value).collect()
}

/// The I/O net of seeking reads (probes/prefills are legitimately extra on
/// the parallel path; everything else must match exactly).
fn non_seek(io: &IoSnapshot) -> (u64, u64, u64, u64, u64) {
    (
        io.blocks_read - io.random_reads,
        io.bytes_read - io.seek_bytes,
        io.blocks_written,
        io.bytes_written,
        io.files_created,
    )
}

#[test]
fn staged_psrs_identical_all_distributions_both_perf_vectors() {
    for (hardware, perf) in [
        (vec![1u64, 1, 1, 1], PerfVector::homogeneous(4)),
        (vec![1u64, 1, 4, 4], PerfVector::paper_1144()),
    ] {
        let n = perf.padded_size(4_000);
        for bench in Benchmark::ALL {
            let base = run_external(&hardware, &perf, bench, n, 1, 41);
            for workers in [2usize, 4] {
                let par = run_external(&hardware, &perf, bench, n, workers, 41);
                for (rank, (b, p)) in base.iter().zip(&par).enumerate() {
                    assert_eq!(
                        b.0, p.0,
                        "{bench}, perf {perf:?}, workers {workers}, node {rank}: outputs differ"
                    );
                    assert_eq!(
                        non_seek(&b.1),
                        non_seek(&p.1),
                        "{bench}, perf {perf:?}, workers {workers}, node {rank}: non-seek I/O"
                    );
                }
            }
        }
    }
}

#[test]
fn codec_and_io_backend_identical_on_both_perf_vectors() {
    // The zero-copy codec and batched submission backend are node-disk
    // knobs: on homogeneous and on the paper's {1,1,4,4} cluster they must
    // leave every node's output bytes AND its *entire* metered I/O delta
    // (seeks included — the knobs don't add probes) untouched.
    let run = |hardware: &[u64], perf: &PerfVector, n: u64, codec: Codec, backend: IoBackend| {
        let spec = ClusterSpec::new(hardware.to_vec())
            .with_block_bytes(64)
            .with_codec(codec)
            .with_io_backend(backend);
        let shares = perf.shares(n);
        let layouts = Layout::cluster(&shares);
        let cfg = ExternalPsrsConfig::new(perf.clone(), 256)
            .with_tapes(4)
            .with_msg_records(64)
            .with_merge_workers(2);
        let report = run_cluster(&spec, async move |ctx| {
            generate_to_disk(
                &ctx.disk,
                "input",
                Benchmark::ZipfDuplicates,
                77,
                layouts[ctx.rank],
            )
            .unwrap();
            let before = ctx.disk.stats().snapshot();
            psrs_external::<u32>(ctx, &cfg).await.unwrap();
            let io = ctx.disk.stats().snapshot().delta(&before);
            (ctx.disk.read_file::<u32>("output").unwrap(), io)
        });
        report
            .nodes
            .into_iter()
            .map(|nd| nd.value)
            .collect::<Vec<_>>()
    };
    for (hardware, perf) in [
        (vec![1u64, 1, 1, 1], PerfVector::homogeneous(4)),
        (vec![1u64, 1, 4, 4], PerfVector::paper_1144()),
    ] {
        let n = perf.padded_size(4_000);
        let base = run(&hardware, &perf, n, Codec::Copying, IoBackend::Serial);
        for (codec, backend) in [
            (Codec::Copying, IoBackend::Batched),
            (Codec::ZeroCopy, IoBackend::Serial),
            (Codec::ZeroCopy, IoBackend::Batched),
        ] {
            let var = run(&hardware, &perf, n, codec, backend);
            for (rank, (b, v)) in base.iter().zip(&var).enumerate() {
                assert_eq!(
                    b.0, v.0,
                    "perf {perf:?}, {codec:?}/{backend:?}, node {rank}: outputs differ"
                );
                assert_eq!(
                    b.1, v.1,
                    "perf {perf:?}, {codec:?}/{backend:?}, node {rank}: I/O differs"
                );
            }
        }
    }
}

#[test]
fn merge_workers_compose_with_pipeline_and_fused_paths() {
    let perf = PerfVector::paper_1144();
    let n = perf.padded_size(5_000);
    let base = run_external(&[1, 1, 4, 4], &perf, Benchmark::Uniform, n, 1, 42);
    // Pipeline + merge workers together.
    let spec = ClusterSpec::new(vec![1u64, 1, 4, 4]).with_block_bytes(64);
    let shares = perf.shares(n);
    let layouts = Layout::cluster(&shares);
    for fused in [false, true] {
        let cfg = ExternalPsrsConfig::new(perf.clone(), 256)
            .with_tapes(4)
            .with_msg_records(64)
            .with_pipeline(extsort::PipelineConfig::with_workers(2).with_merge_workers(4))
            .with_fused_redistribution(fused);
        let layouts = layouts.clone();
        let report = run_cluster(&spec, async move |ctx| {
            generate_to_disk(
                &ctx.disk,
                "input",
                Benchmark::Uniform,
                42,
                layouts[ctx.rank],
            )
            .unwrap();
            psrs_external::<u32>(ctx, &cfg).await.unwrap();
            ctx.disk.read_file::<u32>("output").unwrap()
        });
        for (rank, (b, nd)) in base.iter().zip(&report.nodes).enumerate() {
            assert_eq!(b.0, nd.value, "fused {fused}, node {rank}: outputs differ");
        }
    }
}
