//! Cluster-level parallel-merge differential tests: Algorithm 1 with
//! range-partitioned merge workers must produce byte-identical per-node
//! outputs and identical non-seek block-I/O to the sequential merge, on
//! homogeneous and on the paper's `{1,1,4,4}` performance vector, across
//! every benchmark distribution. The worker count may only add metered
//! seeking reads (splitter probes, boundary prefills) and change how fast
//! the virtual clock runs — never what any node writes or transfers.

use cluster::{run_cluster, ClusterSpec};
use hetsort::{psrs_external, ExternalPsrsConfig, PerfVector};
use pdm::IoSnapshot;
use workloads::{generate_to_disk, Benchmark, Layout};

/// Runs staged external PSRS on every node, returning per-node
/// (output, io-delta).
fn run_external(
    hardware: &[u64],
    perf: &PerfVector,
    bench: Benchmark,
    n: u64,
    merge_workers: usize,
    seed: u64,
) -> Vec<(Vec<u32>, IoSnapshot)> {
    let spec = ClusterSpec::new(hardware.to_vec()).with_block_bytes(64);
    let shares = perf.shares(n);
    let layouts = Layout::cluster(&shares);
    let cfg = ExternalPsrsConfig::new(perf.clone(), 256)
        .with_tapes(4)
        .with_msg_records(64)
        .with_merge_workers(merge_workers);
    let report = run_cluster(&spec, move |ctx| {
        generate_to_disk(&ctx.disk, "input", bench, seed, layouts[ctx.rank]).unwrap();
        let before = ctx.disk.stats().snapshot();
        psrs_external::<u32>(ctx, &cfg).unwrap();
        let io = ctx.disk.stats().snapshot().delta(&before);
        (ctx.disk.read_file::<u32>("output").unwrap(), io)
    });
    report.nodes.into_iter().map(|nd| nd.value).collect()
}

/// The I/O net of seeking reads (probes/prefills are legitimately extra on
/// the parallel path; everything else must match exactly).
fn non_seek(io: &IoSnapshot) -> (u64, u64, u64, u64, u64) {
    (
        io.blocks_read - io.random_reads,
        io.bytes_read - io.seek_bytes,
        io.blocks_written,
        io.bytes_written,
        io.files_created,
    )
}

#[test]
fn staged_psrs_identical_all_distributions_both_perf_vectors() {
    for (hardware, perf) in [
        (vec![1u64, 1, 1, 1], PerfVector::homogeneous(4)),
        (vec![1u64, 1, 4, 4], PerfVector::paper_1144()),
    ] {
        let n = perf.padded_size(4_000);
        for bench in Benchmark::ALL {
            let base = run_external(&hardware, &perf, bench, n, 1, 41);
            for workers in [2usize, 4] {
                let par = run_external(&hardware, &perf, bench, n, workers, 41);
                for (rank, (b, p)) in base.iter().zip(&par).enumerate() {
                    assert_eq!(
                        b.0, p.0,
                        "{bench}, perf {perf:?}, workers {workers}, node {rank}: outputs differ"
                    );
                    assert_eq!(
                        non_seek(&b.1),
                        non_seek(&p.1),
                        "{bench}, perf {perf:?}, workers {workers}, node {rank}: non-seek I/O"
                    );
                }
            }
        }
    }
}

#[test]
fn merge_workers_compose_with_pipeline_and_fused_paths() {
    let perf = PerfVector::paper_1144();
    let n = perf.padded_size(5_000);
    let base = run_external(&[1, 1, 4, 4], &perf, Benchmark::Uniform, n, 1, 42);
    // Pipeline + merge workers together.
    let spec = ClusterSpec::new(vec![1u64, 1, 4, 4]).with_block_bytes(64);
    let shares = perf.shares(n);
    let layouts = Layout::cluster(&shares);
    for fused in [false, true] {
        let cfg = ExternalPsrsConfig::new(perf.clone(), 256)
            .with_tapes(4)
            .with_msg_records(64)
            .with_pipeline(extsort::PipelineConfig::with_workers(2).with_merge_workers(4))
            .with_fused_redistribution(fused);
        let layouts = layouts.clone();
        let report = run_cluster(&spec, move |ctx| {
            generate_to_disk(
                &ctx.disk,
                "input",
                Benchmark::Uniform,
                42,
                layouts[ctx.rank],
            )
            .unwrap();
            psrs_external::<u32>(ctx, &cfg).unwrap();
            ctx.disk.read_file::<u32>("output").unwrap()
        });
        for (rank, (b, nd)) in base.iter().zip(&report.nodes).enumerate() {
            assert_eq!(b.0, nd.value, "fused {fused}, node {rank}: outputs differ");
        }
    }
}
