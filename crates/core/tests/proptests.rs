//! Property tests for the PSRS building blocks: sampling grids, pivot
//! ranks, partition cuts and sublist assignment.

#![cfg(feature = "proptests")]
// Requires the `proptest` dev-dependency, not vendored offline; see README.

use proptest::collection::vec;
use proptest::prelude::*;

use cluster::{run_cluster, ClusterSpec};
use hetsort::overpartition::assign_sublists;
use hetsort::partition::{partition_file_streaming, partition_ranges};
use hetsort::pivots::select_pivots;
use hetsort::sampling::{
    quantile_positions, random_positions, regular_positions, regular_sample_count,
};
use hetsort::{psrs_external, ExternalPsrsConfig, PerfVector};
use pdm::Disk;
use workloads::{generate_to_disk, Benchmark, Layout};

fn perf_vector() -> impl Strategy<Value = PerfVector> {
    vec(1u64..6, 1..6).prop_map(PerfVector::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn regular_positions_are_valid_and_even(len in 0u64..10_000, count in 0u64..200) {
        let pos = regular_positions(len, count);
        if len == 0 || count == 0 {
            prop_assert!(pos.is_empty());
        } else {
            prop_assert_eq!(pos.len() as u64, count.min(len));
            prop_assert!(pos.iter().all(|&q| q < len));
            prop_assert!(pos.windows(2).all(|w| w[0] < w[1]));
            prop_assert_eq!(pos[0], 0, "segment-start placement");
            // Even spacing within rounding: gaps differ by at most 1.
            if pos.len() >= 2 {
                let gaps: Vec<u64> = pos.windows(2).map(|w| w[1] - w[0]).collect();
                let min = gaps.iter().min().unwrap();
                let max = gaps.iter().max().unwrap();
                prop_assert!(max - min <= 1, "gaps {:?}", gaps);
            }
        }
    }

    #[test]
    fn heterogeneous_sample_grid_alignment(perf in perf_vector()) {
        // The property the 2x theorem rests on: every boundary quantile
        // g_j = cum(j)/Σ lands exactly on every node's sample grid.
        let total = perf.total();
        for j in 1..perf.p() {
            for i in 0..perf.p() {
                let s_i = regular_sample_count(&perf, i);
                prop_assert_eq!((perf.cumulative(j) * s_i) % total, 0);
            }
        }
        // And the total sample size is (Σ perf)².
        let sum: u64 = (0..perf.p()).map(|i| regular_sample_count(&perf, i)).sum();
        prop_assert_eq!(sum, total * total);
    }

    #[test]
    fn pivots_are_sorted_subset(sample in vec(any::<u32>(), 1..500), perf in perf_vector()) {
        let mut sorted = sample.clone();
        sorted.sort_unstable();
        let pivots = select_pivots(&sorted, &perf);
        prop_assert_eq!(pivots.len(), perf.p() - 1);
        prop_assert!(pivots.windows(2).all(|w| w[0] <= w[1]));
        prop_assert!(pivots.iter().all(|p| sorted.contains(p)));
    }

    #[test]
    fn exact_sample_pivot_fractions(perf in perf_vector()) {
        // Feed the ideal sample 0..Σ² and check each pivot approximates its
        // cumulative-performance fraction within the p/2 centring offset.
        let total = perf.total();
        let p = perf.p() as u64;
        let sample: Vec<u32> = (0..(total * total) as u32).collect();
        let pivots = select_pivots(&sample, &perf);
        for (j, &pv) in pivots.iter().enumerate() {
            let expect = perf.cumulative(j + 1) * total;
            prop_assert!(
                (pv as u64) >= expect && (pv as u64) <= expect + p,
                "pivot {} = {} for boundary rank {}", j, pv, expect
            );
        }
    }

    #[test]
    fn partition_cuts_are_exhaustive_and_ordered(
        data in vec(any::<u32>(), 0..1000),
        pivots in vec(any::<u32>(), 0..9),
    ) {
        let mut data = data;
        data.sort_unstable();
        let mut pivots = pivots;
        pivots.sort_unstable();
        let cuts = partition_ranges(&data, &pivots);
        prop_assert_eq!(cuts.len(), pivots.len() + 2);
        prop_assert_eq!(cuts[0], 0);
        prop_assert_eq!(*cuts.last().unwrap(), data.len());
        prop_assert!(cuts.windows(2).all(|w| w[0] <= w[1]));
        // Semantics: partition j content obeys its pivot fences.
        for j in 0..pivots.len() + 1 {
            for &x in &data[cuts[j]..cuts[j + 1]] {
                if j > 0 {
                    prop_assert!(x > pivots[j - 1]);
                }
                if j < pivots.len() {
                    prop_assert!(x <= pivots[j]);
                }
            }
        }
    }

    #[test]
    fn streaming_partition_matches_ranges(
        data in vec(any::<u32>(), 0..600),
        pivots in vec(any::<u32>(), 0..6),
    ) {
        let mut data = data;
        data.sort_unstable();
        let mut pivots = pivots;
        pivots.sort_unstable();
        let disk = Disk::in_memory(32);
        disk.write_file("in", &data).unwrap();
        let sizes = partition_file_streaming(&disk, "in", "p", &pivots).unwrap();
        let cuts = partition_ranges(&data, &pivots);
        for j in 0..sizes.len() {
            prop_assert_eq!(sizes[j] as usize, cuts[j + 1] - cuts[j]);
            let content = disk.read_file::<u32>(&format!("p{j}")).unwrap();
            prop_assert_eq!(content.as_slice(), &data[cuts[j]..cuts[j + 1]]);
        }
    }

    #[test]
    fn random_positions_sorted_in_range(len in 1u64..5000, count in 0u64..100, seed in any::<u64>()) {
        let mut rng = sim::Pcg64::new(seed);
        let pos = random_positions(len, count, &mut rng);
        prop_assert_eq!(pos.len() as u64, count);
        prop_assert!(pos.iter().all(|&q| q < len));
        prop_assert!(pos.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn quantile_positions_interior_and_ordered(len in 0u64..5000, count in 0u64..50) {
        let pos = quantile_positions(len, count);
        prop_assert!(pos.iter().all(|&q| q < len.max(1)));
        prop_assert!(pos.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn assignment_is_contiguous_covering_and_fair(
        sizes in vec(0u64..1000, 1..64),
        perf in perf_vector(),
    ) {
        let owners = assign_sublists(&sizes, &perf);
        prop_assert_eq!(owners.len(), sizes.len());
        // Contiguous, starting at node 0, never skipping a node.
        prop_assert_eq!(owners[0], 0);
        prop_assert!(owners.windows(2).all(|w| w[1] == w[0] || w[1] == w[0] + 1));
        prop_assert!(owners.iter().all(|&o| o < perf.p()));
        // If there are at least p sublists, every node owns at least one.
        if sizes.len() >= perf.p() {
            let last = *owners.last().unwrap();
            prop_assert_eq!(last, perf.p() - 1, "last node starved");
        }
    }
}

proptest! {
    // Full-cluster runs are costly; a couple dozen random shapes still
    // exercises the credit protocol well beyond the fixed unit tests.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn streamed_exchange_merge_sorts_within_memory_bound(
        perf in perf_vector(),
        n_per_node in 64u64..1500,
        msg_records in 1usize..96,
        bench_ix in 0usize..Benchmark::ALL.len(),
        seed in any::<u64>(),
    ) {
        // Any perf vector, message size and distribution: the streamed
        // exchange-merge must terminate (the runtime's deadlock watchdog
        // backs this), produce the globally sorted permutation, and never
        // buffer more than `p · CHUNK_CREDITS · msg_records` records.
        let bench = Benchmark::ALL[bench_ix];
        let p = perf.p();
        let n = perf.padded_size(n_per_node * p as u64);
        let shares = perf.shares(n);
        let layouts = Layout::cluster(&shares);
        let spec = ClusterSpec::homogeneous(p).with_block_bytes(64);
        let cfg = ExternalPsrsConfig::new(perf.clone(), 256)
            .with_tapes(4)
            .with_msg_records(msg_records)
            .with_streaming_merge(true);
        let report = run_cluster(&spec, async move |ctx| {
            generate_to_disk(&ctx.disk, "input", bench, seed, layouts[ctx.rank]).unwrap();
            let outcome = psrs_external::<u32>(ctx, &cfg).await.unwrap();
            (ctx.disk.read_file::<u32>("output").unwrap(), outcome)
        });
        let bound = p as u64 * 2 * msg_records as u64; // CHUNK_CREDITS = 2
        let mut flat = Vec::new();
        for nd in &report.nodes {
            prop_assert!(
                nd.value.1.peak_buffered_records <= bound,
                "peak {} exceeds credit bound {}", nd.value.1.peak_buffered_records, bound
            );
            flat.extend_from_slice(&nd.value.0);
        }
        prop_assert_eq!(flat.len() as u64, n);
        prop_assert!(flat.windows(2).all(|w| w[0] <= w[1]), "output not sorted");
    }
}
