//! Streaming exchange-merge differential tests: the fused streaming path
//! must produce byte-identical per-node outputs to the staged Algorithm 1
//! reference on every benchmark distribution, both performance vectors and
//! across message sizes — while doing strictly less disk work (no
//! `xpsrs.recv*` staging files, fewer metered blocks) and respecting the
//! `p · CHUNK_CREDITS · msg_records` memory bound.

use cluster::{run_cluster, ClusterSpec};
use hetsort::{psrs_external, ExternalPsrsConfig, ExternalPsrsOutcome, PerfVector};
use pdm::IoSnapshot;
use workloads::{generate_to_disk, Benchmark, Layout};

/// Credits per (sender, receiver) pair; mirrors `CHUNK_CREDITS` in
/// `hetsort::external`, which the memory-bound assertion depends on.
const CHUNK_CREDITS: u64 = 2;

/// Runs external PSRS on every node, returning per-node
/// (output, io-delta, outcome).
fn run_external(
    hardware: &[u64],
    perf: &PerfVector,
    bench: Benchmark,
    n: u64,
    msg_records: usize,
    streaming: bool,
    seed: u64,
) -> Vec<(Vec<u32>, IoSnapshot, ExternalPsrsOutcome)> {
    let spec = ClusterSpec::new(hardware.to_vec()).with_block_bytes(64);
    let shares = perf.shares(n);
    let layouts = Layout::cluster(&shares);
    let cfg = ExternalPsrsConfig::new(perf.clone(), 256)
        .with_tapes(4)
        .with_msg_records(msg_records)
        .with_streaming_merge(streaming);
    let report = run_cluster(&spec, async move |ctx| {
        generate_to_disk(&ctx.disk, "input", bench, seed, layouts[ctx.rank]).unwrap();
        let before = ctx.disk.stats().snapshot();
        let outcome = psrs_external::<u32>(ctx, &cfg).await.unwrap();
        let io = ctx.disk.stats().snapshot().delta(&before);
        (ctx.disk.read_file::<u32>("output").unwrap(), io, outcome)
    });
    report.nodes.into_iter().map(|nd| nd.value).collect()
}

#[test]
fn streamed_identical_to_staged_all_distributions_and_message_sizes() {
    for (hardware, perf) in [
        (vec![1u64, 1, 1, 1], PerfVector::homogeneous(4)),
        (vec![1u64, 1, 4, 4], PerfVector::paper_1144()),
    ] {
        let n = perf.padded_size(3_000);
        for bench in Benchmark::ALL {
            for msg in [8usize, 64] {
                let staged = run_external(&hardware, &perf, bench, n, msg, false, 31);
                let streamed = run_external(&hardware, &perf, bench, n, msg, true, 31);
                for (rank, (s, f)) in staged.iter().zip(&streamed).enumerate() {
                    assert_eq!(
                        s.0, f.0,
                        "{bench}, perf {perf:?}, msg {msg}, node {rank}: outputs differ"
                    );
                    // The streamed path never touches disk between the sorted
                    // run file and the final output: strictly fewer metered
                    // blocks and no receive staging files.
                    let (sio, fio) = (&s.1, &f.1);
                    assert!(
                        fio.blocks_read + fio.blocks_written < sio.blocks_read + sio.blocks_written,
                        "{bench}, msg {msg}, node {rank}: streamed moved {} blocks, \
                         staged {}",
                        fio.blocks_read + fio.blocks_written,
                        sio.blocks_read + sio.blocks_written,
                    );
                    assert!(
                        fio.files_created < sio.files_created,
                        "{bench}, msg {msg}, node {rank}: streamed created {} files, \
                         staged {} (recv staging must be gone)",
                        fio.files_created,
                        sio.files_created,
                    );
                    // Memory bound from credit flow control.
                    let bound = perf.p() as u64 * CHUNK_CREDITS * msg as u64;
                    assert!(
                        f.2.peak_buffered_records <= bound,
                        "{bench}, msg {msg}, node {rank}: peak {} exceeds bound {bound}",
                        f.2.peak_buffered_records,
                    );
                    assert_eq!(s.2.peak_buffered_records, 0, "staged path buffers on disk");
                }
            }
        }
    }
}

#[test]
fn streamed_identical_to_fused_staged_variant() {
    // The half-way point — fused partition+redistribute but staged merge —
    // must also agree with the fully streamed pipeline.
    let perf = PerfVector::paper_1144();
    let n = perf.padded_size(4_000);
    let run = |streaming: bool, fused: bool| {
        let spec = ClusterSpec::new(vec![1, 1, 4, 4]).with_block_bytes(64);
        let shares = perf.shares(n);
        let layouts = Layout::cluster(&shares);
        let cfg = ExternalPsrsConfig::new(perf.clone(), 256)
            .with_tapes(4)
            .with_msg_records(64)
            .with_fused_redistribution(fused)
            .with_streaming_merge(streaming);
        let report = run_cluster(&spec, async move |ctx| {
            generate_to_disk(
                &ctx.disk,
                "input",
                Benchmark::ZipfDuplicates,
                32,
                layouts[ctx.rank],
            )
            .unwrap();
            psrs_external::<u32>(ctx, &cfg).await.unwrap();
            ctx.disk.read_file::<u32>("output").unwrap()
        });
        report
            .nodes
            .into_iter()
            .map(|nd| nd.value)
            .collect::<Vec<_>>()
    };
    let fused = run(false, true);
    let streamed = run(true, false);
    assert_eq!(fused, streamed, "fused-staged and streamed outputs differ");
    let flat: Vec<u32> = streamed.iter().flatten().copied().collect();
    assert_eq!(flat.len() as u64, n);
    assert!(flat.windows(2).all(|w| w[0] <= w[1]));
}
