//! Cluster-level kernel differential tests: Algorithm 1 with the radix
//! kernel must produce byte-identical per-node outputs and identical
//! metered block-I/O to the comparison kernel, on homogeneous and on the
//! paper's `{1,1,4,4}` heterogeneous performance vector, across every
//! benchmark distribution and across pipeline worker counts. The kernel
//! may only change how fast the virtual clock runs, never what any node
//! writes or transfers.

use cluster::{run_cluster, ClusterSpec};
use extsort::{PipelineConfig, SortKernel};
use hetsort::{psrs_external, psrs_incore_kernel, ExternalPsrsConfig, PerfVector, PivotStrategy};
use pdm::IoSnapshot;
use workloads::{generate_block, generate_to_disk, Benchmark, Layout};

/// Runs external PSRS on every node and returns per-node (output, io).
fn run_external(
    hardware: &[u64],
    perf: &PerfVector,
    bench: Benchmark,
    n: u64,
    kernel: SortKernel,
    workers: usize,
    seed: u64,
) -> Vec<(Vec<u32>, IoSnapshot)> {
    let spec = ClusterSpec::new(hardware.to_vec()).with_block_bytes(64);
    let shares = perf.shares(n);
    let layouts = Layout::cluster(&shares);
    let mut cfg = ExternalPsrsConfig::new(perf.clone(), 256)
        .with_tapes(4)
        .with_msg_records(64)
        .with_kernel(kernel);
    if workers > 1 {
        cfg = cfg.with_pipeline(PipelineConfig::with_workers(workers));
    }
    let report = run_cluster(&spec, async move |ctx| {
        generate_to_disk(&ctx.disk, "input", bench, seed, layouts[ctx.rank]).unwrap();
        let before = ctx.disk.stats().snapshot();
        psrs_external::<u32>(ctx, &cfg).await.unwrap();
        let io = ctx.disk.stats().snapshot().delta(&before);
        (ctx.disk.read_file::<u32>("output").unwrap(), io)
    });
    report.nodes.into_iter().map(|nd| nd.value).collect()
}

#[test]
fn external_psrs_kernels_identical_all_distributions_both_perf_vectors() {
    for (hardware, perf) in [
        (vec![1u64, 1, 1, 1], PerfVector::homogeneous(4)),
        (vec![1u64, 1, 4, 4], PerfVector::paper_1144()),
    ] {
        let n = perf.padded_size(4_000);
        for bench in Benchmark::ALL {
            let cmp = run_external(&hardware, &perf, bench, n, SortKernel::Comparison, 1, 21);
            let rad = run_external(&hardware, &perf, bench, n, SortKernel::Radix, 1, 21);
            for (rank, (c, r)) in cmp.iter().zip(&rad).enumerate() {
                assert_eq!(
                    c.0, r.0,
                    "{bench}, perf {perf:?}, node {rank}: outputs differ between kernels"
                );
                assert_eq!(
                    c.1, r.1,
                    "{bench}, perf {perf:?}, node {rank}: I/O differs between kernels"
                );
            }
        }
    }
}

#[test]
fn external_psrs_radix_stable_across_worker_counts() {
    let perf = PerfVector::paper_1144();
    let n = perf.padded_size(5_000);
    for bench in [Benchmark::Uniform, Benchmark::ZipfDuplicates] {
        let base = run_external(
            &[1, 1, 4, 4],
            &perf,
            bench,
            n,
            SortKernel::Comparison,
            1,
            22,
        );
        for workers in [1usize, 2, 4] {
            let rad = run_external(
                &[1, 1, 4, 4],
                &perf,
                bench,
                n,
                SortKernel::Radix,
                workers,
                22,
            );
            for (rank, (c, r)) in base.iter().zip(&rad).enumerate() {
                assert_eq!(c.0, r.0, "{bench}, workers {workers}, node {rank}: outputs");
                assert_eq!(c.1, r.1, "{bench}, workers {workers}, node {rank}: I/O");
            }
        }
    }
}

#[test]
fn incore_psrs_kernels_identical() {
    for perf in [PerfVector::homogeneous(4), PerfVector::paper_1144()] {
        let n = perf.padded_size(6_000);
        let shares = perf.shares(n);
        let layouts = Layout::cluster(&shares);
        let run = |kernel: SortKernel| {
            let spec = ClusterSpec::homogeneous(perf.p());
            let perf = perf.clone();
            let layouts = layouts.clone();
            let report = run_cluster(&spec, async move |ctx| {
                let local = generate_block(Benchmark::Staggered, 23, layouts[ctx.rank]);
                psrs_incore_kernel(ctx, &perf, local, PivotStrategy::RegularSampling, kernel)
                    .await
                    .sorted
            });
            report
                .nodes
                .into_iter()
                .map(|nd| nd.value)
                .collect::<Vec<_>>()
        };
        let cmp = run(SortKernel::Comparison);
        let rad = run(SortKernel::Radix);
        assert_eq!(cmp, rad, "in-core outputs differ between kernels");
        let flat: Vec<u32> = rad.iter().flatten().copied().collect();
        assert_eq!(flat.len() as u64, n);
        assert!(flat.windows(2).all(|w| w[0] <= w[1]));
    }
}
