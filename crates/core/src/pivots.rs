//! Pivot selection from the gathered sample.
//!
//! The designated node sorts the gathered candidates and takes `p − 1`
//! pivots at **cumulative-performance ranks**. With node `i` contributing
//! `perf[i]·Σ perf` segment-start samples (sample total `S = (Σ perf)²`),
//! every boundary quantile `g_j = cum_perf(j)/Σ perf` falls exactly on
//! every node's sample grid, so the sorted sample contains a tight cluster
//! of `p` samples (one per node) sitting at `g_j`, starting at rank
//! `cum_perf(j)·Σ perf`. The pivot is taken from the middle of that
//! cluster: rank `cum_perf(j)·Σ perf + p/2` — which in the homogeneous
//! case (`Σ perf = p`, `cum_perf(j) = j`) is the paper's classic
//! "`j·p + p/2`" position exactly.

use pdm::Record;

use crate::perf::PerfVector;

/// Selects `p − 1` pivots from a **sorted** sample, at ranks proportional
/// to cumulative performance.
///
/// The sample may be smaller than the ideal `(Σ perf)²` (tiny inputs);
/// ranks are scaled into the actual sample size, clamped to valid indices.
///
/// # Panics
/// Panics if the sample is unsorted (debug builds) or empty while `p > 1`.
pub fn select_pivots<R: Record>(sample_sorted: &[R], perf: &PerfVector) -> Vec<R> {
    let p = perf.p();
    if p <= 1 {
        return Vec::new();
    }
    assert!(
        !sample_sorted.is_empty(),
        "cannot pick pivots from an empty sample"
    );
    debug_assert!(
        sample_sorted.windows(2).all(|w| w[0] <= w[1]),
        "pivot sample must be sorted"
    );
    let s = sample_sorted.len() as u64;
    let total = perf.total();
    let ideal = total * total;
    (1..p)
        .map(|j| {
            // Boundary cluster start + centring offset, then scale into the
            // actual sample size if it differs from the ideal.
            let ideal_rank = perf.cumulative(j) * total + p as u64 / 2;
            let rank = if s == ideal {
                ideal_rank
            } else {
                ideal_rank * s / ideal
            };
            sample_sorted[rank.min(s - 1) as usize]
        })
        .collect()
}

/// Pivot selection for the **quantile** strategy (Cérin–Gaudiot, §3.2):
/// node `i` contributed `perf[i]·(p−1)` exact quantile ranks, so the sample
/// is an order-statistics estimate rather than an aligned grid; the pivot
/// for boundary fraction `g_j = cum_perf(j)/Σperf` is the standard quantile
/// estimator rank `⌈g_j·(S+1)⌉ − 1`.
///
/// In the homogeneous case this lands in the middle of the `p`-sample
/// cluster sitting at quantile `j/p` — the behaviour of the original
/// algorithm. Heterogeneous vectors lose the exact alignment (that is the
/// memory-for-precision trade of the variant), but stay within the 2×
/// theorem.
pub fn select_pivots_quantile<R: Record>(sample_sorted: &[R], perf: &PerfVector) -> Vec<R> {
    let p = perf.p();
    if p <= 1 {
        return Vec::new();
    }
    assert!(
        !sample_sorted.is_empty(),
        "cannot pick pivots from an empty sample"
    );
    debug_assert!(
        sample_sorted.windows(2).all(|w| w[0] <= w[1]),
        "pivot sample must be sorted"
    );
    let s = sample_sorted.len() as u64;
    let total = perf.total();
    (1..p)
        .map(|j| {
            let rank = (perf.cumulative(j) * (s + 1))
                .div_ceil(total)
                .saturating_sub(1);
            sample_sorted[rank.min(s - 1) as usize]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_matches_classic_psrs() {
        // p = 4, sample size p² = 16 (values 0..16): pivots at ranks
        // 4+2, 8+2, 12+2 = values 6, 10, 14.
        let sample: Vec<u32> = (0..16).collect();
        let pivots = select_pivots(&sample, &PerfVector::homogeneous(4));
        assert_eq!(pivots, vec![6, 10, 14]);
    }

    #[test]
    fn heterogeneous_ranks_follow_cumulative_perf() {
        // perf {1,1,4,4}: Σ=10, p=4, sample size Σ²=100 (values 0..100).
        // Boundaries at ranks 1·10+2, 2·10+2, 6·10+2 = 12, 22, 62.
        let sample: Vec<u32> = (0..100).collect();
        let pivots = select_pivots(&sample, &PerfVector::paper_1144());
        assert_eq!(pivots, vec![12, 22, 62]);
    }

    #[test]
    fn pivot_count_is_p_minus_one() {
        let sample: Vec<u32> = (0..100).collect();
        for p in 1..8 {
            let pv = PerfVector::homogeneous(p);
            assert_eq!(select_pivots(&sample, &pv).len(), p.saturating_sub(1));
        }
    }

    #[test]
    fn pivots_are_nondecreasing() {
        let sample: Vec<u32> = (0..55).map(|i| i * 7 % 100).collect();
        let mut sorted = sample.clone();
        sorted.sort_unstable();
        let pivots = select_pivots(&sorted, &PerfVector::new(vec![3, 1, 2]));
        assert!(pivots.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn undersized_sample_scales_ranks() {
        // Ideal sample 100 but only 10 candidates: ranks scale by 1/10.
        let sample: Vec<u32> = (0..10).collect();
        let pivots = select_pivots(&sample, &PerfVector::paper_1144());
        assert_eq!(pivots.len(), 3);
        assert!(pivots.windows(2).all(|w| w[0] <= w[1]));
        assert!(pivots.iter().all(|&x| x < 10));
        // The last boundary (cum perf 6 of 10) stays in the upper half.
        assert!(pivots[2] >= 5);
    }

    #[test]
    fn quantile_selector_centers_clusters_homogeneous() {
        // p = 4, sample (p−1)·p = 12 values 0..12, one 4-sample cluster per
        // interior quantile (ranks 0–3, 4–7, 8–11): each boundary pivot
        // must land inside its own cluster, not the next one.
        let sample: Vec<u32> = (0..12).collect();
        let pivots = select_pivots_quantile(&sample, &PerfVector::homogeneous(4));
        assert_eq!(pivots, vec![3, 6, 9]);
        assert!(pivots[0] < 4 && (4..8).contains(&pivots[1]) && (8..12).contains(&pivots[2]));
    }

    #[test]
    fn quantile_selector_heterogeneous_fractions() {
        // perf {1,1,4,4}: sample (p−1)·Σ = 30, boundary fractions 0.1,
        // 0.2, 0.6 → ranks ~2, ~5, ~17.
        let sample: Vec<u32> = (0..30).collect();
        let pivots = select_pivots_quantile(&sample, &PerfVector::paper_1144());
        assert!(pivots.windows(2).all(|w| w[0] <= w[1]));
        assert!((1..=4).contains(&pivots[0]), "pivot0 {}", pivots[0]);
        assert!((4..=8).contains(&pivots[1]), "pivot1 {}", pivots[1]);
        assert!((16..=20).contains(&pivots[2]), "pivot2 {}", pivots[2]);
    }

    #[test]
    fn single_node_needs_no_pivots() {
        let sample: Vec<u32> = vec![1, 2, 3];
        assert!(select_pivots(&sample, &PerfVector::homogeneous(1)).is_empty());
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_rejected() {
        let sample: Vec<u32> = vec![];
        let _ = select_pivots(&sample, &PerfVector::homogeneous(2));
    }
}
