//! Sampling strategies for pivot candidates.
//!
//! **Regular sampling** (PSRS, the paper's choice): node `i` takes
//! `s_i = p · perf[i]` samples at evenly spaced positions of its *sorted*
//! block. Because shares are proportional to `perf`, the spacing
//! `l_i / s_i = n / (p · Σ perf)` is identical on every node — the property
//! the paper highlights ("between any two consecutive pivots there is the
//! same number of sorted elements") that makes the 2× load-balance theorem
//! carry over to the heterogeneous case. In the homogeneous case this
//! degenerates to the classic `p` samples per node (sample size `p²`).
//!
//! **Random oversampling** (Li & Sevcik): `c · perf[i]` uniform positions of
//! the *unsorted* block; no pre-sort needed, weaker balance guarantees.
//!
//! **Quantile positions** (Cérin–Gaudiot HiPC 2000): the memory-light
//! variant that takes sample positions as exact quantile ranks.

use sim::rng::{Pcg64, Rng};

/// Evenly spaced sample positions for a sorted block of `len` records,
/// `count` samples at the **segment starts**: position `t` is
/// `⌊t·len/count⌋` (local quantiles `0, 1/count, 2/count, …`).
///
/// Segment-start placement is the classic Shi–Schaeffer layout: the
/// gathered sample then contains, for every boundary quantile, one sample
/// from *every* node sitting exactly at that quantile, which is what makes
/// the `p/2`-centred pivot ranks land on the boundary (see
/// [`crate::pivots::select_pivots`]). Returns an empty vector when
/// `len == 0` or `count == 0`.
pub fn regular_positions(len: u64, count: u64) -> Vec<u64> {
    if len == 0 || count == 0 {
        return Vec::new();
    }
    let count = count.min(len);
    (0..count).map(|t| t * len / count).collect()
}

/// The heterogeneous PSRS sample count for node `i`: `perf[i] · Σ perf`.
///
/// This generalizes the classic homogeneous choice (`p` samples per node,
/// `p²` total): the sample total is `(Σ perf)²`, and — because node `i`'s
/// quantile grid has spacing `1/(perf[i]·Σ perf)` — every boundary
/// quantile `cum_perf(j)/Σ perf` lies **exactly** on every node's grid, so
/// the floor terms that would otherwise skew heterogeneous pivot ranks
/// vanish, and the 2× load-balance theorem survives unchanged.
pub fn regular_sample_count(perf: &crate::perf::PerfVector, rank: usize) -> u64 {
    perf.get(rank) * perf.total()
}

/// Uniformly random sample positions in `[0, len)` (sorted, possibly with
/// repeats) — Li & Sevcik's candidate draw over *unsorted* data.
pub fn random_positions(len: u64, count: u64, rng: &mut Pcg64) -> Vec<u64> {
    if len == 0 {
        return Vec::new();
    }
    let mut pos: Vec<u64> = (0..count).map(|_| rng.below(len)).collect();
    pos.sort_unstable();
    pos
}

/// Exact quantile ranks: the `q`-th of `count` cut points of a block of
/// `len` records (`q` in `1..=count`), i.e. `⌊q·len/(count+1)⌋`.
pub fn quantile_positions(len: u64, count: u64) -> Vec<u64> {
    if len == 0 || count == 0 {
        return Vec::new();
    }
    (1..=count.min(len))
        .map(|q| (q * len / (count.min(len) + 1)).min(len - 1))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regular_positions_classic_stride() {
        // len 12, 4 samples at segment starts → positions 0, 3, 6, 9.
        assert_eq!(regular_positions(12, 4), vec![0, 3, 6, 9]);
    }

    #[test]
    fn regular_positions_start_at_zero() {
        let pos = regular_positions(100, 7);
        assert_eq!(pos[0], 0);
        assert_eq!(pos.len(), 7);
        assert!(pos.windows(2).all(|w| w[0] < w[1]));
        assert!(*pos.last().unwrap() < 100);
    }

    #[test]
    fn regular_positions_identical_spacing_across_heterogeneous_nodes() {
        // perf {1,1,4,4}, n = 4000: shares 400,400,1600,1600; counts
        // perf·Σ = 10,10,40,40. Spacing l_i / s_i is 40 on every node.
        for (len, count) in [(400u64, 10u64), (1600, 40)] {
            let pos = regular_positions(len, count);
            assert_eq!(pos[0], 0);
            assert!(pos.windows(2).all(|w| w[1] - w[0] == len / count));
        }
    }

    #[test]
    fn regular_positions_degenerate() {
        assert!(regular_positions(0, 5).is_empty());
        assert!(regular_positions(5, 0).is_empty());
        // More samples than records: clamps to one sample per record.
        assert_eq!(regular_positions(3, 10), vec![0, 1, 2]);
    }

    #[test]
    fn sample_count_formula() {
        use crate::perf::PerfVector;
        // Homogeneous p=4: the classic p samples per node (p² total).
        let hom = PerfVector::homogeneous(4);
        assert_eq!(regular_sample_count(&hom, 0), 4);
        // Heterogeneous {1,1,4,4}: Σ=10 → 10 per slow node, 40 per fast.
        let het = PerfVector::paper_1144();
        assert_eq!(regular_sample_count(&het, 0), 10);
        assert_eq!(regular_sample_count(&het, 2), 40);
        // Boundary quantiles land exactly on every node's grid:
        // cum(j)/Σ · s_i = cum(j)·perf_i ∈ ℤ.
        for j in 1..4 {
            for i in 0..4 {
                // g_j · s_i = (cum(j)/Σ) · (perf_i·Σ) must be an integer.
                let num = het.cumulative(j) * regular_sample_count(&het, i);
                assert_eq!(num % het.total(), 0, "grid misalignment at j={j}, i={i}");
            }
        }
    }

    #[test]
    fn random_positions_in_range_and_sorted() {
        let mut rng = Pcg64::new(5);
        let pos = random_positions(1000, 64, &mut rng);
        assert_eq!(pos.len(), 64);
        assert!(pos.iter().all(|&x| x < 1000));
        assert!(pos.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn random_positions_empty_data() {
        let mut rng = Pcg64::new(5);
        assert!(random_positions(0, 10, &mut rng).is_empty());
    }

    #[test]
    fn quantile_positions_are_interior() {
        let pos = quantile_positions(100, 3);
        assert_eq!(pos, vec![25, 50, 75]);
        assert!(quantile_positions(0, 3).is_empty());
        let tiny = quantile_positions(2, 5);
        assert!(tiny.iter().all(|&x| x < 2));
    }
}
