//! Load-balance metrics.
//!
//! The paper's Table 3 prints, per run: the mean final partition size, the
//! maximum final partition size, and the **sublist expansion**
//! `S(max) = max_i(size_i / optimal_i)` — how far the worst node is above
//! its proportional share. PSRS theory bounds it by 2 (+ duplicates);
//! the paper measures 1.003–1.094; Li & Sevcik report ~1.3 for
//! overpartitioning.

use crate::perf::PerfVector;

/// Final partition sizes against their proportional targets.
#[derive(Debug, Clone)]
pub struct LoadBalance {
    /// Actual records owned by each node after the sort.
    pub sizes: Vec<u64>,
    /// The proportional share each node *should* own.
    pub expected: Vec<u64>,
}

impl LoadBalance {
    /// Builds the metric from final sizes and the declared perf vector.
    ///
    /// # Panics
    /// Panics if lengths differ or the totals disagree.
    pub fn new(sizes: Vec<u64>, perf: &PerfVector) -> Self {
        assert_eq!(sizes.len(), perf.p(), "one size per node");
        let n: u64 = sizes.iter().sum();
        let expected = if n == 0 {
            vec![0; sizes.len()]
        } else {
            // Proportional targets; rounding spread so they sum to n.
            let total = perf.total();
            let mut exp: Vec<u64> = (0..perf.p()).map(|i| n * perf.get(i) / total).collect();
            let mut short = n - exp.iter().sum::<u64>();
            let len = exp.len();
            let mut i = 0;
            while short > 0 {
                exp[i % len] += 1;
                short -= 1;
                i += 1;
            }
            exp
        };
        LoadBalance { sizes, expected }
    }

    /// Total records.
    pub fn total(&self) -> u64 {
        self.sizes.iter().sum()
    }

    /// Mean partition size.
    pub fn mean_size(&self) -> f64 {
        if self.sizes.is_empty() {
            0.0
        } else {
            self.total() as f64 / self.sizes.len() as f64
        }
    }

    /// Largest partition.
    pub fn max_size(&self) -> u64 {
        self.sizes.iter().copied().max().unwrap_or(0)
    }

    /// The sublist expansion `max_i(size_i / expected_i)`; 1.0 is perfect.
    /// Returns 1.0 for an empty input.
    pub fn expansion(&self) -> f64 {
        self.sizes
            .iter()
            .zip(&self.expected)
            .filter(|(_, &e)| e > 0)
            .map(|(&s, &e)| s as f64 / e as f64)
            .fold(1.0f64, f64::max)
    }

    /// Checks the PSRS theorem: every node holds at most
    /// `2 · expected + d` records (`d` = max duplicate multiplicity).
    pub fn within_psrs_bound(&self, max_duplicates: u64) -> bool {
        self.sizes
            .iter()
            .zip(&self.expected)
            .all(|(&s, &e)| s <= 2 * e + max_duplicates)
    }

    /// Mean over a subset of nodes (Table 3's heterogeneous rows report the
    /// mean/max over the *fastest* nodes).
    pub fn mean_size_of(&self, nodes: &[usize]) -> f64 {
        if nodes.is_empty() {
            return 0.0;
        }
        nodes.iter().map(|&i| self.sizes[i] as f64).sum::<f64>() / nodes.len() as f64
    }

    /// Max over a subset of nodes.
    pub fn max_size_of(&self, nodes: &[usize]) -> u64 {
        nodes.iter().map(|&i| self.sizes[i]).max().unwrap_or(0)
    }

    /// Expansion over a subset of nodes.
    pub fn expansion_of(&self, nodes: &[usize]) -> f64 {
        nodes
            .iter()
            .filter(|&&i| self.expected[i] > 0)
            .map(|&i| self.sizes[i] as f64 / self.expected[i] as f64)
            .fold(1.0f64, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_homogeneous_balance() {
        let lb = LoadBalance::new(vec![25, 25, 25, 25], &PerfVector::homogeneous(4));
        assert_eq!(lb.expansion(), 1.0);
        assert_eq!(lb.mean_size(), 25.0);
        assert_eq!(lb.max_size(), 25);
        assert!(lb.within_psrs_bound(0));
    }

    #[test]
    fn heterogeneous_targets() {
        // perf {1,1,4,4}, n = 100 → expected 10,10,40,40.
        let lb = LoadBalance::new(vec![12, 9, 39, 40], &PerfVector::paper_1144());
        assert_eq!(lb.expected, vec![10, 10, 40, 40]);
        assert!((lb.expansion() - 1.2).abs() < 1e-12);
        assert!(lb.within_psrs_bound(0));
    }

    #[test]
    fn expansion_detects_overload() {
        let lb = LoadBalance::new(vec![90, 10], &PerfVector::homogeneous(2));
        assert!((lb.expansion() - 1.8).abs() < 1e-12);
        assert!(lb.within_psrs_bound(0)); // 90 <= 2·50
                                          // With p = 2 the max can never exceed 2·(n/2), so use p = 3.
        let lb2 = LoadBalance::new(vec![90, 0, 0], &PerfVector::homogeneous(3));
        assert!(!lb2.within_psrs_bound(0)); // 90 > 2·30
        assert!(lb2.within_psrs_bound(30));
    }

    #[test]
    fn rounding_keeps_totals() {
        // n = 10 over perf {1,1,1}: expected must sum to 10.
        let lb = LoadBalance::new(vec![4, 3, 3], &PerfVector::homogeneous(3));
        assert_eq!(lb.expected.iter().sum::<u64>(), 10);
    }

    #[test]
    fn empty_input() {
        let lb = LoadBalance::new(vec![0, 0], &PerfVector::homogeneous(2));
        assert_eq!(lb.expansion(), 1.0);
        assert_eq!(lb.mean_size(), 0.0);
        assert!(lb.within_psrs_bound(0));
    }

    #[test]
    fn subset_views_match_table3_reporting() {
        // Paper reports mean/max/S(max) over the two fastest nodes.
        let lb = LoadBalance::new(
            vec![1_700_000, 1_650_000, 6_900_000, 6_700_000],
            &PerfVector::paper_1144(),
        );
        let fast = [2usize, 3];
        assert_eq!(lb.max_size_of(&fast), 6_900_000);
        assert!((lb.mean_size_of(&fast) - 6_800_000.0).abs() < 1.0);
        assert!(lb.expansion_of(&fast) > 1.0);
        assert!(lb.expansion_of(&fast) < 1.1);
    }

    #[test]
    #[should_panic(expected = "one size per node")]
    fn length_mismatch_rejected() {
        let _ = LoadBalance::new(vec![1, 2, 3], &PerfVector::homogeneous(2));
    }
}
