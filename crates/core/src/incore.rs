//! In-core heterogeneous PSRS (the paper's §3 foundation, HiPC 2000).
//!
//! Same four canonical phases as the external algorithm, but the node
//! blocks live in memory. Used as a fast comparison point, as the reference
//! implementation for the pivot machinery, and by the overpartitioning
//! ablation.

use std::time::Instant;

use cluster::charge::Work;
use cluster::NodeCtx;
use extsort::{sort_chunk, LoserTree, SliceStream, SortKernel};
use pdm::{record, Record};

use crate::multilevel::{
    grouped_select_pivots, take_equal_flags, two_level_exchange, SplitTiming, SplitterStrategy,
};
use crate::partition::{partition_comparisons, partition_ranges_tiebreak};
use crate::perf::PerfVector;
use crate::pivots::{select_pivots, select_pivots_quantile};
use crate::sampling::{quantile_positions, regular_positions, regular_sample_count};

/// How pivot candidates are drawn from each node's sorted block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PivotStrategy {
    /// Classic PSRS regular sampling: `perf[i]·Σperf` segment-start samples
    /// per node (sample total `(Σperf)²`), exact grid alignment at the
    /// boundary quantiles.
    RegularSampling,
    /// The quantile variant of Cérin–Gaudiot (HiPC 2000, the paper's §3.2):
    /// each node contributes only `perf[i]·(p−1)` exact quantile ranks, so
    /// the gathered sample is `(p−1)·Σperf` — much smaller than `(Σperf)²`
    /// when `Σperf ≫ p` — "less memory consuming … with equal time
    /// performances".
    Quantiles,
}

/// What one node got out of an in-core PSRS run.
#[derive(Debug)]
pub struct InCoreOutcome<R> {
    /// This node's final, globally positioned sorted portion.
    pub sorted: Vec<R>,
    /// The pivots that were used (identical on every node).
    pub pivots: Vec<R>,
    /// Full-record comparisons this node performed (local sort + merge).
    pub comparisons: u64,
    /// Key operations this node performed (radix kernel passes and
    /// key-cached merge selects; zero on the comparison kernel).
    pub key_ops: u64,
    /// Per-stage virtual timing of the grouped splitter selection
    /// (`None` on the flat path).
    pub split: Option<SplitTiming>,
}

/// Runs in-core PSRS across the cluster; every node calls this with its
/// local block. Node `j`'s result holds the records between pivots `j−1`
/// and `j` — concatenating the results by rank yields the sorted input.
///
/// `perf` is the *declared* performance vector (data-share weights); it
/// need not match the hardware speeds in the [`cluster::ClusterSpec`] —
/// Table 3's first row deliberately mismatches them.
pub async fn psrs_incore<R: Record>(
    ctx: &mut NodeCtx,
    perf: &PerfVector,
    local: Vec<R>,
) -> InCoreOutcome<R> {
    psrs_incore_with(ctx, perf, local, PivotStrategy::RegularSampling).await
}

/// [`psrs_incore`] with an explicit pivot-candidate strategy (and the
/// default sort kernel).
pub async fn psrs_incore_with<R: Record>(
    ctx: &mut NodeCtx,
    perf: &PerfVector,
    local: Vec<R>,
    strategy: PivotStrategy,
) -> InCoreOutcome<R> {
    psrs_incore_kernel(ctx, perf, local, strategy, SortKernel::default()).await
}

/// [`psrs_incore_with`] with an explicit in-core sort kernel. The kernel
/// changes how the local sorts run and how CPU work is billed; the sorted
/// result is byte-identical either way.
pub async fn psrs_incore_kernel<R: Record>(
    ctx: &mut NodeCtx,
    perf: &PerfVector,
    local: Vec<R>,
    strategy: PivotStrategy,
    kernel: SortKernel,
) -> InCoreOutcome<R> {
    psrs_incore_split(ctx, perf, local, strategy, SplitterStrategy::Flat, kernel).await
}

/// [`psrs_incore_kernel`] with an explicit splitter strategy. With
/// [`SplitterStrategy::Grouped`] the pivot phase runs the two-level
/// √p-group selection of [`crate::multilevel`] and the redistribution
/// uses the two-level routing — no node sorts a Θ(p²) sample or receives
/// `p` simultaneous first messages. The concatenated sorted output is the
/// same multiset either way; per-node shares differ only in how duplicate
/// keys split across boundaries.
pub async fn psrs_incore_split<R: Record>(
    ctx: &mut NodeCtx,
    perf: &PerfVector,
    mut local: Vec<R>,
    strategy: PivotStrategy,
    splitter: SplitterStrategy,
    kernel: SortKernel,
) -> InCoreOutcome<R> {
    assert_eq!(perf.p(), ctx.p, "perf vector must cover every node");
    let p = ctx.p;
    let rank = ctx.rank;
    let mut comparisons = 0u64;
    let mut key_ops = 0u64;

    // Phase 1: local sort.
    let n_local = local.len() as u64;
    let t0 = Instant::now();
    let kw = sort_chunk(&mut local, kernel);
    comparisons += kw.comparisons;
    key_ops += kw.key_ops;
    ctx.charger.charge_section(
        Work {
            comparisons: kw.comparisons,
            key_ops: kw.key_ops,
            moves: n_local,
        },
        t0.elapsed(),
    );
    ctx.mark_phase("local-sort");

    // Phase 2: candidate sampling → gather → pivots → broadcast.
    let positions = match strategy {
        PivotStrategy::RegularSampling => {
            regular_positions(n_local, regular_sample_count(perf, rank))
        }
        PivotStrategy::Quantiles => {
            quantile_positions(n_local, perf.get(rank) * (p as u64 - 1).max(1))
        }
    };
    let sample: Vec<R> = positions.into_iter().map(|q| local[q as usize]).collect();
    let (pivots, take_equal, split) = if let SplitterStrategy::Grouped { levels } = splitter {
        assert_eq!(levels, 2, "only two-level grouped selection is implemented");
        let (pivots, origins, timing) = grouped_select_pivots(ctx, perf, sample, kernel).await;
        let take = take_equal_flags(rank, &origins);
        (pivots, take, Some(timing))
    } else {
        let gathered = ctx.gather(0, record::encode_all(&sample)).await;
        let pivots: Vec<R> = if rank == 0 {
            let mut all: Vec<R> = gathered
                .expect("root gathers")
                .iter()
                .flat_map(|bytes| record::decode_all::<R>(bytes))
                .collect();
            let t0 = Instant::now();
            let kw = sort_chunk(&mut all, kernel);
            ctx.charger.charge_section(
                Work {
                    comparisons: kw.comparisons,
                    key_ops: kw.key_ops,
                    moves: all.len() as u64,
                },
                t0.elapsed(),
            );
            let pivots = match strategy {
                PivotStrategy::RegularSampling => select_pivots(&all, perf),
                PivotStrategy::Quantiles => select_pivots_quantile(&all, perf),
            };
            ctx.broadcast(0, record::encode_all(&pivots)).await;
            pivots
        } else {
            record::decode_all(&ctx.broadcast(0, Vec::new()).await)
        };
        let take = vec![true; pivots.len()];
        (pivots, take, None)
    };
    ctx.mark_phase("pivots");

    // Phase 3: partition the sorted block at the pivots (duplicates
    // tie-broken by the pivots' origin ranks on the grouped path).
    let cuts = ctx.charger.compute(
        Work::comparisons(partition_comparisons(n_local, pivots.len())),
        || partition_ranges_tiebreak(&local, &pivots, &take_equal),
    );

    // Phase 4: redistribution — flat all-to-all, or the two-level
    // grouped routing (intra-group to relays, then inter-group).
    let outgoing: Vec<Vec<u8>> = (0..p)
        .map(|j| record::encode_all(&local[cuts[j]..cuts[j + 1]]))
        .collect();
    ctx.charger.charge_work(Work::moves(n_local));
    let incoming = if splitter.is_grouped() {
        two_level_exchange(ctx, outgoing, R::SIZE).await
    } else {
        ctx.all_to_all(outgoing).await
    };
    ctx.mark_phase("redistribute");

    // Phase 5: merge the received sorted partitions.
    let streams: Vec<SliceStream<R>> = incoming
        .iter()
        .map(|bytes| SliceStream::new(record::decode_all::<R>(bytes)))
        .collect();
    let received: u64 = incoming.iter().map(|b| (b.len() / R::SIZE) as u64).sum();
    let mut tree = LoserTree::new(streams).expect("in-memory streams cannot fail");
    let mut sorted = Vec::with_capacity(received as usize);
    while let Some(x) = tree.next_record().expect("in-memory streams cannot fail") {
        sorted.push(x);
    }
    // Tournament selects resolve on cached keys under a key-based kernel.
    let selects = tree.comparisons();
    let select_work = if kernel.key_based::<R>() {
        key_ops += selects;
        Work {
            key_ops: selects,
            moves: received,
            ..Work::default()
        }
    } else {
        comparisons += selects;
        Work {
            comparisons: selects,
            moves: received,
            ..Work::default()
        }
    };
    ctx.charger.charge_work(select_work);
    ctx.mark_phase("merge");

    InCoreOutcome {
        sorted,
        pivots,
        comparisons,
        key_ops,
        split,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{run_cluster, ClusterSpec};
    use workloads::{generate_block, Benchmark, Layout};

    /// Runs in-core PSRS over generated blocks; returns per-node sorted
    /// portions (by rank).
    fn run(
        spec: &ClusterSpec,
        perf: &PerfVector,
        bench: Benchmark,
        n: u64,
        seed: u64,
    ) -> Vec<Vec<u32>> {
        let shares = perf.shares(n);
        let layouts = Layout::cluster(&shares);
        let perf = perf.clone();
        let report = run_cluster(spec, async move |ctx| {
            let local = generate_block(bench, seed, layouts[ctx.rank]);
            psrs_incore(ctx, &perf, local).await.sorted
        });
        report.nodes.into_iter().map(|n| n.value).collect()
    }

    fn assert_globally_sorted(portions: &[Vec<u32>], expect_total: u64) {
        let flat: Vec<u32> = portions.iter().flatten().copied().collect();
        assert_eq!(flat.len() as u64, expect_total);
        assert!(flat.windows(2).all(|w| w[0] <= w[1]), "global order broken");
    }

    #[test]
    fn homogeneous_sorts_uniform() {
        let spec = ClusterSpec::homogeneous(4);
        let perf = PerfVector::homogeneous(4);
        let n = perf.padded_size(4000);
        let portions = run(&spec, &perf, Benchmark::Uniform, n, 1);
        assert_globally_sorted(&portions, n);
    }

    #[test]
    fn heterogeneous_1144_sorts_and_balances() {
        let spec = ClusterSpec::new(vec![1, 1, 4, 4]);
        let perf = PerfVector::paper_1144();
        let n = perf.padded_size(10_000);
        let portions = run(&spec, &perf, Benchmark::Uniform, n, 2);
        assert_globally_sorted(&portions, n);
        // Load balance: each node within 2× of its share.
        let sizes: Vec<u64> = portions.iter().map(|p| p.len() as u64).collect();
        let lb = crate::metrics::LoadBalance::new(sizes, &perf);
        assert!(lb.within_psrs_bound(16), "expansion {}", lb.expansion());
        assert!(lb.expansion() < 2.0, "expansion {}", lb.expansion());
    }

    #[test]
    fn all_eight_benchmarks_sort_correctly() {
        let spec = ClusterSpec::homogeneous(4);
        let perf = PerfVector::homogeneous(4);
        let n = perf.padded_size(2000);
        for bench in Benchmark::PAPER_EIGHT {
            let portions = run(&spec, &perf, bench, n, 3);
            assert_globally_sorted(&portions, n);
        }
    }

    #[test]
    fn duplicates_stay_within_u_plus_d() {
        let spec = ClusterSpec::homogeneous(4);
        let perf = PerfVector::homogeneous(4);
        let n = perf.padded_size(4000);
        let shares = perf.shares(n);
        let whole = workloads::generate_whole(Benchmark::ZipfDuplicates, 4, &shares);
        let d = workloads::max_duplicate_count(&whole);
        let portions = run(&spec, &perf, Benchmark::ZipfDuplicates, n, 4);
        assert_globally_sorted(&portions, n);
        let sizes: Vec<u64> = portions.iter().map(|p| p.len() as u64).collect();
        let lb = crate::metrics::LoadBalance::new(sizes, &perf);
        assert!(
            lb.within_psrs_bound(d),
            "expansion {} with d={d}",
            lb.expansion()
        );
    }

    #[test]
    fn single_node_degenerates_to_local_sort() {
        let spec = ClusterSpec::homogeneous(1);
        let perf = PerfVector::homogeneous(1);
        let portions = run(&spec, &perf, Benchmark::Uniform, 1000, 5);
        assert_globally_sorted(&portions, 1000);
    }

    #[test]
    fn preserves_multiset() {
        let spec = ClusterSpec::homogeneous(3);
        let perf = PerfVector::homogeneous(3);
        let n = perf.padded_size(3000);
        let shares = perf.shares(n);
        let input = workloads::generate_whole(Benchmark::Gaussian, 6, &shares);
        let portions = run(&spec, &perf, Benchmark::Gaussian, n, 6);
        let mut flat: Vec<u32> = portions.into_iter().flatten().collect();
        let mut expect = input;
        expect.sort_unstable();
        flat.sort_unstable(); // already sorted; harmless
        assert_eq!(flat, expect);
    }

    #[test]
    fn quantile_strategy_sorts_and_balances() {
        let spec = ClusterSpec::new(vec![1, 1, 4, 4]);
        let perf = PerfVector::paper_1144();
        let n = perf.padded_size(20_000);
        let shares = perf.shares(n);
        let layouts = Layout::cluster(&shares);
        let pv = perf.clone();
        let report = run_cluster(&spec, async move |ctx| {
            let local = generate_block(Benchmark::Uniform, 8, layouts[ctx.rank]);
            psrs_incore_with(ctx, &pv, local, PivotStrategy::Quantiles)
                .await
                .sorted
        });
        let portions: Vec<Vec<u32>> = report.nodes.into_iter().map(|n| n.value).collect();
        assert_globally_sorted(&portions, n);
        let sizes: Vec<u64> = portions.iter().map(|p| p.len() as u64).collect();
        let lb = crate::metrics::LoadBalance::new(sizes, &perf);
        // Smaller sample → looser balance than regular sampling, but the
        // 2x theorem still holds (HiPC 2000's claim).
        assert!(lb.expansion() < 2.0, "expansion {}", lb.expansion());
    }

    #[test]
    fn quantile_sample_is_smaller() {
        // The memory argument of §3.2: (p-1)·Σ vs Σ² gathered candidates.
        let perf = PerfVector::new(vec![10, 20, 30, 40]);
        let regular: u64 = (0..4)
            .map(|i| crate::sampling::regular_sample_count(&perf, i))
            .sum();
        let quantile: u64 = (0..4).map(|i| perf.get(i) * 3).sum();
        assert_eq!(regular, 100 * 100);
        assert_eq!(quantile, 3 * 100);
        assert!(quantile < regular / 30);
    }

    #[test]
    fn grouped_splitter_sorts_and_matches_flat_concatenation() {
        // 9 nodes → 3 groups of 3: the grouped selection and two-level
        // routing must still deliver a globally sorted permutation, and
        // for u32 records the concatenation equals the flat one exactly.
        let spec = ClusterSpec::homogeneous(9);
        let perf = PerfVector::homogeneous(9);
        let n = perf.padded_size(9_000);
        let shares = perf.shares(n);
        let layouts = Layout::cluster(&shares);
        let run_split = |splitter: crate::multilevel::SplitterStrategy| {
            let pv = perf.clone();
            let layouts = layouts.clone();
            run_cluster(&spec, async move |ctx| {
                let local = generate_block(Benchmark::ZipfDuplicates, 12, layouts[ctx.rank]);
                psrs_incore_split(
                    ctx,
                    &pv,
                    local,
                    PivotStrategy::RegularSampling,
                    splitter,
                    extsort::SortKernel::default(),
                )
                .await
            })
        };
        let flat = run_split(crate::multilevel::SplitterStrategy::Flat);
        let grouped = run_split(crate::multilevel::SplitterStrategy::grouped());
        let cat = |report: &cluster::ClusterReport<InCoreOutcome<u32>>| -> Vec<u32> {
            report
                .nodes
                .iter()
                .flat_map(|nd| nd.value.sorted.iter().copied())
                .collect()
        };
        let a = cat(&flat);
        let b = cat(&grouped);
        assert_eq!(a.len() as u64, n);
        assert!(b.windows(2).all(|w| w[0] <= w[1]), "global order broken");
        assert_eq!(a, b, "grouped concatenation must match flat");
        // Split timing present only on the grouped path.
        assert!(grouped.nodes.iter().all(|nd| nd.value.split.is_some()));
        assert!(flat.nodes.iter().all(|nd| nd.value.split.is_none()));
        // Balance still within the paper's bound.
        let sizes: Vec<u64> = grouped
            .nodes
            .iter()
            .map(|nd| nd.value.sorted.len() as u64)
            .collect();
        let lb = crate::metrics::LoadBalance::new(sizes, &perf);
        assert!(lb.expansion() < 2.0, "expansion {}", lb.expansion());
    }

    #[test]
    fn two_nodes_exchange_correctly() {
        let spec = ClusterSpec::homogeneous(2);
        let perf = PerfVector::homogeneous(2);
        // Reverse-sorted: everything must cross the pivot boundary.
        let n = perf.padded_size(500);
        let portions = run(&spec, &perf, Benchmark::ReverseSorted, n, 7);
        assert_globally_sorted(&portions, n);
    }
}
