//! High-level trial runner: the one-call path used by the benchmark
//! binaries and the examples.
//!
//! A [`TrialConfig`] names the hardware (speed factors, disk, network), the
//! *declared* performance vector (the paper deliberately mismatches the two
//! in Table 3's first row), the workload and the algorithm. [`run_trial`]
//! provisions the simulated cluster, generates each node's block on its own
//! disk, resets the clocks (the paper excludes the initial distribution
//! from its timings), runs the sort, verifies the result, and returns the
//! paper-style row: execution time, partition sizes, sublist expansion,
//! traffic and I/O totals, and the per-phase breakdown.

use cluster::{run_cluster, ClusterSpec, NetworkModel, PhaseBreakdown, RuntimeKind, StorageKind};
use extsort::{fingerprint_file, is_sorted_file, Fingerprint, PipelineConfig, SortKernel};
use obs::ClusterObs;
use pdm::PdmResult;
use workloads::{generate_to_disk, Benchmark, Layout};

use crate::external::{psrs_external, ExternalPsrsConfig};
use crate::metrics::LoadBalance;
use crate::multilevel::SplitterStrategy;
use crate::overpartition::{overpartition_external, OverpartitionConfig};
use crate::perf::PerfVector;

/// Which sorting algorithm a trial runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortAlgo {
    /// The paper's Algorithm 1 (external heterogeneous PSRS).
    ExternalPsrs,
    /// Li & Sevcik overpartitioning, external variant (baseline).
    OverpartitionExternal,
}

/// Full description of one experiment trial.
#[derive(Debug, Clone)]
pub struct TrialConfig {
    /// Hardware speed factors (drive the cost model): the paper's loaded
    /// cluster is `{1,1,4,4}` regardless of what the algorithm assumes.
    pub hardware: Vec<u64>,
    /// The perf vector the *algorithm* uses for data shares and pivots.
    pub declared: PerfVector,
    /// Input distribution.
    pub bench: Benchmark,
    /// Requested input size (padded up to Equation 2 validity).
    pub n: u64,
    /// Per-node memory budget in records.
    pub mem_records: usize,
    /// Polyphase tape files.
    pub tapes: usize,
    /// Redistribution message size in records.
    pub msg_records: usize,
    /// Network fabric.
    pub net: NetworkModel,
    /// Disk backend.
    pub storage: StorageKind,
    /// Disk cost model every node is charged with (the paper's year-2000
    /// SCSI by default). The adaptive planner reads its contention model,
    /// so the device choice changes the merge plan, not just the bill.
    pub disk_model: pdm::DiskModel,
    /// PDM block size in bytes.
    pub block_bytes: usize,
    /// Trial seed (vary per repetition).
    pub seed: u64,
    /// Timing jitter shape (0 = deterministic).
    pub jitter: f64,
    /// Algorithm under test.
    pub algo: SortAlgo,
    /// Overpartitioning factor (only for [`SortAlgo::OverpartitionExternal`]).
    pub oversampling: u64,
    /// Check output order and input/output permutation equality.
    pub verify: bool,
    /// Use the fused partition+redistribution path (extension; `false`
    /// reproduces the paper's Algorithm 1 literally).
    pub fused: bool,
    /// Use the streaming exchange-merge path (extension): steps 3-5 fuse
    /// end to end, no staging files, credit-based flow control. Takes
    /// precedence over `fused`.
    pub streaming: bool,
    /// Pipelined-execution knobs for the per-node sort and merge phases
    /// (off = the paper's sequential execution).
    pub pipeline: PipelineConfig,
    /// In-core sort kernel: radix fast path (default) or the
    /// comparison-based reference (the paper's calibrated sorter).
    pub kernel: SortKernel,
    /// Splitter selection: flat root-gather (the paper's step 2) or the
    /// two-level √p-grouped scheme that caps any node's sample sort at
    /// O(√p) candidates per peer.
    pub splitter: SplitterStrategy,
    /// Record phase spans and metrics during the trial (the `obs` crate).
    /// Off by default; a traced trial is observationally identical to an
    /// untraced one (same output, same I/O counters, same virtual times).
    pub trace: bool,
    /// Which cluster scheduler runs the trial: thread-per-node (default)
    /// or the single-threaded event runtime. Blocking exchange variants
    /// produce bit-identical virtual clocks either way.
    pub runtime: RuntimeKind,
}

impl TrialConfig {
    /// Paper-defaults trial: Algorithm 1, uniform input, Fast-Ethernet,
    /// SCSI disks, 32 Kb messages, 16 tapes, memory for ~1 Mi records.
    pub fn new(hardware: Vec<u64>, declared: PerfVector, n: u64) -> Self {
        TrialConfig {
            hardware,
            declared,
            bench: Benchmark::Uniform,
            n,
            mem_records: 1 << 20,
            tapes: 16,
            msg_records: 8 * 1024,
            net: NetworkModel::fast_ethernet(),
            storage: StorageKind::Memory,
            disk_model: pdm::DiskModel::scsi_2000(),
            block_bytes: 32 * 1024,
            seed: 1,
            jitter: 0.03,
            algo: SortAlgo::ExternalPsrs,
            oversampling: 4,
            verify: true,
            fused: false,
            streaming: false,
            pipeline: PipelineConfig::off(),
            kernel: SortKernel::default(),
            splitter: SplitterStrategy::Flat,
            trace: false,
            runtime: RuntimeKind::default(),
        }
    }
}

/// What one trial produced (one row of a paper table).
#[derive(Debug, Clone)]
pub struct TrialResult {
    /// The padded input size actually sorted.
    pub n: u64,
    /// Virtual execution time of the sort (generation excluded), seconds.
    pub time_secs: f64,
    /// Final partition sizes vs. proportional targets.
    pub balance: LoadBalance,
    /// Per-phase makespan contributions: for each phase name, the maximum
    /// across nodes of that node's time spent up to the end of the phase.
    pub phase_ends: Vec<(String, f64)>,
    /// Per-phase, per-node durations derived from the phase marks (always
    /// populated — no tracing needed). Phase `k`'s duration on a node is
    /// the delta between its stamps, so examples and bench bins no longer
    /// recompute it by hand.
    pub phase_breakdown: Vec<PhaseBreakdown>,
    /// Full span/metric data, `Some` only when [`TrialConfig::trace`] was
    /// set. Includes the PSRS skew check as recorded cluster gauges
    /// (`skew.expansion`, `skew.bound`, `skew.within_bound`).
    pub obs: Option<ClusterObs>,
    /// Total block I/Os across all nodes.
    pub total_io_blocks: u64,
    /// Total bytes pushed into the network.
    pub sent_bytes: u64,
    /// Whether verification ran and passed (always true when `verify` was
    /// set — failures panic with diagnostics).
    pub verified: bool,
}

struct NodeReturn {
    received: u64,
    fp_in: Fingerprint,
    fp_out: Fingerprint,
    first: Option<u32>,
    last: Option<u32>,
}

/// Runs one trial end to end. Panics on any correctness violation when
/// `cfg.verify` is set.
pub fn run_trial(cfg: &TrialConfig) -> PdmResult<TrialResult> {
    let p = cfg.hardware.len();
    assert_eq!(
        cfg.declared.p(),
        p,
        "declared perf and hardware must have the same width"
    );
    let n = cfg.declared.padded_size(cfg.n);
    let shares = cfg.declared.shares(n);
    let layouts = Layout::cluster(&shares);

    let spec = ClusterSpec::new(cfg.hardware.clone())
        .with_net(cfg.net.clone())
        .with_block_bytes(cfg.block_bytes)
        .with_storage(cfg.storage)
        .with_disk_model(cfg.disk_model.clone())
        .with_seed(cfg.seed)
        .with_jitter(cfg.jitter)
        .with_tracing(cfg.trace)
        .with_runtime(cfg.runtime);

    let xcfg = ExternalPsrsConfig {
        perf: cfg.declared.clone(),
        mem_records: cfg.mem_records,
        tapes: cfg.tapes,
        msg_records: cfg.msg_records,
        input: "input".into(),
        output: "output".into(),
        fused_redistribution: cfg.fused,
        streaming_merge: cfg.streaming,
        pipeline: cfg.pipeline,
        kernel: cfg.kernel,
        splitter: cfg.splitter,
    };
    let ocfg = OverpartitionConfig::new(cfg.declared.clone()).with_oversampling(cfg.oversampling);
    let trial = cfg.clone();

    let report = run_cluster(&spec, async move |ctx| -> PdmResult<NodeReturn> {
        generate_to_disk(
            &ctx.disk,
            "input",
            trial.bench,
            trial.seed,
            layouts[ctx.rank],
        )?;
        let fp_in = if trial.verify {
            fingerprint_file::<u32>(&ctx.disk, "input")?
        } else {
            Fingerprint::default()
        };
        // The paper's timings exclude the initial distribution of data.
        ctx.reset_timing().await;

        let received = match trial.algo {
            SortAlgo::ExternalPsrs => psrs_external::<u32>(ctx, &xcfg).await?.received_records,
            SortAlgo::OverpartitionExternal => {
                overpartition_external::<u32>(
                    ctx,
                    &ocfg,
                    trial.mem_records,
                    trial.tapes,
                    trial.msg_records,
                    "input",
                    "output",
                )
                .await?
                .received
            }
        };

        let (fp_out, first, last) = if trial.verify {
            assert!(
                is_sorted_file::<u32>(&ctx.disk, "output")?,
                "node {} produced an unsorted output",
                ctx.rank
            );
            let fp = fingerprint_file::<u32>(&ctx.disk, "output")?;
            let mut rd = ctx.disk.open_reader::<u32>("output")?;
            let first = if rd.is_empty() {
                None
            } else {
                Some(rd.read_at(0)?)
            };
            let last = if rd.is_empty() {
                None
            } else {
                Some(rd.read_at(rd.len() - 1)?)
            };
            (fp, first, last)
        } else {
            (Fingerprint::default(), None, None)
        };
        Ok(NodeReturn {
            received,
            fp_in,
            fp_out,
            first,
            last,
        })
    });

    let mut returns = Vec::with_capacity(p);
    for node in &report.nodes {
        match &node.value {
            Ok(r) => returns.push(r),
            Err(e) => panic!("node failed: {e}"),
        }
    }

    if cfg.verify {
        // Permutation: combined output fingerprint equals combined input.
        let fin = returns
            .iter()
            .fold(Fingerprint::default(), |acc, r| acc.combine(&r.fp_in));
        let fout = returns
            .iter()
            .fold(Fingerprint::default(), |acc, r| acc.combine(&r.fp_out));
        assert_eq!(fin, fout, "output is not a permutation of the input");
        // Global order across node boundaries.
        let mut prev_last: Option<u32> = None;
        for (rank, r) in returns.iter().enumerate() {
            if let (Some(pl), Some(f)) = (prev_last, r.first) {
                assert!(
                    pl <= f,
                    "boundary violation between node {} and {rank}: {pl} > {f}",
                    rank - 1
                );
            }
            if r.last.is_some() {
                prev_last = r.last;
            }
        }
        let total: u64 = returns.iter().map(|r| r.received).sum();
        assert_eq!(total, n, "records lost or duplicated");
    }

    let sizes: Vec<u64> = returns.iter().map(|r| r.received).collect();
    let balance = LoadBalance::new(sizes, &cfg.declared);

    // Per-phase maxima across nodes (phases are identical in order).
    let mut phase_ends: Vec<(String, f64)> = Vec::new();
    if let Some(first) = report.nodes.first() {
        for (idx, mark) in first.phases.iter().enumerate() {
            let end = report
                .nodes
                .iter()
                .map(|nd| nd.phases.get(idx).map(|m| m.at.as_secs()).unwrap_or(0.0))
                .fold(0.0f64, f64::max);
            phase_ends.push((mark.name.to_string(), end));
        }
    }

    let obs = cfg.trace.then(|| {
        let mut cluster_obs = report.cluster_obs();
        // The PSRS skew check becomes recorded metrics. Regular sampling
        // takes `p·perf_i` samples per node, so consecutive samples are
        // `n / (p·Σperf)` records apart; each of the `p−1` pivots can
        // misplace at most `p` sample gaps relative to the proportional
        // target, giving the (loose) per-node expansion bound
        // `1 + p·(p−1)·spacing / min_share` — the external analogue of the
        // paper's `(1 + p·(p−1)/l)` factor.
        let p_f = p as f64;
        let spacing = n as f64 / (p_f * cfg.declared.total() as f64);
        let min_share = shares.iter().copied().min().unwrap_or(1).max(1) as f64;
        let bound = 1.0 + p_f * (p_f - 1.0) * spacing / min_share;
        let expansion = balance.expansion();
        cluster_obs.cluster.gauge_set("skew.expansion", expansion);
        cluster_obs.cluster.gauge_set("skew.bound", bound);
        cluster_obs.cluster.gauge_set(
            "skew.within_bound",
            if expansion <= bound { 1.0 } else { 0.0 },
        );
        cluster_obs
            .cluster
            .gauge_set("skew.spacing_records", spacing);
        for (rank, node) in cluster_obs.nodes.iter_mut().enumerate() {
            node.metrics
                .gauge_set("psrs.received_records", balance.sizes[rank] as f64);
            node.metrics
                .gauge_set("psrs.expected_records", shares[rank] as f64);
        }
        // Planner calibration: join each node's recorded merge prediction
        // against the measured merge span and publish the residual, so the
        // cost model's drift is a first-class metric instead of a manual
        // spreadsheet exercise.
        let mut rels: Vec<f64> = Vec::new();
        for node in cluster_obs.nodes.iter_mut() {
            let Some(&predicted) = node.metrics.gauges.get("planner.predicted_merge_secs") else {
                continue;
            };
            let measured: f64 = node
                .spans
                .iter()
                .filter(|s| s.kind == obs::SpanKind::Phase && s.name == "merge")
                .map(|s| s.virt_secs())
                .sum();
            if predicted <= 0.0 || measured <= 0.0 {
                continue;
            }
            let residual = measured - predicted;
            let rel = residual / measured;
            node.metrics.gauge_set("planner.residual.secs", residual);
            node.metrics.gauge_set("planner.residual.rel", rel);
            rels.push(rel);
        }
        if !rels.is_empty() {
            let mean = rels.iter().map(|r| r.abs()).sum::<f64>() / rels.len() as f64;
            let max = rels.iter().map(|r| r.abs()).fold(0.0f64, f64::max);
            cluster_obs
                .cluster
                .gauge_set("planner.residual.mean_rel", mean);
            cluster_obs
                .cluster
                .gauge_set("planner.residual.max_rel", max);
        }
        cluster_obs
    });

    Ok(TrialResult {
        n,
        time_secs: report.makespan.as_secs(),
        balance,
        phase_ends,
        phase_breakdown: report.phase_breakdown(),
        total_io_blocks: report.total_io().total_blocks(),
        sent_bytes: report.nodes.iter().map(|nd| nd.sent_bytes).sum(),
        verified: cfg.verify,
        obs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> TrialConfig {
        let mut cfg = TrialConfig::new(vec![1, 1, 4, 4], PerfVector::paper_1144(), 8_000);
        cfg.mem_records = 512;
        cfg.tapes = 4;
        cfg.msg_records = 256;
        cfg.block_bytes = 256;
        cfg
    }

    #[test]
    fn trial_runs_and_verifies() {
        let result = run_trial(&small_cfg()).unwrap();
        assert!(result.verified);
        assert!(result.time_secs > 0.0);
        assert!(result.balance.expansion() < 2.0);
        assert_eq!(result.balance.total(), result.n);
        assert_eq!(result.phase_ends.len(), 5);
        assert!(result.total_io_blocks > 0);
        assert!(result.sent_bytes > 0);
        // The breakdown mirrors the cumulative ends: deltas sum back up.
        assert_eq!(result.phase_breakdown.len(), 5);
        assert!(result.obs.is_none(), "tracing is off by default");
        for (idx, phase) in result.phase_breakdown.iter().enumerate() {
            assert_eq!(phase.name, result.phase_ends[idx].0);
            assert_eq!(phase.per_node.len(), 4);
        }
    }

    #[test]
    fn traced_trial_records_phases_and_skew() {
        let mut cfg = small_cfg();
        cfg.trace = true;
        let result = run_trial(&cfg).unwrap();
        let obs_data = result.obs.as_ref().expect("tracing was requested");
        assert_eq!(obs_data.nodes.len(), 4);
        for node in &obs_data.nodes {
            let names: Vec<&str> = node.phases().map(|s| s.name).collect();
            assert_eq!(
                names,
                vec!["local-sort", "pivots", "partition", "redistribute", "merge"]
            );
            assert!(node.metrics.counters.contains_key("sort.records"));
            assert!(node.metrics.counters.contains_key("io.blocks_read"));
            assert!(node
                .metrics
                .histograms
                .contains_key("psrs.partition_records"));
            assert!(node.metrics.gauges.contains_key("psrs.received_records"));
        }
        // The skew check is a recorded metric now, and this trial obeys it.
        let g = &obs_data.cluster.gauges;
        assert!(g.get("skew.expansion").copied().unwrap() >= 1.0);
        assert_eq!(g.get("skew.within_bound").copied(), Some(1.0));
        // Both exporters emit valid JSON for a real trial.
        obs::json::validate(&obs::chrome_trace(obs_data)).unwrap();
        obs::json::validate(&obs::metrics_json(obs_data)).unwrap();
    }

    #[test]
    fn declared_vector_matters_on_heterogeneous_hardware() {
        // Table 3's experiment: same loaded hardware, homogeneous vs
        // correct declared vector. The correct vector must win clearly.
        let mut wrong = small_cfg();
        wrong.declared = PerfVector::homogeneous(4);
        let mut right = small_cfg();
        right.n = wrong.declared.padded_size(8_000); // same workload size
        let t_wrong = run_trial(&wrong).unwrap().time_secs;
        let t_right = run_trial(&right).unwrap().time_secs;
        assert!(
            t_right < t_wrong,
            "declared {{1,1,4,4}} ({t_right:.2}s) must beat {{1,1,1,1}} ({t_wrong:.2}s)"
        );
    }

    #[test]
    fn overpartitioning_trial_runs() {
        let mut cfg = small_cfg();
        cfg.algo = SortAlgo::OverpartitionExternal;
        let result = run_trial(&cfg).unwrap();
        assert!(result.verified);
        assert!(result.balance.expansion() < 3.0);
    }

    #[test]
    fn trials_are_deterministic_per_seed() {
        let a = run_trial(&small_cfg()).unwrap();
        let b = run_trial(&small_cfg()).unwrap();
        assert_eq!(a.time_secs, b.time_secs);
        assert_eq!(a.balance.sizes, b.balance.sizes);
        let mut c_cfg = small_cfg();
        c_cfg.seed = 999;
        let c = run_trial(&c_cfg).unwrap();
        assert_ne!(a.time_secs, c.time_secs);
    }

    #[test]
    fn pipelined_trial_matches_sequential_observables() {
        // Same seed, same data: pipelining must not change what is sorted,
        // where it lands, or how many blocks move — only the virtual time.
        // Jitter off: with the radix kernel the phases are I/O-bound and
        // the overlap saving is smaller than the jitter noise, so the
        // max(cpu,io) <= cpu+io property only holds deterministically.
        let mut scfg = small_cfg();
        scfg.jitter = 0.0;
        let seq = run_trial(&scfg).unwrap();
        let mut pcfg = small_cfg();
        pcfg.jitter = 0.0;
        pcfg.pipeline = PipelineConfig::with_workers(4);
        let pipe = run_trial(&pcfg).unwrap();
        assert!(pipe.verified);
        assert_eq!(pipe.balance.sizes, seq.balance.sizes);
        assert_eq!(pipe.total_io_blocks, seq.total_io_blocks);
        assert_eq!(pipe.sent_bytes, seq.sent_bytes);
        // max(cpu, io) can only shrink the charged phase times.
        assert!(
            pipe.time_secs <= seq.time_secs + 1e-9,
            "pipelined {} vs sequential {}",
            pipe.time_secs,
            seq.time_secs
        );
    }

    #[test]
    fn streamed_trial_verifies_and_saves_io() {
        // The streamed exchange-merge sorts the same data with strictly
        // fewer block transfers (no partition or receive staging files)
        // and three phases instead of five.
        let staged = run_trial(&small_cfg()).unwrap();
        let mut scfg = small_cfg();
        scfg.streaming = true;
        let streamed = run_trial(&scfg).unwrap();
        assert!(streamed.verified);
        assert_eq!(streamed.balance.sizes, staged.balance.sizes);
        assert_eq!(streamed.phase_ends.len(), 3);
        assert_eq!(streamed.phase_ends[2].0, "exchange-merge");
        assert!(
            streamed.total_io_blocks < staged.total_io_blocks,
            "streamed {} vs staged {}",
            streamed.total_io_blocks,
            staged.total_io_blocks
        );
    }

    #[test]
    fn myrinet_does_not_help_much() {
        // The paper's observation: the algorithm moves each record once, so
        // a faster fabric barely changes the total time.
        let fe = run_trial(&small_cfg()).unwrap();
        let mut cfg = small_cfg();
        cfg.net = NetworkModel::myrinet();
        let my = run_trial(&cfg).unwrap();
        let ratio = fe.time_secs / my.time_secs;
        assert!(
            (0.9..1.6).contains(&ratio),
            "Myrinet changed time by {ratio:.2}× — network should not dominate"
        );
    }
}
