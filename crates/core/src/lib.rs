//! Heterogeneity-aware Parallel Sorting by Regular Sampling (PSRS),
//! in-core and out-of-core — a reproduction of C. Cérin, *"An Out-of-Core
//! Sorting Algorithm for Clusters with Processors at Different Speed"*
//! (IPPS/IPDPS workshops 2002).
//!
//! The library sorts data spread across a cluster whose node speeds differ
//! by multiplicative factors encoded in a performance vector `perf`
//! ([`perf::PerfVector`]): node `i` initially holds — and finally owns —
//! a share of `perf[i] / Σ perf` of the records. The paper's **Algorithm 1**
//! ([`external::psrs_external`]) runs five phases per node:
//!
//! 1. local **polyphase merge sort** of the node's block (out-of-core);
//! 2. **regular sampling** proportional to `perf` + pivot selection at
//!    cumulative-performance ranks ([`sampling`], [`pivots`]);
//! 3. **partitioning** of the sorted block at the pivots ([`partition`]);
//! 4. **redistribution** — partition `j` goes to node `j`, in block-sized
//!    messages;
//! 5. **final k-way merge** of the received sorted partitions.
//!
//! The PSRS guarantee carries over: no node receives more than 2× its
//! proportional share (+ the duplicate multiplicity), measured by
//! [`metrics::LoadBalance`] just as the paper's *sublist expansion* column.
//!
//! Also provided, as the paper's comparison points:
//!
//! * [`incore::psrs_incore`] — the in-core heterogeneous PSRS the paper
//!   builds on (HiPC 2000);
//! * [`overpartition`] — Li & Sevcik's *sorting by overpartitioning*,
//!   adapted to `perf`-weighted assignment, in-core and out-of-core;
//! * [`runner`] — a one-call harness that provisions a simulated cluster,
//!   generates a workload, runs a sort and returns the paper-style row
//!   (time, deviation source, partition sizes, sublist expansion).

pub mod external;
pub mod incore;
pub mod metrics;
pub mod multilevel;
pub mod overpartition;
pub mod partition;
pub mod perf;
pub mod pivots;
pub mod runner;
pub mod sampling;

pub use external::{psrs_external, ExternalPsrsConfig, ExternalPsrsOutcome};
pub use incore::{
    psrs_incore, psrs_incore_kernel, psrs_incore_split, psrs_incore_with, InCoreOutcome,
    PivotStrategy,
};
pub use metrics::LoadBalance;
pub use multilevel::{
    grouped_select_pivots, take_equal_flags, two_level_exchange, GroupLayout, SplitTiming,
    SplitterStrategy,
};
pub use overpartition::{overpartition_external, overpartition_incore, OverpartitionConfig};
pub use perf::PerfVector;
pub use runner::{run_trial, SortAlgo, TrialConfig, TrialResult};
