//! Multi-level (√p-group) splitter selection and two-level data routing.
//!
//! The flat path has node 0 gather and sort `(Σperf)²` pivot candidates —
//! the O(p²) centralized bottleneck the scale sweep measured at 67% of the
//! makespan by p = 256. This module replaces it with the AMS-sort-style
//! two-level scheme (*Practical Massively Parallel Sorting*, Axtmann et
//! al.), kept perf-vector-weighted so the paper's heterogeneous expansion
//! bound survives:
//!
//! * **Level 1** — nodes form `g = ⌈√p⌉` contiguous groups. Each member
//!   first compresses its own sorted regular sample into
//!   `OVERSAMPLE·perf_i` weighted candidates: candidate `t` is the sample
//!   record at regular position `pos_t` and carries weight
//!   `pos_{t+1} − pos_t` — the number of sample records it stands for —
//!   plus the rank it originated from. Budgets proportional to `perf_i`
//!   make every segment weigh `≈ Σperf/OVERSAMPLE` regardless of node
//!   speed, so the pivot rank error stays `≤ 1/OVERSAMPLE` of the
//!   *slowest* node's share. The group leader then merges its members'
//!   candidate lists — `O(√p·OVERSAMPLE)` candidates, never the
//!   `(Σperf)²/g`-record group sample — billed as a `group_size`-way
//!   merge of sorted runs, at the key-op rate under key-based kernels.
//! * **Level 2** — the `g` leaders gather their candidates at the root
//!   leader, which merges `OVERSAMPLE·Σperf = O(p·OVERSAMPLE)` candidates
//!   by `(key, origin)` and selects the `p − 1` pivots at the *weighted*
//!   cumulative-performance ranks (the same `cum_perf(j)·Σperf + p/2`
//!   targets as the flat selector, scaled into cumulative candidate
//!   weight). Pivots broadcast back down the two-level tree:
//!   root → leaders → members.
//!
//! Each pivot carries its **origin rank** so partitioning can tie-break
//! duplicates implicitly à la *Robust Massively Parallel Sorting*: a
//! record equal to pivot `j` routes left iff its node rank `≤` the
//! pivot's origin rank. Duplicate floods thus split deterministically at
//! node granularity instead of all landing on one destination.
//!
//! [`two_level_exchange`] replaces the p-way all-to-all of the
//! redistribution phase with intra-group + inter-group routing: every
//! payload first hops to the in-group relay responsible for its
//! destination group, then travels to the destination in one combined
//! message per (relay, destination) pair. A node sends and receives
//! `O(√p)` messages instead of `p − 1`, at the price of moving the data
//! twice — the classic AMS trade, and the reason no node ever faces `p`
//! simultaneous first messages at p = 1024.

use cluster::charge::Work;
use cluster::{NodeCtx, Tag};
use extsort::SortKernel;
use pdm::{record, Record};

use crate::perf::PerfVector;

/// Level-1 sample gather: members → group leader.
const TAG_L1_GATHER: Tag = Tag(0x0200);
/// Level-2 candidate gather: leaders → root leader.
const TAG_L2_GATHER: Tag = Tag(0x0201);
/// Level-2 pivot broadcast: root leader → leaders.
const TAG_L2_BCAST: Tag = Tag(0x0202);
/// Level-1 pivot broadcast: leader → members.
const TAG_L1_BCAST: Tag = Tag(0x0203);
/// Two-level routing, stage 1: node → in-group relay.
const TAG_ROUTE_1: Tag = Tag(0x0204);
/// Two-level routing, stage 2: relay → destination.
const TAG_ROUTE_2: Tag = Tag(0x0205);

/// Per-perf-unit candidate budget: a member distills its sample into
/// `OVERSAMPLE·perf_i` weighted candidates before the level-1 gather, so
/// a leader merges `O(√p·OVERSAMPLE)` candidates and the root
/// `OVERSAMPLE·Σperf` — never the `(Σperf)²` flat sample.
pub const OVERSAMPLE: usize = 8;

/// How pivot candidates travel from the nodes to the selecting root.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SplitterStrategy {
    /// The paper's centralized path: gather every sample at node 0, sort
    /// `(Σperf)²` candidates there. O(p²) at the root.
    #[default]
    Flat,
    /// The two-level √p-group path of this module. `levels` counts the
    /// selection levels including the root (only `2` is implemented —
    /// deeper recursion is not needed below p ≈ 10⁶).
    Grouped {
        /// Selection levels; must be 2.
        levels: u32,
    },
}

impl SplitterStrategy {
    /// The two-level default (`levels = 2`).
    pub fn grouped() -> Self {
        SplitterStrategy::Grouped { levels: 2 }
    }

    /// Is this the grouped path?
    pub fn is_grouped(&self) -> bool {
        matches!(self, SplitterStrategy::Grouped { .. })
    }
}

/// Contiguous, ceil-balanced grouping of `p` ranks into `⌈√p⌉` groups.
///
/// The first `p mod g` groups hold `⌈p/g⌉` ranks, the rest `⌊p/g⌋` — no
/// group ever exceeds the ceil-balanced size, and groups are contiguous
/// rank ranges so group membership is O(1) arithmetic on every node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupLayout {
    p: usize,
    g: usize,
}

impl GroupLayout {
    /// The √p layout for a `p`-node cluster.
    pub fn new(p: usize) -> Self {
        assert!(p >= 1, "a cluster has at least one node");
        let g = (1..=p).find(|&g| g * g >= p).unwrap_or(p);
        GroupLayout { p, g }
    }

    /// Number of groups (`⌈√p⌉`).
    pub fn groups(&self) -> usize {
        self.g
    }

    /// Cluster size.
    pub fn p(&self) -> usize {
        self.p
    }

    /// Ceil-balanced size bound: no group is larger than this.
    pub fn max_group_size(&self) -> usize {
        self.p.div_ceil(self.g)
    }

    /// First rank of group `gi` (also its leader).
    pub fn group_start(&self, gi: usize) -> usize {
        assert!(gi < self.g, "group {gi} out of {}", self.g);
        let big = self.p.div_ceil(self.g);
        let small = self.p / self.g;
        let n_big = self.p - small * self.g; // groups holding `big` ranks
        if gi < n_big {
            gi * big
        } else {
            n_big * big + (gi - n_big) * small
        }
    }

    /// Size of group `gi`.
    pub fn group_size(&self, gi: usize) -> usize {
        let big = self.p.div_ceil(self.g);
        let small = self.p / self.g;
        let n_big = self.p - small * self.g;
        if gi < n_big {
            big
        } else {
            small
        }
    }

    /// Which group `rank` belongs to.
    pub fn group_of(&self, rank: usize) -> usize {
        assert!(rank < self.p, "rank {rank} out of {}", self.p);
        let big = self.p.div_ceil(self.g);
        let small = self.p / self.g;
        let n_big = self.p - small * self.g;
        let split = n_big * big;
        if rank < split {
            rank / big
        } else {
            match (rank - split).checked_div(small) {
                Some(q) => n_big + q,
                // p < g never happens (g ≤ p), but keep the division safe.
                None => self.g - 1,
            }
        }
    }

    /// The global ranks of group `gi`, in ascending order.
    pub fn members(&self, gi: usize) -> Vec<usize> {
        let start = self.group_start(gi);
        (start..start + self.group_size(gi)).collect()
    }

    /// Leader (first rank) of group `gi`.
    pub fn leader(&self, gi: usize) -> usize {
        self.group_start(gi)
    }

    /// All group leaders, in group order. `leaders()[0]` is the root
    /// leader (rank 0), which performs the level-2 selection.
    pub fn leaders(&self) -> Vec<usize> {
        (0..self.g).map(|gi| self.leader(gi)).collect()
    }
}

/// Virtual-clock breakdown of one grouped selection, per node. The bench
/// sweep takes the per-stage max across nodes, so leader/root costs are
/// visible even though non-leaders idle through them.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SplitTiming {
    /// Level 1: members ship samples to their group leader.
    pub sample_gather_secs: f64,
    /// Level 1: the leader sorts the group sample and compresses it into
    /// weighted candidates.
    pub leader_sort_secs: f64,
    /// Level 2: leaders exchange candidates with the root, the root
    /// selects, and the pivots broadcast back down both levels.
    pub boundary_exchange_secs: f64,
}

/// One weighted pivot candidate travelling leader → root.
#[derive(Debug, Clone, Copy)]
struct Candidate<R> {
    key: R,
    /// Global rank of the node whose sample produced this record — the
    /// tie-break coordinate.
    origin: u32,
    /// Group-sample records this candidate stands for (regular-position
    /// segment length); weights across all groups sum to the flat sample
    /// size, so cumulative weight ≈ flat sample rank.
    weight: u64,
}

fn encode_candidates<R: Record>(cands: &[Candidate<R>]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + cands.len() * (R::SIZE + 12));
    out.extend((cands.len() as u64).to_le_bytes());
    let keys: Vec<R> = cands.iter().map(|c| c.key).collect();
    out.extend(record::encode_all(&keys));
    for c in cands {
        out.extend(c.origin.to_le_bytes());
    }
    for c in cands {
        out.extend(c.weight.to_le_bytes());
    }
    out
}

fn decode_candidates<R: Record>(bytes: &[u8]) -> Vec<Candidate<R>> {
    let n = u64::from_le_bytes(bytes[..8].try_into().expect("count")) as usize;
    let keys: Vec<R> = record::decode_all(&bytes[8..8 + n * R::SIZE]);
    let mut at = 8 + n * R::SIZE;
    let origins: Vec<u32> = (0..n)
        .map(|i| {
            u32::from_le_bytes(
                bytes[at + 4 * i..at + 4 * i + 4]
                    .try_into()
                    .expect("origin"),
            )
        })
        .collect();
    at += 4 * n;
    let weights: Vec<u64> = (0..n)
        .map(|i| {
            u64::from_le_bytes(
                bytes[at + 8 * i..at + 8 * i + 8]
                    .try_into()
                    .expect("weight"),
            )
        })
        .collect();
    keys.into_iter()
        .zip(origins)
        .zip(weights)
        .map(|((key, origin), weight)| Candidate {
            key,
            origin,
            weight,
        })
        .collect()
}

fn encode_pivots<R: Record>(pivots: &[R], origins: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + pivots.len() * (R::SIZE + 4));
    out.extend((pivots.len() as u64).to_le_bytes());
    out.extend(record::encode_all(pivots));
    for o in origins {
        out.extend(o.to_le_bytes());
    }
    out
}

fn decode_pivots<R: Record>(bytes: &[u8]) -> (Vec<R>, Vec<u32>) {
    let n = u64::from_le_bytes(bytes[..8].try_into().expect("count")) as usize;
    let pivots: Vec<R> = record::decode_all(&bytes[8..8 + n * R::SIZE]);
    let at = 8 + n * R::SIZE;
    let origins: Vec<u32> = (0..n)
        .map(|i| {
            u32::from_le_bytes(
                bytes[at + 4 * i..at + 4 * i + 4]
                    .try_into()
                    .expect("origin"),
            )
        })
        .collect();
    (pivots, origins)
}

/// Work estimate for combining `n` candidates arriving as `runs`
/// pre-sorted lists: one tournament select per item at `⌈log₂ runs⌉`
/// comparisons each — the k-way-merge bill, not an `n·log n` sort,
/// because every input list is already ordered by `(key, origin)`.
/// Key-based kernels resolve selects on cached keys (the `kway`
/// precedent), so there the charge moves to the key-op rate — mirroring
/// how the flat path's root bills its radix sample sort.
fn merge_estimate(n: u64, runs: u64, key_based: bool) -> Work {
    let log = if runs < 2 {
        1
    } else {
        (64 - (runs - 1).leading_zeros()) as u64
    };
    let selects = n * log;
    Work {
        comparisons: if key_based { 0 } else { selects },
        key_ops: if key_based { selects } else { 0 },
        moves: n,
    }
}

/// Compresses a sorted `(key, origin)` group sample into at most
/// `limit` weighted candidates at regular positions.
fn compress_sample<R: Record>(sample: &[(R, u32)], limit: usize) -> Vec<Candidate<R>> {
    let len = sample.len();
    if len == 0 {
        return Vec::new();
    }
    let c = limit.clamp(1, len);
    let positions: Vec<usize> = crate::sampling::regular_positions(len as u64, c as u64)
        .into_iter()
        .map(|q| q as usize)
        .collect();
    (0..positions.len())
        .map(|t| {
            let start = positions[t];
            let end = if t + 1 < positions.len() {
                positions[t + 1]
            } else {
                len
            };
            let (key, origin) = sample[start];
            Candidate {
                key,
                origin,
                weight: (end - start) as u64,
            }
        })
        .collect()
}

/// Runs the two-level splitter selection. Call on **every** node with the
/// node's sorted regular sample (drawn exactly as for the flat path) and
/// the in-core sort kernel, which decides whether merge selects bill as
/// comparisons or key ops. Returns the `p − 1` pivots, their origin ranks
/// (for tie-breaking; see [`take_equal_flags`]) and the per-stage timing
/// — identical pivots and origins on every node.
pub async fn grouped_select_pivots<R: Record>(
    ctx: &mut NodeCtx,
    perf: &PerfVector,
    sample: Vec<R>,
    kernel: SortKernel,
) -> (Vec<R>, Vec<u32>, SplitTiming) {
    let p = ctx.p;
    let rank = ctx.rank;
    if p == 1 {
        return (Vec::new(), Vec::new(), SplitTiming::default());
    }
    debug_assert!(
        sample.windows(2).all(|w| w[0] <= w[1]),
        "regular sample of sorted data must be sorted"
    );
    let key_based = kernel.key_based::<R>();
    let layout = GroupLayout::new(p);
    let gi = layout.group_of(rank);
    let members = layout.members(gi);
    let leader = layout.leader(gi);
    let leaders = layout.leaders();
    let group_label = format!("g{gi}");

    // ---- Level 1: every member distills its sorted sample into
    // OVERSAMPLE·perf weighted candidates, then ships those to the
    // group leader. ----
    let t0 = ctx.charger.now().as_secs();
    let tagged: Vec<(R, u32)> = sample.into_iter().map(|r| (r, rank as u32)).collect();
    let mine = compress_sample(&tagged, OVERSAMPLE * perf.get(rank) as usize);
    ctx.charger.charge_work(Work::moves(mine.len() as u64));
    drop(tagged);
    ctx.set_comm_group(Some(&group_label));
    let gathered = ctx
        .gather_subset(&members, leader, encode_candidates(&mine), TAG_L1_GATHER)
        .await;
    let t1 = ctx.charger.now().as_secs();

    // ---- Level 1: the leader merges its members' candidate lists —
    // O(√p·OVERSAMPLE) candidates, each list already (key, origin)-
    // sorted, so the bill is a group_size-way merge, not a full sort. ----
    let candidates: Option<Vec<Candidate<R>>> = gathered.map(|payloads| {
        let mut cands: Vec<Candidate<R>> = payloads
            .iter()
            .flat_map(|bytes| decode_candidates::<R>(bytes))
            .collect();
        let est = merge_estimate(cands.len() as u64, members.len() as u64, key_based);
        ctx.charger
            .compute(est, || cands.sort_unstable_by_key(|c| (c.key, c.origin)));
        ctx.obs
            .counter_add("split.level1.candidates", cands.len() as u64);
        cands
    });
    let t2 = ctx.charger.now().as_secs();

    // ---- Level 2: leaders → root candidate gather, weighted selection,
    // broadcast back down both levels. ----
    let (pivots, origins) = if rank == leader {
        ctx.set_comm_group(Some("leaders"));
        let cands = candidates.expect("leader compressed its group sample");
        let root = leaders[0];
        let gathered = ctx
            .gather_subset(&leaders, root, encode_candidates(&cands), TAG_L2_GATHER)
            .await;
        let payload = if rank == root {
            let mut all: Vec<Candidate<R>> = gathered
                .expect("root gathers")
                .iter()
                .flat_map(|bytes| decode_candidates::<R>(bytes))
                .collect();
            let est = merge_estimate(all.len() as u64, leaders.len() as u64, key_based);
            ctx.charger
                .compute(est, || all.sort_unstable_by_key(|c| (c.key, c.origin)));
            ctx.obs
                .counter_add("split.level2.candidates", all.len() as u64);
            let (pv, og) = ctx
                .charger
                .compute(Work::comparisons(all.len() as u64 + p as u64), || {
                    select_weighted_pivots(&all, perf)
                });
            encode_pivots(&pv, &og)
        } else {
            Vec::new()
        };
        let payload = ctx
            .broadcast_subset(&leaders, root, payload, TAG_L2_BCAST)
            .await;
        ctx.set_comm_group(Some(&group_label));
        let payload = ctx
            .broadcast_subset(&members, leader, payload, TAG_L1_BCAST)
            .await;
        decode_pivots::<R>(&payload)
    } else {
        let payload = ctx
            .broadcast_subset(&members, leader, Vec::new(), TAG_L1_BCAST)
            .await;
        decode_pivots::<R>(&payload)
    };
    ctx.set_comm_group(None);
    let t3 = ctx.charger.now().as_secs();

    let timing = SplitTiming {
        sample_gather_secs: t1 - t0,
        leader_sort_secs: t2 - t1,
        boundary_exchange_secs: t3 - t2,
    };
    if ctx.obs.is_enabled() {
        ctx.obs
            .gauge_set("split.level1.gather_secs", timing.sample_gather_secs);
        ctx.obs
            .gauge_set("split.level1.sort_secs", timing.leader_sort_secs);
        ctx.obs
            .gauge_set("split.level2.exchange_secs", timing.boundary_exchange_secs);
    }
    debug_assert_eq!(pivots.len(), p - 1);
    (pivots, origins, timing)
}

/// Selects `p − 1` pivots from the root's sorted weighted candidates at
/// the flat selector's cumulative-performance ranks, scaled from the
/// ideal flat sample size `(Σperf)²` into cumulative candidate weight.
/// Candidates are sorted by `(key, origin)`, so consecutive targets give
/// lexicographically nondecreasing `(pivot, origin)` boundaries — the
/// monotonicity the tie-broken partition relies on.
fn select_weighted_pivots<R: Record>(
    sorted: &[Candidate<R>],
    perf: &PerfVector,
) -> (Vec<R>, Vec<u32>) {
    let p = perf.p();
    assert!(
        !sorted.is_empty(),
        "cannot pick pivots from an empty sample"
    );
    let total = perf.total();
    let ideal = (total as u128) * (total as u128);
    let w_total: u128 = sorted.iter().map(|c| c.weight as u128).sum();
    let mut pivots = Vec::with_capacity(p - 1);
    let mut origins = Vec::with_capacity(p - 1);
    // Targets are nondecreasing in j, so one forward walk serves all.
    let mut idx = 0usize;
    let mut cum: u128 = sorted[0].weight as u128;
    for j in 1..p {
        let ideal_rank = (perf.cumulative(j) * total + p as u64 / 2) as u128;
        let target = if w_total == ideal {
            ideal_rank
        } else {
            ideal_rank * w_total / ideal
        };
        // First candidate whose cumulative span covers `target`.
        while cum <= target && idx + 1 < sorted.len() {
            idx += 1;
            cum += sorted[idx].weight as u128;
        }
        pivots.push(sorted[idx].key);
        origins.push(sorted[idx].origin);
    }
    (pivots, origins)
}

/// Tie-break flags for this node: a record equal to pivot `j` routes
/// left of boundary `j` iff this rank is `≤` the pivot's origin rank
/// (the implicit `(key, rank)` comparison of Robust MPS). With every
/// flag `true` the predicate collapses to the flat `x <= pivot`.
pub fn take_equal_flags(rank: usize, origins: &[u32]) -> Vec<bool> {
    origins.iter().map(|&o| rank as u32 <= o).collect()
}

/// Appends one stage-1 frame: `{dest: u32, len: u64, bytes}`.
fn frame_push(out: &mut Vec<u8>, id: u32, bytes: &[u8]) {
    out.extend(id.to_le_bytes());
    out.extend((bytes.len() as u64).to_le_bytes());
    out.extend_from_slice(bytes);
}

/// Parses frames appended by [`frame_push`].
fn frames(bytes: &[u8]) -> Vec<(u32, &[u8])> {
    let mut out = Vec::new();
    let mut at = 0usize;
    while at < bytes.len() {
        let id = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("frame id"));
        let len =
            u64::from_le_bytes(bytes[at + 4..at + 12].try_into().expect("frame len")) as usize;
        at += 12;
        out.push((id, &bytes[at..at + len]));
        at += len;
    }
    out
}

/// Two-level personalized all-to-all: the grouped replacement for the
/// redistribution's flat exchange. `outgoing[j]` is the payload for
/// global rank `j`; the result is indexed by global source rank, exactly
/// like [`NodeCtx::all_to_all`].
///
/// Stage 1 routes every payload to the in-group **relay** responsible
/// for its destination group (`members[dest_group mod group_size]`);
/// stage 2 has each relay combine everything its group produced for one
/// destination into a single framed message. A node therefore exchanges
/// `O(√p)` messages per stage instead of `p − 1`, and the data crosses
/// the network twice — the AMS-sort trade. `record_size` prices the
/// relay's extra copy as record moves.
pub async fn two_level_exchange(
    ctx: &mut NodeCtx,
    outgoing: Vec<Vec<u8>>,
    record_size: usize,
) -> Vec<Vec<u8>> {
    let p = ctx.p;
    let rank = ctx.rank;
    assert_eq!(outgoing.len(), p, "one payload per destination");
    assert!(record_size > 0, "records have positive size");
    let layout = GroupLayout::new(p);
    let my_group = layout.group_of(rank);
    let members = layout.members(my_group);
    let msize = members.len();
    let my_idx = rank - members[0];
    let group_label = format!("g{my_group}");

    // ---- Stage 1: pack each destination's payload into the frame list
    // of the in-group relay that owns the destination's group. ----
    let mut per_relay: Vec<Vec<u8>> = vec![Vec::new(); msize];
    for (dest, bytes) in outgoing.into_iter().enumerate() {
        let relay = layout.group_of(dest) % msize;
        frame_push(&mut per_relay[relay], dest as u32, &bytes);
    }
    ctx.set_comm_group(Some(&group_label));
    let stage1 = ctx
        .all_to_all_subset(&members, per_relay, TAG_ROUTE_1)
        .await;
    ctx.set_comm_group(None);

    // ---- Relay: bucket the received frames by destination. Frames are
    // parsed in member order, so each bucket lists sources ascending. ----
    let mut by_dest: Vec<Vec<(u32, Vec<u8>)>> = vec![Vec::new(); p];
    let mut forwarded = 0u64;
    for (src_idx, buf) in stage1.iter().enumerate() {
        let src = members[src_idx] as u32;
        for (dest, bytes) in frames(buf) {
            if dest as usize != rank {
                forwarded += bytes.len() as u64;
            }
            by_dest[dest as usize].push((src, bytes.to_vec()));
        }
    }
    // The relay copy moves every forwarded record once more.
    ctx.charger
        .charge_work(Work::moves(forwarded / record_size as u64));

    // ---- Stage 2: one combined message per destination I relay for.
    // My destination groups are those hashing to my member index. ----
    for h in (0..layout.groups()).filter(|&h| h % msize == my_idx) {
        for dest in layout.members(h) {
            let mut msg = Vec::new();
            for (src, bytes) in by_dest[dest].drain(..) {
                frame_push(&mut msg, src, &bytes);
            }
            ctx.send(dest, TAG_ROUTE_2, msg);
        }
    }

    // ---- Receive: one message from each source group's relay for my
    // group; unpack frames back into per-source payloads. ----
    let mut incoming: Vec<Vec<u8>> = vec![Vec::new(); p];
    for gs in 0..layout.groups() {
        let relay_members = layout.members(gs);
        let relay = relay_members[my_group % relay_members.len()];
        let msg = ctx.recv_from(relay, TAG_ROUTE_2).await;
        for (src, bytes) in frames(&msg.bytes) {
            incoming[src as usize] = bytes.to_vec();
        }
    }
    incoming
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{run_cluster, ClusterSpec};

    #[test]
    fn layout_is_ceil_balanced_and_contiguous() {
        for p in 1..=70 {
            let l = GroupLayout::new(p);
            let g = l.groups();
            assert!(g * g >= p, "p={p}: g={g} too small");
            assert!(g == 1 || (g - 1) * (g - 1) < p, "p={p}: g={g} too big");
            let cap = l.max_group_size();
            let mut seen = Vec::new();
            for gi in 0..g {
                let m = l.members(gi);
                assert!(!m.is_empty() || p < g);
                assert!(m.len() <= cap, "p={p} group {gi} exceeds ceil size");
                assert_eq!(l.leader(gi), m[0]);
                for &r in &m {
                    assert_eq!(l.group_of(r), gi, "p={p} rank {r}");
                }
                seen.extend(m);
            }
            assert_eq!(seen, (0..p).collect::<Vec<_>>(), "p={p} not a partition");
        }
    }

    #[test]
    fn layout_known_shapes() {
        let l = GroupLayout::new(4);
        assert_eq!(l.groups(), 2);
        assert_eq!(l.members(0), vec![0, 1]);
        assert_eq!(l.members(1), vec![2, 3]);
        let l = GroupLayout::new(256);
        assert_eq!(l.groups(), 16);
        assert!(l.members(0).len() == 16);
        let l = GroupLayout::new(1024);
        assert_eq!(l.groups(), 32);
        assert_eq!(l.max_group_size(), 32);
        // Non-square p: ceil-balanced split.
        let l = GroupLayout::new(10);
        assert_eq!(l.groups(), 4);
        let sizes: Vec<usize> = (0..4).map(|gi| l.group_size(gi)).collect();
        assert_eq!(sizes, vec![3, 3, 2, 2]);
    }

    #[test]
    fn compress_preserves_total_weight() {
        let sample: Vec<(u32, u32)> = (0..1000).map(|i| (i, i % 7)).collect();
        for limit in [1usize, 3, 24, 999, 1000, 5000] {
            let cands = compress_sample(&sample, limit);
            assert!(cands.len() <= limit.min(1000));
            assert_eq!(cands.iter().map(|c| c.weight).sum::<u64>(), 1000);
            assert!(cands
                .windows(2)
                .all(|w| (w[0].key, w[0].origin) <= (w[1].key, w[1].origin)));
        }
    }

    #[test]
    fn candidate_codec_roundtrip() {
        let cands: Vec<Candidate<u32>> = (0..17)
            .map(|i| Candidate {
                key: i * 3,
                origin: i,
                weight: i as u64 + 1,
            })
            .collect();
        let bytes = encode_candidates(&cands);
        let back = decode_candidates::<u32>(&bytes);
        assert_eq!(back.len(), cands.len());
        for (a, b) in cands.iter().zip(&back) {
            assert_eq!((a.key, a.origin, a.weight), (b.key, b.origin, b.weight));
        }
        let (pv, og) = decode_pivots::<u32>(&encode_pivots(&[5u32, 9], &[1, 3]));
        assert_eq!(pv, vec![5, 9]);
        assert_eq!(og, vec![1, 3]);
    }

    #[test]
    fn weighted_selection_matches_flat_on_unit_weights() {
        // Unit-weight candidates are exactly the flat sample, so the
        // weighted selector must reproduce `select_pivots` keys.
        let perf = PerfVector::paper_1144();
        let total = perf.total();
        let sample: Vec<u32> = (0..(total * total) as u32).collect();
        let cands: Vec<Candidate<u32>> = sample
            .iter()
            .map(|&k| Candidate {
                key: k,
                origin: 0,
                weight: 1,
            })
            .collect();
        let (pv, _) = select_weighted_pivots(&cands, &perf);
        assert_eq!(pv, crate::pivots::select_pivots(&sample, &perf));
    }

    #[test]
    fn weighted_boundaries_are_monotone() {
        let perf = PerfVector::new(vec![3, 1, 2, 2, 1]);
        let cands: Vec<Candidate<u32>> = (0..40)
            .map(|i| Candidate {
                key: (i / 3) as u32, // runs of duplicates
                origin: (i % 5) as u32,
                weight: 1 + (i % 4) as u64,
            })
            .collect();
        let (pv, og) = select_weighted_pivots(&cands, &perf);
        assert_eq!(pv.len(), 4);
        assert!(pv
            .iter()
            .zip(&og)
            .zip(pv.iter().zip(&og).skip(1))
            .all(|((k0, o0), (k1, o1))| (k0, o0) <= (k1, o1)));
    }

    #[test]
    fn take_equal_matches_origin_rule() {
        let flags = take_equal_flags(2, &[1, 2, 3]);
        assert_eq!(flags, vec![false, true, true]);
        // All-true flags reproduce the flat predicate everywhere.
        assert!(take_equal_flags(0, &[5, 5]).iter().all(|&t| t));
    }

    #[test]
    fn two_level_exchange_matches_flat_all_to_all() {
        for p in [2usize, 3, 4, 5, 9, 12] {
            let spec = ClusterSpec::homogeneous(p);
            let report = run_cluster(&spec, async move |ctx| {
                let me = ctx.rank;
                // Distinct payload per (src, dest), empties included.
                let outgoing: Vec<Vec<u8>> = (0..ctx.p)
                    .map(|j| {
                        if (me + j) % 3 == 0 {
                            Vec::new()
                        } else {
                            vec![me as u8, j as u8, 0xAB, (me * j) as u8]
                        }
                    })
                    .collect();
                two_level_exchange(ctx, outgoing, 1).await
            });
            for (dest, node) in report.nodes.iter().enumerate() {
                for src in 0..p {
                    let expect: Vec<u8> = if (src + dest) % 3 == 0 {
                        Vec::new()
                    } else {
                        vec![src as u8, dest as u8, 0xAB, (src * dest) as u8]
                    };
                    assert_eq!(node.value[src], expect, "p={p} {src}->{dest}");
                }
            }
        }
    }

    #[test]
    fn two_level_exchange_caps_message_fan_in() {
        // At p = 16 (4 groups of 4) every node sends at most ~2√p
        // point-to-point messages instead of p − 1.
        let p = 16;
        let spec = ClusterSpec::homogeneous(p);
        let report = run_cluster(&spec, async move |ctx| {
            let before = ctx.sent_messages();
            let outgoing: Vec<Vec<u8>> = (0..ctx.p).map(|j| vec![j as u8; 8]).collect();
            let _ = two_level_exchange(ctx, outgoing, 1).await;
            ctx.sent_messages() - before
        });
        for node in &report.nodes {
            assert!(
                node.value <= 2 * 4,
                "node sent {} messages, want ≤ 2√p = 8",
                node.value
            );
        }
    }

    #[test]
    fn grouped_pivots_identical_on_every_node() {
        let p = 9;
        let spec = ClusterSpec::homogeneous(p);
        let perf = PerfVector::homogeneous(p);
        let report = run_cluster(&spec, async move |ctx| {
            let base = (ctx.rank as u32) * 100;
            let sample: Vec<u32> = (0..perf.get(ctx.rank) * perf.total())
                .map(|i| base + i as u32)
                .collect();
            let pv = PerfVector::homogeneous(ctx.p);
            grouped_select_pivots(ctx, &pv, sample, SortKernel::default()).await
        });
        let (p0, o0, _) = &report.nodes[0].value;
        assert_eq!(p0.len(), p - 1);
        for node in &report.nodes {
            let (pv, og, _) = &node.value;
            assert_eq!(pv, p0, "pivots must agree");
            assert_eq!(og, o0, "origins must agree");
        }
    }
}
