//! The performance vector and Equation 2 arithmetic.
//!
//! `perf[i]` is node `i`'s relative speed; the paper requires the input
//! size to satisfy
//!
//! ```text
//! n = k · lcm(perf) · (perf[0] + … + perf[p−1])          (Equation 2)
//! ```
//!
//! so that every share `l_i = n · perf[i] / Σ perf` is a whole multiple of
//! `lcm(perf)` and the regular-sampling positions land on integers. The
//! paper pads its heterogeneous experiment from 16 777 216 to 16 777 220
//! for exactly this reason; [`PerfVector::padded_size`] does the same.

use std::fmt;

/// A validated performance vector.
///
/// ```
/// use hetsort::PerfVector;
///
/// // The paper's worked example: perf {8,5,3,1} → lcm 120, n = 2040.
/// let pv = PerfVector::new(vec![8, 5, 3, 1]);
/// assert_eq!(pv.lcm(), 120);
/// assert_eq!(pv.padded_size(2000), 2040);
/// assert_eq!(pv.shares(2040), vec![960, 600, 360, 120]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PerfVector {
    perf: Vec<u64>,
}

/// Greatest common divisor.
fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Least common multiple (checked; panics on overflow, which would need
/// absurd perf values).
fn lcm(a: u64, b: u64) -> u64 {
    a / gcd(a, b) * b
}

impl PerfVector {
    /// Creates a performance vector.
    ///
    /// # Panics
    /// Panics if `perf` is empty or contains zeros.
    pub fn new(perf: Vec<u64>) -> Self {
        assert!(!perf.is_empty(), "perf vector must be non-empty");
        assert!(
            perf.iter().all(|&x| x > 0),
            "perf entries must be positive: {perf:?}"
        );
        PerfVector { perf }
    }

    /// The homogeneous vector of `p` ones.
    pub fn homogeneous(p: usize) -> Self {
        Self::new(vec![1; p])
    }

    /// The paper's experimental vector `{1, 1, 4, 4}` (two loaded nodes,
    /// two 4×-faster nodes).
    pub fn paper_1144() -> Self {
        Self::new(vec![1, 1, 4, 4])
    }

    /// Number of nodes.
    pub fn p(&self) -> usize {
        self.perf.len()
    }

    /// Node `i`'s entry.
    pub fn get(&self, i: usize) -> u64 {
        self.perf[i]
    }

    /// The raw entries.
    pub fn as_slice(&self) -> &[u64] {
        &self.perf
    }

    /// `Σ perf`.
    pub fn total(&self) -> u64 {
        self.perf.iter().sum()
    }

    /// `lcm(perf)`.
    pub fn lcm(&self) -> u64 {
        self.perf.iter().copied().fold(1, lcm)
    }

    /// Whether the vector is all-equal (the homogeneous case).
    pub fn is_homogeneous(&self) -> bool {
        self.perf.iter().all(|&x| x == self.perf[0])
    }

    /// An equivalent vector with entries divided by their gcd (e.g.
    /// `{2,2,8,8} → {1,1,4,4}`); shares and pivot ranks are unchanged.
    #[must_use]
    pub fn normalized(&self) -> PerfVector {
        let g = self.perf.iter().copied().fold(0, gcd).max(1);
        PerfVector::new(self.perf.iter().map(|&x| x / g).collect())
    }

    /// The Equation 2 granule: `lcm(perf) · Σ perf`. Valid sizes are
    /// positive multiples of this.
    pub fn granule(&self) -> u64 {
        self.lcm() * self.total()
    }

    /// Does `n` satisfy Equation 2?
    pub fn is_valid_size(&self, n: u64) -> bool {
        n > 0 && n.is_multiple_of(self.granule())
    }

    /// The smallest Equation-2-valid size ≥ `n` (the paper's padding:
    /// 16 777 216 → 16 777 220 for `{1,1,4,4}`).
    pub fn padded_size(&self, n: u64) -> u64 {
        let g = self.granule();
        n.max(1).div_ceil(g) * g
    }

    /// Node `i`'s share `l_i = n · perf[i] / Σ perf`.
    ///
    /// # Panics
    /// Panics if `n` violates Equation 2.
    pub fn share(&self, i: usize, n: u64) -> u64 {
        assert!(
            self.is_valid_size(n),
            "input size {n} violates Equation 2 (granule {})",
            self.granule()
        );
        n / self.total() * self.perf[i]
    }

    /// All shares; they sum to exactly `n`.
    pub fn shares(&self, n: u64) -> Vec<u64> {
        (0..self.p()).map(|i| self.share(i, n)).collect()
    }

    /// Cumulative perf before node `i` (`Σ_{j<i} perf[j]`), used for pivot
    /// ranks.
    pub fn cumulative(&self, i: usize) -> u64 {
        self.perf[..i].iter().sum()
    }
}

impl fmt::Display for PerfVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, x) in self.perf.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{x}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_8531() {
        // perf {8,5,3,1}: lcm 120; with k = 1, n = 120·17 = 2040.
        let pv = PerfVector::new(vec![8, 5, 3, 1]);
        assert_eq!(pv.lcm(), 120);
        assert_eq!(pv.total(), 17);
        assert_eq!(pv.granule(), 2040);
        assert!(pv.is_valid_size(2040));
        assert_eq!(pv.shares(2040), vec![960, 600, 360, 120]);
        // n = 120 + 3·120 + 5·120 + 8·120 = 2040 as in the paper.
        assert_eq!(pv.shares(2040).iter().sum::<u64>(), 2040);
    }

    #[test]
    fn paper_padding_1144() {
        // The paper pads 2^24 to 16 777 220 for perf {1,1,4,4} (lcm 4,
        // total 10, granule 40).
        let pv = PerfVector::paper_1144();
        assert_eq!(pv.granule(), 40);
        assert_eq!(pv.padded_size(16_777_216), 16_777_240);
        assert!(pv.is_valid_size(16_777_240));
        // The paper's own 16 777 220 is NOT a granule multiple (220/40 =
        // 419 430.5); it is divisible by total=10 only. Our stricter
        // Equation 2 keeps shares lcm-aligned; see DESIGN.md.
        assert!(!pv.is_valid_size(16_777_220));
        let shares = pv.shares(16_777_240);
        assert_eq!(shares, vec![1_677_724, 1_677_724, 6_710_896, 6_710_896]);
    }

    #[test]
    fn homogeneous_shares_are_equal() {
        let pv = PerfVector::homogeneous(4);
        assert_eq!(pv.granule(), 4);
        assert!(pv.is_valid_size(16_777_216));
        assert_eq!(pv.shares(100), vec![25; 4]);
        assert!(pv.is_homogeneous());
    }

    #[test]
    fn padded_size_is_minimal_and_valid() {
        let pv = PerfVector::new(vec![2, 3]);
        let g = pv.granule(); // lcm 6 · total 5 = 30
        assert_eq!(g, 30);
        for n in [1u64, 29, 30, 31, 59, 60, 1000] {
            let padded = pv.padded_size(n);
            assert!(padded >= n);
            assert!(pv.is_valid_size(padded));
            assert!(padded - n < g, "padding overshot");
        }
    }

    #[test]
    fn shares_sum_to_n() {
        let pv = PerfVector::new(vec![1, 2, 3, 4, 5]);
        let n = pv.padded_size(1_000_000);
        assert_eq!(pv.shares(n).iter().sum::<u64>(), n);
    }

    #[test]
    fn normalization() {
        let pv = PerfVector::new(vec![2, 2, 8, 8]);
        assert_eq!(pv.normalized(), PerfVector::paper_1144());
        let n = 80; // valid for both? granule {2,2,8,8}: lcm 8 · 20 = 160.
        assert!(!pv.is_valid_size(n));
        assert!(pv.is_valid_size(160));
        // Shares agree on a commonly valid size.
        let m = 160;
        assert_eq!(
            pv.shares(m),
            PerfVector::paper_1144()
                .shares(m * 4)
                .iter()
                .map(|x| x / 4)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn cumulative_prefix_sums() {
        let pv = PerfVector::new(vec![1, 1, 4, 4]);
        assert_eq!(pv.cumulative(0), 0);
        assert_eq!(pv.cumulative(1), 1);
        assert_eq!(pv.cumulative(2), 2);
        assert_eq!(pv.cumulative(3), 6);
    }

    #[test]
    #[should_panic(expected = "Equation 2")]
    fn invalid_size_rejected_by_share() {
        let pv = PerfVector::paper_1144();
        let _ = pv.share(0, 41);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_rejected() {
        let _ = PerfVector::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_entry_rejected() {
        let _ = PerfVector::new(vec![1, 0]);
    }
}
