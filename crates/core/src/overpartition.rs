//! Sorting by overpartitioning (Li & Sevcik, SPAA '94), adapted to
//! heterogeneous performance vectors.
//!
//! The paper's §3.3 comparison point: instead of sorting first and sampling
//! regularly, draw **random** pivot candidates from the *unsorted* data and
//! cut it into `s·p` small sublists (`s` = the overpartitioning factor).
//! Contiguous groups of sublists are then assigned to processors so that
//! group loads track the performance vector, and each processor sorts what
//! it received — the only sequential sort in the algorithm.
//!
//! Its advantage is skipping the initial sort; its weakness — the one the
//! paper cites as the reason to prefer PSRS — is load balance: random
//! pivots make uneven sublists, and Li & Sevcik themselves report sublist
//! expansions around 1.3 where PSRS achieves a few percent. The ablation
//! bench `ablation_pivots` reproduces that gap.

use std::time::Instant;

use cluster::charge::Work;
use cluster::{NodeCtx, Tag};
use extsort::{sort_chunk, ExtSortConfig, SortKernel, SortReport};
use pdm::{record, PdmResult, Record};

use crate::perf::PerfVector;
use crate::sampling::random_positions;

/// Tag for overpartitioning data chunks.
const TAG_BUCKET_DATA: Tag = Tag(0x0200);

/// Configuration shared by the in-core and external variants.
#[derive(Debug, Clone)]
pub struct OverpartitionConfig {
    /// Declared performance vector (group-load targets).
    pub perf: PerfVector,
    /// Overpartitioning factor `s`: the data is cut into `s·p` sublists.
    pub oversampling: u64,
    /// Random pivot candidates drawn per unit of performance (candidate
    /// count on node `i` is `candidates_per_unit · perf[i]`).
    pub candidates_per_unit: u64,
}

impl OverpartitionConfig {
    /// Li & Sevcik's typical setting: `s = 4`, a healthy candidate pool.
    pub fn new(perf: PerfVector) -> Self {
        OverpartitionConfig {
            perf,
            oversampling: 4,
            candidates_per_unit: 64,
        }
    }

    /// Sets `s` (builder style).
    #[must_use]
    pub fn with_oversampling(mut self, s: u64) -> Self {
        assert!(s >= 1, "oversampling factor must be >= 1");
        self.oversampling = s;
        self
    }

    /// Total sublists `s·p`.
    pub fn sublists(&self) -> usize {
        (self.oversampling as usize) * self.perf.p()
    }
}

/// Chooses `s·p − 1` pivots: gathers random candidates on node 0, sorts
/// them and takes evenly spaced quantiles. Returns the pivots on every
/// node.
async fn choose_random_pivots<R: Record>(
    ctx: &mut NodeCtx,
    cfg: &OverpartitionConfig,
    draw: impl FnOnce(&mut NodeCtx, u64) -> PdmResult<Vec<R>>,
) -> PdmResult<Vec<R>> {
    let count = cfg.candidates_per_unit * cfg.perf.get(ctx.rank);
    let candidates = draw(ctx, count)?;
    let gathered = ctx.gather(0, record::encode_all(&candidates)).await;
    let pivots: Vec<R> = if ctx.rank == 0 {
        let mut all: Vec<R> = gathered
            .expect("root gathers")
            .iter()
            .flat_map(|b| record::decode_all::<R>(b))
            .collect();
        let t0 = Instant::now();
        let kw = sort_chunk(&mut all, SortKernel::default());
        ctx.charger.charge_section(
            Work {
                comparisons: kw.comparisons,
                key_ops: kw.key_ops,
                moves: all.len() as u64,
            },
            t0.elapsed(),
        );
        let cuts = cfg.sublists() as u64 - 1;
        let pivots: Vec<R> = if all.is_empty() {
            Vec::new()
        } else {
            (1..=cuts)
                .map(|q| {
                    all[((q * all.len() as u64) / (cuts + 1)).min(all.len() as u64 - 1) as usize]
                })
                .collect()
        };
        ctx.broadcast(0, record::encode_all(&pivots)).await;
        pivots
    } else {
        record::decode_all(&ctx.broadcast(0, Vec::new()).await)
    };
    Ok(pivots)
}

/// Greedy contiguous assignment: walks the sublists in key order and closes
/// node `j`'s group once its load reaches the proportional target. Returns
/// for each sublist the owning node. Keys stay contiguous per node, so
/// concatenating node outputs by rank is globally sorted.
pub fn assign_sublists(global_sizes: &[u64], perf: &PerfVector) -> Vec<usize> {
    let p = perf.p();
    let m = global_sizes.len();
    let n: u64 = global_sizes.iter().sum();
    let total = perf.total();
    let mut owner = vec![0usize; m];
    let mut node = 0usize;
    let mut in_group = 0u64; // sublists in the current node's group
    let mut cum_load = 0u64; // records assigned so far (all groups)
    for (b, &sz) in global_sizes.iter().enumerate() {
        if node + 1 < p && in_group > 0 {
            let remaining = m - b;
            let nodes_after = p - 1 - node;
            // Advance when the cumulative target for this node's prefix is
            // met, or when staying would starve a later node of its one
            // guaranteed sublist.
            let cum_target = n * perf.cumulative(node + 1) / total;
            if cum_load >= cum_target || remaining <= nodes_after {
                node += 1;
                in_group = 0;
            }
        }
        owner[b] = node;
        in_group += 1;
        cum_load += sz;
    }
    owner
}

/// Per-node outcome of an overpartitioning run.
#[derive(Debug)]
pub struct OverpartitionOutcome<R> {
    /// This node's final sorted portion (in-core variant).
    pub sorted: Vec<R>,
    /// Records received.
    pub received: u64,
    /// The number of sublists this run used.
    pub sublists: usize,
}

/// In-core sorting by overpartitioning. Node outputs concatenated by rank
/// form the sorted input.
pub async fn overpartition_incore<R: Record>(
    ctx: &mut NodeCtx,
    cfg: &OverpartitionConfig,
    local: Vec<R>,
) -> PdmResult<OverpartitionOutcome<R>> {
    assert_eq!(cfg.perf.p(), ctx.p, "perf vector must cover every node");
    let p = ctx.p;
    let sublists = cfg.sublists();

    // Random candidates from the *unsorted* local data — no initial sort.
    let pivots = choose_random_pivots::<R>(ctx, cfg, |ctx, count| {
        let pos = random_positions(local.len() as u64, count, &mut ctx.rng);
        Ok(pos.iter().map(|&q| local[q as usize]).collect())
    })
    .await?;
    ctx.mark_phase("pivots");

    // Classify each record into its sublist (binary search over pivots:
    // ~log2(s·p) comparisons per record).
    let mut buckets: Vec<Vec<R>> = vec![Vec::new(); sublists];
    let est = Work {
        comparisons: local.len() as u64 * (usize::BITS - sublists.leading_zeros()) as u64,
        key_ops: 0,
        moves: local.len() as u64,
    };
    ctx.charger.compute(est, || {
        for &x in &local {
            let b = pivots.partition_point(|pv| *pv < x);
            buckets[b].push(x);
        }
    });

    // Everyone learns global sublist sizes; node 0 computes the contiguous
    // assignment and broadcasts it.
    let my_sizes: Vec<u64> = buckets.iter().map(|b| b.len() as u64).collect();
    let gathered = ctx.gather(0, encode_u64s(&my_sizes)).await;
    let owners: Vec<usize> = if ctx.rank == 0 {
        let mut global = vec![0u64; sublists];
        for payload in gathered.expect("root gathers") {
            for (g, v) in global.iter_mut().zip(decode_u64s(&payload)) {
                *g += v;
            }
        }
        let owners = assign_sublists(&global, &cfg.perf);
        ctx.broadcast(0, encode_usizes(&owners)).await;
        owners
    } else {
        decode_usizes(&ctx.broadcast(0, Vec::new()).await)
    };
    ctx.mark_phase("assign");

    // Route buckets to their owners.
    let mut outgoing: Vec<Vec<R>> = vec![Vec::new(); p];
    for (b, bucket) in buckets.into_iter().enumerate() {
        outgoing[owners[b]].extend(bucket);
    }
    ctx.charger.charge_work(Work::moves(local.len() as u64));
    let incoming = ctx
        .all_to_all(outgoing.iter().map(|v| record::encode_all(v)).collect())
        .await;
    ctx.mark_phase("redistribute");

    // The single sequential sort of the algorithm.
    let mut sorted: Vec<R> = incoming
        .iter()
        .flat_map(|b| record::decode_all::<R>(b))
        .collect();
    let t0 = Instant::now();
    let kw = sort_chunk(&mut sorted, SortKernel::default());
    ctx.charger.charge_section(
        Work {
            comparisons: kw.comparisons,
            key_ops: kw.key_ops,
            moves: sorted.len() as u64,
        },
        t0.elapsed(),
    );
    ctx.mark_phase("sort");

    Ok(OverpartitionOutcome {
        received: sorted.len() as u64,
        sorted,
        sublists,
    })
}

/// External (out-of-core) sorting by overpartitioning: classify the
/// unsorted input file into `s·p` bucket files, route whole buckets to
/// their owners, then polyphase-sort the received data. `input`/`output`
/// name per-node disk files.
pub async fn overpartition_external<R: Record>(
    ctx: &mut NodeCtx,
    cfg: &OverpartitionConfig,
    mem_records: usize,
    tapes: usize,
    msg_records: usize,
    input: &str,
    output: &str,
) -> PdmResult<OverpartitionOutcome<R>> {
    assert_eq!(cfg.perf.p(), ctx.p, "perf vector must cover every node");
    let p = ctx.p;
    let rank = ctx.rank;
    let sublists = cfg.sublists();
    let bucket_prefix = "ovp.bucket";
    let recv_name = "ovp.recv";

    // Random candidates via metered random reads of the unsorted file.
    let pivots = choose_random_pivots::<R>(ctx, cfg, |ctx, count| {
        let mut rd = ctx.disk.open_reader::<R>(input)?;
        let pos = random_positions(rd.len(), count, &mut ctx.rng);
        pos.iter().map(|&q| rd.read_at(q)).collect()
    })
    .await?;
    ctx.mark_phase("pivots");

    // Classify the input stream into s·p bucket files.
    let mut rd = ctx.disk.open_reader::<R>(input)?;
    let mut writers = (0..sublists)
        .map(|b| ctx.disk.create_writer::<R>(&format!("{bucket_prefix}{b}")))
        .collect::<PdmResult<Vec<_>>>()?;
    let mut my_sizes = vec![0u64; sublists];
    let n_local = rd.len();
    let t0 = Instant::now();
    while let Some(x) = rd.next_record()? {
        let b = pivots.partition_point(|pv| *pv < x);
        writers[b].push(x)?;
        my_sizes[b] += 1;
    }
    for w in writers {
        w.finish()?;
    }
    drop(rd);
    ctx.charger.charge_section(
        Work {
            comparisons: n_local * (usize::BITS - sublists.leading_zeros()) as u64,
            key_ops: 0,
            moves: n_local,
        },
        t0.elapsed(),
    );
    ctx.mark_phase("classify");

    // Global sizes → contiguous assignment (same logic as in-core).
    let gathered = ctx.gather(0, encode_u64s(&my_sizes)).await;
    let owners: Vec<usize> = if rank == 0 {
        let mut global = vec![0u64; sublists];
        for payload in gathered.expect("root gathers") {
            for (g, v) in global.iter_mut().zip(decode_u64s(&payload)) {
                *g += v;
            }
        }
        let owners = assign_sublists(&global, &cfg.perf);
        ctx.broadcast(0, encode_usizes(&owners)).await;
        owners
    } else {
        decode_usizes(&ctx.broadcast(0, Vec::new()).await)
    };
    ctx.mark_phase("assign");

    // Announce per-destination totals, then stream buckets to their owners.
    let mut dest_totals = vec![0u64; p];
    for (b, &o) in owners.iter().enumerate() {
        dest_totals[o] += my_sizes[b];
    }
    let incoming_sizes: Vec<u64> = ctx
        .all_to_all(
            dest_totals
                .iter()
                .map(|&s| s.to_le_bytes().to_vec())
                .collect(),
        )
        .await
        .iter()
        .map(|b| u64::from_le_bytes(b.as_slice().try_into().expect("8-byte size")))
        .collect();

    let mut recv_writer = ctx.disk.create_writer::<R>(recv_name)?;
    for (b, &dest) in owners.iter().enumerate() {
        let name = format!("{bucket_prefix}{b}");
        let mut rd = ctx.disk.open_reader::<R>(&name)?;
        if dest == rank {
            // Keep locally (still one read+write pass, like a real move).
            while let Some(x) = rd.next_record()? {
                recv_writer.push(x)?;
            }
        } else {
            let mut chunk: Vec<R> = Vec::with_capacity(msg_records);
            loop {
                chunk.clear();
                while chunk.len() < msg_records {
                    match rd.next_record()? {
                        Some(x) => chunk.push(x),
                        None => break,
                    }
                }
                if chunk.is_empty() {
                    break;
                }
                ctx.charger.charge_work(Work::moves(chunk.len() as u64));
                ctx.send_records(dest, TAG_BUCKET_DATA, &chunk);
            }
        }
        drop(rd);
        ctx.disk.remove(&name)?;
    }
    // Chunking is per *bucket*, so the message count per destination is not
    // derivable from the totals alone; an empty message terminates each
    // sender's stream.
    for j in (0..p).filter(|&j| j != rank) {
        ctx.send_records::<R>(j, TAG_BUCKET_DATA, &[]);
    }
    for i in (0..p).filter(|&i| i != rank) {
        let mut got = 0u64;
        loop {
            let records: Vec<R> = ctx.recv_records(i, TAG_BUCKET_DATA).await;
            if records.is_empty() {
                break;
            }
            got += records.len() as u64;
            ctx.charger.charge_work(Work::moves(records.len() as u64));
            recv_writer.push_all(&records)?;
        }
        debug_assert_eq!(got, incoming_sizes[i], "bucket bytes lost from node {i}");
    }
    let received = recv_writer.finish()?;
    ctx.mark_phase("redistribute");

    // The single external sort, on the received (unsorted) data.
    let sort_cfg = ExtSortConfig::new(mem_records).with_tapes(tapes);
    let t0 = Instant::now();
    let report: SortReport =
        extsort::polyphase_sort::<R>(&ctx.disk, recv_name, output, "ovp", &sort_cfg)?;
    ctx.charger.charge_section(
        Work {
            comparisons: report.comparisons,
            key_ops: report.key_ops,
            moves: report.records * (report.merge_phases as u64 + 1),
        },
        t0.elapsed(),
    );
    ctx.disk.remove(recv_name)?;
    ctx.mark_phase("sort");

    Ok(OverpartitionOutcome {
        sorted: Vec::new(),
        received,
        sublists,
    })
}

fn encode_u64s(xs: &[u64]) -> Vec<u8> {
    xs.iter().flat_map(|x| x.to_le_bytes()).collect()
}

fn decode_u64s(bytes: &[u8]) -> Vec<u64> {
    bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

fn encode_usizes(xs: &[usize]) -> Vec<u8> {
    encode_u64s(&xs.iter().map(|&x| x as u64).collect::<Vec<_>>())
}

fn decode_usizes(bytes: &[u8]) -> Vec<usize> {
    decode_u64s(bytes).into_iter().map(|x| x as usize).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{run_cluster, ClusterSpec};
    use workloads::{generate_block, generate_to_disk, Benchmark, Layout};

    #[test]
    fn assign_sublists_contiguous_and_balanced() {
        let perf = PerfVector::homogeneous(4);
        let sizes = vec![10u64; 16]; // 16 equal sublists, 4 nodes
        let owners = assign_sublists(&sizes, &perf);
        // Contiguous and non-decreasing.
        assert!(owners.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*owners.last().unwrap(), 3);
        // Equal split: 4 sublists each.
        for node in 0..4 {
            assert_eq!(owners.iter().filter(|&&o| o == node).count(), 4);
        }
    }

    #[test]
    fn assign_sublists_heterogeneous_targets() {
        let perf = PerfVector::paper_1144();
        let sizes = vec![5u64; 40];
        let owners = assign_sublists(&sizes, &perf);
        assert!(owners.windows(2).all(|w| w[0] <= w[1]));
        let mut loads = [0u64; 4];
        for (b, &o) in owners.iter().enumerate() {
            loads[o] += sizes[b];
        }
        // Targets 20,20,80,80 of 200; greedy quantization within one sublist.
        assert!(loads[2] > loads[0]);
        assert_eq!(loads.iter().sum::<u64>(), 200);
    }

    #[test]
    fn assign_gives_every_node_work_when_possible() {
        let perf = PerfVector::homogeneous(3);
        let sizes = vec![100u64, 1, 1];
        let owners = assign_sublists(&sizes, &perf);
        // 3 sublists, 3 nodes: everyone gets exactly one.
        assert_eq!(owners, vec![0, 1, 2]);
    }

    #[test]
    fn incore_sorts_correctly() {
        let spec = ClusterSpec::homogeneous(4);
        let perf = PerfVector::homogeneous(4);
        let n = perf.padded_size(4000);
        let shares = perf.shares(n);
        let layouts = Layout::cluster(&shares);
        let cfg = OverpartitionConfig::new(perf.clone());
        let report = run_cluster(&spec, async move |ctx| {
            let local = generate_block(Benchmark::Uniform, 8, layouts[ctx.rank]);
            overpartition_incore(ctx, &cfg, local).await.unwrap().sorted
        });
        let flat: Vec<u32> = report
            .nodes
            .iter()
            .flat_map(|n| n.value.iter().copied())
            .collect();
        assert_eq!(flat.len() as u64, n);
        assert!(flat.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn incore_heterogeneous_expansion_reasonable() {
        let spec = ClusterSpec::new(vec![1, 1, 4, 4]);
        let perf = PerfVector::paper_1144();
        let n = perf.padded_size(20_000);
        let shares = perf.shares(n);
        let layouts = Layout::cluster(&shares);
        let cfg = OverpartitionConfig::new(perf.clone()).with_oversampling(8);
        let report = run_cluster(&spec, async move |ctx| {
            let local = generate_block(Benchmark::Uniform, 9, layouts[ctx.rank]);
            overpartition_incore(ctx, &cfg, local)
                .await
                .unwrap()
                .sorted
                .len() as u64
        });
        let sizes: Vec<u64> = report.nodes.iter().map(|n| n.value).collect();
        let lb = crate::metrics::LoadBalance::new(sizes, &perf);
        // Weaker than PSRS but bounded; Li & Sevcik live around 1.3.
        assert!(lb.expansion() < 2.5, "expansion {}", lb.expansion());
    }

    #[test]
    fn external_sorts_correctly() {
        let spec = ClusterSpec::homogeneous(3).with_block_bytes(64);
        let perf = PerfVector::homogeneous(3);
        let n = perf.padded_size(3000);
        let shares = perf.shares(n);
        let layouts = Layout::cluster(&shares);
        let cfg = OverpartitionConfig::new(perf.clone());
        let report = run_cluster(&spec, async move |ctx| {
            generate_to_disk(&ctx.disk, "in", Benchmark::Gaussian, 10, layouts[ctx.rank]).unwrap();
            let out = overpartition_external::<u32>(ctx, &cfg, 256, 4, 64, "in", "out")
                .await
                .unwrap();
            assert!(extsort::is_sorted_file::<u32>(&ctx.disk, "out").unwrap());
            (out.received, ctx.disk.read_file::<u32>("out").unwrap())
        });
        let flat: Vec<u32> = report
            .nodes
            .iter()
            .flat_map(|n| n.value.1.iter().copied())
            .collect();
        assert_eq!(flat.len() as u64, n);
        assert!(flat.windows(2).all(|w| w[0] <= w[1]), "global order broken");
        for node in &report.nodes {
            assert_eq!(node.value.0 as usize, node.value.1.len());
        }
    }

    #[test]
    fn u64_codecs_roundtrip() {
        let xs = vec![0u64, 1, u64::MAX, 42];
        assert_eq!(decode_u64s(&encode_u64s(&xs)), xs);
        let us = vec![0usize, 7, 1000];
        assert_eq!(decode_usizes(&encode_usizes(&us)), us);
    }
}
