//! Partitioning sorted data at the pivots.
//!
//! Records `x` with `x <= pivot[0]` go to partition 0, `pivot[j-1] < x <=
//! pivot[j]` to partition `j`, and everything above the last pivot to
//! partition `p−1`. For *sorted* data the partitions are contiguous ranges,
//! found by binary search in-core ([`partition_ranges`]) or by a single
//! streaming pass with pivot advancement out-of-core
//! ([`partition_file_streaming`] — the paper's step 3, `2·Q/B` I/Os).

use pdm::{Disk, PdmResult, Record};

/// Partition boundaries of a **sorted** slice: returns `p+1` cut indices
/// (`cuts[0] = 0`, `cuts[p] = len`); partition `j` is `data[cuts[j]..cuts[j+1]]`.
pub fn partition_ranges<R: Record>(sorted: &[R], pivots: &[R]) -> Vec<usize> {
    partition_ranges_tiebreak(sorted, pivots, &vec![true; pivots.len()])
}

/// [`partition_ranges`] with per-pivot duplicate tie-breaking: a record
/// equal to `pivots[j]` stays left of cut `j` iff `take_equal[j]` (the
/// grouped splitter sets it from the pivot's origin rank; all-`true`
/// reproduces the flat `x <= pivot` rule). Requires `(pivot, take)`
/// boundaries nondecreasing — `take` may only turn on as equal pivots
/// repeat, which the origin-sorted selection guarantees.
pub fn partition_ranges_tiebreak<R: Record>(
    sorted: &[R],
    pivots: &[R],
    take_equal: &[bool],
) -> Vec<usize> {
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "data must be sorted"
    );
    debug_assert!(
        pivots.windows(2).all(|w| w[0] <= w[1]),
        "pivots must be sorted"
    );
    debug_assert_eq!(pivots.len(), take_equal.len());
    let mut cuts = Vec::with_capacity(pivots.len() + 2);
    cuts.push(0);
    for (pv, &take) in pivots.iter().zip(take_equal) {
        // Upper bound: first index whose element routes right.
        let cut = sorted.partition_point(|x| x < pv || (x == pv && take));
        cuts.push(cut.max(*cuts.last().unwrap()));
    }
    cuts.push(sorted.len());
    cuts
}

/// Does `x` route past the boundary at `pivot`? The streaming-scan dual
/// of the [`partition_ranges_tiebreak`] predicate: right iff `x > pivot`,
/// or `x == pivot` and equal keys are not taken left.
pub fn routes_right<R: Record>(x: &R, pivot: &R, take_equal: bool) -> bool {
    x > pivot || (x == pivot && !take_equal)
}

/// Comparison estimate for [`partition_ranges`]: one binary search per
/// pivot.
pub fn partition_comparisons(len: u64, pivots: usize) -> u64 {
    if len < 2 {
        return pivots as u64;
    }
    pivots as u64 * (64 - (len - 1).leading_zeros()) as u64
}

/// Splits a **sorted** disk file into `pivots.len() + 1` partition files
/// named `"{prefix}{j}"` with one streaming pass. Returns the partition
/// sizes.
pub fn partition_file_streaming<R: Record>(
    disk: &Disk,
    input: &str,
    prefix: &str,
    pivots: &[R],
) -> PdmResult<Vec<u64>> {
    partition_file_streaming_tiebreak(disk, input, prefix, pivots, &vec![true; pivots.len()])
}

/// [`partition_file_streaming`] with per-pivot duplicate tie-breaking
/// (see [`partition_ranges_tiebreak`] for the flag semantics).
pub fn partition_file_streaming_tiebreak<R: Record>(
    disk: &Disk,
    input: &str,
    prefix: &str,
    pivots: &[R],
    take_equal: &[bool],
) -> PdmResult<Vec<u64>> {
    debug_assert_eq!(pivots.len(), take_equal.len());
    let p = pivots.len() + 1;
    let mut reader = disk.open_reader::<R>(input)?;
    let mut sizes = vec![0u64; p];
    let mut writers = (0..p)
        .map(|j| disk.create_writer::<R>(&format!("{prefix}{j}")))
        .collect::<PdmResult<Vec<_>>>()?;
    let mut j = 0usize;
    let mut prev: Option<R> = None;
    while let Some(x) = reader.next_record()? {
        if let Some(pr) = prev {
            debug_assert!(pr <= x, "partition input {input:?} is not sorted");
        }
        prev = Some(x);
        // Advance to the first partition whose pivot admits x.
        while j < pivots.len() && routes_right(&x, &pivots[j], take_equal[j]) {
            j += 1;
        }
        writers[j].push(x)?;
        sizes[j] += 1;
    }
    for w in writers {
        w.finish()?;
    }
    Ok(sizes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm::Disk;

    #[test]
    fn ranges_basic() {
        let data: Vec<u32> = (0..10).collect(); // 0..9
        let cuts = partition_ranges(&data, &[2, 6]);
        // <=2 → [0,1,2]; <=6 → [3..6]; rest → [7,8,9].
        assert_eq!(cuts, vec![0, 3, 7, 10]);
    }

    #[test]
    fn ranges_with_duplicates_at_pivot() {
        let data = vec![1u32, 2, 2, 2, 3];
        let cuts = partition_ranges(&data, &[2]);
        // All the 2s go left of the cut (x <= pivot).
        assert_eq!(cuts, vec![0, 4, 5]);
    }

    #[test]
    fn ranges_extreme_pivots() {
        let data = vec![5u32, 6, 7];
        assert_eq!(partition_ranges(&data, &[0]), vec![0, 0, 3]);
        assert_eq!(partition_ranges(&data, &[100]), vec![0, 3, 3]);
        assert_eq!(partition_ranges(&data, &[]), vec![0, 3]);
    }

    #[test]
    fn ranges_empty_data() {
        let data: Vec<u32> = vec![];
        assert_eq!(partition_ranges(&data, &[1, 2]), vec![0, 0, 0, 0]);
    }

    #[test]
    fn ranges_equal_pivots_make_empty_middle() {
        let data: Vec<u32> = (0..10).collect();
        let cuts = partition_ranges(&data, &[4, 4]);
        assert_eq!(cuts, vec![0, 5, 5, 10]);
    }

    #[test]
    fn streaming_matches_in_core() {
        let disk = Disk::in_memory(16);
        let data: Vec<u32> = (0..100).map(|i| i * 2).collect();
        disk.write_file("in", &data).unwrap();
        let pivots = vec![30u32, 31, 120];
        let sizes = partition_file_streaming(&disk, "in", "part", &pivots).unwrap();
        let cuts = partition_ranges(&data, &pivots);
        for j in 0..4 {
            let expect = &data[cuts[j]..cuts[j + 1]];
            assert_eq!(
                disk.read_file::<u32>(&format!("part{j}")).unwrap(),
                expect,
                "partition {j}"
            );
            assert_eq!(sizes[j], expect.len() as u64);
        }
        assert_eq!(sizes.iter().sum::<u64>(), 100);
    }

    #[test]
    fn streaming_single_partition() {
        let disk = Disk::in_memory(16);
        disk.write_file::<u32>("in", &[1, 2, 3]).unwrap();
        let sizes = partition_file_streaming::<u32>(&disk, "in", "q", &[]).unwrap();
        assert_eq!(sizes, vec![3]);
        assert_eq!(disk.read_file::<u32>("q0").unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn streaming_empty_file() {
        let disk = Disk::in_memory(16);
        disk.write_file::<u32>("in", &[]).unwrap();
        let sizes = partition_file_streaming::<u32>(&disk, "in", "e", &[5]).unwrap();
        assert_eq!(sizes, vec![0, 0]);
        assert!(disk.read_file::<u32>("e0").unwrap().is_empty());
        assert!(disk.read_file::<u32>("e1").unwrap().is_empty());
    }

    #[test]
    fn tiebreak_flags_split_duplicate_runs() {
        let data = vec![1u32, 2, 2, 2, 3];
        // take=false: the 2s route right of the cut.
        assert_eq!(
            partition_ranges_tiebreak(&data, &[2], &[false]),
            vec![0, 1, 5]
        );
        // take=true reproduces the flat rule.
        assert_eq!(
            partition_ranges_tiebreak(&data, &[2], &[true]),
            partition_ranges(&data, &[2])
        );
        // Equal pivots with (false, true): cut 0 excludes the 2s, cut 1
        // takes them — the run lands wholly in the middle partition.
        assert_eq!(
            partition_ranges_tiebreak(&data, &[2, 2], &[false, true]),
            vec![0, 1, 4, 5]
        );
    }

    #[test]
    fn streaming_tiebreak_matches_in_core() {
        let disk = Disk::in_memory(16);
        let data: Vec<u32> = vec![0, 5, 5, 5, 5, 9, 9, 12];
        disk.write_file("in", &data).unwrap();
        let pivots = vec![5u32, 9];
        let take = vec![false, true];
        let sizes = partition_file_streaming_tiebreak(&disk, "in", "t", &pivots, &take).unwrap();
        let cuts = partition_ranges_tiebreak(&data, &pivots, &take);
        for j in 0..3 {
            assert_eq!(
                disk.read_file::<u32>(&format!("t{j}")).unwrap(),
                &data[cuts[j]..cuts[j + 1]],
                "partition {j}"
            );
            assert_eq!(sizes[j] as usize, cuts[j + 1] - cuts[j]);
        }
    }

    #[test]
    fn comparison_estimate() {
        assert_eq!(partition_comparisons(1024, 3), 3 * 10);
        assert_eq!(partition_comparisons(0, 3), 3);
    }
}
