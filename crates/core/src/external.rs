//! Algorithm 1: external PSRS for heterogeneous clusters.
//!
//! Each node holds an on-disk block of `l_i = n · perf[i] / Σ perf` records
//! and runs five phases (all I/O metered in PDM blocks, all work charged to
//! the node's virtual clock):
//!
//! 1. **local external sort** — polyphase merge sort,
//!    `2·l_i(1 + ⌈log_m l_i⌉)` I/Os;
//! 2. **pivot selection** — `p·perf[i]` regular samples read with seeks
//!    (the paper's "L I/Os, very inferior to step 1"), gathered on node 0,
//!    pivots at cumulative-performance ranks, broadcast;
//! 3. **partitioning** — one streaming pass splits the sorted block into
//!    `p` files (`2·Q/B` I/Os);
//! 4. **redistribution** — partition `j` travels to node `j` in messages of
//!    `msg_records` records (the message-size knob the paper tunes to 8 Ki
//!    integers / 32 Kb);
//! 5. **final merge** — one k-way merge pass over the `p` received sorted
//!    files.

use std::time::Instant;

use cluster::charge::Work;
use cluster::{NodeCtx, Tag};
use extsort::{
    merge_sorted_files_kernel, sort_chunk, ExtSortConfig, MergeReport, PipelineConfig, SortKernel,
    SortReport,
};
use pdm::{record, PdmResult, Record};

use crate::partition::partition_file_streaming;
use crate::perf::PerfVector;
use crate::pivots::select_pivots;
use crate::sampling::{regular_positions, regular_sample_count};

/// Tag for redistribution data chunks.
const TAG_PART_DATA: Tag = Tag(0x0100);

/// Configuration of one external-PSRS run (identical on every node).
#[derive(Debug, Clone)]
pub struct ExternalPsrsConfig {
    /// The *declared* performance vector: data shares, sample counts and
    /// pivot ranks all follow it. Independent of the hardware speeds.
    pub perf: PerfVector,
    /// Per-node in-core memory budget `M`, in records.
    pub mem_records: usize,
    /// Tape files for the local polyphase sort (paper: 16 = 15
    /// intermediate + output).
    pub tapes: usize,
    /// Records per redistribution message (paper's tuned value: 8 Ki
    /// integers = 32 Kb).
    pub msg_records: usize,
    /// Name of each node's unsorted input file on its own disk.
    pub input: String,
    /// Name for each node's sorted output file.
    pub output: String,
    /// Fuse steps 3 and 4: stream the sorted file once, sending each
    /// partition chunk straight into the network instead of materializing
    /// `p` partition files first. Saves `2·Q/B` block I/Os per node — the
    /// paper's remark that "hardware able to transfer data from disk to
    /// disk … will be more efficient". `false` reproduces the paper's
    /// algorithm literally.
    pub fused_redistribution: bool,
    /// Pipelined-execution knobs for the I/O-heavy phases (step 1's local
    /// sort and step 5's final merge): prefetch readers, write-behind
    /// writers, parallel run formation. Off by default (the sequential
    /// reference). When on, those phases are charged `max(cpu, io)` instead
    /// of `cpu + io` — the transfers hide behind the computation.
    pub pipeline: PipelineConfig,
    /// In-core sort kernel for step 1's run formation, step 5's merge and
    /// the root's pivot sort: the radix fast path (default) or the
    /// comparison-based reference. Both produce byte-identical output; they
    /// differ only in speed and in which counter ([`Work::key_ops`] vs
    /// [`Work::comparisons`]) the CPU work is billed to.
    pub kernel: SortKernel,
}

impl ExternalPsrsConfig {
    /// A config with the paper's defaults (16 tapes, 8 Ki-record messages).
    pub fn new(perf: PerfVector, mem_records: usize) -> Self {
        ExternalPsrsConfig {
            perf,
            mem_records,
            tapes: 16,
            msg_records: 8 * 1024,
            input: "input".to_string(),
            output: "output".to_string(),
            fused_redistribution: false,
            pipeline: PipelineConfig::off(),
            kernel: SortKernel::default(),
        }
    }

    /// Sets the in-core sort kernel (builder style).
    #[must_use]
    pub fn with_kernel(mut self, kernel: SortKernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Sets the pipeline knobs (builder style).
    #[must_use]
    pub fn with_pipeline(mut self, pipeline: PipelineConfig) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// Enables the fused partition+redistribution path (builder style).
    #[must_use]
    pub fn with_fused_redistribution(mut self, fused: bool) -> Self {
        self.fused_redistribution = fused;
        self
    }

    /// Sets the message size in records (builder style).
    #[must_use]
    pub fn with_msg_records(mut self, m: usize) -> Self {
        assert!(m > 0, "message size must be positive");
        self.msg_records = m;
        self
    }

    /// Sets the tape count (builder style).
    #[must_use]
    pub fn with_tapes(mut self, t: usize) -> Self {
        self.tapes = t;
        self
    }
}

/// Per-node outcome of Algorithm 1.
#[derive(Debug)]
pub struct ExternalPsrsOutcome {
    /// Records this node finally owns (its `output` file length).
    pub received_records: u64,
    /// Step-1 local sort report.
    pub local_sort: SortReport,
    /// Step-5 merge report.
    pub final_merge: MergeReport,
    /// Sizes of the partitions this node cut (by destination).
    pub sent_partition_sizes: Vec<u64>,
    /// Samples this node contributed in step 2.
    pub samples_contributed: u64,
    /// The pivots used (identical on every node).
    pub pivot_count: usize,
}

/// Runs Algorithm 1 on this node. Call from inside a
/// [`cluster::run_cluster`] node function on **every** node (the phases
/// contain collectives). `cfg.input` must already exist on the node's disk;
/// `cfg.output` is created.
pub fn psrs_external<R: Record>(
    ctx: &mut NodeCtx,
    cfg: &ExternalPsrsConfig,
) -> PdmResult<ExternalPsrsOutcome> {
    assert_eq!(cfg.perf.p(), ctx.p, "perf vector must cover every node");
    let p = ctx.p;
    let rank = ctx.rank;
    let perf = &cfg.perf;
    let sorted_name = "xpsrs.sorted";
    let part_prefix = "xpsrs.part";
    let recv_prefix = "xpsrs.recv";

    // ---- Step 1: local external sort (polyphase merge sort). ----
    let sort_cfg = ExtSortConfig::new(cfg.mem_records)
        .with_tapes(cfg.tapes)
        .with_pipeline(cfg.pipeline)
        .with_kernel(cfg.kernel);
    let t0 = Instant::now();
    let local_sort =
        extsort::polyphase_sort::<R>(&ctx.disk, &cfg.input, sorted_name, "xpsrs", &sort_cfg)?;
    let sort_work = Work {
        comparisons: local_sort.comparisons,
        key_ops: local_sort.key_ops,
        moves: local_sort.records * (local_sort.merge_phases as u64 + 1),
    };
    if cfg.pipeline.enabled {
        ctx.charger
            .charge_overlapped_section(sort_work, t0.elapsed());
    } else {
        ctx.charger.charge_section(sort_work, t0.elapsed());
    }
    ctx.obs.counter_add("sort.records", local_sort.records);
    ctx.obs
        .counter_add("sort.initial_runs", local_sort.initial_runs);
    ctx.obs
        .counter_add("sort.merge_passes", local_sort.merge_phases as u64);
    ctx.obs
        .counter_add("sort.comparisons", local_sort.comparisons);
    ctx.obs.counter_add("sort.key_ops", local_sort.key_ops);
    ctx.mark_phase("local-sort");

    // ---- Step 2: regular sampling and pivot selection. ----
    let count = regular_sample_count(perf, rank);
    let mut reader = ctx.disk.open_reader::<R>(sorted_name)?;
    let mut sample = Vec::with_capacity(count as usize);
    for q in regular_positions(local_sort.records, count) {
        sample.push(reader.read_at(q)?); // metered as random reads: L I/Os
    }
    drop(reader);
    let samples_contributed = sample.len() as u64;
    let gathered = ctx.gather(0, record::encode_all(&sample));
    let pivots: Vec<R> = if rank == 0 {
        let mut all: Vec<R> = gathered
            .expect("root gathers")
            .iter()
            .flat_map(|bytes| record::decode_all::<R>(bytes))
            .collect();
        let t0 = Instant::now();
        let kw = sort_chunk(&mut all, cfg.kernel);
        ctx.charger.charge_section(
            Work {
                comparisons: kw.comparisons,
                key_ops: kw.key_ops,
                moves: all.len() as u64,
            },
            t0.elapsed(),
        );
        let pivots = select_pivots(&all, perf);
        ctx.broadcast(0, record::encode_all(&pivots));
        pivots
    } else {
        record::decode_all(&ctx.broadcast(0, Vec::new()))
    };
    ctx.obs.counter_add("psrs.samples", samples_contributed);
    ctx.obs.gauge_set("psrs.pivots", pivots.len() as f64);
    ctx.mark_phase("pivots");

    let sent_sizes = if cfg.fused_redistribution {
        // ---- Steps 3+4 fused: one streaming pass sends partitions
        // straight to their owners (no intermediate partition files),
        // saving 2·Q/B block I/Os — the paper's disk-to-disk remark.
        fused_partition_redistribute::<R>(ctx, cfg, &pivots, sorted_name, recv_prefix)?
    } else {
        // ---- Step 3: partition the sorted file at the pivots. ----
        let t0 = Instant::now();
        let sent_sizes =
            partition_file_streaming::<R>(&ctx.disk, sorted_name, part_prefix, &pivots)?;
        ctx.charger.charge_section(
            Work {
                comparisons: local_sort.records + p as u64,
                key_ops: 0,
                moves: local_sort.records,
            },
            t0.elapsed(),
        );
        ctx.disk.remove(sorted_name)?;
        ctx.mark_phase("partition");

        // ---- Step 4: redistribution in block-multiple messages. ----
        // 4a: everyone learns how much to expect from everyone.
        let size_payloads: Vec<Vec<u8>> = sent_sizes
            .iter()
            .map(|&s| s.to_le_bytes().to_vec())
            .collect();
        let incoming_sizes: Vec<u64> = ctx
            .all_to_all(size_payloads)
            .iter()
            .map(|b| u64::from_le_bytes(b.as_slice().try_into().expect("8-byte size")))
            .collect();

        // 4b: my own partition stays local (a rename, no I/O).
        ctx.disk.rename(
            &format!("{part_prefix}{rank}"),
            &format!("{recv_prefix}{rank}"),
        )?;

        // 4c: stream every foreign partition out in msg_records chunks.
        for j in (0..p).filter(|&j| j != rank) {
            let name = format!("{part_prefix}{j}");
            let mut rd = ctx.disk.open_reader::<R>(&name)?;
            let mut chunk: Vec<R> = Vec::with_capacity(cfg.msg_records);
            loop {
                chunk.clear();
                while chunk.len() < cfg.msg_records {
                    match rd.next_record()? {
                        Some(x) => chunk.push(x),
                        None => break,
                    }
                }
                if chunk.is_empty() {
                    break;
                }
                ctx.charger.charge_work(Work::moves(chunk.len() as u64));
                ctx.send_records(j, TAG_PART_DATA, &chunk);
            }
            drop(rd);
            ctx.disk.remove(&name)?;
        }

        // 4d: receive every foreign partition into a local sorted file.
        for i in (0..p).filter(|&i| i != rank) {
            let mut wr = ctx.disk.create_writer::<R>(&format!("{recv_prefix}{i}"))?;
            let expect = incoming_sizes[i];
            let msgs = expect.div_ceil(cfg.msg_records as u64);
            for _ in 0..msgs {
                let records: Vec<R> = ctx.recv_records(i, TAG_PART_DATA);
                ctx.charger.charge_work(Work::moves(records.len() as u64));
                wr.push_all(&records)?;
            }
            let got = wr.finish()?;
            debug_assert_eq!(got, expect, "partition size mismatch from node {i}");
        }
        ctx.mark_phase("redistribute");
        sent_sizes
    };
    for &s in &sent_sizes {
        ctx.obs.hist_record("psrs.partition_records", s);
    }

    // ---- Step 5: final k-way merge of the received partitions. ----
    let inputs: Vec<String> = (0..p).map(|i| format!("{recv_prefix}{i}")).collect();
    let t0 = Instant::now();
    let final_merge =
        merge_sorted_files_kernel::<R>(&ctx.disk, &inputs, &cfg.output, &cfg.pipeline, cfg.kernel)?;
    let merge_work = Work {
        comparisons: final_merge.comparisons,
        key_ops: final_merge.key_ops,
        moves: final_merge.records,
    };
    if cfg.pipeline.enabled {
        ctx.charger
            .charge_overlapped_section(merge_work, t0.elapsed());
    } else {
        ctx.charger.charge_section(merge_work, t0.elapsed());
    }
    for name in &inputs {
        ctx.disk.remove(name)?;
    }
    ctx.obs.counter_add("merge.records", final_merge.records);
    ctx.obs
        .counter_add("merge.comparisons", final_merge.comparisons);
    ctx.obs.counter_add("merge.key_ops", final_merge.key_ops);
    ctx.obs.gauge_set("merge.fan_in", final_merge.fan_in as f64);
    ctx.mark_phase("merge");

    Ok(ExternalPsrsOutcome {
        received_records: final_merge.records,
        local_sort,
        final_merge,
        sent_partition_sizes: sent_sizes,
        samples_contributed,
        pivot_count: pivots.len(),
    })
}

/// Fused steps 3+4: streams the sorted file once; records bound for node
/// `j ≠ rank` leave in `msg_records` chunks terminated by an empty
/// message, records owned locally go straight into the local receive
/// file. Returns the partition sizes this node cut.
fn fused_partition_redistribute<R: Record>(
    ctx: &mut NodeCtx,
    cfg: &ExternalPsrsConfig,
    pivots: &[R],
    sorted_name: &str,
    recv_prefix: &str,
) -> PdmResult<Vec<u64>> {
    let p = ctx.p;
    let rank = ctx.rank;
    let t0 = Instant::now();
    let mut sizes = vec![0u64; p];
    let mut buffers: Vec<Vec<R>> = (0..p)
        .map(|_| Vec::with_capacity(cfg.msg_records))
        .collect();
    let mut own_writer = ctx
        .disk
        .create_writer::<R>(&format!("{recv_prefix}{rank}"))?;
    let mut rd = ctx.disk.open_reader::<R>(sorted_name)?;
    let mut dest = 0usize;
    let mut n_local = 0u64;
    while let Some(x) = rd.next_record()? {
        while dest < pivots.len() && x > pivots[dest] {
            dest += 1;
        }
        sizes[dest] += 1;
        n_local += 1;
        if dest == rank {
            own_writer.push(x)?;
        } else {
            buffers[dest].push(x);
            if buffers[dest].len() == cfg.msg_records {
                ctx.charger.charge_work(Work::moves(cfg.msg_records as u64));
                let chunk = std::mem::take(&mut buffers[dest]);
                ctx.send_records(dest, TAG_PART_DATA, &chunk);
                buffers[dest] = chunk;
                buffers[dest].clear();
            }
        }
    }
    drop(rd);
    ctx.disk.remove(sorted_name)?;
    // Flush tails and terminate every stream with an empty message.
    for j in (0..p).filter(|&j| j != rank) {
        if !buffers[j].is_empty() {
            ctx.charger
                .charge_work(Work::moves(buffers[j].len() as u64));
            let chunk = std::mem::take(&mut buffers[j]);
            ctx.send_records(j, TAG_PART_DATA, &chunk);
        }
        ctx.send_records::<R>(j, TAG_PART_DATA, &[]);
    }
    ctx.charger.charge_section(
        Work {
            comparisons: n_local + p as u64,
            key_ops: 0,
            moves: n_local,
        },
        t0.elapsed(),
    );
    own_writer.finish()?;
    // Receive every foreign partition into its own sorted receive file.
    for i in (0..p).filter(|&i| i != rank) {
        let mut wr = ctx.disk.create_writer::<R>(&format!("{recv_prefix}{i}"))?;
        loop {
            let records: Vec<R> = ctx.recv_records(i, TAG_PART_DATA);
            if records.is_empty() {
                break;
            }
            ctx.charger.charge_work(Work::moves(records.len() as u64));
            wr.push_all(&records)?;
        }
        wr.finish()?;
    }
    ctx.mark_phase("partition+redistribute");
    Ok(sizes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{run_cluster, ClusterSpec, StorageKind};
    use extsort::{fingerprint_slice, is_sorted_file};
    use workloads::{generate_to_disk, Benchmark, Layout};

    struct NodeResult {
        outcome: ExternalPsrsOutcome,
        output: Vec<u32>,
    }

    fn run(
        spec: &ClusterSpec,
        perf: &PerfVector,
        bench: Benchmark,
        n: u64,
        mem: usize,
        tapes: usize,
        seed: u64,
    ) -> Vec<NodeResult> {
        let shares = perf.shares(n);
        let layouts = Layout::cluster(&shares);
        let cfg = ExternalPsrsConfig {
            perf: perf.clone(),
            mem_records: mem,
            tapes,
            msg_records: 64,
            input: "input".into(),
            output: "output".into(),
            fused_redistribution: false,
            pipeline: PipelineConfig::off(),
            kernel: SortKernel::default(),
        };
        let report = run_cluster(spec, move |ctx| {
            generate_to_disk(&ctx.disk, "input", bench, seed, layouts[ctx.rank]).unwrap();
            let outcome = psrs_external::<u32>(ctx, &cfg).unwrap();
            assert!(is_sorted_file::<u32>(&ctx.disk, "output").unwrap());
            let output = ctx.disk.read_file::<u32>("output").unwrap();
            NodeResult { outcome, output }
        });
        report.nodes.into_iter().map(|n| n.value).collect()
    }

    fn assert_correct(
        results: &[NodeResult],
        perf: &PerfVector,
        bench: Benchmark,
        n: u64,
        seed: u64,
    ) {
        // Global order: concatenation by rank is sorted.
        let flat: Vec<u32> = results
            .iter()
            .flat_map(|r| r.output.iter().copied())
            .collect();
        assert_eq!(flat.len() as u64, n, "records lost or duplicated");
        assert!(flat.windows(2).all(|w| w[0] <= w[1]), "global order broken");
        // Permutation of the input.
        let input = workloads::generate_whole(bench, seed, &perf.shares(n));
        assert_eq!(
            fingerprint_slice(&flat),
            fingerprint_slice(&input),
            "output is not a permutation of the input"
        );
        // Outcome bookkeeping agrees with reality.
        for r in results {
            assert_eq!(r.outcome.received_records as usize, r.output.len());
        }
    }

    #[test]
    fn homogeneous_end_to_end() {
        let spec = ClusterSpec::homogeneous(4).with_block_bytes(64);
        let perf = PerfVector::homogeneous(4);
        let n = perf.padded_size(8_000);
        let results = run(&spec, &perf, Benchmark::Uniform, n, 256, 4, 1);
        assert_correct(&results, &perf, Benchmark::Uniform, n, 1);
    }

    #[test]
    fn heterogeneous_1144_end_to_end() {
        let spec = ClusterSpec::new(vec![1, 1, 4, 4]).with_block_bytes(64);
        let perf = PerfVector::paper_1144();
        let n = perf.padded_size(10_000);
        let results = run(&spec, &perf, Benchmark::Uniform, n, 256, 4, 2);
        assert_correct(&results, &perf, Benchmark::Uniform, n, 2);
        // Load balance within the heterogeneous PSRS bound.
        let sizes: Vec<u64> = results.iter().map(|r| r.output.len() as u64).collect();
        let lb = crate::metrics::LoadBalance::new(sizes, &perf);
        assert!(lb.expansion() < 2.0, "expansion {}", lb.expansion());
    }

    #[test]
    fn real_files_backend() {
        let spec = ClusterSpec::homogeneous(2)
            .with_block_bytes(64)
            .with_storage(StorageKind::Files);
        let perf = PerfVector::homogeneous(2);
        let n = perf.padded_size(3_000);
        let results = run(&spec, &perf, Benchmark::Gaussian, n, 128, 4, 3);
        assert_correct(&results, &perf, Benchmark::Gaussian, n, 3);
    }

    #[test]
    fn all_benchmarks_small() {
        let spec = ClusterSpec::homogeneous(4).with_block_bytes(64);
        let perf = PerfVector::homogeneous(4);
        let n = perf.padded_size(2_000);
        for bench in Benchmark::ALL {
            let results = run(&spec, &perf, bench, n, 128, 4, 4);
            assert_correct(&results, &perf, bench, n, 4);
        }
    }

    #[test]
    fn tiny_messages_still_correct() {
        let spec = ClusterSpec::homogeneous(3).with_block_bytes(64);
        let perf = PerfVector::homogeneous(3);
        let n = perf.padded_size(1_000);
        let shares = perf.shares(n);
        let layouts = Layout::cluster(&shares);
        let cfg = ExternalPsrsConfig {
            perf: perf.clone(),
            mem_records: 128,
            tapes: 4,
            msg_records: 8, // the paper's pathological packet size
            input: "input".into(),
            output: "output".into(),
            fused_redistribution: false,
            pipeline: PipelineConfig::off(),
            kernel: SortKernel::default(),
        };
        let report = run_cluster(&spec, move |ctx| {
            generate_to_disk(&ctx.disk, "input", Benchmark::Uniform, 5, layouts[ctx.rank]).unwrap();
            psrs_external::<u32>(ctx, &cfg).unwrap();
            ctx.disk.read_file::<u32>("output").unwrap()
        });
        let flat: Vec<u32> = report
            .nodes
            .iter()
            .flat_map(|n| n.value.iter().copied())
            .collect();
        assert_eq!(flat.len() as u64, n);
        assert!(flat.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn fused_redistribution_correct_and_cheaper() {
        let perf = PerfVector::paper_1144();
        let n = perf.padded_size(10_000);
        let shares = perf.shares(n);
        let run_mode = |fused: bool| {
            let spec = ClusterSpec::new(vec![1, 1, 4, 4]).with_block_bytes(64);
            let layouts = Layout::cluster(&shares);
            let cfg = ExternalPsrsConfig {
                perf: perf.clone(),
                mem_records: 256,
                tapes: 4,
                msg_records: 64,
                input: "input".into(),
                output: "output".into(),
                fused_redistribution: fused,
                pipeline: PipelineConfig::off(),
                kernel: SortKernel::default(),
            };
            run_cluster(&spec, move |ctx| {
                generate_to_disk(
                    &ctx.disk,
                    "input",
                    Benchmark::Uniform,
                    11,
                    layouts[ctx.rank],
                )
                .unwrap();
                psrs_external::<u32>(ctx, &cfg).unwrap();
                ctx.disk.read_file::<u32>("output").unwrap()
            })
        };
        let plain = run_mode(false);
        let fused = run_mode(true);
        // Identical results (same pivots, same data).
        for (a, b) in plain.nodes.iter().zip(&fused.nodes) {
            assert_eq!(a.value, b.value);
        }
        let flat: Vec<u32> = fused
            .nodes
            .iter()
            .flat_map(|nd| nd.value.iter().copied())
            .collect();
        assert_eq!(flat.len() as u64, n);
        assert!(flat.windows(2).all(|w| w[0] <= w[1]));
        // The fused path skips writing + re-reading the partition files:
        // strictly fewer block transfers.
        let io_plain = plain.total_io().total_blocks();
        let io_fused = fused.total_io().total_blocks();
        assert!(
            io_fused < io_plain,
            "fused should save I/O: {io_fused} vs {io_plain}"
        );
    }

    #[test]
    fn temp_files_cleaned_up() {
        let spec = ClusterSpec::homogeneous(2).with_block_bytes(64);
        let perf = PerfVector::homogeneous(2);
        let n = perf.padded_size(1_000);
        let shares = perf.shares(n);
        let layouts = Layout::cluster(&shares);
        let cfg = ExternalPsrsConfig {
            perf: perf.clone(),
            mem_records: 128,
            tapes: 4,
            msg_records: 64,
            input: "input".into(),
            output: "output".into(),
            fused_redistribution: false,
            pipeline: PipelineConfig::off(),
            kernel: SortKernel::default(),
        };
        let report = run_cluster(&spec, move |ctx| {
            generate_to_disk(&ctx.disk, "input", Benchmark::Uniform, 6, layouts[ctx.rank]).unwrap();
            psrs_external::<u32>(ctx, &cfg).unwrap();
            let p = ctx.p;
            let mut leftovers = Vec::new();
            for name in ["xpsrs.sorted".to_string()]
                .into_iter()
                .chain((0..p).map(|j| format!("xpsrs.part{j}")))
                .chain((0..p).map(|j| format!("xpsrs.recv{j}")))
                .chain((0..8).map(|t| format!("xpsrs.tape{t}")))
            {
                if ctx.disk.exists(&name) {
                    leftovers.push(name);
                }
            }
            leftovers
        });
        for n in &report.nodes {
            assert!(n.value.is_empty(), "leftover temp files: {:?}", n.value);
        }
    }

    #[test]
    fn phase_marks_present_and_ordered() {
        let spec = ClusterSpec::homogeneous(2).with_block_bytes(64);
        let perf = PerfVector::homogeneous(2);
        let n = perf.padded_size(2_000);
        let shares = perf.shares(n);
        let layouts = Layout::cluster(&shares);
        let cfg = ExternalPsrsConfig {
            perf: perf.clone(),
            mem_records: 128,
            tapes: 4,
            msg_records: 64,
            input: "input".into(),
            output: "output".into(),
            fused_redistribution: false,
            pipeline: PipelineConfig::off(),
            kernel: SortKernel::default(),
        };
        let report = run_cluster(&spec, move |ctx| {
            generate_to_disk(&ctx.disk, "input", Benchmark::Uniform, 7, layouts[ctx.rank]).unwrap();
            psrs_external::<u32>(ctx, &cfg).unwrap();
        });
        for node in &report.nodes {
            let names: Vec<&str> = node.phases.iter().map(|m| m.name).collect();
            assert_eq!(
                names,
                vec!["local-sort", "pivots", "partition", "redistribute", "merge"]
            );
            assert!(node.phases.windows(2).all(|w| w[0].at <= w[1].at));
        }
    }
}
