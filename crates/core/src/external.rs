//! Algorithm 1: external PSRS for heterogeneous clusters.
//!
//! Each node holds an on-disk block of `l_i = n · perf[i] / Σ perf` records
//! and runs five phases (all I/O metered in PDM blocks, all work charged to
//! the node's virtual clock):
//!
//! 1. **local external sort** — polyphase merge sort,
//!    `2·l_i(1 + ⌈log_m l_i⌉)` I/Os;
//! 2. **pivot selection** — `p·perf[i]` regular samples read with seeks
//!    (the paper's "L I/Os, very inferior to step 1"), gathered on node 0,
//!    pivots at cumulative-performance ranks, broadcast;
//! 3. **partitioning** — one streaming pass splits the sorted block into
//!    `p` files (`2·Q/B` I/Os);
//! 4. **redistribution** — partition `j` travels to node `j` in messages of
//!    `msg_records` records (the message-size knob the paper tunes to 8 Ki
//!    integers / 32 Kb);
//! 5. **final merge** — one k-way merge pass over the `p` received sorted
//!    files.
//!
//! With [`ExternalPsrsConfig::streaming_merge`] steps 3–5 fuse into a
//! single **streaming exchange-merge**: incoming partition chunks feed
//! per-source bounded buffers backing an incremental loser tree whose
//! output goes straight to `cfg.output` — no receive staging files (a
//! further `2·Q/B` block I/Os saved per node), with credit-based flow
//! control bounding receiver memory.

use std::collections::VecDeque;
use std::time::Instant;

use cluster::charge::Work;
use cluster::{Message, NodeCtx, Tag};
use extsort::{
    merge_sorted_files_kernel, sort_chunk, ExtSortConfig, MergeReport, MergeStep, PipelineConfig,
    SortKernel, SortReport, StreamingLoserTree,
};
use pdm::{record, BlockReader, PdmError, PdmResult, Record};

use crate::multilevel::{grouped_select_pivots, take_equal_flags, SplitterStrategy};
use crate::partition::{partition_file_streaming_tiebreak, routes_right};
use crate::perf::PerfVector;
use crate::pivots::select_pivots;
use crate::sampling::{regular_positions, regular_sample_count};

/// Tag for redistribution data chunks.
const TAG_PART_DATA: Tag = Tag(0x0100);

/// Tag for credit grants in the streamed exchange-merge: an empty message
/// from the receiver telling the sender one of its chunks has been fully
/// consumed by the merge.
const TAG_PART_CREDIT: Tag = Tag(0x0101);

/// Data chunks each sender may have outstanding toward one receiver
/// before it must wait for a credit. Two keeps the pipe full (one chunk
/// in transit while one is being merged) and bounds receiver memory at
/// `p · CHUNK_CREDITS · msg_records` records. Terminators and credit
/// grants are empty messages outside the credit budget.
const CHUNK_CREDITS: u32 = 2;

/// Configuration of one external-PSRS run (identical on every node).
#[derive(Debug, Clone)]
pub struct ExternalPsrsConfig {
    /// The *declared* performance vector: data shares, sample counts and
    /// pivot ranks all follow it. Independent of the hardware speeds.
    pub perf: PerfVector,
    /// Per-node in-core memory budget `M`, in records.
    pub mem_records: usize,
    /// Tape files for the local polyphase sort (paper: 16 = 15
    /// intermediate + output).
    pub tapes: usize,
    /// Records per redistribution message (paper's tuned value: 8 Ki
    /// integers = 32 Kb).
    pub msg_records: usize,
    /// Name of each node's unsorted input file on its own disk.
    pub input: String,
    /// Name for each node's sorted output file.
    pub output: String,
    /// Fuse steps 3 and 4: stream the sorted file once, sending each
    /// partition chunk straight into the network instead of materializing
    /// `p` partition files first. Saves `2·Q/B` block I/Os per node — the
    /// paper's remark that "hardware able to transfer data from disk to
    /// disk … will be more efficient". `false` reproduces the paper's
    /// algorithm literally.
    pub fused_redistribution: bool,
    /// Fuse steps 3–5 end to end: the sorted file streams out through the
    /// network and incoming chunks feed an incremental loser tree whose
    /// output goes straight to `cfg.output`. On top of
    /// `fused_redistribution`'s savings this also eliminates the `p`
    /// receive staging files (another `2·Q/B` block I/Os per node) and
    /// overlaps merge CPU + output I/O with the transfer. Backpressure
    /// comes from a per-pair credit protocol ([`CHUNK_CREDITS`]). Takes
    /// precedence over `fused_redistribution` when both are set.
    pub streaming_merge: bool,
    /// Pipelined-execution knobs for the I/O-heavy phases (step 1's local
    /// sort and step 5's final merge): prefetch readers, write-behind
    /// writers, parallel run formation. Off by default (the sequential
    /// reference). When on, those phases are charged `max(cpu, io)` instead
    /// of `cpu + io` — the transfers hide behind the computation.
    pub pipeline: PipelineConfig,
    /// In-core sort kernel for step 1's run formation, step 5's merge and
    /// the root's pivot sort: the radix fast path (default) or the
    /// comparison-based reference. Both produce byte-identical output; they
    /// differ only in speed and in which counter ([`Work::key_ops`] vs
    /// [`Work::comparisons`]) the CPU work is billed to.
    pub kernel: SortKernel,
    /// How step 2 selects the splitters: the paper's centralized gather
    /// at node 0 ([`SplitterStrategy::Flat`]) or the two-level √p-group
    /// selection of [`crate::multilevel`], which also tie-breaks
    /// duplicate keys at the pivots by origin rank. The redistribution
    /// itself stays chunk-streamed either way (its credit protocol
    /// already staggers first messages).
    pub splitter: SplitterStrategy,
}

impl ExternalPsrsConfig {
    /// A config with the paper's defaults (16 tapes, 8 Ki-record messages).
    pub fn new(perf: PerfVector, mem_records: usize) -> Self {
        ExternalPsrsConfig {
            perf,
            mem_records,
            tapes: 16,
            msg_records: 8 * 1024,
            input: "input".to_string(),
            output: "output".to_string(),
            fused_redistribution: false,
            streaming_merge: false,
            pipeline: PipelineConfig::off(),
            kernel: SortKernel::default(),
            splitter: SplitterStrategy::Flat,
        }
    }

    /// Sets the splitter-selection strategy (builder style).
    #[must_use]
    pub fn with_splitter(mut self, splitter: SplitterStrategy) -> Self {
        self.splitter = splitter;
        self
    }

    /// Sets the in-core sort kernel (builder style).
    #[must_use]
    pub fn with_kernel(mut self, kernel: SortKernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Sets the pipeline knobs (builder style).
    #[must_use]
    pub fn with_pipeline(mut self, pipeline: PipelineConfig) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// Sets the parallel-merge worker count (builder style, forwarded to
    /// the pipeline knobs; clamped to ≥ 1). Applies to step 1's polyphase
    /// merge phases and step 5's final k-way merge; the streamed
    /// exchange-merge is unaffected (its inputs arrive incrementally, so
    /// ranges cannot be cut up front).
    #[must_use]
    pub fn with_merge_workers(mut self, workers: usize) -> Self {
        self.pipeline = self.pipeline.with_merge_workers(workers);
        self
    }

    /// Enables the fused partition+redistribution path (builder style).
    #[must_use]
    pub fn with_fused_redistribution(mut self, fused: bool) -> Self {
        self.fused_redistribution = fused;
        self
    }

    /// Enables the streaming exchange-merge path (builder style).
    #[must_use]
    pub fn with_streaming_merge(mut self, streaming: bool) -> Self {
        self.streaming_merge = streaming;
        self
    }

    /// Sets the message size in records (builder style).
    #[must_use]
    pub fn with_msg_records(mut self, m: usize) -> Self {
        assert!(m > 0, "message size must be positive");
        self.msg_records = m;
        self
    }

    /// Sets the tape count (builder style).
    #[must_use]
    pub fn with_tapes(mut self, t: usize) -> Self {
        self.tapes = t;
        self
    }
}

/// Per-node outcome of Algorithm 1.
#[derive(Debug)]
pub struct ExternalPsrsOutcome {
    /// Records this node finally owns (its `output` file length).
    pub received_records: u64,
    /// Step-1 local sort report.
    pub local_sort: SortReport,
    /// Step-5 merge report.
    pub final_merge: MergeReport,
    /// Sizes of the partitions this node cut (by destination).
    pub sent_partition_sizes: Vec<u64>,
    /// Samples this node contributed in step 2.
    pub samples_contributed: u64,
    /// The pivots used (identical on every node).
    pub pivot_count: usize,
    /// Peak records buffered in memory by the streamed exchange-merge
    /// (zero on the staged paths, which buffer on disk instead). Bounded
    /// by `p · CHUNK_CREDITS · msg_records`.
    pub peak_buffered_records: u64,
    /// Times the streamed sender stalled waiting for a chunk credit
    /// (zero on the staged paths).
    pub credit_stalls: u64,
}

/// Runs Algorithm 1 on this node. Call from inside a
/// [`cluster::run_cluster`] node function on **every** node (the phases
/// contain collectives). `cfg.input` must already exist on the node's disk;
/// `cfg.output` is created.
pub async fn psrs_external<R: Record>(
    ctx: &mut NodeCtx,
    cfg: &ExternalPsrsConfig,
) -> PdmResult<ExternalPsrsOutcome> {
    assert_eq!(cfg.perf.p(), ctx.p, "perf vector must cover every node");
    let p = ctx.p;
    let rank = ctx.rank;
    let perf = &cfg.perf;
    let sorted_name = "xpsrs.sorted";
    let part_prefix = "xpsrs.part";
    let recv_prefix = "xpsrs.recv";

    // ---- Step 1: local external sort (polyphase merge sort). ----
    let sort_cfg = ExtSortConfig::new(cfg.mem_records)
        .with_tapes(cfg.tapes)
        .with_pipeline(cfg.pipeline)
        .with_kernel(cfg.kernel);
    let t0 = Instant::now();
    let local_sort =
        extsort::polyphase_sort::<R>(&ctx.disk, &cfg.input, sorted_name, "xpsrs", &sort_cfg)?;
    let sort_work = Work {
        comparisons: local_sort.comparisons,
        key_ops: local_sort.key_ops,
        moves: local_sort.records * (local_sort.merge_phases as u64 + 1),
    };
    // With parallel merge workers the polyphase merge phases overlap
    // tree-select CPU (worker threads) with tape I/O (main thread), so the
    // overlapped rule applies even when the prefetch pipeline is off.
    if cfg.pipeline.enabled || cfg.pipeline.effective_merge_workers() > 1 {
        ctx.charger
            .charge_overlapped_section(sort_work, t0.elapsed());
    } else {
        ctx.charger.charge_section(sort_work, t0.elapsed());
    }
    ctx.obs.counter_add("sort.records", local_sort.records);
    ctx.obs
        .counter_add("sort.initial_runs", local_sort.initial_runs);
    ctx.obs
        .counter_add("sort.merge_passes", local_sort.merge_phases as u64);
    ctx.obs
        .counter_add("sort.comparisons", local_sort.comparisons);
    ctx.obs.counter_add("sort.key_ops", local_sort.key_ops);
    ctx.mark_phase("local-sort");

    // ---- Step 2: regular sampling and pivot selection. ----
    let count = regular_sample_count(perf, rank);
    let mut reader = ctx.disk.open_reader::<R>(sorted_name)?;
    let mut sample = Vec::with_capacity(count as usize);
    for q in regular_positions(local_sort.records, count) {
        sample.push(reader.read_at(q)?); // metered as random reads: L I/Os
    }
    drop(reader);
    let samples_contributed = sample.len() as u64;
    let (pivots, take_equal): (Vec<R>, Vec<bool>) = match cfg.splitter {
        SplitterStrategy::Grouped { levels } => {
            // Two-level √p-group selection: members compress their own
            // samples, leaders merge O(√p·OVERSAMPLE) weighted
            // candidates, and the pivots come back with origin ranks
            // that tie-break duplicates in every partition pass below.
            assert_eq!(levels, 2, "only two-level grouped selection is implemented");
            let (pivots, origins, _timing) =
                grouped_select_pivots(ctx, perf, sample, cfg.kernel).await;
            let take = take_equal_flags(rank, &origins);
            (pivots, take)
        }
        SplitterStrategy::Flat => {
            let gathered = ctx.gather(0, record::encode_all(&sample)).await;
            let pivots: Vec<R> = if rank == 0 {
                let mut all: Vec<R> = gathered
                    .expect("root gathers")
                    .iter()
                    .flat_map(|bytes| record::decode_all::<R>(bytes))
                    .collect();
                let t0 = Instant::now();
                let kw = sort_chunk(&mut all, cfg.kernel);
                ctx.charger.charge_section(
                    Work {
                        comparisons: kw.comparisons,
                        key_ops: kw.key_ops,
                        moves: all.len() as u64,
                    },
                    t0.elapsed(),
                );
                let pivots = select_pivots(&all, perf);
                ctx.broadcast(0, record::encode_all(&pivots)).await;
                pivots
            } else {
                record::decode_all(&ctx.broadcast(0, Vec::new()).await)
            };
            let take = vec![true; pivots.len()];
            (pivots, take)
        }
    };
    ctx.obs.counter_add("psrs.samples", samples_contributed);
    ctx.obs.gauge_set("psrs.pivots", pivots.len() as f64);
    ctx.mark_phase("pivots");

    if cfg.streaming_merge {
        // ---- Steps 3–5 fused end to end: streaming exchange-merge. ----
        let stream =
            streaming_exchange_merge::<R>(ctx, cfg, &pivots, &take_equal, sorted_name).await?;
        for &s in &stream.sizes {
            ctx.obs.hist_record("psrs.partition_records", s);
        }
        ctx.obs.counter_add("merge.records", stream.report.records);
        ctx.obs
            .counter_add("merge.comparisons", stream.report.comparisons);
        ctx.obs.counter_add("merge.key_ops", stream.report.key_ops);
        ctx.obs
            .gauge_set("merge.fan_in", stream.report.fan_in as f64);
        ctx.mark_phase("exchange-merge");
        return Ok(ExternalPsrsOutcome {
            received_records: stream.report.records,
            local_sort,
            final_merge: stream.report,
            sent_partition_sizes: stream.sizes,
            samples_contributed,
            pivot_count: pivots.len(),
            peak_buffered_records: stream.peak_buffered,
            credit_stalls: stream.credit_stalls,
        });
    }

    let sent_sizes = if cfg.fused_redistribution {
        // ---- Steps 3+4 fused: one streaming pass sends partitions
        // straight to their owners (no intermediate partition files),
        // saving 2·Q/B block I/Os — the paper's disk-to-disk remark.
        fused_partition_redistribute::<R>(ctx, cfg, &pivots, &take_equal, sorted_name, recv_prefix)
            .await?
    } else {
        // ---- Step 3: partition the sorted file at the pivots. ----
        let t0 = Instant::now();
        let sent_sizes = partition_file_streaming_tiebreak::<R>(
            &ctx.disk,
            sorted_name,
            part_prefix,
            &pivots,
            &take_equal,
        )?;
        ctx.charger.charge_section(
            Work {
                comparisons: local_sort.records + p as u64,
                key_ops: 0,
                moves: local_sort.records,
            },
            t0.elapsed(),
        );
        ctx.disk.remove(sorted_name)?;
        ctx.mark_phase("partition");

        // ---- Step 4: redistribution in block-multiple messages. ----
        // 4a: everyone learns how much to expect from everyone.
        let size_payloads: Vec<Vec<u8>> = sent_sizes
            .iter()
            .map(|&s| s.to_le_bytes().to_vec())
            .collect();
        let incoming_sizes: Vec<u64> = ctx
            .all_to_all(size_payloads)
            .await
            .iter()
            .map(|b| u64::from_le_bytes(b.as_slice().try_into().expect("8-byte size")))
            .collect();

        // 4b: my own partition stays local (a rename, no I/O).
        ctx.disk.rename(
            &format!("{part_prefix}{rank}"),
            &format!("{recv_prefix}{rank}"),
        )?;

        // 4c: stream every foreign partition out in msg_records chunks.
        for j in (0..p).filter(|&j| j != rank) {
            let name = format!("{part_prefix}{j}");
            let mut rd = ctx.disk.open_reader::<R>(&name)?;
            let mut chunk: Vec<R> = Vec::with_capacity(cfg.msg_records);
            loop {
                chunk.clear();
                while chunk.len() < cfg.msg_records {
                    match rd.next_record()? {
                        Some(x) => chunk.push(x),
                        None => break,
                    }
                }
                if chunk.is_empty() {
                    break;
                }
                ctx.charger.charge_work(Work::moves(chunk.len() as u64));
                ctx.send_records(j, TAG_PART_DATA, &chunk);
            }
            drop(rd);
            ctx.disk.remove(&name)?;
        }

        // 4d: receive every foreign partition into a local sorted file,
        // draining chunks in arrival order (any-source receive) so one
        // slow sender no longer blocks the chunks already queued from
        // everyone else. Receive overhead and record moves are charged in
        // one aggregate shot to keep the clock order-independent.
        let mut writers: Vec<Option<pdm::BlockWriter<R>>> = Vec::with_capacity(p);
        for i in 0..p {
            writers.push(if i == rank {
                None
            } else {
                Some(ctx.disk.create_writer::<R>(&format!("{recv_prefix}{i}"))?)
            });
        }
        let total_msgs: u64 = (0..p)
            .filter(|&i| i != rank)
            .map(|i| incoming_sizes[i].div_ceil(cfg.msg_records as u64))
            .sum();
        let mut scratch: Vec<R> = Vec::with_capacity(cfg.msg_records);
        let mut moved = 0u64;
        for _ in 0..total_msgs {
            let msg = ctx.recv_any(&[TAG_PART_DATA]).await;
            record::decode_all_into(&msg.bytes, &mut scratch);
            moved += scratch.len() as u64;
            writers[msg.from]
                .as_mut()
                .expect("no self-sends in redistribution")
                .push_all(&scratch)?;
        }
        ctx.charge_recv_overheads(total_msgs);
        ctx.charger.charge_work(Work::moves(moved));
        for (i, wr) in writers.into_iter().enumerate() {
            let Some(wr) = wr else { continue };
            let got = wr.finish()?;
            let expect = incoming_sizes[i];
            if got != expect {
                return Err(PdmError::SizeMismatch {
                    what: format!("partition from node {i}"),
                    expect,
                    got,
                });
            }
        }
        ctx.mark_phase("redistribute");
        sent_sizes
    };
    for &s in &sent_sizes {
        ctx.obs.hist_record("psrs.partition_records", s);
    }

    // ---- Step 5: final k-way merge of the received partitions. ----
    let inputs: Vec<String> = (0..p).map(|i| format!("{recv_prefix}{i}")).collect();
    let t0 = Instant::now();
    let final_merge =
        merge_sorted_files_kernel::<R>(&ctx.disk, &inputs, &cfg.output, &cfg.pipeline, cfg.kernel)?;
    // Tree selects run on the range-partitioned merge workers, so only the
    // slowest worker's share lands on the critical path; the record moves
    // (one output stream) stay serial.
    let merge_workers = extsort::planned_workers::<R>(
        &ctx.disk,
        &cfg.pipeline,
        inputs.len(),
        final_merge.records,
        cfg.kernel,
    );
    let merge_work = Work {
        comparisons: final_merge.comparisons,
        key_ops: final_merge.key_ops,
        moves: 0,
    }
    .across_workers(merge_workers)
    .plus(Work::moves(final_merge.records));
    // The merge's block transfers share the node's disk between the range
    // partition workers: declare the stream count so the contention model
    // prices their queueing, then drop back to a single stream for whatever
    // I/O follows.
    ctx.charger.set_io_streams(merge_workers);
    if cfg.pipeline.enabled || merge_workers > 1 {
        ctx.charger
            .charge_overlapped_section(merge_work, t0.elapsed());
    } else {
        ctx.charger.charge_section(merge_work, t0.elapsed());
    }
    ctx.charger.set_io_streams(1);
    ctx.obs.gauge_set("merge.workers", merge_workers as f64);
    if ctx.obs.is_enabled() {
        // Record the planner's own prediction for this exact merge so the
        // calibration report can join it against the measured span. The
        // planner prices on the reference CPU; this node runs `slowdown`
        // times slower, and the charger stretches *every* charge by the
        // slowdown — disk service included — so the whole prediction
        // scales into node-local seconds.
        let shape = extsort::MergeShape {
            fan_in: inputs.len(),
            records: final_merge.records,
            record_size: R::SIZE,
            block_bytes: ctx.disk.block_bytes(),
            key_based: cfg.kernel.key_based::<R>(),
        };
        let predicted = extsort::predict_merge_time(
            ctx.disk.model(),
            &extsort::CpuCost::default(),
            &shape,
            merge_workers,
            cfg.pipeline.enabled || merge_workers > 1,
        );
        ctx.obs.gauge_set(
            "planner.predicted_merge_secs",
            predicted.as_secs() * ctx.charger.slowdown(),
        );
    }
    for name in &inputs {
        ctx.disk.remove(name)?;
    }
    ctx.obs.counter_add("merge.records", final_merge.records);
    ctx.obs
        .counter_add("merge.comparisons", final_merge.comparisons);
    ctx.obs.counter_add("merge.key_ops", final_merge.key_ops);
    ctx.obs.gauge_set("merge.fan_in", final_merge.fan_in as f64);
    ctx.mark_phase("merge");

    Ok(ExternalPsrsOutcome {
        received_records: final_merge.records,
        local_sort,
        final_merge,
        sent_partition_sizes: sent_sizes,
        samples_contributed,
        pivot_count: pivots.len(),
        peak_buffered_records: 0,
        credit_stalls: 0,
    })
}

/// Fused steps 3+4: streams the sorted file once; records bound for node
/// `j ≠ rank` leave in `msg_records` chunks terminated by an empty
/// message, records owned locally go straight into the local receive
/// file. Returns the partition sizes this node cut.
async fn fused_partition_redistribute<R: Record>(
    ctx: &mut NodeCtx,
    cfg: &ExternalPsrsConfig,
    pivots: &[R],
    take_equal: &[bool],
    sorted_name: &str,
    recv_prefix: &str,
) -> PdmResult<Vec<u64>> {
    let p = ctx.p;
    let rank = ctx.rank;
    let t0 = Instant::now();
    let mut sizes = vec![0u64; p];
    let mut buffers: Vec<Vec<R>> = (0..p)
        .map(|_| Vec::with_capacity(cfg.msg_records))
        .collect();
    let mut own_writer = ctx
        .disk
        .create_writer::<R>(&format!("{recv_prefix}{rank}"))?;
    let mut rd = ctx.disk.open_reader::<R>(sorted_name)?;
    let mut dest = 0usize;
    let mut n_local = 0u64;
    while let Some(x) = rd.next_record()? {
        while dest < pivots.len() && routes_right(&x, &pivots[dest], take_equal[dest]) {
            dest += 1;
        }
        sizes[dest] += 1;
        n_local += 1;
        if dest == rank {
            own_writer.push(x)?;
        } else {
            buffers[dest].push(x);
            if buffers[dest].len() == cfg.msg_records {
                ctx.charger.charge_work(Work::moves(cfg.msg_records as u64));
                let chunk = std::mem::take(&mut buffers[dest]);
                ctx.send_records(dest, TAG_PART_DATA, &chunk);
                buffers[dest] = chunk;
                buffers[dest].clear();
            }
        }
    }
    drop(rd);
    ctx.disk.remove(sorted_name)?;
    // Flush tails and terminate every stream with an empty message.
    for j in (0..p).filter(|&j| j != rank) {
        if !buffers[j].is_empty() {
            ctx.charger
                .charge_work(Work::moves(buffers[j].len() as u64));
            let chunk = std::mem::take(&mut buffers[j]);
            ctx.send_records(j, TAG_PART_DATA, &chunk);
        }
        ctx.send_records::<R>(j, TAG_PART_DATA, &[]);
    }
    ctx.charger.charge_section(
        Work {
            comparisons: n_local + p as u64,
            key_ops: 0,
            moves: n_local,
        },
        t0.elapsed(),
    );
    own_writer.finish()?;
    // Receive every foreign partition into its own sorted receive file,
    // draining chunks in arrival order until all p−1 streams have sent
    // their empty terminator. Receive overhead and moves are charged in
    // aggregate so the clock is independent of the arrival interleaving.
    let mut writers: Vec<Option<pdm::BlockWriter<R>>> = Vec::with_capacity(p);
    for i in 0..p {
        writers.push(if i == rank {
            None
        } else {
            Some(ctx.disk.create_writer::<R>(&format!("{recv_prefix}{i}"))?)
        });
    }
    let mut open = p - 1;
    let mut msgs = 0u64;
    let mut moved = 0u64;
    let mut scratch: Vec<R> = Vec::with_capacity(cfg.msg_records);
    while open > 0 {
        let msg = ctx.recv_any(&[TAG_PART_DATA]).await;
        msgs += 1;
        record::decode_all_into(&msg.bytes, &mut scratch);
        if scratch.is_empty() {
            open -= 1;
            continue;
        }
        moved += scratch.len() as u64;
        writers[msg.from]
            .as_mut()
            .expect("no self-sends in redistribution")
            .push_all(&scratch)?;
    }
    ctx.charge_recv_overheads(msgs);
    ctx.charger.charge_work(Work::moves(moved));
    for wr in writers.into_iter().flatten() {
        wr.finish()?;
    }
    ctx.mark_phase("partition+redistribute");
    Ok(sizes)
}

/// What [`streaming_exchange_merge`] hands back to [`psrs_external`].
struct StreamOutcome {
    sizes: Vec<u64>,
    report: MergeReport,
    peak_buffered: u64,
    credit_stalls: u64,
}

/// Output writer of the streamed path: write-behind when the pipeline is
/// on, a plain block writer otherwise.
enum StreamWriter<R: Record> {
    Plain(pdm::BlockWriter<R>),
    Behind(pdm::WriteBehindWriter<R>),
}

impl<R: Record> StreamWriter<R> {
    fn push(&mut self, x: R) -> PdmResult<()> {
        match self {
            StreamWriter::Plain(w) => w.push(x),
            StreamWriter::Behind(w) => w.push(x),
        }
    }

    fn finish(self) -> PdmResult<u64> {
        match self {
            StreamWriter::Plain(w) => w.finish(),
            StreamWriter::Behind(w) => w.finish(),
        }
    }
}

/// Per-node state machine of the streamed exchange-merge. One event loop
/// interleaves three pumps — drain arrivals, advance the partition scan,
/// advance the merge — blocking on the network only when none can move.
struct ExchangeMerge<R: Record> {
    rank: usize,
    p: usize,
    msg_records: usize,
    // Scan side. The sorted file crosses pivot boundaries in destination
    // order, so exactly one destination has an open send buffer at a
    // time; `lookahead` parks the record that forced a boundary crossing
    // (or hit the local cap) while the flush is credit-blocked.
    cur_dest: usize,
    send_buf: Vec<R>,
    lookahead: Option<R>,
    scan_done: bool,
    sizes: Vec<u64>,
    n_scanned: u64,
    credits: Vec<u32>,
    // Merge side: per-source FIFO buffers feed the incremental tree.
    // `chunk_lens`/`consumed` track when a whole remote chunk has been
    // merged so a credit can be granted back to its sender.
    tree: StreamingLoserTree<R>,
    bufs: Vec<VecDeque<R>>,
    chunk_lens: Vec<VecDeque<usize>>,
    consumed: Vec<usize>,
    src_done: Vec<bool>,
    merged: u64,
    done: bool,
    // Accounting for the aggregate end-of-phase charges.
    moves: u64,
    msgs_received: u64,
    buffered_now: u64,
    peak_buffered: u64,
    credit_stalls: u64,
    stalled: bool,
}

impl<R: Record> ExchangeMerge<R> {
    fn new(rank: usize, p: usize, msg_records: usize) -> Self {
        ExchangeMerge {
            rank,
            p,
            msg_records,
            cur_dest: 0,
            send_buf: Vec::with_capacity(msg_records),
            lookahead: None,
            scan_done: false,
            sizes: vec![0; p],
            n_scanned: 0,
            credits: vec![CHUNK_CREDITS; p],
            tree: StreamingLoserTree::new(p),
            bufs: (0..p).map(|_| VecDeque::new()).collect(),
            chunk_lens: (0..p).map(|_| VecDeque::new()).collect(),
            consumed: vec![0; p],
            src_done: vec![false; p],
            merged: 0,
            done: false,
            moves: 0,
            msgs_received: 0,
            buffered_now: 0,
            peak_buffered: 0,
            credit_stalls: 0,
            stalled: false,
        }
    }

    /// Cap on records parked in the local (self) buffer, mirroring the
    /// memory bound the credit protocol imposes on every remote stream.
    fn local_cap(&self) -> usize {
        CHUNK_CREDITS as usize * self.msg_records
    }

    /// Absorbs one arrival: a credit grant, a stream terminator, or a
    /// data chunk appended to its source's buffer.
    fn handle_msg(&mut self, ctx: &mut NodeCtx, msg: Message, scratch: &mut Vec<R>) {
        self.msgs_received += 1;
        if msg.tag == TAG_PART_CREDIT {
            self.credits[msg.from] += 1;
            self.stalled = false;
            return;
        }
        record::decode_all_into(&msg.bytes, scratch);
        if scratch.is_empty() {
            self.src_done[msg.from] = true;
            return;
        }
        self.moves += scratch.len() as u64;
        self.chunk_lens[msg.from].push_back(scratch.len());
        self.bufs[msg.from].extend(scratch.iter().copied());
        self.buffered_now += scratch.len() as u64;
        self.peak_buffered = self.peak_buffered.max(self.buffered_now);
        ctx.obs.hist_record("xchg.buf_occupancy", self.buffered_now);
    }

    /// Ships the open send buffer to `cur_dest` if a credit is available.
    fn try_ship(&mut self, ctx: &mut NodeCtx) -> bool {
        let d = self.cur_dest;
        if self.credits[d] == 0 {
            if !self.stalled {
                self.credit_stalls += 1;
                self.stalled = true;
            }
            return false;
        }
        self.credits[d] -= 1;
        ctx.send_records(d, TAG_PART_DATA, &self.send_buf);
        self.send_buf.clear();
        true
    }

    /// Advances `cur_dest` to `target`, flushing the open tail and
    /// terminating each stream crossed with an empty message. Streams
    /// terminate as early as the scan proves them complete — required
    /// for deadlock freedom (a receiver must never wait on a stream
    /// whose sender is itself blocked waiting for that receiver).
    /// Returns `false` if blocked on a credit.
    fn advance_dest_to(&mut self, target: usize, ctx: &mut NodeCtx) -> bool {
        while self.cur_dest < target {
            if self.cur_dest == self.rank {
                debug_assert!(self.send_buf.is_empty());
                self.src_done[self.rank] = true;
            } else {
                if !self.send_buf.is_empty() && !self.try_ship(ctx) {
                    return false;
                }
                ctx.send_records::<R>(self.cur_dest, TAG_PART_DATA, &[]);
            }
            self.cur_dest += 1;
        }
        true
    }

    /// Pumps the partition scan: reads sorted records, routes them to
    /// the single open destination buffer (or the local merge buffer),
    /// ships full chunks. Returns whether anything moved; stops on a
    /// credit stall, a full local buffer, or EOF.
    fn pump_scan(
        &mut self,
        ctx: &mut NodeCtx,
        rd: &mut BlockReader<R>,
        pivots: &[R],
        take_equal: &[bool],
    ) -> PdmResult<bool> {
        if self.scan_done {
            return Ok(false);
        }
        let mut progress = false;
        loop {
            if self.send_buf.len() >= self.msg_records {
                if !self.try_ship(ctx) {
                    return Ok(progress);
                }
                progress = true;
            }
            let x = match self.lookahead.take() {
                Some(x) => x,
                None => match rd.next_record()? {
                    Some(x) => x,
                    None => {
                        // EOF: flush the tail and terminate every
                        // remaining stream. `next_record` at EOF stays
                        // `None`, so re-entry after a stall lands here
                        // again.
                        if !self.advance_dest_to(self.p, ctx) {
                            return Ok(progress);
                        }
                        self.scan_done = true;
                        return Ok(true);
                    }
                },
            };
            let mut dest = self.cur_dest;
            while dest < pivots.len() && routes_right(&x, &pivots[dest], take_equal[dest]) {
                dest += 1;
            }
            if dest != self.cur_dest {
                if !self.advance_dest_to(dest, ctx) {
                    self.lookahead = Some(x);
                    return Ok(progress);
                }
                progress = true;
            }
            if dest == self.rank {
                if self.bufs[self.rank].len() >= self.local_cap() {
                    self.lookahead = Some(x);
                    return Ok(progress);
                }
                self.bufs[self.rank].push_back(x);
                self.buffered_now += 1;
                self.peak_buffered = self.peak_buffered.max(self.buffered_now);
            } else {
                self.send_buf.push(x);
            }
            self.sizes[dest] += 1;
            self.n_scanned += 1;
            self.moves += 1;
            progress = true;
        }
    }

    /// Pumps the merge: feeds the tree from the per-source buffers,
    /// closes terminated streams, writes emitted records, and grants a
    /// credit whenever a whole remote chunk has been consumed.
    fn pump_merge(&mut self, ctx: &mut NodeCtx, out: &mut StreamWriter<R>) -> PdmResult<bool> {
        if self.done {
            return Ok(false);
        }
        let mut progress = false;
        loop {
            match self.tree.step() {
                MergeStep::Emit(x) => {
                    out.push(x)?;
                    self.merged += 1;
                    self.moves += 1;
                    progress = true;
                }
                MergeStep::Need(s) => {
                    if let Some(r) = self.bufs[s].pop_front() {
                        self.buffered_now -= 1;
                        if s != self.rank {
                            self.consumed[s] += 1;
                            if Some(&self.consumed[s]) == self.chunk_lens[s].front() {
                                self.chunk_lens[s].pop_front();
                                self.consumed[s] = 0;
                                ctx.send_records::<R>(s, TAG_PART_CREDIT, &[]);
                            }
                        }
                        self.tree.feed(s, r);
                        progress = true;
                    } else if self.src_done[s] {
                        self.tree.close(s);
                        progress = true;
                    } else {
                        return Ok(progress);
                    }
                }
                MergeStep::Done => {
                    self.done = true;
                    return Ok(progress);
                }
            }
        }
    }
}

/// Fused steps 3–5: one event loop streams the sorted file out in
/// credit-gated `msg_records` chunks while incoming chunks feed a
/// [`StreamingLoserTree`] writing straight into `cfg.output`. The whole
/// section is charged `max(cpu, io)` — the transfers hide behind the
/// merge — and the `xpsrs.recv*` staging files never exist, saving
/// `2·Q/B` receiver-side block I/Os on top of the fused send path.
async fn streaming_exchange_merge<R: Record>(
    ctx: &mut NodeCtx,
    cfg: &ExternalPsrsConfig,
    pivots: &[R],
    take_equal: &[bool],
    sorted_name: &str,
) -> PdmResult<StreamOutcome> {
    let p = ctx.p;
    let rank = ctx.rank;
    let t0 = Instant::now();
    let mut rd = ctx.disk.open_reader::<R>(sorted_name)?;
    let mut out = if cfg.pipeline.enabled {
        StreamWriter::Behind(ctx.disk.create_write_behind::<R>(
            &cfg.output,
            cfg.pipeline.depth_for(ctx.disk.model(), 2),
            pdm::BufferPool::default(),
        )?)
    } else {
        StreamWriter::Plain(ctx.disk.create_writer::<R>(&cfg.output)?)
    };
    let mut st = ExchangeMerge::<R>::new(rank, p, cfg.msg_records);
    let mut scratch: Vec<R> = Vec::with_capacity(cfg.msg_records);
    let tags = [TAG_PART_DATA, TAG_PART_CREDIT];
    // Run until BOTH directions finish: a node whose own merge completes
    // early must keep pumping its outgoing scan (peers still need its
    // chunks and terminators).
    while !(st.done && st.scan_done) {
        let mut progress = false;
        while let Some(msg) = ctx.try_recv_any(&tags) {
            st.handle_msg(ctx, msg, &mut scratch);
            progress = true;
        }
        progress |= st.pump_scan(ctx, &mut rd, pivots, take_equal)?;
        progress |= st.pump_merge(ctx, &mut out)?;
        let finished = st.done && st.scan_done;
        if !finished && !progress {
            // Nothing can move: the merge is waiting on a remote chunk
            // or the scan on a credit. Both arrive as messages. When the
            // scan is the blocked side (no send credit outstanding), book
            // the blocking wait as credit time so the critical-path blame
            // can separate flow-control stalls from data starvation.
            let was_stalled = st.stalled;
            let wait0 = ctx.charger.wait_time();
            let msg = ctx.recv_any(&tags).await;
            if was_stalled {
                ctx.note_credit_wait((ctx.charger.wait_time() - wait0).as_secs());
            }
            st.handle_msg(ctx, msg, &mut scratch);
        }
    }
    drop(rd);
    ctx.disk.remove(sorted_name)?;
    let written = out.finish()?;
    debug_assert_eq!(written, st.merged);
    // Reclaim the credits still in flight (our last chunks are
    // acknowledged as their receivers' merges drain them) so the
    // channels end the phase empty.
    for d in (0..p).filter(|&d| d != rank) {
        while st.credits[d] < CHUNK_CREDITS {
            let wait0 = ctx.charger.wait_time();
            let msg = ctx.recv_any(&[TAG_PART_CREDIT]).await;
            ctx.note_credit_wait((ctx.charger.wait_time() - wait0).as_secs());
            st.handle_msg(ctx, msg, &mut scratch);
        }
    }
    debug_assert_eq!(st.buffered_now, 0);
    // Aggregate charges: per-message receive overhead plus one
    // overlapped CPU/IO section covering scan, merge and output. The
    // returned I/O delta is exactly this phase's block traffic.
    ctx.charge_recv_overheads(st.msgs_received);
    let key_based = cfg.kernel.key_based::<R>();
    let selects = st.tree.comparisons();
    let work = Work {
        comparisons: st.n_scanned + p as u64 + if key_based { 0 } else { selects },
        key_ops: if key_based { selects } else { 0 },
        moves: st.moves,
    };
    let io = ctx.charger.charge_overlapped_section(work, t0.elapsed());
    ctx.obs.counter_add("xchg.msgs", st.msgs_received);
    ctx.obs.counter_add("xchg.credit_stalls", st.credit_stalls);
    ctx.obs
        .gauge_set("xchg.peak_buffered_records", st.peak_buffered as f64);
    Ok(StreamOutcome {
        sizes: st.sizes,
        report: MergeReport {
            records: st.merged,
            fan_in: p,
            comparisons: if key_based { 0 } else { selects },
            key_ops: if key_based { selects } else { 0 },
            io,
        },
        peak_buffered: st.peak_buffered,
        credit_stalls: st.credit_stalls,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{run_cluster, ClusterSpec, StorageKind};
    use extsort::{fingerprint_slice, is_sorted_file};
    use workloads::{generate_to_disk, Benchmark, Layout};

    struct NodeResult {
        outcome: ExternalPsrsOutcome,
        output: Vec<u32>,
    }

    fn run(
        spec: &ClusterSpec,
        perf: &PerfVector,
        bench: Benchmark,
        n: u64,
        mem: usize,
        tapes: usize,
        seed: u64,
    ) -> Vec<NodeResult> {
        let shares = perf.shares(n);
        let layouts = Layout::cluster(&shares);
        let cfg = ExternalPsrsConfig {
            perf: perf.clone(),
            mem_records: mem,
            tapes,
            msg_records: 64,
            input: "input".into(),
            output: "output".into(),
            fused_redistribution: false,
            streaming_merge: false,
            pipeline: PipelineConfig::off(),
            kernel: SortKernel::default(),
            splitter: SplitterStrategy::Flat,
        };
        let report = run_cluster(spec, async move |ctx| {
            generate_to_disk(&ctx.disk, "input", bench, seed, layouts[ctx.rank]).unwrap();
            let outcome = psrs_external::<u32>(ctx, &cfg).await.unwrap();
            assert!(is_sorted_file::<u32>(&ctx.disk, "output").unwrap());
            let output = ctx.disk.read_file::<u32>("output").unwrap();
            NodeResult { outcome, output }
        });
        report.nodes.into_iter().map(|n| n.value).collect()
    }

    fn assert_correct(
        results: &[NodeResult],
        perf: &PerfVector,
        bench: Benchmark,
        n: u64,
        seed: u64,
    ) {
        // Global order: concatenation by rank is sorted.
        let flat: Vec<u32> = results
            .iter()
            .flat_map(|r| r.output.iter().copied())
            .collect();
        assert_eq!(flat.len() as u64, n, "records lost or duplicated");
        assert!(flat.windows(2).all(|w| w[0] <= w[1]), "global order broken");
        // Permutation of the input.
        let input = workloads::generate_whole(bench, seed, &perf.shares(n));
        assert_eq!(
            fingerprint_slice(&flat),
            fingerprint_slice(&input),
            "output is not a permutation of the input"
        );
        // Outcome bookkeeping agrees with reality.
        for r in results {
            assert_eq!(r.outcome.received_records as usize, r.output.len());
        }
    }

    #[test]
    fn homogeneous_end_to_end() {
        let spec = ClusterSpec::homogeneous(4).with_block_bytes(64);
        let perf = PerfVector::homogeneous(4);
        let n = perf.padded_size(8_000);
        let results = run(&spec, &perf, Benchmark::Uniform, n, 256, 4, 1);
        assert_correct(&results, &perf, Benchmark::Uniform, n, 1);
    }

    #[test]
    fn heterogeneous_1144_end_to_end() {
        let spec = ClusterSpec::new(vec![1, 1, 4, 4]).with_block_bytes(64);
        let perf = PerfVector::paper_1144();
        let n = perf.padded_size(10_000);
        let results = run(&spec, &perf, Benchmark::Uniform, n, 256, 4, 2);
        assert_correct(&results, &perf, Benchmark::Uniform, n, 2);
        // Load balance within the heterogeneous PSRS bound.
        let sizes: Vec<u64> = results.iter().map(|r| r.output.len() as u64).collect();
        let lb = crate::metrics::LoadBalance::new(sizes, &perf);
        assert!(lb.expansion() < 2.0, "expansion {}", lb.expansion());
    }

    #[test]
    fn real_files_backend() {
        let spec = ClusterSpec::homogeneous(2)
            .with_block_bytes(64)
            .with_storage(StorageKind::Files);
        let perf = PerfVector::homogeneous(2);
        let n = perf.padded_size(3_000);
        let results = run(&spec, &perf, Benchmark::Gaussian, n, 128, 4, 3);
        assert_correct(&results, &perf, Benchmark::Gaussian, n, 3);
    }

    #[test]
    fn all_benchmarks_small() {
        let spec = ClusterSpec::homogeneous(4).with_block_bytes(64);
        let perf = PerfVector::homogeneous(4);
        let n = perf.padded_size(2_000);
        for bench in Benchmark::ALL {
            let results = run(&spec, &perf, bench, n, 128, 4, 4);
            assert_correct(&results, &perf, bench, n, 4);
        }
    }

    #[test]
    fn tiny_messages_still_correct() {
        let spec = ClusterSpec::homogeneous(3).with_block_bytes(64);
        let perf = PerfVector::homogeneous(3);
        let n = perf.padded_size(1_000);
        let shares = perf.shares(n);
        let layouts = Layout::cluster(&shares);
        let cfg = ExternalPsrsConfig {
            perf: perf.clone(),
            mem_records: 128,
            tapes: 4,
            msg_records: 8, // the paper's pathological packet size
            input: "input".into(),
            output: "output".into(),
            fused_redistribution: false,
            streaming_merge: false,
            pipeline: PipelineConfig::off(),
            kernel: SortKernel::default(),
            splitter: SplitterStrategy::Flat,
        };
        let report = run_cluster(&spec, async move |ctx| {
            generate_to_disk(&ctx.disk, "input", Benchmark::Uniform, 5, layouts[ctx.rank]).unwrap();
            psrs_external::<u32>(ctx, &cfg).await.unwrap();
            ctx.disk.read_file::<u32>("output").unwrap()
        });
        let flat: Vec<u32> = report
            .nodes
            .iter()
            .flat_map(|n| n.value.iter().copied())
            .collect();
        assert_eq!(flat.len() as u64, n);
        assert!(flat.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn fused_redistribution_correct_and_cheaper() {
        let perf = PerfVector::paper_1144();
        let n = perf.padded_size(10_000);
        let shares = perf.shares(n);
        let run_mode = |fused: bool| {
            let spec = ClusterSpec::new(vec![1, 1, 4, 4]).with_block_bytes(64);
            let layouts = Layout::cluster(&shares);
            let cfg = ExternalPsrsConfig {
                perf: perf.clone(),
                mem_records: 256,
                tapes: 4,
                msg_records: 64,
                input: "input".into(),
                output: "output".into(),
                fused_redistribution: fused,
                streaming_merge: false,
                pipeline: PipelineConfig::off(),
                kernel: SortKernel::default(),
                splitter: SplitterStrategy::Flat,
            };
            run_cluster(&spec, async move |ctx| {
                generate_to_disk(
                    &ctx.disk,
                    "input",
                    Benchmark::Uniform,
                    11,
                    layouts[ctx.rank],
                )
                .unwrap();
                psrs_external::<u32>(ctx, &cfg).await.unwrap();
                ctx.disk.read_file::<u32>("output").unwrap()
            })
        };
        let plain = run_mode(false);
        let fused = run_mode(true);
        // Identical results (same pivots, same data).
        for (a, b) in plain.nodes.iter().zip(&fused.nodes) {
            assert_eq!(a.value, b.value);
        }
        let flat: Vec<u32> = fused
            .nodes
            .iter()
            .flat_map(|nd| nd.value.iter().copied())
            .collect();
        assert_eq!(flat.len() as u64, n);
        assert!(flat.windows(2).all(|w| w[0] <= w[1]));
        // The fused path skips writing + re-reading the partition files:
        // strictly fewer block transfers.
        let io_plain = plain.total_io().total_blocks();
        let io_fused = fused.total_io().total_blocks();
        assert!(
            io_fused < io_plain,
            "fused should save I/O: {io_fused} vs {io_plain}"
        );
    }

    #[test]
    fn temp_files_cleaned_up() {
        let spec = ClusterSpec::homogeneous(2).with_block_bytes(64);
        let perf = PerfVector::homogeneous(2);
        let n = perf.padded_size(1_000);
        let shares = perf.shares(n);
        let layouts = Layout::cluster(&shares);
        let cfg = ExternalPsrsConfig {
            perf: perf.clone(),
            mem_records: 128,
            tapes: 4,
            msg_records: 64,
            input: "input".into(),
            output: "output".into(),
            fused_redistribution: false,
            streaming_merge: false,
            pipeline: PipelineConfig::off(),
            kernel: SortKernel::default(),
            splitter: SplitterStrategy::Flat,
        };
        let report = run_cluster(&spec, async move |ctx| {
            generate_to_disk(&ctx.disk, "input", Benchmark::Uniform, 6, layouts[ctx.rank]).unwrap();
            psrs_external::<u32>(ctx, &cfg).await.unwrap();
            let p = ctx.p;
            let mut leftovers = Vec::new();
            for name in ["xpsrs.sorted".to_string()]
                .into_iter()
                .chain((0..p).map(|j| format!("xpsrs.part{j}")))
                .chain((0..p).map(|j| format!("xpsrs.recv{j}")))
                .chain((0..8).map(|t| format!("xpsrs.tape{t}")))
            {
                if ctx.disk.exists(&name) {
                    leftovers.push(name);
                }
            }
            leftovers
        });
        for n in &report.nodes {
            assert!(n.value.is_empty(), "leftover temp files: {:?}", n.value);
        }
    }

    #[test]
    fn phase_marks_present_and_ordered() {
        let spec = ClusterSpec::homogeneous(2).with_block_bytes(64);
        let perf = PerfVector::homogeneous(2);
        let n = perf.padded_size(2_000);
        let shares = perf.shares(n);
        let layouts = Layout::cluster(&shares);
        let cfg = ExternalPsrsConfig {
            perf: perf.clone(),
            mem_records: 128,
            tapes: 4,
            msg_records: 64,
            input: "input".into(),
            output: "output".into(),
            fused_redistribution: false,
            streaming_merge: false,
            pipeline: PipelineConfig::off(),
            kernel: SortKernel::default(),
            splitter: SplitterStrategy::Flat,
        };
        let report = run_cluster(&spec, async move |ctx| {
            generate_to_disk(&ctx.disk, "input", Benchmark::Uniform, 7, layouts[ctx.rank]).unwrap();
            psrs_external::<u32>(ctx, &cfg).await.unwrap();
        });
        for node in &report.nodes {
            let names: Vec<&str> = node.phases.iter().map(|m| m.name).collect();
            assert_eq!(
                names,
                vec!["local-sort", "pivots", "partition", "redistribute", "merge"]
            );
            assert!(node.phases.windows(2).all(|w| w[0].at <= w[1].at));
        }
    }

    fn run_with(
        spec: &ClusterSpec,
        cfg: &ExternalPsrsConfig,
        bench: Benchmark,
        n: u64,
        seed: u64,
    ) -> cluster::ClusterReport<NodeResult> {
        let shares = cfg.perf.shares(n);
        let layouts = Layout::cluster(&shares);
        let cfg = cfg.clone();
        run_cluster(spec, async move |ctx| {
            generate_to_disk(&ctx.disk, "input", bench, seed, layouts[ctx.rank]).unwrap();
            let outcome = psrs_external::<u32>(ctx, &cfg).await.unwrap();
            assert!(is_sorted_file::<u32>(&ctx.disk, "output").unwrap());
            let output = ctx.disk.read_file::<u32>("output").unwrap();
            NodeResult { outcome, output }
        })
    }

    fn streamed_cfg(perf: &PerfVector, mem: usize, tapes: usize, msg: usize) -> ExternalPsrsConfig {
        ExternalPsrsConfig::new(perf.clone(), mem)
            .with_tapes(tapes)
            .with_msg_records(msg)
            .with_streaming_merge(true)
    }

    #[test]
    fn streamed_end_to_end_heterogeneous() {
        let spec = ClusterSpec::new(vec![1, 1, 4, 4]).with_block_bytes(64);
        let perf = PerfVector::paper_1144();
        let n = perf.padded_size(10_000);
        let cfg = streamed_cfg(&perf, 256, 4, 64);
        let report = run_with(&spec, &cfg, Benchmark::Uniform, n, 2);
        let results: Vec<NodeResult> = report.nodes.into_iter().map(|nd| nd.value).collect();
        assert_correct(&results, &perf, Benchmark::Uniform, n, 2);
        let bound = 4 * CHUNK_CREDITS as u64 * 64;
        for r in &results {
            assert!(
                r.outcome.peak_buffered_records <= bound,
                "peak {} exceeds credit bound {bound}",
                r.outcome.peak_buffered_records
            );
        }
    }

    #[test]
    fn streamed_matches_staged_and_is_cheaper() {
        let spec = || ClusterSpec::new(vec![1, 1, 4, 4]).with_block_bytes(64);
        let perf = PerfVector::paper_1144();
        let n = perf.padded_size(10_000);
        let staged_cfg = streamed_cfg(&perf, 256, 4, 64).with_streaming_merge(false);
        let staged = run_with(&spec(), &staged_cfg, Benchmark::Uniform, n, 11);
        let streamed = run_with(
            &spec(),
            &streamed_cfg(&perf, 256, 4, 64),
            Benchmark::Uniform,
            n,
            11,
        );
        // Same pivots, same data: byte-identical per-node outputs.
        for (a, b) in staged.nodes.iter().zip(&streamed.nodes) {
            assert_eq!(a.value.output, b.value.output);
        }
        // The streamed path never writes partition or receive staging
        // files: strictly fewer block transfers and at least the p·p
        // receive files fewer creations cluster-wide.
        let io_staged = staged.total_io();
        let io_streamed = streamed.total_io();
        assert!(
            io_streamed.total_blocks() < io_staged.total_blocks(),
            "streamed should save I/O: {} vs {}",
            io_streamed.total_blocks(),
            io_staged.total_blocks()
        );
        assert!(
            io_staged.files_created >= io_streamed.files_created + 16,
            "staging files should disappear: {} vs {}",
            io_staged.files_created,
            io_streamed.files_created
        );
    }

    #[test]
    fn grouped_splitter_external_matches_flat() {
        // Two-level splitter selection on a 9-node mixed-speed cluster:
        // the staged and streamed paths both stay correct, and the
        // concatenated output is byte-identical to the flat baseline
        // (same sorted multiset, duplicates included).
        let hardware = vec![1u64, 2, 1, 4, 1, 2, 4, 1, 2];
        let perf = PerfVector::new(hardware.clone());
        let n = perf.padded_size(12_000);
        let spec = || ClusterSpec::new(hardware.clone()).with_block_bytes(64);
        let base = streamed_cfg(&perf, 512, 4, 64).with_streaming_merge(false);
        for streaming in [false, true] {
            let flat_cfg = base.clone().with_streaming_merge(streaming);
            let grouped_cfg = flat_cfg.clone().with_splitter(SplitterStrategy::grouped());
            for bench in [Benchmark::Uniform, Benchmark::ZipfDuplicates] {
                let flat = run_with(&spec(), &flat_cfg, bench, n, 7);
                let grouped = run_with(&spec(), &grouped_cfg, bench, n, 7);
                let fr: Vec<NodeResult> = flat.nodes.into_iter().map(|nd| nd.value).collect();
                let gr: Vec<NodeResult> = grouped.nodes.into_iter().map(|nd| nd.value).collect();
                assert_correct(&gr, &perf, bench, n, 7);
                let cat = |rs: &[NodeResult]| -> Vec<u32> {
                    rs.iter().flat_map(|r| r.output.iter().copied()).collect()
                };
                assert_eq!(
                    cat(&fr),
                    cat(&gr),
                    "grouped output diverged (streaming={streaming}, {bench:?})"
                );
            }
        }
    }

    #[test]
    fn streamed_beats_fused_on_receiver_io() {
        // The fused path already skips the partition files; streaming
        // additionally skips the receive files, so it must still be
        // strictly cheaper than fused.
        let spec = || ClusterSpec::homogeneous(4).with_block_bytes(64);
        let perf = PerfVector::homogeneous(4);
        let n = perf.padded_size(8_000);
        let fused_cfg = streamed_cfg(&perf, 256, 4, 64)
            .with_streaming_merge(false)
            .with_fused_redistribution(true);
        let fused = run_with(&spec(), &fused_cfg, Benchmark::Uniform, n, 5);
        let streamed = run_with(
            &spec(),
            &streamed_cfg(&perf, 256, 4, 64),
            Benchmark::Uniform,
            n,
            5,
        );
        for (a, b) in fused.nodes.iter().zip(&streamed.nodes) {
            assert_eq!(a.value.output, b.value.output);
        }
        assert!(
            streamed.total_io().total_blocks() < fused.total_io().total_blocks(),
            "streamed should beat fused: {} vs {}",
            streamed.total_io().total_blocks(),
            fused.total_io().total_blocks()
        );
    }

    #[test]
    fn streamed_all_benchmarks_tiny_messages() {
        // msg_records = 8 exercises the credit protocol hard (many
        // chunks per stream); the skewed benchmarks route everything to
        // few nodes, stressing stalls and early terminators.
        let spec = ClusterSpec::homogeneous(3).with_block_bytes(64);
        let perf = PerfVector::homogeneous(3);
        let n = perf.padded_size(2_000);
        for bench in Benchmark::ALL {
            let cfg = streamed_cfg(&perf, 128, 4, 8);
            let report = run_with(&spec, &cfg, bench, n, 4);
            let results: Vec<NodeResult> = report.nodes.into_iter().map(|nd| nd.value).collect();
            assert_correct(&results, &perf, bench, n, 4);
        }
    }

    #[test]
    fn streamed_pipelined_matches_plain() {
        let spec = || ClusterSpec::homogeneous(4).with_block_bytes(64);
        let perf = PerfVector::homogeneous(4);
        let n = perf.padded_size(6_000);
        let plain = run_with(
            &spec(),
            &streamed_cfg(&perf, 256, 4, 64),
            Benchmark::Gaussian,
            n,
            9,
        );
        let piped_cfg =
            streamed_cfg(&perf, 256, 4, 64).with_pipeline(PipelineConfig::with_workers(2));
        let piped = run_with(&spec(), &piped_cfg, Benchmark::Gaussian, n, 9);
        for (a, b) in plain.nodes.iter().zip(&piped.nodes) {
            assert_eq!(a.value.output, b.value.output);
        }
        // Same logical transfers either way.
        assert_eq!(
            plain.total_io().total_blocks(),
            piped.total_io().total_blocks()
        );
    }

    #[test]
    fn streamed_temp_files_cleaned_up() {
        let spec = ClusterSpec::homogeneous(2).with_block_bytes(64);
        let perf = PerfVector::homogeneous(2);
        let n = perf.padded_size(1_000);
        let shares = perf.shares(n);
        let layouts = Layout::cluster(&shares);
        let cfg = streamed_cfg(&perf, 128, 4, 64);
        let report = run_cluster(&spec, async move |ctx| {
            generate_to_disk(&ctx.disk, "input", Benchmark::Uniform, 6, layouts[ctx.rank]).unwrap();
            psrs_external::<u32>(ctx, &cfg).await.unwrap();
            let p = ctx.p;
            let mut leftovers = Vec::new();
            for name in ["xpsrs.sorted".to_string()]
                .into_iter()
                .chain((0..p).map(|j| format!("xpsrs.part{j}")))
                .chain((0..p).map(|j| format!("xpsrs.recv{j}")))
                .chain((0..8).map(|t| format!("xpsrs.tape{t}")))
            {
                if ctx.disk.exists(&name) {
                    leftovers.push(name);
                }
            }
            leftovers
        });
        for nd in &report.nodes {
            assert!(nd.value.is_empty(), "leftover temp files: {:?}", nd.value);
        }
    }

    #[test]
    fn streamed_phase_marks() {
        let spec = ClusterSpec::homogeneous(2).with_block_bytes(64);
        let perf = PerfVector::homogeneous(2);
        let n = perf.padded_size(2_000);
        let cfg = streamed_cfg(&perf, 128, 4, 64);
        let report = run_with(&spec, &cfg, Benchmark::Uniform, n, 7);
        for node in &report.nodes {
            let names: Vec<&str> = node.phases.iter().map(|m| m.name).collect();
            assert_eq!(names, vec!["local-sort", "pivots", "exchange-merge"]);
            assert!(node.phases.windows(2).all(|w| w[0].at <= w[1].at));
        }
    }

    #[test]
    fn streamed_single_node() {
        let spec = ClusterSpec::homogeneous(1).with_block_bytes(64);
        let perf = PerfVector::homogeneous(1);
        let n = perf.padded_size(1_500);
        let cfg = streamed_cfg(&perf, 128, 4, 64);
        let report = run_with(&spec, &cfg, Benchmark::Gaussian, n, 8);
        let results: Vec<NodeResult> = report.nodes.into_iter().map(|nd| nd.value).collect();
        assert_correct(&results, &perf, Benchmark::Gaussian, n, 8);
    }
}
