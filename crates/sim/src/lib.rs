//! Simulation primitives shared by every crate in the workspace.
//!
//! This crate is the bottom of the dependency stack. It provides:
//!
//! * [`SimTime`] / [`SimDuration`] — a virtual-time axis measured in seconds.
//!   All "execution times" reported by the benchmark harness are virtual: node
//!   clocks are *charged* by cost models instead of being read from the wall.
//! * [`rng`] — small, fast, fully deterministic PRNGs ([`rng::SplitMix64`],
//!   [`rng::Pcg64`]) plus distribution helpers (uniform, Gaussian, Zipf,
//!   log-normal). The workloads and jitter models build on these so that every
//!   experiment is reproducible from a single `u64` seed.
//! * [`jitter`] — multiplicative log-normal noise used to give virtual timings
//!   realistic run-to-run deviations (the paper reports standard deviations
//!   over 30 runs; we reproduce the *existence* and rough magnitude of that
//!   spread deterministically).
//! * [`stats`] — streaming summary statistics (Welford) used by the harness to
//!   print `mean ± deviation` columns.
//! * [`throttle`] — an optional *real-time* CPU throttle that emulates a slow
//!   node by inserting calibrated busy work, mirroring how the paper loaded
//!   two of its four Alpha nodes with competing processes.

pub mod jitter;
pub mod rng;
pub mod stats;
pub mod throttle;
pub mod time;

pub use jitter::Jitter;
pub use rng::{Pcg64, SplitMix64};
pub use stats::Summary;
pub use throttle::Throttle;
pub use time::{SimDuration, SimTime};
