//! Multiplicative timing jitter.
//!
//! The paper reports execution times as a mean and a standard deviation over
//! 30 runs. On a virtual-time simulator every run of the same seed would take
//! *exactly* the same time, so to reproduce realistic run-to-run spread we
//! multiply every charged duration by a log-normal factor with median 1.
//! The jitter stream is itself seeded, so a (seed, trial) pair is still fully
//! reproducible.

use crate::rng::{Pcg64, Rng};
use crate::time::SimDuration;

/// A deterministic source of multiplicative noise applied to charged costs.
#[derive(Debug, Clone)]
pub struct Jitter {
    rng: Pcg64,
    sigma: f64,
}

impl Jitter {
    /// A jitter source with log-normal shape `sigma` (0 disables noise).
    ///
    /// `sigma` around 0.02–0.05 reproduces the few-percent deviations of the
    /// paper's tables; the loaded nodes in Table 2 show ~8% deviation at the
    /// largest sizes, which the harness models with a larger per-node sigma.
    pub fn new(seed: u64, sigma: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&sigma),
            "jitter sigma out of range: {sigma}"
        );
        Jitter {
            rng: Pcg64::with_stream(seed, 0x6a69_7474_6572),
            sigma,
        }
    }

    /// A jitter source that never perturbs anything.
    pub fn none() -> Self {
        Self::new(0, 0.0)
    }

    /// Returns the next noise factor (exactly 1.0 when disabled).
    pub fn factor(&mut self) -> f64 {
        if self.sigma == 0.0 {
            1.0
        } else {
            self.rng.lognormal(self.sigma)
        }
    }

    /// Applies noise to a duration.
    pub fn apply(&mut self, d: SimDuration) -> SimDuration {
        d.scale(self.factor())
    }

    /// The configured shape parameter.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Summary;

    #[test]
    fn disabled_jitter_is_identity() {
        let mut j = Jitter::none();
        let d = SimDuration::from_secs(2.0);
        for _ in 0..10 {
            assert_eq!(j.apply(d), d);
        }
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = Jitter::new(7, 0.1);
        let mut b = Jitter::new(7, 0.1);
        for _ in 0..100 {
            assert_eq!(a.factor(), b.factor());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Jitter::new(1, 0.1);
        let mut b = Jitter::new(2, 0.1);
        let va: Vec<f64> = (0..8).map(|_| a.factor()).collect();
        let vb: Vec<f64> = (0..8).map(|_| b.factor()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn factors_positive_and_centered() {
        let mut j = Jitter::new(3, 0.05);
        let mut s = Summary::new();
        for _ in 0..20_000 {
            let f = j.factor();
            assert!(f > 0.0);
            s.push(f);
        }
        // Log-normal with sigma 0.05 has mean exp(sigma^2/2) ≈ 1.00125.
        assert!((s.mean() - 1.0).abs() < 0.01, "mean {}", s.mean());
    }

    #[test]
    #[should_panic(expected = "sigma out of range")]
    fn sigma_validated() {
        let _ = Jitter::new(0, 1.5);
    }
}
