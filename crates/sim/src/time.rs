//! Virtual time.
//!
//! The whole repository measures "execution time" on a virtual axis: each
//! simulated cluster node owns a clock that is advanced by cost models
//! (CPU work / node speed, disk block transfers, network messages). Virtual
//! time is represented as `f64` seconds wrapped in newtypes so that instants
//! ([`SimTime`]) and durations ([`SimDuration`]) cannot be confused.

use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A point on the virtual time axis, in seconds since the simulation epoch.
///
/// `SimTime` is totally ordered (NaN is forbidden by construction: every
/// constructor asserts finiteness), so it can be used directly as a Lamport
/// timestamp for the message-passing layer.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SimTime(f64);

/// A span of virtual time, in seconds. Always non-negative and finite.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SimDuration(f64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates an instant at `secs` seconds past the epoch.
    ///
    /// # Panics
    /// Panics if `secs` is negative, NaN or infinite.
    pub fn from_secs(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid SimTime: {secs}");
        SimTime(secs)
    }

    /// Seconds since the epoch.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Lamport merge: the later of two instants.
    #[must_use]
    pub fn merge(self, other: SimTime) -> SimTime {
        if other.0 > self.0 {
            other
        } else {
            self
        }
    }

    /// The duration elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration((self.0 - earlier.0).max(0.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0.0);

    /// Creates a duration of `secs` seconds.
    ///
    /// # Panics
    /// Panics if `secs` is negative, NaN or infinite.
    pub fn from_secs(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "invalid SimDuration: {secs}"
        );
        SimDuration(secs)
    }

    /// Creates a duration of `ms` milliseconds.
    pub fn from_millis(ms: f64) -> Self {
        Self::from_secs(ms * 1e-3)
    }

    /// Creates a duration of `us` microseconds.
    pub fn from_micros(us: f64) -> Self {
        Self::from_secs(us * 1e-6)
    }

    /// Creates a duration of `ns` nanoseconds.
    pub fn from_nanos(ns: f64) -> Self {
        Self::from_secs(ns * 1e-9)
    }

    /// Length in seconds.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Length in milliseconds.
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }

    /// Scales the duration by a non-negative factor (e.g. a jitter multiplier
    /// or an inverse speed factor).
    #[must_use]
    pub fn scale(self, factor: f64) -> SimDuration {
        SimDuration::from_secs(self.0 * factor)
    }
}

impl Eq for SimTime {}
impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> Ordering {
        // Constructors guarantee finiteness, so partial_cmp never fails.
        self.0.partial_cmp(&other.0).expect("SimTime is finite")
    }
}
impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Eq for SimDuration {}
impl Ord for SimDuration {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.partial_cmp(&other.0).expect("SimDuration is finite")
    }
}
impl PartialOrd for SimDuration {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration((self.0 - rhs.0).max(0.0))
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        self.scale(rhs)
    }
}

impl Div<f64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: f64) -> SimDuration {
        assert!(rhs > 0.0, "division of SimDuration by non-positive {rhs}");
        SimDuration::from_secs(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1.0 {
            write!(f, "{:.3}s", self.0)
        } else if self.0 >= 1e-3 {
            write!(f, "{:.3}ms", self.0 * 1e3)
        } else {
            write!(f, "{:.3}us", self.0 * 1e6)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_zero() {
        assert_eq!(SimTime::ZERO.as_secs(), 0.0);
        assert_eq!(SimTime::default(), SimTime::ZERO);
    }

    #[test]
    fn add_duration_advances_time() {
        let t = SimTime::from_secs(1.5) + SimDuration::from_secs(0.5);
        assert_eq!(t, SimTime::from_secs(2.0));
    }

    #[test]
    fn merge_takes_later() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert_eq!(a.merge(b), b);
        assert_eq!(b.merge(a), b);
        assert_eq!(a.merge(a), a);
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(3.0);
        assert_eq!(b.since(a), SimDuration::from_secs(2.0));
        assert_eq!(a.since(b), SimDuration::ZERO);
    }

    #[test]
    fn duration_sub_saturates() {
        let d = SimDuration::from_secs(1.0) - SimDuration::from_secs(5.0);
        assert_eq!(d, SimDuration::ZERO);
    }

    #[test]
    fn unit_constructors_agree() {
        assert_eq!(SimDuration::from_millis(1.0), SimDuration::from_secs(1e-3));
        assert_eq!(SimDuration::from_micros(1.0), SimDuration::from_secs(1e-6));
        assert_eq!(SimDuration::from_nanos(1.0), SimDuration::from_secs(1e-9));
    }

    #[test]
    fn scaling() {
        let d = SimDuration::from_secs(2.0);
        assert_eq!(d.scale(2.5), SimDuration::from_secs(5.0));
        assert_eq!(d * 0.5, SimDuration::from_secs(1.0));
        assert_eq!(d / 4.0, SimDuration::from_secs(0.5));
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![
            SimTime::from_secs(3.0),
            SimTime::from_secs(1.0),
            SimTime::from_secs(2.0),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                SimTime::from_secs(1.0),
                SimTime::from_secs(2.0),
                SimTime::from_secs(3.0)
            ]
        );
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(|i| SimDuration::from_secs(i as f64)).sum();
        assert_eq!(total, SimDuration::from_secs(10.0));
    }

    #[test]
    #[should_panic(expected = "invalid SimTime")]
    fn negative_time_rejected() {
        let _ = SimTime::from_secs(-1.0);
    }

    #[test]
    #[should_panic(expected = "invalid SimDuration")]
    fn nan_duration_rejected() {
        let _ = SimDuration::from_secs(f64::NAN);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration::from_secs(1.5).to_string(), "1.500s");
        assert_eq!(SimDuration::from_millis(2.25).to_string(), "2.250ms");
        assert_eq!(SimDuration::from_micros(7.0).to_string(), "7.000us");
    }
}
