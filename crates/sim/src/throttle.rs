//! Real-time CPU throttling.
//!
//! The paper emulates a heterogeneous cluster by *loading* two of its four
//! identical Alpha nodes with forked competitor processes, making them ~4×
//! slower. The primary reproduction path in this repo uses virtual time (the
//! slowdown is a factor in the cost model), but for end-to-end demos that
//! measure *wall-clock* time we also provide a [`Throttle`] that inserts
//! calibrated busy work after each unit of real computation, stretching a
//! node's effective speed by a chosen factor.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Inserts busy work so that a code section takes `slowdown`× longer.
#[derive(Debug, Clone)]
pub struct Throttle {
    slowdown: f64,
    /// Busy-loop iterations per microsecond, measured at construction.
    iters_per_us: f64,
}

impl Throttle {
    /// Creates a throttle with the given slowdown factor (1.0 = no-op).
    ///
    /// Calibrates the busy loop against the host CPU; calibration takes a few
    /// milliseconds.
    ///
    /// # Panics
    /// Panics if `slowdown < 1.0`.
    pub fn new(slowdown: f64) -> Self {
        assert!(slowdown >= 1.0, "slowdown must be >= 1, got {slowdown}");
        let iters_per_us = if slowdown > 1.0 { calibrate() } else { 0.0 };
        Throttle {
            slowdown,
            iters_per_us,
        }
    }

    /// The configured slowdown factor.
    pub fn slowdown(&self) -> f64 {
        self.slowdown
    }

    /// Given that `elapsed` of real work just happened, burns
    /// `elapsed * (slowdown - 1)` of additional CPU time.
    pub fn pay(&self, elapsed: Duration) {
        if self.slowdown <= 1.0 {
            return;
        }
        let extra_us = elapsed.as_secs_f64() * 1e6 * (self.slowdown - 1.0);
        burn((extra_us * self.iters_per_us) as u64);
    }

    /// Runs `f`, then burns enough extra CPU so the total takes ~`slowdown`×
    /// the time `f` took. Returns `f`'s result.
    pub fn run<T>(&self, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.pay(start.elapsed());
        out
    }
}

/// Spin for `iters` iterations of opaque integer work.
fn burn(iters: u64) {
    let mut acc: u64 = 0x9E37_79B9;
    for i in 0..iters {
        acc = black_box(acc.wrapping_mul(6364136223846793005).wrapping_add(i));
    }
    black_box(acc);
}

/// Measures how many burn iterations fit in a microsecond on this host.
fn calibrate() -> f64 {
    // Warm up, then time a fixed batch a few times and keep the fastest rate
    // (least descheduled) measurement.
    burn(100_000);
    let mut best = 0.0f64;
    for _ in 0..4 {
        let iters = 2_000_000u64;
        let start = Instant::now();
        burn(iters);
        let us = start.elapsed().as_secs_f64() * 1e6;
        if us > 0.0 {
            best = best.max(iters as f64 / us);
        }
    }
    best.max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_slowdown_is_noop() {
        let t = Throttle::new(1.0);
        let start = Instant::now();
        t.pay(Duration::from_millis(100));
        // No busy work should have happened.
        assert!(start.elapsed() < Duration::from_millis(20));
    }

    #[test]
    fn run_returns_value() {
        let t = Throttle::new(1.0);
        assert_eq!(t.run(|| 41 + 1), 42);
    }

    #[test]
    fn throttle_stretches_time() {
        let t = Throttle::new(3.0);
        // Wall-clock comparison, so a loaded machine (e.g. the full test
        // suite running in parallel) can deschedule either side. Take the
        // best raw time of several runs and retry the throttled side a
        // few times before declaring the stretch missing.
        let unthrottled = (0..5)
            .map(|_| {
                let s = Instant::now();
                burn(200_000);
                s.elapsed()
            })
            .min()
            .unwrap();
        let mut best = Duration::MAX;
        for _ in 0..5 {
            let start = Instant::now();
            t.run(|| burn(200_000));
            best = best.min(start.elapsed());
            if best > unthrottled * 2 {
                return;
            }
        }
        panic!("throttled {best:?} vs raw {unthrottled:?}: no clear stretch");
    }

    #[test]
    #[should_panic(expected = "slowdown must be >= 1")]
    fn rejects_speedup() {
        let _ = Throttle::new(0.5);
    }
}
