//! Deterministic pseudo-random number generation.
//!
//! Experiments must be exactly reproducible from a single `u64` seed, across
//! platforms and across runs, so we implement two small, well-known PRNGs
//! in-repo rather than depending on the `rand` version du jour:
//!
//! * [`SplitMix64`] — the classic 64-bit mixer; used for seeding and cheap
//!   stateless hashing.
//! * [`Pcg64`] — PCG XSL-RR 128/64, a high-quality general-purpose generator;
//!   used by the workload generators and the jitter models.
//!
//! Distribution helpers (uniform ranges, Gaussian via Marsaglia polar,
//! log-normal, Zipf via rejection-inversion) live on the [`Rng`] trait so that
//! both generators (and test doubles) share them.

/// Minimal PRNG interface: a source of uniformly distributed `u64`s plus
/// derived distribution helpers.
pub trait Rng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits; 2^-53 scaling gives [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` using Lemire's multiply-shift
    /// (debiased via rejection).
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Rejection sampling on the widening multiply keeps the result exact.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.below(hi - lo)
    }

    /// Uniform `usize` in `[0, bound)`.
    fn below_usize(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Standard normal deviate (mean 0, variance 1) via the Marsaglia polar
    /// method. Unbuffered: each call consumes fresh uniforms.
    fn gaussian(&mut self) -> f64 {
        loop {
            let u = 2.0 * self.next_f64() - 1.0;
            let v = 2.0 * self.next_f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }

    /// Log-normal deviate with the *median* at 1.0 and shape `sigma`:
    /// `exp(sigma * N(0,1))`. Used as a multiplicative jitter factor.
    fn lognormal(&mut self, sigma: f64) -> f64 {
        (sigma * self.gaussian()).exp()
    }

    /// Fisher–Yates shuffle.
    fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below_usize(i + 1);
            xs.swap(i, j);
        }
    }
}

/// SplitMix64: tiny, fast, passes BigCrush when used as a mixer. Primarily
/// used to expand one user seed into many independent stream seeds.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Every seed (including 0) is valid.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// One-shot stateless mix of `x`; useful for hashing small keys.
    pub fn mix(x: u64) -> u64 {
        let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        // `mix` already folds in the golden-ratio increment, so emit first
        // and advance afterwards to match the canonical splitmix64 stream.
        let out = Self::mix(self.state);
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        out
    }
}

/// PCG XSL-RR 128/64: 128-bit LCG state, 64-bit xorshift-rotate output.
/// High statistical quality, 2^128 period, deterministic across platforms.
#[derive(Debug, Clone)]
pub struct Pcg64 {
    state: u128,
    inc: u128,
}

const PCG_MULT: u128 = 0x2360_ED05_1FC6_5DA4_4385_DF64_9FCC_F645;

impl Pcg64 {
    /// Creates a generator from a seed, on the default stream.
    pub fn new(seed: u64) -> Self {
        Self::with_stream(seed, 0xda3e_39cb_94b9_5bdb)
    }

    /// Creates a generator on an explicit stream; different streams with the
    /// same seed are statistically independent.
    pub fn with_stream(seed: u64, stream: u64) -> Self {
        // Expand the 64-bit inputs into 128-bit state via SplitMix64.
        let mut sm = SplitMix64::new(seed);
        let s0 = sm.next_u64() as u128;
        let s1 = sm.next_u64() as u128;
        let mut sm2 = SplitMix64::new(stream);
        let i0 = sm2.next_u64() as u128;
        let i1 = sm2.next_u64() as u128;
        let inc = (((i0 << 64) | i1) << 1) | 1; // must be odd
        let mut rng = Pcg64 {
            state: (s0 << 64) | s1,
            inc,
        };
        // Warm up so that similar seeds diverge immediately.
        rng.state = rng.state.wrapping_add(rng.inc);
        let _ = rng.next_u64();
        rng
    }

    /// Derives an independent child generator; used to give each cluster node
    /// or workload stream its own sequence from one master seed.
    pub fn fork(&mut self, salt: u64) -> Pcg64 {
        let seed = self.next_u64() ^ SplitMix64::mix(salt);
        let stream = self.next_u64() ^ salt;
        Pcg64::with_stream(seed, stream)
    }
}

impl Rng for Pcg64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let rot = (self.state >> 122) as u32;
        let xored = ((self.state >> 64) as u64) ^ (self.state as u64);
        xored.rotate_right(rot)
    }
}

/// A Zipf(α) sampler over `{0, 1, .., n-1}` (rank 0 is the most frequent).
///
/// Uses the rejection-inversion method of Hörmann & Derflinger, which is O(1)
/// per sample for any α > 0, α ≠ 1 handled via the generalized harmonic
/// integral. Used by the duplicate-heavy workload.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: f64,
    alpha: f64,
    // Precomputed constants of the rejection-inversion scheme.
    h_x1: f64,
    h_n: f64,
    s: f64,
}

impl Zipf {
    /// Creates a sampler over `n` items with exponent `alpha > 0`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `alpha <= 0`.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "Zipf over empty domain");
        assert!(alpha > 0.0, "Zipf exponent must be positive");
        let nf = n as f64;
        let h_x1 = Self::h(1.5, alpha) - 1.0;
        let h_n = Self::h(nf + 0.5, alpha);
        let s = 2.0 - Self::h_inv(Self::h(2.5, alpha) - (2.0f64).powf(-alpha), alpha);
        Zipf {
            n: nf,
            alpha,
            h_x1,
            h_n,
            s,
        }
    }

    // H(x) = integral of x^-alpha  (antiderivative), with the alpha == 1 case
    // degenerating to ln(x).
    fn h(x: f64, alpha: f64) -> f64 {
        if (alpha - 1.0).abs() < 1e-12 {
            x.ln()
        } else {
            x.powf(1.0 - alpha) / (1.0 - alpha)
        }
    }

    fn h_inv(x: f64, alpha: f64) -> f64 {
        if (alpha - 1.0).abs() < 1e-12 {
            x.exp()
        } else {
            ((1.0 - alpha) * x).powf(1.0 / (1.0 - alpha))
        }
    }

    /// Draws a rank in `[0, n)`; rank 0 has the highest probability.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        loop {
            let u = self.h_n + rng.next_f64() * (self.h_x1 - self.h_n);
            let x = Self::h_inv(u, self.alpha);
            let k = (x + 0.5).floor().clamp(1.0, self.n);
            if k - x <= self.s || u >= Self::h(k + 0.5, self.alpha) - k.powf(-self.alpha) {
                return k as usize - 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_known_vector() {
        // Reference values from the canonical splitmix64.c with seed 0.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(r.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn pcg_different_seeds_differ() {
        let mut a = Pcg64::new(1);
        let mut b = Pcg64::new(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn pcg_streams_differ() {
        let mut a = Pcg64::with_stream(7, 1);
        let mut b = Pcg64::with_stream(7, 2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn fork_produces_independent_children() {
        let mut root = Pcg64::new(99);
        let mut c1 = root.fork(0);
        let mut c2 = root.fork(1);
        let v1: Vec<u64> = (0..8).map(|_| c1.next_u64()).collect();
        let v2: Vec<u64> = (0..8).map(|_| c2.next_u64()).collect();
        assert_ne!(v1, v2);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Pcg64::new(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = Pcg64::new(5);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let x = r.below(7);
            assert!(x < 7);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = Pcg64::new(6);
        for _ in 0..1000 {
            let x = r.range_u64(10, 20);
            assert!((10..20).contains(&x));
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut r = Pcg64::new(8);
        let n = 200_000;
        let (mut sum, mut sumsq) = (0.0, 0.0);
        for _ in 0..n {
            let x = r.gaussian();
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn lognormal_median_near_one() {
        let mut r = Pcg64::new(9);
        let mut xs: Vec<f64> = (0..10_001).map(|_| r.lognormal(0.3)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[xs.len() / 2];
        assert!((median - 1.0).abs() < 0.05, "median {median}");
        assert!(xs.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Pcg64::new(10);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut w = v.clone();
        w.sort_unstable();
        assert_eq!(w, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, (0..100).collect::<Vec<u32>>(), "astronomically unlikely");
    }

    #[test]
    fn zipf_rank0_most_frequent() {
        let mut r = Pcg64::new(11);
        let z = Zipf::new(100, 1.2);
        let mut counts = [0usize; 100];
        for _ in 0..50_000 {
            counts[z.sample(&mut r)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > counts[99]);
        // All samples in range is implied by the indexing not panicking.
    }

    #[test]
    fn zipf_alpha_one_works() {
        let mut r = Pcg64::new(12);
        let z = Zipf::new(50, 1.0);
        for _ in 0..10_000 {
            assert!(z.sample(&mut r) < 50);
        }
    }

    #[test]
    fn zipf_single_item() {
        let mut r = Pcg64::new(13);
        let z = Zipf::new(1, 2.0);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut r), 0);
        }
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        let mut r = SplitMix64::new(0);
        let _ = r.below(0);
    }
}
