//! Streaming summary statistics.
//!
//! The benchmark harness reports `mean ± deviation` over repeated trials just
//! like the paper's tables do. [`Summary`] accumulates observations with
//! Welford's numerically stable online algorithm.

use std::fmt;

/// Online mean / variance / min / max accumulator (Welford).
///
/// ```
/// use sim::Summary;
///
/// let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
/// assert_eq!(s.mean(), 5.0);
/// assert!((s.stddev() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Builds a summary from a slice of observations.
    pub fn of(xs: &[f64]) -> Self {
        let mut s = Summary::new();
        for &x in xs {
            s.push(x);
        }
        s
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        assert!(x.is_finite(), "non-finite observation: {x}");
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample standard deviation (n−1 denominator; 0 for fewer than two
    /// observations).
    pub fn stddev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Smallest observation.
    ///
    /// # Panics
    /// Panics if the summary is empty.
    pub fn min(&self) -> f64 {
        assert!(self.n > 0, "min of empty summary");
        self.min
    }

    /// Largest observation.
    ///
    /// # Panics
    /// Panics if the summary is empty.
    pub fn max(&self) -> f64 {
        assert!(self.n > 0, "max of empty summary");
        self.max
    }

    /// Merges another summary into this one (parallel Welford combine).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.5} ± {:.5} (n={})",
            self.mean(),
            self.stddev(),
            self.n
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stddev(), 0.0);
    }

    #[test]
    fn single_observation() {
        let s = Summary::of(&[5.0]);
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.min(), 5.0);
        assert_eq!(s.max(), 5.0);
    }

    #[test]
    fn known_mean_and_stddev() {
        // Sample {2, 4, 4, 4, 5, 5, 7, 9}: mean 5, sample stddev sqrt(32/7).
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.stddev() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..50).map(|i| (i as f64).sin() * 10.0).collect();
        let whole = Summary::of(&xs);
        let mut left = Summary::of(&xs[..20]);
        let right = Summary::of(&xs[20..]);
        left.merge(&right);
        assert!((left.mean() - whole.mean()).abs() < 1e-10);
        assert!((left.stddev() - whole.stddev()).abs() < 1e-10);
        assert_eq!(left.count(), whole.count());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = Summary::of(&[1.0, 2.0]);
        s.merge(&Summary::new());
        assert_eq!(s.count(), 2);
        let mut e = Summary::new();
        e.merge(&Summary::of(&[1.0, 2.0]));
        assert_eq!(e.count(), 2);
        assert!((e.mean() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn numerically_stable_for_large_offsets() {
        // Classic catastrophic-cancellation test: huge offset, tiny variance.
        let base = 1e9;
        let s = Summary::of(&[base + 4.0, base + 7.0, base + 13.0, base + 16.0]);
        assert!((s.mean() - (base + 10.0)).abs() < 1e-3);
        assert!((s.stddev() - (30.0f64).sqrt()).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn rejects_nan() {
        let mut s = Summary::new();
        s.push(f64::NAN);
    }
}
