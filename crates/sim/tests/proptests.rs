//! Property tests for the simulation primitives.

#![cfg(feature = "proptests")]
// Requires the `proptest` dev-dependency, not vendored offline; see README.

use proptest::collection::vec;
use proptest::prelude::*;

use sim::rng::{Rng, Zipf};
use sim::{Pcg64, SimDuration, SimTime, SplitMix64, Summary};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn simtime_merge_is_max(a in 0.0f64..1e9, b in 0.0f64..1e9) {
        let ta = SimTime::from_secs(a);
        let tb = SimTime::from_secs(b);
        let m = ta.merge(tb);
        prop_assert!(m >= ta && m >= tb);
        prop_assert!(m == ta || m == tb);
        prop_assert_eq!(ta.merge(tb), tb.merge(ta));
    }

    #[test]
    fn duration_arithmetic_consistent(a in 0.0f64..1e6, b in 0.0f64..1e6) {
        let da = SimDuration::from_secs(a);
        let db = SimDuration::from_secs(b);
        let sum = da + db;
        prop_assert!((sum.as_secs() - (a + b)).abs() < 1e-9 * (1.0 + a + b));
        prop_assert!(sum >= da && sum >= db);
        // Subtraction saturates at zero.
        prop_assert!((da - db).as_secs() >= 0.0);
    }

    #[test]
    fn below_is_uniformish_and_bounded(seed in any::<u64>(), bound in 1u64..1000) {
        let mut rng = Pcg64::new(seed);
        for _ in 0..200 {
            prop_assert!(rng.below(bound) < bound);
        }
    }

    #[test]
    fn shuffle_is_permutation(seed in any::<u64>(), n in 0usize..200) {
        let mut rng = Pcg64::new(seed);
        let mut v: Vec<u32> = (0..n as u32).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n as u32).collect::<Vec<_>>());
    }

    #[test]
    fn pcg_streams_reproducible(seed in any::<u64>(), stream in any::<u64>()) {
        let mut a = Pcg64::with_stream(seed, stream);
        let mut b = Pcg64::with_stream(seed, stream);
        for _ in 0..32 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_mix_is_injective_on_samples(xs in vec(any::<u64>(), 2..100)) {
        // Not a proof of injectivity, but distinct inputs should hash
        // distinctly on any realistic sample.
        let mut hashes: Vec<u64> = xs.iter().map(|&x| SplitMix64::mix(x)).collect();
        hashes.sort_unstable();
        hashes.dedup();
        let mut unique = xs.clone();
        unique.sort_unstable();
        unique.dedup();
        prop_assert_eq!(hashes.len(), unique.len());
    }

    #[test]
    fn zipf_in_range(seed in any::<u64>(), n in 1usize..5000, alpha in 0.2f64..3.0) {
        let mut rng = Pcg64::new(seed);
        let z = Zipf::new(n, alpha);
        for _ in 0..100 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }

    #[test]
    fn summary_matches_naive_computation(xs in vec(-1e6f64..1e6, 1..200)) {
        let s = Summary::of(&xs);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        prop_assert!((s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(s.min(), min);
        prop_assert_eq!(s.max(), max);
        prop_assert_eq!(s.count(), xs.len() as u64);
    }

    #[test]
    fn summary_merge_associative(xs in vec(-1e3f64..1e3, 0..60), ys in vec(-1e3f64..1e3, 0..60)) {
        let mut left = Summary::of(&xs);
        left.merge(&Summary::of(&ys));
        let all: Vec<f64> = xs.iter().chain(&ys).copied().collect();
        let whole = Summary::of(&all);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-9);
        prop_assert!((left.stddev() - whole.stddev()).abs() < 1e-9);
    }
}
