//! Cluster-level invariant tests: clock causality, collective correctness
//! under randomized work patterns, and determinism of whole runs.

#![cfg(feature = "proptests")]
// Requires the `proptest` dev-dependency, not vendored offline; see README.

use proptest::collection::vec;
use proptest::prelude::*;

use cluster::charge::Work;
use cluster::{run_cluster, ClusterSpec, NetworkModel, Tag};
use sim::SimDuration;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn barrier_dominates_all_entry_clocks(work in vec(0u64..2_000_000, 2..6)) {
        let p = work.len();
        let spec = ClusterSpec::homogeneous(p);
        let work2 = work.clone();
        let report = run_cluster(&spec, async move |ctx| {
            ctx.charger.charge_work(Work::comparisons(work2[ctx.rank]));
            let before = ctx.charger.now();
            ctx.barrier().await;
            (before, ctx.charger.now())
        });
        let max_entry = report
            .nodes
            .iter()
            .map(|n| n.value.0)
            .max()
            .unwrap();
        for node in &report.nodes {
            prop_assert!(node.value.1 >= max_entry, "barrier exit before slowest entry");
        }
    }

    #[test]
    fn messages_never_travel_back_in_time(
        payload_sizes in vec(0usize..10_000, 1..8),
        latency_us in 0.0f64..1000.0,
    ) {
        let spec = ClusterSpec::homogeneous(2).with_net(NetworkModel {
            name: "prop",
            latency: SimDuration::from_micros(latency_us),
            bytes_per_sec: 1e6,
            send_overhead: SimDuration::from_micros(5.0),
            recv_overhead: SimDuration::from_micros(5.0),
        });
        let sizes = payload_sizes.clone();
        let report = run_cluster(&spec, async move |ctx| {
            if ctx.rank == 0 {
                for (i, &s) in sizes.iter().enumerate() {
                    ctx.send(1, Tag::user(i as u16), vec![0u8; s]);
                }
                Vec::new()
            } else {
                let mut arrivals = Vec::new();
                for i in 0..sizes.len() {
                    let msg = ctx.recv_from(0, Tag::user(i as u16)).await;
                    // The receiver clock must have reached the arrival time.
                    assert!(ctx.charger.now() >= msg.arrival);
                    arrivals.push(msg.arrival);
                }
                arrivals
            }
        });
        // FIFO per sender: arrivals are non-decreasing.
        let arrivals = &report.nodes[1].value;
        prop_assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn all_to_all_is_a_permutation_router(p in 2usize..6, seed in any::<u64>()) {
        let spec = ClusterSpec::homogeneous(p).with_seed(seed);
        let report = run_cluster(&spec, async move |ctx| {
            let outgoing: Vec<Vec<u8>> = (0..ctx.p)
                .map(|j| format!("{}->{}", ctx.rank, j).into_bytes())
                .collect();
            ctx.all_to_all(outgoing).await
        });
        for (j, node) in report.nodes.iter().enumerate() {
            for (i, payload) in node.value.iter().enumerate() {
                prop_assert_eq!(payload.clone(), format!("{i}->{j}").into_bytes());
            }
        }
    }

    #[test]
    fn runs_are_deterministic(seed in any::<u64>(), jitter in 0.0f64..0.2) {
        let run = || {
            let spec = ClusterSpec::new(vec![1, 3])
                .with_seed(seed)
                .with_jitter(jitter);
            let report = run_cluster(&spec, async |ctx| {
                ctx.charger.charge_work(Work::comparisons(100_000));
                ctx.barrier().await;
                ctx.charger.now()
            });
            (report.makespan, report.nodes[0].value, report.nodes[1].value)
        };
        prop_assert_eq!(run(), run());
    }
}
