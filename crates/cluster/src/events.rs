//! Discrete-event machinery behind the single-threaded cluster runtime.
//!
//! The event runtime turns every node into a cooperatively-scheduled task
//! (a `Future` polled by [`crate::runtime::run_cluster`]'s executor) and
//! routes messages through a shared [`Fabric`] instead of per-node mpsc
//! channels. A blocking receive that finds nothing in its mailbox parks
//! the task by awaiting a [`Park`] future; delivering a message to a
//! parked rank makes it runnable again. The executor always resumes the
//! runnable task with the smallest (virtual clock, rank) key, so the
//! schedule is a pure function of virtual time — independent of wall
//! clock, host load and thread scheduling.
//!
//! Everything here is single-threaded at runtime: the `Mutex` around the
//! fabric exists only so `Endpoint` stays `Send` (the thread runtime
//! moves endpoints into `thread::scope` spawns) and is never contended.

use std::collections::{BTreeSet, VecDeque};
use std::fmt::Write as _;
use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Waker};

use sim::SimTime;

use crate::comm::{Message, Tag};

/// What a parked task is waiting for — kept for deadlock diagnostics.
#[derive(Debug, Clone)]
pub(crate) enum WaitKind {
    /// A selective receive for one (sender, tag) pair.
    From { from: usize, tag: Tag },
    /// An any-source receive over a tag set.
    Any { tags: Vec<Tag> },
}

impl WaitKind {
    pub(crate) fn describe(&self) -> String {
        match self {
            WaitKind::From { from, tag } => format!("(from={from}, tag={tag:?})"),
            WaitKind::Any { tags } => format!("any of {tags:?}"),
        }
    }
}

#[derive(Debug)]
enum TaskState {
    /// Ready to be polled: fresh, or woken by a delivery. `clock` is the
    /// node's virtual time when it last parked (zero for a fresh task) —
    /// the executor's scheduling key.
    Runnable { clock: SimTime },
    /// Waiting for a delivery.
    Parked { clock: SimTime, wait: WaitKind },
    /// The node function returned.
    Done,
}

/// The scheduling key of a runnable task: its parked virtual clock, then
/// its rank. Virtual clocks are non-negative finite floats, so the IEEE
/// bit pattern orders exactly like the value and can live in a `BTreeSet`.
fn sched_key(clock: SimTime, rank: usize) -> (u64, usize) {
    (clock.as_secs().to_bits(), rank)
}

/// The event runtime's shared mail system: one mailbox and one scheduler
/// state per rank.
#[derive(Debug)]
pub(crate) struct Fabric {
    inboxes: Vec<VecDeque<Message>>,
    states: Vec<TaskState>,
    /// Ordered index over the `Runnable` entries of `states`, so picking
    /// the next task is O(log p) instead of an O(p) scan — the scan costs
    /// O(p² · messages) over a whole run and dominated wide-cluster
    /// simulations before the index existed.
    runnable: BTreeSet<(u64, usize)>,
    /// Current sub-communicator membership per rank (e.g. `"g3"` while a
    /// node runs a group-scoped collective, `"leaders"` during the
    /// inter-group exchange). Pure diagnostics: once sub-communicators
    /// exist, a deadlock report naming only global ranks is ambiguous, so
    /// parked ranks print their group too.
    groups: Vec<Option<String>>,
}

impl Fabric {
    pub(crate) fn new(p: usize) -> Arc<Mutex<Fabric>> {
        Arc::new(Mutex::new(Fabric {
            inboxes: (0..p).map(|_| VecDeque::new()).collect(),
            states: (0..p)
                .map(|_| TaskState::Runnable {
                    clock: SimTime::ZERO,
                })
                .collect(),
            runnable: (0..p).map(|rank| sched_key(SimTime::ZERO, rank)).collect(),
            groups: vec![None; p],
        }))
    }

    /// Labels `rank` with its current sub-communicator (`None` = the
    /// global communicator). Shows up in [`Self::deadlock_report`].
    pub(crate) fn set_group(&mut self, rank: usize, label: Option<String>) {
        self.groups[rank] = label;
    }

    /// Queues a message for `to`, waking it if parked. Per-sender FIFO
    /// order is preserved because each sender appends in program order
    /// and the executor never reorders a mailbox.
    pub(crate) fn deliver(&mut self, to: usize, msg: Message) {
        self.inboxes[to].push_back(msg);
        if let TaskState::Parked { clock, .. } = self.states[to] {
            self.states[to] = TaskState::Runnable { clock };
            self.runnable.insert(sched_key(clock, to));
        }
    }

    /// Moves every queued message for `rank` onto its endpoint's pending
    /// list; returns whether anything moved.
    pub(crate) fn drain_into(&mut self, rank: usize, pending: &mut Vec<Message>) -> bool {
        let inbox = &mut self.inboxes[rank];
        let moved = !inbox.is_empty();
        pending.extend(inbox.drain(..));
        moved
    }

    /// Drops `rank` from the runnable index if it is currently runnable
    /// (it keeps its *old* scheduling key while being polled).
    fn unschedule(&mut self, rank: usize) {
        if let TaskState::Runnable { clock } = self.states[rank] {
            self.runnable.remove(&sched_key(clock, rank));
        }
    }

    fn park(&mut self, rank: usize, clock: SimTime, wait: WaitKind) {
        self.unschedule(rank);
        self.states[rank] = TaskState::Parked { clock, wait };
    }

    pub(crate) fn mark_done(&mut self, rank: usize) {
        self.unschedule(rank);
        self.states[rank] = TaskState::Done;
    }

    /// The runnable rank with the smallest (parked clock, rank) key, or
    /// `None` if every live task is parked (deadlock) or done.
    pub(crate) fn next_runnable(&self) -> Option<usize> {
        self.runnable.first().map(|&(_, rank)| rank)
    }

    /// Panics unless `rank` parked itself before yielding — a task that
    /// returns `Pending` without registering a wait could never be woken.
    pub(crate) fn assert_parked(&self, rank: usize) {
        assert!(
            matches!(self.states[rank], TaskState::Parked { .. }),
            "node {rank} yielded to the event scheduler without parking"
        );
    }

    /// Whether any task still has work (used to tell deadlock from
    /// completion when `next_runnable` comes back empty).
    pub(crate) fn all_done(&self) -> bool {
        self.states.iter().all(|s| matches!(s, TaskState::Done))
    }

    /// A per-rank wait report for the deadlock panic.
    pub(crate) fn deadlock_report(&self) -> String {
        let mut out = String::from("event cluster deadlocked; per-node waits:\n");
        for (rank, s) in self.states.iter().enumerate() {
            let group = match &self.groups[rank] {
                Some(label) => format!(" [comm group {label}]"),
                None => String::from(" [global comm]"),
            };
            match s {
                TaskState::Parked { clock, wait } => {
                    let _ = writeln!(
                        out,
                        "  node {rank}: parked at t={:.6}s waiting for {} ({} queued){group}",
                        clock.as_secs(),
                        wait.describe(),
                        self.inboxes[rank].len()
                    );
                }
                TaskState::Runnable { .. } => {
                    let _ = writeln!(out, "  node {rank}: runnable{group}");
                }
                TaskState::Done => {
                    let _ = writeln!(out, "  node {rank}: done");
                }
            }
        }
        out
    }
}

/// A one-shot yield point: the first poll registers the wait in the
/// fabric and suspends the task; once a delivery marks the rank runnable
/// the executor re-polls and the second poll completes.
pub(crate) struct Park {
    fabric: Arc<Mutex<Fabric>>,
    rank: usize,
    clock: SimTime,
    wait: Option<WaitKind>,
}

impl Park {
    pub(crate) fn new(
        fabric: Arc<Mutex<Fabric>>,
        rank: usize,
        clock: SimTime,
        wait: WaitKind,
    ) -> Park {
        Park {
            fabric,
            rank,
            clock,
            wait: Some(wait),
        }
    }
}

impl Future for Park {
    type Output = ();

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        match this.wait.take() {
            Some(wait) => {
                this.fabric
                    .lock()
                    .expect("fabric lock")
                    .park(this.rank, this.clock, wait);
                Poll::Pending
            }
            None => Poll::Ready(()),
        }
    }
}

/// Polls `fut` once with a no-op waker and unwraps the result. The
/// thread runtime drives each node future through this: its receives
/// block the OS thread internally (mpsc `recv_timeout`), so the future
/// completes on the first poll. Only the event transport ever yields.
pub(crate) fn block_on<F: Future>(fut: F) -> F::Output {
    let mut fut = std::pin::pin!(fut);
    let mut cx = Context::from_waker(Waker::noop());
    match fut.as_mut().poll(&mut cx) {
        Poll::Ready(v) => v,
        Poll::Pending => unreachable!("thread-runtime future parked; parking is event-mode only"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(from: usize) -> Message {
        Message {
            from,
            tag: Tag::user(1),
            arrival: SimTime::ZERO,
            depart: SimTime::ZERO,
            bytes: vec![1, 2, 3],
        }
    }

    #[test]
    fn delivery_wakes_a_parked_task() {
        let fabric = Fabric::new(2);
        {
            let mut f = fabric.lock().unwrap();
            f.park(1, SimTime::from_secs(3.0), WaitKind::Any { tags: vec![] });
            // Only rank 0 is runnable while 1 is parked.
            assert_eq!(f.next_runnable(), Some(0));
            f.mark_done(0);
            assert_eq!(f.next_runnable(), None);
            assert!(!f.all_done());
            f.deliver(1, msg(0));
            assert_eq!(f.next_runnable(), Some(1));
            let mut pending = Vec::new();
            assert!(f.drain_into(1, &mut pending));
            assert_eq!(pending.len(), 1);
            assert!(!f.drain_into(1, &mut pending));
        }
    }

    #[test]
    fn scheduler_prefers_smallest_clock_then_rank() {
        let fabric = Fabric::new(3);
        let mut f = fabric.lock().unwrap();
        let t = SimTime::from_secs;
        f.park(0, t(5.0), WaitKind::Any { tags: vec![] });
        f.park(1, t(2.0), WaitKind::Any { tags: vec![] });
        f.park(2, t(2.0), WaitKind::Any { tags: vec![] });
        for rank in 0..3 {
            f.deliver(rank, msg(rank));
        }
        assert_eq!(f.next_runnable(), Some(1), "ties break by rank");
        f.mark_done(1);
        assert_eq!(f.next_runnable(), Some(2));
        f.mark_done(2);
        assert_eq!(f.next_runnable(), Some(0));
    }

    #[test]
    fn park_future_yields_once_then_completes() {
        let fabric = Fabric::new(1);
        let mut park = std::pin::pin!(Park::new(
            fabric.clone(),
            0,
            SimTime::ZERO,
            WaitKind::From {
                from: 0,
                tag: Tag::user(7)
            },
        ));
        let mut cx = Context::from_waker(Waker::noop());
        assert!(park.as_mut().poll(&mut cx).is_pending());
        fabric.lock().unwrap().assert_parked(0);
        assert!(park.as_mut().poll(&mut cx).is_ready());
        let report = fabric.lock().unwrap().deadlock_report();
        assert!(report.contains("node 0"), "{report}");
    }

    #[test]
    fn deadlock_report_names_group_membership() {
        let fabric = Fabric::new(3);
        let mut f = fabric.lock().unwrap();
        f.set_group(0, Some("g0".into()));
        f.set_group(1, Some("leaders".into()));
        f.park(
            0,
            SimTime::from_secs(1.0),
            WaitKind::From {
                from: 1,
                tag: Tag::user(0x0200),
            },
        );
        f.park(1, SimTime::from_secs(2.0), WaitKind::Any { tags: vec![] });
        let report = f.deadlock_report();
        assert!(
            report.contains("node 0") && report.contains("[comm group g0]"),
            "{report}"
        );
        assert!(report.contains("[comm group leaders]"), "{report}");
        // Rank 2 never joined a sub-communicator: global.
        assert!(
            report.contains("node 2: runnable [global comm]"),
            "{report}"
        );
        // Leaving a group reverts to the global label.
        f.set_group(1, None);
        assert!(f.deadlock_report().contains("node 1: parked"));
        assert!(!f.deadlock_report().contains("leaders"), "label must clear");
    }

    #[test]
    fn block_on_drives_ready_futures() {
        assert_eq!(block_on(async { 2 + 2 }), 4);
    }
}
