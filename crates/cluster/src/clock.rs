//! Per-node virtual clocks.
//!
//! Each node owns a [`NodeClock`]; compute/disk charges advance it, and
//! message receipt merges the sender-side arrival timestamp (Lamport
//! style). Because charges are the *only* way time passes, the clock of a
//! node at the final barrier is exactly the node's simulated finish time.

use sim::{SimDuration, SimTime};

/// A monotonically advancing virtual clock.
#[derive(Debug, Clone, Default)]
pub struct NodeClock {
    now: SimTime,
}

impl NodeClock {
    /// A clock at the epoch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances by a duration.
    pub fn advance(&mut self, d: SimDuration) {
        self.now += d;
    }

    /// Lamport merge: jumps forward to `ts` if `ts` is later (never
    /// backwards).
    pub fn merge(&mut self, ts: SimTime) {
        self.now = self.now.merge(ts);
    }

    /// Elapsed virtual time since `mark`.
    pub fn since(&self, mark: SimTime) -> SimDuration {
        self.now.since(mark)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_epoch() {
        assert_eq!(NodeClock::new().now(), SimTime::ZERO);
    }

    #[test]
    fn advance_accumulates() {
        let mut c = NodeClock::new();
        c.advance(SimDuration::from_secs(1.5));
        c.advance(SimDuration::from_secs(0.5));
        assert_eq!(c.now(), SimTime::from_secs(2.0));
    }

    #[test]
    fn merge_never_goes_backwards() {
        let mut c = NodeClock::new();
        c.advance(SimDuration::from_secs(5.0));
        c.merge(SimTime::from_secs(3.0));
        assert_eq!(c.now(), SimTime::from_secs(5.0));
        c.merge(SimTime::from_secs(7.0));
        assert_eq!(c.now(), SimTime::from_secs(7.0));
    }

    #[test]
    fn since_measures_intervals() {
        let mut c = NodeClock::new();
        c.advance(SimDuration::from_secs(1.0));
        let mark = c.now();
        c.advance(SimDuration::from_secs(2.5));
        assert_eq!(c.since(mark), SimDuration::from_secs(2.5));
    }
}
