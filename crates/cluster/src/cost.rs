//! CPU cost models.
//!
//! Converts counted work (comparisons, record moves) into virtual seconds
//! on a *reference* (speed 1.0) node. The heterogeneity factor is applied
//! by the [`crate::charge::Charger`], not here.
//!
//! The `alpha_533` preset is calibrated so that the Table 2 reproduction
//! lands in the same order of magnitude as the paper's 533 MHz Alpha
//! 21164 measurements (tens to hundreds of seconds for 2²¹–2²⁵ records);
//! see `EXPERIMENTS.md` for the calibration notes.

use sim::SimDuration;

/// Linear CPU work model.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuModel {
    /// Human-readable name.
    pub name: &'static str,
    /// Cost of one key comparison (including the data movement, branch
    /// misprediction and cache behaviour that surrounds it in a sort loop).
    pub ns_per_comparison: f64,
    /// Cost of moving one record through a buffer (memcpy + bookkeeping).
    pub ns_per_record_move: f64,
    /// Cost of one key-kernel operation: touching one record in one radix
    /// pass, or one cached-key select in a tournament tree. Much cheaper
    /// than a full comparison — a fixed-width integer op with sequential
    /// access, no branch misprediction.
    pub ns_per_key_op: f64,
}

impl CpuModel {
    /// Calibrated to the paper's 533 MHz Alpha 21164 nodes running the 2002
    /// polyphase code.
    pub fn alpha_533() -> Self {
        CpuModel {
            name: "Alpha 21164 @533MHz",
            ns_per_comparison: 280.0,
            ns_per_record_move: 120.0,
            ns_per_key_op: 60.0,
        }
    }

    /// A modern x86 core, for "what would this look like today" ablations.
    pub fn modern_x86() -> Self {
        CpuModel {
            name: "modern x86 core",
            ns_per_comparison: 4.0,
            ns_per_record_move: 1.5,
            ns_per_key_op: 1.0,
        }
    }

    /// Zero-cost CPU, to isolate disk/network effects.
    pub fn free() -> Self {
        CpuModel {
            name: "free (zero-cost)",
            ns_per_comparison: 0.0,
            ns_per_record_move: 0.0,
            ns_per_key_op: 0.0,
        }
    }

    /// Reference-speed time for `n` comparisons.
    pub fn comparisons(&self, n: u64) -> SimDuration {
        SimDuration::from_nanos(self.ns_per_comparison * n as f64)
    }

    /// Reference-speed time for `n` record moves.
    pub fn record_moves(&self, n: u64) -> SimDuration {
        SimDuration::from_nanos(self.ns_per_record_move * n as f64)
    }

    /// Reference-speed time for `n` key-kernel operations.
    pub fn key_ops(&self, n: u64) -> SimDuration {
        SimDuration::from_nanos(self.ns_per_key_op * n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn costs_scale_linearly() {
        let m = CpuModel::alpha_533();
        let one = m.comparisons(1_000_000);
        let two = m.comparisons(2_000_000);
        assert!((two.as_secs() - 2.0 * one.as_secs()).abs() < 1e-12);
        assert!((one.as_secs() - 0.28).abs() < 1e-9);
    }

    #[test]
    fn free_model_is_free() {
        let m = CpuModel::free();
        assert_eq!(m.comparisons(u64::MAX / 2).as_secs(), 0.0);
        assert_eq!(m.record_moves(123).as_secs(), 0.0);
        assert_eq!(m.key_ops(123).as_secs(), 0.0);
    }

    #[test]
    fn key_ops_cheaper_than_comparisons() {
        for m in [CpuModel::alpha_533(), CpuModel::modern_x86()] {
            assert!(m.key_ops(1000) < m.comparisons(1000), "{}", m.name);
        }
    }

    #[test]
    fn modern_much_faster_than_alpha() {
        let a = CpuModel::alpha_533().comparisons(1 << 20);
        let x = CpuModel::modern_x86().comparisons(1 << 20);
        assert!(a.as_secs() > 10.0 * x.as_secs());
    }
}
