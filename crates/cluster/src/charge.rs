//! Converting work into virtual time.
//!
//! One [`Charger`] per node owns the node's clock and knows the node's
//! slowdown factor. Every charge path multiplies by the slowdown (loaded
//! nodes run everything slower — CPU *and* disk service, matching the
//! paper's protocol where the calibration ratio is measured on the whole
//! external sort) and by a seeded log-normal jitter factor.
//!
//! Disk I/O is charged exclusively through [`Charger::sync_io`], which
//! prices the block-counter delta since the previous sync; algorithm code
//! calls it at phase boundaries. Compute sections go through
//! [`Charger::compute`], which supports both the analytic
//! ([`TimePolicy::Modeled`]) and the wall-clock ([`TimePolicy::Measured`])
//! policies.

use pdm::{Disk, IoSnapshot};
use sim::{Jitter, SimDuration, SimTime};

use crate::clock::NodeClock;
use crate::cost::CpuModel;
use crate::spec::TimePolicy;

/// Counted work for one compute section.
#[derive(Debug, Clone, Copy, Default)]
pub struct Work {
    /// Key comparisons.
    pub comparisons: u64,
    /// Record moves (buffer copies).
    pub moves: u64,
    /// Key-kernel operations (radix-pass record touches, cached-key
    /// tournament selects) — priced by [`CpuModel::key_ops`], much cheaper
    /// per unit than a full comparison.
    pub key_ops: u64,
}

impl Work {
    /// Work consisting only of comparisons.
    pub fn comparisons(n: u64) -> Self {
        Work {
            comparisons: n,
            ..Work::default()
        }
    }

    /// Work consisting only of record moves.
    pub fn moves(n: u64) -> Self {
        Work {
            moves: n,
            ..Work::default()
        }
    }

    /// Work consisting only of key-kernel operations.
    pub fn key_ops(n: u64) -> Self {
        Work {
            key_ops: n,
            ..Work::default()
        }
    }

    /// Combines two work tallies.
    #[must_use]
    pub fn plus(self, other: Work) -> Work {
        Work {
            comparisons: self.comparisons + other.comparisons,
            moves: self.moves + other.moves,
            key_ops: self.key_ops + other.key_ops,
        }
    }

    /// The critical-path share of this work when it is split evenly over
    /// `workers` parallel threads: each tally is divided by the worker count
    /// (rounded up, so a nonzero tally never becomes free). Used to price
    /// range-partitioned parallel merging, where the per-worker loser trees
    /// run concurrently and only the slowest worker bounds the section.
    #[must_use]
    pub fn across_workers(self, workers: usize) -> Work {
        let w = workers.max(1) as u64;
        Work {
            comparisons: self.comparisons.div_ceil(w),
            moves: self.moves.div_ceil(w),
            key_ops: self.key_ops.div_ceil(w),
        }
    }
}

/// The largest single clock jump caused by a message arrival since the
/// last [`Charger::take_dominant`]. Pure bookkeeping for the critical-path
/// analyzer: identifies which sender the node was actually waiting on
/// during a phase, and when that message departed the sender.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DominantWait {
    /// Rank of the sender whose message caused the jump.
    pub from: usize,
    /// Virtual time the message left the sender.
    pub depart: SimTime,
    /// Virtual time the message arrived (the clock's new value).
    pub arrival: SimTime,
    /// Size of the clock jump.
    pub jump: SimDuration,
}

/// Per-node time accounting.
#[derive(Debug)]
pub struct Charger {
    clock: NodeClock,
    cpu: CpuModel,
    slowdown: f64,
    jitter: Jitter,
    disk: Disk,
    last_io: IoSnapshot,
    policy: TimePolicy,
    /// Declared concurrent request streams sharing the disk for subsequent
    /// I/O charges. Deliberately *declared* by the algorithm (merge worker
    /// count, pipeline depth) rather than sampled from runtime concurrency,
    /// so virtual times stay deterministic. 1 = dedicated pricing.
    io_streams: usize,
    /// Cumulative breakdown (reference-speed seconds are *not* kept; these
    /// are post-slowdown, post-jitter charges).
    cpu_time: SimDuration,
    io_time: SimDuration,
    wait_time: SimDuration,
    io_queue_wait: SimDuration,
    overlap_saved: SimDuration,
    /// Read/write split of [`Self::io_time`]: each charged delta is
    /// apportioned by the ratio of its raw read-only and write-only service
    /// prices, so `io_read_time + io_write_time == io_time` exactly.
    io_read_time: SimDuration,
    io_write_time: SimDuration,
    /// Largest arrival-induced clock jump since the last `take_dominant`.
    dominant: Option<DominantWait>,
}

impl Charger {
    /// Creates a charger for one node.
    pub fn new(
        cpu: CpuModel,
        slowdown: f64,
        jitter: Jitter,
        disk: Disk,
        policy: TimePolicy,
    ) -> Self {
        assert!(slowdown >= 1.0, "slowdown must be >= 1, got {slowdown}");
        let last_io = disk.stats().snapshot();
        Charger {
            clock: NodeClock::new(),
            cpu,
            slowdown,
            jitter,
            disk,
            last_io,
            policy,
            io_streams: 1,
            cpu_time: SimDuration::ZERO,
            io_time: SimDuration::ZERO,
            wait_time: SimDuration::ZERO,
            io_queue_wait: SimDuration::ZERO,
            overlap_saved: SimDuration::ZERO,
            io_read_time: SimDuration::ZERO,
            io_write_time: SimDuration::ZERO,
            dominant: None,
        }
    }

    /// Declares how many concurrent request streams share the disk for
    /// subsequent I/O charges (clamped to ≥ 1). Set it before a parallel
    /// phase and restore it to 1 afterwards; the price of the phase's delta
    /// is [`pdm::DiskModel::shared_service_time`] at this stream count.
    pub fn set_io_streams(&mut self, streams: usize) {
        self.io_streams = streams.max(1);
    }

    /// The declared stream count currently in effect.
    pub fn io_streams(&self) -> usize {
        self.io_streams
    }

    /// Current virtual time on this node.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// The node's slowdown factor.
    pub fn slowdown(&self) -> f64 {
        self.slowdown
    }

    /// Runs a compute section, charging per the active policy.
    pub fn compute<T>(&mut self, estimate: Work, f: impl FnOnce() -> T) -> T {
        match self.policy {
            TimePolicy::Modeled => {
                let out = f();
                self.charge_work(estimate);
                out
            }
            TimePolicy::Measured => {
                let start = std::time::Instant::now();
                let out = f();
                let elapsed = SimDuration::from_secs(start.elapsed().as_secs_f64());
                self.charge_cpu_raw(elapsed);
                out
            }
        }
    }

    /// Charges a completed section for which both the counted work and the
    /// real elapsed time are known (the work counts usually come from a
    /// sorter's report, available only *after* the section ran). Uses the
    /// counts under [`TimePolicy::Modeled`] and the wall time under
    /// [`TimePolicy::Measured`].
    pub fn charge_section(&mut self, work: Work, elapsed: std::time::Duration) {
        match self.policy {
            TimePolicy::Modeled => self.charge_work(work),
            TimePolicy::Measured => {
                self.charge_cpu_raw(SimDuration::from_secs(elapsed.as_secs_f64()))
            }
        }
    }

    /// Charges a completed *pipelined* section: computation and disk
    /// transfers overlapped, so the phase costs `max(cpu, io)` instead of
    /// `cpu + io`. Prices the same quantities as the sequential
    /// [`Self::charge_section`] + [`Self::sync_io`] pair — same work counts,
    /// same block-counter delta, same two jitter draws in the same order —
    /// and advances the clock by the larger of the two charges. The smaller
    /// charge (the hidden one) is accumulated in [`Self::overlap_saved`].
    ///
    /// Both components still land in the [`Self::cpu_time`] /
    /// [`Self::io_time`] breakdowns, so `cpu_time + io_time` can exceed
    /// elapsed virtual time on a pipelined node; the breakdowns answer
    /// "how busy was each resource", the clock answers "how long did it
    /// take".
    pub fn charge_overlapped_section(
        &mut self,
        work: Work,
        elapsed: std::time::Duration,
    ) -> IoSnapshot {
        let cpu_raw = match self.policy {
            TimePolicy::Modeled => {
                self.cpu.comparisons(work.comparisons)
                    + self.cpu.record_moves(work.moves)
                    + self.cpu.key_ops(work.key_ops)
            }
            TimePolicy::Measured => SimDuration::from_secs(elapsed.as_secs_f64()),
        };
        let charged_cpu = self.jitter.apply(cpu_raw.scale(self.slowdown));

        let now = self.disk.stats().snapshot();
        let delta = now.delta(&self.last_io);
        self.last_io = now;
        let charged_io = self.charge_io_delta(&delta);

        self.cpu_time += charged_cpu;
        let advance = charged_cpu.max(charged_io);
        self.overlap_saved += charged_cpu + charged_io - advance;
        self.clock.advance(advance);
        delta
    }

    /// Prices one I/O delta under the declared stream count, books the
    /// contention share into [`Self::io_queue_wait`], and returns the full
    /// charge (not yet applied to the clock).
    fn charge_io_delta(&mut self, delta: &IoSnapshot) -> SimDuration {
        let model = self.disk.model();
        let io_raw = model.shared_service_time(delta, self.io_streams);
        let wait_raw = model.queue_wait(delta, self.io_streams);
        let charged_io = self.jitter.apply(io_raw.scale(self.slowdown));
        // Attribute the queueing share of the jittered charge proportionally
        // so the wait breakdown sums consistently with io_time.
        if wait_raw > SimDuration::ZERO && io_raw > SimDuration::ZERO {
            self.io_queue_wait += charged_io.scale(wait_raw.as_secs() / io_raw.as_secs());
        }
        // Split the single charge into read and write shares by pricing the
        // read-only and write-only sub-deltas at raw (un-jittered, dedicated)
        // service time. No extra jitter draws: the split only apportions the
        // charge already drawn above, keeping the clock bit-identical.
        let read_delta = IoSnapshot {
            blocks_read: delta.blocks_read,
            bytes_read: delta.bytes_read,
            random_reads: delta.random_reads,
            seek_bytes: delta.seek_bytes,
            ..Default::default()
        };
        let write_delta = IoSnapshot {
            blocks_written: delta.blocks_written,
            bytes_written: delta.bytes_written,
            files_created: delta.files_created,
            ..Default::default()
        };
        let read_raw = model.service_time(&read_delta).as_secs();
        let write_raw = model.service_time(&write_delta).as_secs();
        let total_raw = read_raw + write_raw;
        if total_raw > 0.0 {
            let read_share = charged_io.scale(read_raw / total_raw);
            self.io_read_time += read_share;
            self.io_write_time += charged_io - read_share;
        }
        self.io_time += charged_io;
        charged_io
    }

    /// Charges counted work at reference speed ÷ node speed.
    pub fn charge_work(&mut self, w: Work) {
        let t = self.cpu.comparisons(w.comparisons)
            + self.cpu.record_moves(w.moves)
            + self.cpu.key_ops(w.key_ops);
        self.charge_cpu_raw(t);
    }

    /// Charges a raw reference-speed CPU duration (scaled and jittered).
    pub fn charge_cpu_raw(&mut self, t: SimDuration) {
        let charged = self.jitter.apply(t.scale(self.slowdown));
        self.cpu_time += charged;
        self.clock.advance(charged);
    }

    /// Prices all block I/O performed since the last call and advances the
    /// clock. Call at phase boundaries (and before reading [`Self::now`]
    /// for reporting).
    pub fn sync_io(&mut self) -> IoSnapshot {
        let now = self.disk.stats().snapshot();
        let delta = now.delta(&self.last_io);
        self.last_io = now;
        let charged = self.charge_io_delta(&delta);
        self.clock.advance(charged);
        delta
    }

    /// Zeroes the clock and all accumulated times, and absorbs (without
    /// charging) any un-synced I/O. Used to exclude setup work — the paper's
    /// timings "do not comprise the initial distribution of data". Only call
    /// at a point where all nodes reset together (right after a barrier),
    /// or Lamport timestamps lose their meaning.
    pub fn reset(&mut self) {
        self.last_io = self.disk.stats().snapshot();
        self.clock = NodeClock::new();
        self.cpu_time = SimDuration::ZERO;
        self.io_time = SimDuration::ZERO;
        self.wait_time = SimDuration::ZERO;
        self.io_queue_wait = SimDuration::ZERO;
        self.overlap_saved = SimDuration::ZERO;
        self.io_read_time = SimDuration::ZERO;
        self.io_write_time = SimDuration::ZERO;
        self.dominant = None;
    }

    /// Merges a message arrival timestamp (may jump the clock forward).
    /// The jump is accounted as wait time.
    pub fn merge_arrival(&mut self, arrival: SimTime) {
        let before = self.clock.now();
        self.clock.merge(arrival);
        self.wait_time += self.clock.now().since(before);
    }

    /// [`Self::merge_arrival`] with sender provenance: if this arrival jumps
    /// the clock further than any other since the last [`Self::take_dominant`],
    /// it is remembered as the dominant wait. Pure bookkeeping — the clock
    /// and wait accounting are bit-identical to `merge_arrival`.
    pub fn merge_arrival_from(&mut self, arrival: SimTime, from: usize, depart: SimTime) {
        let before = self.clock.now();
        self.clock.merge(arrival);
        let jump = self.clock.now().since(before);
        self.wait_time += jump;
        if jump > SimDuration::ZERO && self.dominant.is_none_or(|d| jump > d.jump) {
            self.dominant = Some(DominantWait {
                from,
                depart,
                arrival: self.clock.now(),
                jump,
            });
        }
    }

    /// Takes (and clears) the dominant message wait recorded since the last
    /// call. `None` if no arrival jumped the clock in the interval.
    pub fn take_dominant(&mut self) -> Option<DominantWait> {
        self.dominant.take()
    }

    /// Cumulative charged CPU time.
    pub fn cpu_time(&self) -> SimDuration {
        self.cpu_time
    }

    /// Cumulative charged disk time.
    pub fn io_time(&self) -> SimDuration {
        self.io_time
    }

    /// Cumulative time spent waiting on messages.
    pub fn wait_time(&self) -> SimDuration {
        self.wait_time
    }

    /// Read share of [`Self::io_time`] (apportioned per charged delta by
    /// raw service price; includes the read side's queueing share).
    pub fn io_read_time(&self) -> SimDuration {
        self.io_read_time
    }

    /// Write share of [`Self::io_time`].
    pub fn io_write_time(&self) -> SimDuration {
        self.io_write_time
    }

    /// Cumulative share of [`Self::io_time`] attributable to disk queueing
    /// under shared-stream pricing (zero while `io_streams` stays at 1).
    pub fn io_queue_wait(&self) -> SimDuration {
        self.io_queue_wait
    }

    /// Cumulative time hidden by pipelining: for every overlapped section,
    /// the smaller of its CPU and I/O charges (what a sequential execution
    /// would have paid on top of the clock advance).
    pub fn overlap_saved(&self) -> SimDuration {
        self.overlap_saved
    }

    /// The disk whose counters this charger prices.
    pub fn disk(&self) -> &Disk {
        &self.disk
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm::DiskModel;

    fn test_charger(slowdown: f64) -> Charger {
        let disk = Disk::in_memory(64).with_model(DiskModel::scsi_2000());
        Charger::new(
            CpuModel::alpha_533(),
            slowdown,
            Jitter::none(),
            disk,
            TimePolicy::Modeled,
        )
    }

    #[test]
    fn work_constructors_and_plus() {
        let w = Work::comparisons(10)
            .plus(Work::moves(5))
            .plus(Work::key_ops(7))
            .plus(Work {
                comparisons: 2,
                moves: 3,
                key_ops: 1,
            });
        assert_eq!(w.comparisons, 12);
        assert_eq!(w.moves, 8);
        assert_eq!(w.key_ops, 8);
        let zero = Work::default();
        assert_eq!(zero.comparisons, 0);
        assert_eq!(zero.moves, 0);
        assert_eq!(zero.key_ops, 0);
    }

    #[test]
    fn across_workers_divides_rounding_up() {
        let w = Work {
            comparisons: 10,
            moves: 7,
            key_ops: 1,
        };
        let split = w.across_workers(4);
        assert_eq!(split.comparisons, 3); // ceil(10/4)
        assert_eq!(split.moves, 2); // ceil(7/4)
        assert_eq!(split.key_ops, 1, "nonzero work never becomes free");
        let same = w.across_workers(1);
        assert_eq!(same.comparisons, 10);
        assert_eq!(same.moves, 7);
        assert_eq!(same.key_ops, 1);
        // Degenerate worker counts clamp to 1.
        let clamped = w.across_workers(0);
        assert_eq!(clamped.comparisons, 10);
    }

    #[test]
    fn key_ops_charged_cheaper_than_comparisons() {
        let mut by_cmp = test_charger(1.0);
        let mut by_key = test_charger(1.0);
        by_cmp.charge_work(Work::comparisons(1_000_000));
        by_key.charge_work(Work::key_ops(1_000_000));
        assert!(by_key.now() < by_cmp.now());
        assert!(by_key.now().as_secs() > 0.0);
    }

    #[test]
    fn charge_section_respects_policy() {
        let mut modeled = test_charger(1.0);
        modeled.charge_section(
            Work::comparisons(1_000_000),
            std::time::Duration::from_secs(99),
        );
        // Modeled: uses the counts (0.28 s), not the 99 s wall time.
        assert!((modeled.now().as_secs() - 0.28).abs() < 1e-9);

        let disk = Disk::in_memory(64);
        let mut measured = Charger::new(
            CpuModel::alpha_533(),
            2.0,
            Jitter::none(),
            disk,
            TimePolicy::Measured,
        );
        measured.charge_section(
            Work::comparisons(1_000_000),
            std::time::Duration::from_millis(100),
        );
        // Measured: wall time x slowdown.
        assert!((measured.now().as_secs() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut c = test_charger(1.0);
        c.charge_work(Work::comparisons(1000));
        c.disk().write_file::<u32>("f", &[1, 2, 3]).unwrap();
        c.reset();
        assert_eq!(c.now().as_secs(), 0.0);
        assert_eq!(c.cpu_time().as_secs(), 0.0);
        // The pre-reset I/O was absorbed: a sync after reset charges nothing.
        c.sync_io();
        assert_eq!(c.io_time().as_secs(), 0.0);
    }

    #[test]
    fn work_charges_scale_with_slowdown() {
        let mut fast = test_charger(1.0);
        let mut slow = test_charger(4.0);
        fast.charge_work(Work::comparisons(1_000_000));
        slow.charge_work(Work::comparisons(1_000_000));
        let f = fast.now().as_secs();
        let s = slow.now().as_secs();
        assert!((s - 4.0 * f).abs() < 1e-12, "slow {s} vs fast {f}");
    }

    #[test]
    fn compute_returns_value_and_charges() {
        let mut c = test_charger(1.0);
        let v = c.compute(Work::comparisons(1000), || 7 * 6);
        assert_eq!(v, 42);
        assert!(c.now().as_secs() > 0.0);
        assert_eq!(c.cpu_time().as_secs(), c.now().as_secs());
    }

    #[test]
    fn sync_io_prices_block_deltas() {
        let mut c = test_charger(1.0);
        c.disk()
            .write_file::<u32>("f", &(0..64).collect::<Vec<_>>())
            .unwrap();
        let delta = c.sync_io();
        assert!(delta.blocks_written > 0);
        assert!(c.io_time().as_secs() > 0.0);
        // Second sync with no new I/O charges nothing.
        let t = c.now();
        let delta2 = c.sync_io();
        assert_eq!(delta2.total_blocks(), 0);
        assert_eq!(c.now(), t);
    }

    #[test]
    fn io_also_scaled_by_slowdown() {
        let mut fast = test_charger(1.0);
        let mut slow = test_charger(4.0);
        let data: Vec<u32> = (0..256).collect();
        fast.disk().write_file("f", &data).unwrap();
        slow.disk().write_file("f", &data).unwrap();
        fast.sync_io();
        slow.sync_io();
        assert!((slow.io_time().as_secs() - 4.0 * fast.io_time().as_secs()).abs() < 1e-12);
    }

    #[test]
    fn merge_arrival_counts_wait() {
        let mut c = test_charger(1.0);
        c.charge_work(Work::comparisons(100));
        let before = c.now();
        c.merge_arrival(before + SimDuration::from_secs(2.0));
        assert_eq!(c.wait_time(), SimDuration::from_secs(2.0));
        // Arrivals in the past don't move the clock or add wait.
        c.merge_arrival(SimTime::ZERO);
        assert_eq!(c.wait_time(), SimDuration::from_secs(2.0));
    }

    #[test]
    fn measured_policy_charges_wall_time() {
        let disk = Disk::in_memory(64);
        let mut c = Charger::new(
            CpuModel::free(),
            2.0,
            Jitter::none(),
            disk,
            TimePolicy::Measured,
        );
        c.compute(Work::default(), || {
            std::thread::sleep(std::time::Duration::from_millis(20));
        });
        // ~20ms × slowdown 2 = ≥ 40ms of virtual time.
        assert!(c.now().as_secs() >= 0.04, "got {}", c.now());
    }

    #[test]
    #[should_panic(expected = "slowdown must be >= 1")]
    fn speedups_rejected() {
        let _ = test_charger(0.5);
    }

    #[test]
    fn overlapped_charges_max_of_cpu_and_io() {
        // CPU-bound section: lots of comparisons, tiny I/O.
        let mut c = test_charger(1.0);
        c.disk().write_file::<u32>("f", &[1]).unwrap();
        let delta = c
            .charge_overlapped_section(Work::comparisons(1_000_000_000), std::time::Duration::ZERO);
        assert!(delta.blocks_written > 0);
        let cpu = c.cpu_time();
        let io = c.io_time();
        assert!(cpu > io, "meant to be CPU-bound: cpu {cpu} io {io}");
        assert_eq!(c.now().as_secs(), cpu.as_secs());
        assert!((c.overlap_saved().as_secs() - io.as_secs()).abs() < 1e-12);

        // I/O-bound section: no counted work, lots of blocks.
        let mut c = test_charger(1.0);
        c.disk()
            .write_file::<u32>("g", &(0..4096).collect::<Vec<_>>())
            .unwrap();
        c.charge_overlapped_section(Work::default(), std::time::Duration::ZERO);
        assert_eq!(c.now().as_secs(), c.io_time().as_secs());
        assert!((c.overlap_saved().as_secs() - c.cpu_time().as_secs()).abs() < 1e-12);
    }

    #[test]
    fn overlapped_prices_same_components_as_sequential() {
        // Same work, same I/O: the overlapped clock advance must equal
        // max(cpu, io) of the sequential charges, and the breakdowns match.
        let data: Vec<u32> = (0..1024).collect();
        let work = Work::comparisons(500_000).plus(Work::moves(100_000));

        let mut seq = test_charger(2.0);
        seq.disk().write_file("f", &data).unwrap();
        seq.charge_section(work, std::time::Duration::ZERO);
        seq.sync_io();

        let mut over = test_charger(2.0);
        over.disk().write_file("f", &data).unwrap();
        over.charge_overlapped_section(work, std::time::Duration::ZERO);

        assert_eq!(over.cpu_time(), seq.cpu_time());
        assert_eq!(over.io_time(), seq.io_time());
        assert_eq!(
            over.now().as_secs(),
            seq.cpu_time().max(seq.io_time()).as_secs()
        );
        assert!(over.now() < seq.now(), "pipelining must save time here");
        let saved = seq.now().since(over.now());
        assert!((saved.as_secs() - over.overlap_saved().as_secs()).abs() < 1e-12);
    }

    #[test]
    fn overlapped_zero_work_zero_io_is_free() {
        // Degenerate section: no counted work, no block deltas. The clock
        // must not move and nothing may be recorded as saved.
        let mut c = test_charger(3.0);
        let delta = c.charge_overlapped_section(Work::default(), std::time::Duration::ZERO);
        assert_eq!(delta.total_blocks(), 0);
        assert_eq!(c.now(), SimTime::ZERO);
        assert_eq!(c.cpu_time(), SimDuration::ZERO);
        assert_eq!(c.io_time(), SimDuration::ZERO);
        assert_eq!(c.overlap_saved(), SimDuration::ZERO);
    }

    #[test]
    fn overlapped_io_only_section_charges_like_sync_io() {
        // I/O with zero counted work: the advance is exactly the sequential
        // sync_io charge, and nothing is hidden (cpu component is zero).
        let data: Vec<u32> = (0..2048).collect();
        let mut seq = test_charger(2.0);
        seq.disk().write_file("f", &data).unwrap();
        seq.sync_io();

        let mut over = test_charger(2.0);
        over.disk().write_file("f", &data).unwrap();
        over.charge_overlapped_section(Work::default(), std::time::Duration::ZERO);

        assert_eq!(over.now(), seq.now());
        assert_eq!(over.io_time(), seq.io_time());
        assert_eq!(over.cpu_time(), SimDuration::ZERO);
        assert_eq!(over.overlap_saved(), SimDuration::ZERO);
    }

    #[test]
    fn overlap_saved_never_exceeds_min_component() {
        // Across a spread of cpu:io ratios, the hidden time is exactly
        // min(cpu, io) per section and therefore can never exceed it.
        for (cmps, recs) in [(0u64, 1usize), (1_000, 64), (500_000, 512), (50_000_000, 4)] {
            let mut c = test_charger(1.5);
            if recs > 0 {
                c.disk()
                    .write_file::<u32>("f", &(0..recs as u32).collect::<Vec<_>>())
                    .unwrap();
            }
            c.charge_overlapped_section(Work::comparisons(cmps), std::time::Duration::ZERO);
            let min = c.cpu_time().min(c.io_time());
            assert!(
                c.overlap_saved().as_secs() <= min.as_secs() + 1e-12,
                "cmps {cmps} recs {recs}: saved {} > min {}",
                c.overlap_saved(),
                min
            );
            assert!((c.overlap_saved().as_secs() - min.as_secs()).abs() < 1e-12);
            assert_eq!(
                c.now().as_secs(),
                c.cpu_time().max(c.io_time()).as_secs(),
                "advance must be the max component"
            );
        }
    }

    #[test]
    fn shared_streams_inflate_io_on_scsi_not_nvme() {
        let data: Vec<u32> = (0..4096).collect();

        // Identical I/O, priced dedicated vs 4 declared streams.
        let mut dedicated = test_charger(1.0);
        dedicated.disk().write_file("f", &data).unwrap();
        dedicated.sync_io();

        let mut shared = test_charger(1.0);
        shared.set_io_streams(4);
        assert_eq!(shared.io_streams(), 4);
        shared.disk().write_file("f", &data).unwrap();
        shared.sync_io();

        assert!(
            shared.io_time() > dedicated.io_time() * 2.0,
            "scsi queueing must dominate: shared {} dedicated {}",
            shared.io_time(),
            dedicated.io_time()
        );
        assert!(shared.io_queue_wait() > SimDuration::ZERO);
        assert_eq!(dedicated.io_queue_wait(), SimDuration::ZERO);
        // The breakdown is consistent: io_time = dedicated share + wait.
        let direct = shared.io_time() - shared.io_queue_wait();
        assert!((direct.as_secs() - dedicated.io_time().as_secs()).abs() < 1e-9);

        // NVMe at 4 streams (queue depth 32): no penalty at all.
        let nvme = Disk::in_memory(64).with_model(DiskModel::nvme_modern());
        let mut c = Charger::new(
            CpuModel::alpha_533(),
            1.0,
            Jitter::none(),
            nvme,
            TimePolicy::Modeled,
        );
        c.set_io_streams(4);
        c.disk().write_file("f", &data).unwrap();
        c.sync_io();
        assert_eq!(c.io_queue_wait(), SimDuration::ZERO);
    }

    #[test]
    fn default_stream_count_prices_exactly_as_before() {
        // streams = 1 must reproduce the historical dedicated pricing bit
        // for bit (the differential suites depend on it).
        let data: Vec<u32> = (0..1024).collect();
        let mut c = test_charger(2.0);
        c.disk().write_file("f", &data).unwrap();
        c.sync_io();
        let expected = c.disk().model().service_time(&IoSnapshot {
            blocks_written: 1024 * 4 / 64,
            bytes_written: 1024 * 4,
            files_created: 1,
            ..Default::default()
        });
        assert!((c.io_time().as_secs() - 2.0 * expected.as_secs()).abs() < 1e-9);
        assert_eq!(c.io_queue_wait(), SimDuration::ZERO);
    }

    #[test]
    fn reset_zeroes_io_queue_wait() {
        let mut c = test_charger(1.0);
        c.set_io_streams(8);
        c.disk()
            .write_file::<u32>("f", &(0..512).collect::<Vec<_>>())
            .unwrap();
        c.sync_io();
        assert!(c.io_queue_wait() > SimDuration::ZERO);
        c.reset();
        assert_eq!(c.io_queue_wait(), SimDuration::ZERO);
    }

    #[test]
    fn io_split_sums_to_io_time() {
        let mut c = test_charger(2.0);
        let data: Vec<u32> = (0..1024).collect();
        c.disk().write_file("f", &data).unwrap();
        c.sync_io();
        // Write-only delta: everything lands on the write side.
        assert_eq!(c.io_read_time(), SimDuration::ZERO);
        assert!((c.io_write_time().as_secs() - c.io_time().as_secs()).abs() < 1e-12);

        let _: Vec<u32> = c.disk().read_file("f").unwrap();
        c.sync_io();
        // Mixed cumulative totals still sum exactly.
        assert!(c.io_read_time() > SimDuration::ZERO);
        let sum = c.io_read_time() + c.io_write_time();
        assert!((sum.as_secs() - c.io_time().as_secs()).abs() < 1e-12);
    }

    #[test]
    fn io_split_read_only_delta_is_all_read() {
        let mut c = test_charger(1.0);
        c.disk()
            .write_file::<u32>("f", &(0..512).collect::<Vec<_>>())
            .unwrap();
        c.sync_io();
        let write_side = c.io_write_time();
        let _: Vec<u32> = c.disk().read_file("f").unwrap();
        c.sync_io();
        assert_eq!(c.io_write_time(), write_side, "reads must not bill writes");
        assert!(c.io_read_time() > SimDuration::ZERO);
    }

    #[test]
    fn dominant_wait_tracks_largest_jump() {
        let mut c = test_charger(1.0);
        assert!(c.take_dominant().is_none());
        c.merge_arrival_from(SimTime::from_secs(1.0), 2, SimTime::from_secs(0.5));
        c.merge_arrival_from(SimTime::from_secs(1.5), 3, SimTime::from_secs(0.2));
        // Second jump (0.5s) is smaller than the first (1.0s).
        let d = c.take_dominant().expect("dominant recorded");
        assert_eq!(d.from, 2);
        assert_eq!(d.arrival, SimTime::from_secs(1.0));
        assert_eq!(d.depart, SimTime::from_secs(0.5));
        assert!((d.jump.as_secs() - 1.0).abs() < 1e-12);
        // take_dominant clears the record.
        assert!(c.take_dominant().is_none());
        // Arrivals in the past record nothing.
        c.merge_arrival_from(SimTime::ZERO, 1, SimTime::ZERO);
        assert!(c.take_dominant().is_none());
        // Wait accounting matches plain merge_arrival.
        assert_eq!(c.wait_time(), SimDuration::from_secs(1.5));
    }

    #[test]
    fn reset_zeroes_io_split_and_dominant() {
        let mut c = test_charger(1.0);
        c.disk().write_file::<u32>("f", &[1, 2, 3]).unwrap();
        c.sync_io();
        c.merge_arrival_from(SimTime::from_secs(9.0), 1, SimTime::ZERO);
        c.reset();
        assert_eq!(c.io_read_time(), SimDuration::ZERO);
        assert_eq!(c.io_write_time(), SimDuration::ZERO);
        assert!(c.take_dominant().is_none());
    }

    #[test]
    fn reset_zeroes_overlap_saved() {
        let mut c = test_charger(1.0);
        c.disk().write_file::<u32>("f", &[1, 2, 3]).unwrap();
        c.charge_overlapped_section(Work::comparisons(10), std::time::Duration::ZERO);
        c.reset();
        assert_eq!(c.overlap_saved(), SimDuration::ZERO);
    }
}
