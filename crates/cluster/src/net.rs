//! Network fabric models.
//!
//! A message of `b` bytes costs `latency + b / bandwidth` of virtual time
//! between send and earliest possible receive, plus a small per-message CPU
//! overhead on the sender (the MPI stack). Presets model the paper's two
//! fabrics; the paper's observation that Myrinet does **not** speed the sort
//! up (each record moves only once, so the network is never the bottleneck)
//! is reproduced by these numbers.

use sim::SimDuration;

/// A linear latency/bandwidth network model.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkModel {
    /// Human-readable name (Table 1 / Table 3 rows).
    pub name: &'static str,
    /// One-way message latency.
    pub latency: SimDuration,
    /// Bandwidth in bytes per second.
    pub bytes_per_sec: f64,
    /// Sender-side CPU overhead per message (stack traversal, copies).
    pub send_overhead: SimDuration,
    /// Receiver-side CPU overhead per message (interrupt, stack, copy).
    pub recv_overhead: SimDuration,
}

impl NetworkModel {
    /// 100 Mbit/s switched Fast-Ethernet, ~100 µs small-message latency —
    /// the paper's commodity fabric.
    pub fn fast_ethernet() -> Self {
        NetworkModel {
            name: "Fast-Ethernet (100Mb/s, 100us)",
            latency: SimDuration::from_micros(100.0),
            bytes_per_sec: 12.5e6,
            // c. 2000 Linux TCP + MPI stacks burned ~100 us of CPU per
            // message on each side — what makes tiny packets catastrophic.
            send_overhead: SimDuration::from_micros(110.0),
            recv_overhead: SimDuration::from_micros(110.0),
        }
    }

    /// Myrinet (c. 2000): ~1.28 Gbit/s, single-digit-µs latency — the
    /// paper's "best we can use" fabric.
    pub fn myrinet() -> Self {
        NetworkModel {
            name: "Myrinet (1.28Gb/s, 9us)",
            latency: SimDuration::from_micros(9.0),
            bytes_per_sec: 160.0e6,
            // OS-bypass fabric: user-level messaging, tiny per-message CPU.
            send_overhead: SimDuration::from_micros(8.0),
            recv_overhead: SimDuration::from_micros(8.0),
        }
    }

    /// An idealized zero-cost network, to isolate CPU/disk effects.
    pub fn infinite() -> Self {
        NetworkModel {
            name: "infinite (zero-cost)",
            latency: SimDuration::ZERO,
            bytes_per_sec: f64::INFINITY,
            send_overhead: SimDuration::ZERO,
            recv_overhead: SimDuration::ZERO,
        }
    }

    /// Wire time for a message of `bytes` (latency + transfer).
    pub fn wire_time(&self, bytes: u64) -> SimDuration {
        if self.bytes_per_sec.is_infinite() {
            self.latency
        } else {
            self.latency + SimDuration::from_secs(bytes as f64 / self.bytes_per_sec)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_time_scales() {
        let n = NetworkModel::fast_ethernet();
        let t1 = n.wire_time(12_500_000); // 1 second of transfer
        assert!((t1.as_secs() - 1.0001).abs() < 1e-6, "{t1}");
        assert_eq!(n.wire_time(0), n.latency);
    }

    #[test]
    fn myrinet_beats_fast_ethernet() {
        let fe = NetworkModel::fast_ethernet();
        let my = NetworkModel::myrinet();
        assert!(my.wire_time(1 << 20) < fe.wire_time(1 << 20));
        assert!(my.latency < fe.latency);
    }

    #[test]
    fn infinite_network_only_latency_free() {
        let inf = NetworkModel::infinite();
        assert_eq!(inf.wire_time(u64::MAX), SimDuration::ZERO);
    }
}
