//! Cluster configuration.

use pdm::{Codec, DiskModel, IoBackend};

use crate::cost::CpuModel;
use crate::net::NetworkModel;

/// Where node disks keep their bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageKind {
    /// In-memory buffers (fast; unit/property tests).
    Memory,
    /// Real files in per-node scratch directories (experiments).
    Files,
}

/// Which scheduler executes the node functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RuntimeKind {
    /// One OS thread per node; blocking receives park the thread on its
    /// mpsc channel. The original runtime — wall-clock cost grows with
    /// `p`, so it is practical up to a few dozen nodes.
    #[default]
    Threads,
    /// A single-threaded discrete-event scheduler: every node is a
    /// cooperatively-scheduled task, and blocking receives park the task
    /// until the matching message is delivered. Scales to hundreds of
    /// nodes in one process and makes scheduling (and therefore the
    /// streamed exchange's arrival order) fully deterministic.
    Events,
}

impl RuntimeKind {
    /// Parses a CLI spelling (`threads` | `events`).
    pub fn parse(s: &str) -> Option<RuntimeKind> {
        match s {
            "threads" => Some(RuntimeKind::Threads),
            "events" => Some(RuntimeKind::Events),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            RuntimeKind::Threads => "threads",
            RuntimeKind::Events => "events",
        }
    }
}

/// How compute sections are converted to virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimePolicy {
    /// Analytic: counted work × cost model ÷ node speed. Deterministic
    /// (up to the seeded jitter); the default for every table reproduction.
    Modeled,
    /// Empirical: real elapsed wall time of the section × node slowdown.
    /// Grounded but host-dependent; offered for end-to-end demos.
    Measured,
}

/// Everything needed to spin up a simulated cluster.
///
/// `perf[i]` is node `i`'s **relative speed**: a node with `perf = 4` is 4×
/// faster than a node with `perf = 1` and, in the paper's scheme, receives
/// 4× the data. (The paper creates the slow nodes by loading identical
/// Alphas with competitor processes; we create them by scaling every CPU
/// and disk charge by `max(perf)/perf[i]`.)
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Relative node speeds (also the data-share weights).
    pub perf: Vec<u64>,
    /// Network fabric model.
    pub net: NetworkModel,
    /// Per-node disk service model.
    pub disk_model: DiskModel,
    /// Reference CPU cost model.
    pub cpu: CpuModel,
    /// Disk block size in bytes (the PDM `B`, in bytes).
    pub block_bytes: usize,
    /// Disk backend.
    pub storage: StorageKind,
    /// Master seed (node RNGs and jitter streams fork from it).
    pub seed: u64,
    /// Log-normal jitter shape applied to every charge (0 = deterministic).
    pub jitter_sigma: f64,
    /// Compute-time policy.
    pub time_policy: TimePolicy,
    /// Whether node threads record phase spans and metrics (`obs` crate).
    /// Off by default: the disabled tracer is a no-op handle, and traced
    /// runs are observationally identical to untraced ones.
    pub tracing: bool,
    /// Block codec for every node disk (zero-copy by default; both codecs
    /// are observationally identical).
    pub codec: Codec,
    /// I/O submission backend for every node disk.
    pub io_backend: IoBackend,
    /// Which scheduler runs the node functions. Thread-per-node by
    /// default; the event runtime produces bit-identical virtual clocks
    /// on every blocking exchange path and scales to hundreds of nodes.
    pub runtime: RuntimeKind,
}

impl ClusterSpec {
    /// A spec with the paper's defaults: Fast-Ethernet, SCSI-2000 disks,
    /// Alpha-533 CPUs, 32 KiB blocks, in-memory storage, no jitter.
    ///
    /// # Panics
    /// Panics if `perf` is empty or contains a zero.
    pub fn new(perf: Vec<u64>) -> Self {
        assert!(!perf.is_empty(), "cluster needs at least one node");
        assert!(
            perf.iter().all(|&x| x > 0),
            "perf entries must be positive: {perf:?}"
        );
        ClusterSpec {
            perf,
            net: NetworkModel::fast_ethernet(),
            disk_model: DiskModel::scsi_2000(),
            cpu: CpuModel::alpha_533(),
            block_bytes: 32 * 1024,
            storage: StorageKind::Memory,
            seed: 1,
            jitter_sigma: 0.0,
            time_policy: TimePolicy::Modeled,
            tracing: false,
            codec: Codec::default(),
            io_backend: IoBackend::default(),
            runtime: RuntimeKind::default(),
        }
    }

    /// A homogeneous cluster of `p` nodes.
    pub fn homogeneous(p: usize) -> Self {
        Self::new(vec![1; p])
    }

    /// Number of nodes.
    pub fn p(&self) -> usize {
        self.perf.len()
    }

    /// Node `i`'s slowdown relative to the fastest node (≥ 1).
    pub fn slowdown(&self, i: usize) -> f64 {
        let max = *self.perf.iter().max().expect("non-empty") as f64;
        max / self.perf[i] as f64
    }

    /// Sets the network model (builder style).
    #[must_use]
    pub fn with_net(mut self, net: NetworkModel) -> Self {
        self.net = net;
        self
    }

    /// Sets the disk model (builder style).
    #[must_use]
    pub fn with_disk_model(mut self, m: DiskModel) -> Self {
        self.disk_model = m;
        self
    }

    /// Sets the CPU model (builder style).
    #[must_use]
    pub fn with_cpu(mut self, m: CpuModel) -> Self {
        self.cpu = m;
        self
    }

    /// Sets the block size in bytes (builder style).
    #[must_use]
    pub fn with_block_bytes(mut self, b: usize) -> Self {
        assert!(b > 0, "block size must be positive");
        self.block_bytes = b;
        self
    }

    /// Sets the storage backend (builder style).
    #[must_use]
    pub fn with_storage(mut self, s: StorageKind) -> Self {
        self.storage = s;
        self
    }

    /// Sets the master seed (builder style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the jitter shape (builder style).
    #[must_use]
    pub fn with_jitter(mut self, sigma: f64) -> Self {
        self.jitter_sigma = sigma;
        self
    }

    /// Sets the compute-time policy (builder style).
    #[must_use]
    pub fn with_time_policy(mut self, p: TimePolicy) -> Self {
        self.time_policy = p;
        self
    }

    /// Enables or disables span/metric tracing (builder style).
    #[must_use]
    pub fn with_tracing(mut self, on: bool) -> Self {
        self.tracing = on;
        self
    }

    /// Sets the node-disk block codec (builder style).
    #[must_use]
    pub fn with_codec(mut self, codec: Codec) -> Self {
        self.codec = codec;
        self
    }

    /// Sets the node-disk I/O submission backend (builder style).
    #[must_use]
    pub fn with_io_backend(mut self, backend: IoBackend) -> Self {
        self.io_backend = backend;
        self
    }

    /// Selects the runtime that executes the node functions (builder
    /// style).
    #[must_use]
    pub fn with_runtime(mut self, runtime: RuntimeKind) -> Self {
        self.runtime = runtime;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_heterogeneous_spec() {
        // The paper's {1,1,4,4}: two loaded nodes, two fast nodes.
        let s = ClusterSpec::new(vec![1, 1, 4, 4]);
        assert_eq!(s.p(), 4);
        assert_eq!(s.slowdown(0), 4.0);
        assert_eq!(s.slowdown(3), 1.0);
    }

    #[test]
    fn homogeneous_spec() {
        let s = ClusterSpec::homogeneous(4);
        assert_eq!(s.perf, vec![1, 1, 1, 1]);
        assert!((0..4).all(|i| s.slowdown(i) == 1.0));
    }

    #[test]
    fn builders_chain() {
        let s = ClusterSpec::homogeneous(2)
            .with_net(NetworkModel::myrinet())
            .with_block_bytes(4096)
            .with_seed(99)
            .with_jitter(0.05)
            .with_storage(StorageKind::Files)
            .with_time_policy(TimePolicy::Measured)
            .with_tracing(true)
            .with_codec(Codec::Copying)
            .with_io_backend(IoBackend::Batched)
            .with_runtime(RuntimeKind::Events);
        assert_eq!(s.net.name, NetworkModel::myrinet().name);
        assert_eq!(s.block_bytes, 4096);
        assert_eq!(s.seed, 99);
        assert_eq!(s.storage, StorageKind::Files);
        assert_eq!(s.time_policy, TimePolicy::Measured);
        assert!(s.tracing);
        assert_eq!(s.codec, Codec::Copying);
        assert_eq!(s.io_backend, IoBackend::Batched);
        assert_eq!(s.runtime, RuntimeKind::Events);
    }

    #[test]
    fn runtime_kind_parses_cli_spellings() {
        assert_eq!(RuntimeKind::parse("threads"), Some(RuntimeKind::Threads));
        assert_eq!(RuntimeKind::parse("events"), Some(RuntimeKind::Events));
        assert_eq!(RuntimeKind::parse("fibers"), None);
        assert_eq!(RuntimeKind::default(), RuntimeKind::Threads);
        assert_eq!(RuntimeKind::Events.name(), "events");
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_perf_rejected() {
        let _ = ClusterSpec::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_perf_rejected() {
        let _ = ClusterSpec::new(vec![1, 0, 2]);
    }
}
