//! A simulated message-passing cluster with heterogeneous node speeds.
//!
//! The paper runs on 4 Alpha nodes over MPI, two of them artificially
//! *loaded* to be 4× slower. This crate reproduces that environment
//! in-process:
//!
//! * every node is a task with its own [`pdm::Disk`] and its own virtual
//!   clock ([`clock::NodeClock`]), executed either as one OS thread each
//!   or on a single-threaded discrete-event scheduler
//!   ([`spec::RuntimeKind`]);
//! * nodes exchange byte messages through [`comm::Endpoint`]s (std `mpsc`
//!   channels underneath); every message carries a Lamport timestamp, and a
//!   receive merges `max(local, send_time + network_cost)` into the
//!   receiver's clock, so the *makespan* of a run is simply the maximum
//!   node clock at the end;
//! * [`net::NetworkModel`] prices messages (latency + bytes/bandwidth);
//!   presets for the paper's Fast-Ethernet and Myrinet fabrics;
//! * [`charge::Charger`] converts work into virtual time: CPU operations
//!   are priced by a [`cost::CpuModel`] divided by the node's speed factor
//!   (the heterogeneity knob), disk I/O by the disk's service model applied
//!   to metered block counts, and every charge is multiplied by seeded
//!   log-normal jitter so repeated trials show realistic deviations;
//! * [`runtime::run_cluster`] runs the node tasks from a
//!   [`spec::ClusterSpec`] and collects per-node results, clocks, phase
//!   breakdowns and I/O counters.
//!
//! Nothing here knows about sorting; the `hetsort` crate builds the paper's
//! algorithm on top of these primitives.

pub mod bsp;
pub mod charge;
pub mod clock;
pub mod collectives;
pub mod comm;
pub mod cost;
mod events;
pub mod net;
pub mod runtime;
pub mod spec;

pub use charge::Charger;
pub use clock::NodeClock;
pub use comm::{Endpoint, Message, Tag};
pub use cost::CpuModel;
pub use net::NetworkModel;
pub use runtime::{run_cluster, ClusterReport, NodeCtx, NodeOutcome, PhaseBreakdown, PhaseMark};
pub use spec::{ClusterSpec, RuntimeKind, StorageKind, TimePolicy};
