//! BSP cost analysis of a phase-structured run.
//!
//! The paper's implementation heritage is BSP ("our previous codes were
//! developed under the framework of BSP", §5, refs. 33–36, including
//! Sibeyn–Kaufmann's BSP-like external-memory model). In BSP, a program is
//! a sequence of *supersteps*, each costing
//!
//! ```text
//! T(step) = w  +  g·h  +  L
//! ```
//!
//! where `w` is the maximum local work, `h` the maximum bytes a node sends
//! (the h-relation), `g` the fabric's per-byte routing cost and `L` the
//! barrier latency. Algorithm 1 is naturally phase-structured, so its
//! [`crate::PhaseMark`]s carry everything needed to evaluate the model:
//! per-phase time deltas give `w` (compute + disk), per-phase traffic
//! deltas give `h`.
//!
//! [`analyze`] prices each phase under BSP and compares the summed
//! prediction with the simulated makespan — a consistency check between
//! the two cost models (they agree when waiting is mostly barrier-shaped,
//! and diverge when point-to-point pipelining lets the simulation beat the
//! barrier-synchronous bound).

use sim::SimDuration;

use crate::net::NetworkModel;
use crate::runtime::{ClusterReport, NodeOutcome};

/// BSP machine parameters derived from a fabric model.
#[derive(Debug, Clone)]
pub struct BspModel {
    /// Per-byte routing cost `g` (seconds/byte).
    pub g: f64,
    /// Barrier cost `L` (seconds).
    pub l: f64,
}

impl BspModel {
    /// Derives `g` and `L` from a [`NetworkModel`] and the cluster width:
    /// `g` is the inverse bandwidth (plus the amortized per-message
    /// overheads at the given message size), `L` a flat-tree barrier
    /// through node 0.
    pub fn from_network(net: &NetworkModel, p: usize, msg_bytes: usize) -> Self {
        let per_byte = if net.bytes_per_sec.is_infinite() {
            0.0
        } else {
            1.0 / net.bytes_per_sec
        };
        let overhead_per_byte =
            (net.send_overhead.as_secs() + net.recv_overhead.as_secs()) / msg_bytes.max(1) as f64;
        let l = 2.0
            * (net.latency.as_secs() + net.send_overhead.as_secs() + net.recv_overhead.as_secs())
            * (p.max(2) - 1) as f64;
        BspModel {
            g: per_byte + overhead_per_byte,
            l,
        }
    }

    /// The cost of one superstep: `w + g·h + L`.
    pub fn superstep_cost(&self, w: SimDuration, h_bytes: u64) -> SimDuration {
        SimDuration::from_secs(w.as_secs() + self.g * h_bytes as f64 + self.l)
    }
}

/// One phase of a run, priced under BSP.
#[derive(Debug, Clone)]
pub struct SuperstepCost {
    /// Phase name (from the phase marks).
    pub name: String,
    /// Max local time spent in the phase across nodes (`w`).
    pub w: SimDuration,
    /// Max bytes sent by any node during the phase (`h`).
    pub h_bytes: u64,
    /// The BSP prediction `w + g·h + L`.
    pub predicted: SimDuration,
}

/// Prices every phase of a report under the BSP model. Nodes must have
/// marked the same phases in the same order (all our algorithms do).
pub fn analyze<T>(report: &ClusterReport<T>, model: &BspModel) -> Vec<SuperstepCost> {
    let Some(first) = report.nodes.first() else {
        return Vec::new();
    };
    (0..first.phases.len())
        .map(|k| {
            let name = first.phases[k].name.to_string();
            let w = report
                .nodes
                .iter()
                .map(|nd| phase_time(nd, k))
                .max()
                .unwrap_or(SimDuration::ZERO);
            let h_bytes = report
                .nodes
                .iter()
                .map(|nd| phase_bytes(nd, k))
                .max()
                .unwrap_or(0);
            SuperstepCost {
                predicted: model.superstep_cost(w, h_bytes),
                name,
                w,
                h_bytes,
            }
        })
        .collect()
}

/// Sum of the per-superstep predictions (the BSP makespan bound).
pub fn predicted_total(steps: &[SuperstepCost]) -> SimDuration {
    steps.iter().map(|s| s.predicted).sum()
}

fn phase_time<T>(node: &NodeOutcome<T>, k: usize) -> SimDuration {
    let Some(mark) = node.phases.get(k) else {
        return SimDuration::ZERO;
    };
    let prev = if k == 0 {
        sim::SimTime::ZERO
    } else {
        node.phases[k - 1].at
    };
    mark.at.since(prev)
}

fn phase_bytes<T>(node: &NodeOutcome<T>, k: usize) -> u64 {
    let Some(mark) = node.phases.get(k) else {
        return 0;
    };
    let prev = if k == 0 {
        0
    } else {
        node.phases[k - 1].sent_bytes
    };
    mark.sent_bytes.saturating_sub(prev)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::charge::Work;
    use crate::runtime::run_cluster;
    use crate::spec::ClusterSpec;

    #[test]
    fn model_parameters_from_network() {
        let m = BspModel::from_network(&NetworkModel::fast_ethernet(), 4, 32 * 1024);
        // g is dominated by the 12.5 MB/s bandwidth at 32 Kb messages.
        assert!(m.g > 0.9 / 12.5e6 && m.g < 2.0 / 12.5e6, "g = {}", m.g);
        assert!(m.l > 0.0);
        let inf = BspModel::from_network(&NetworkModel::infinite(), 4, 1024);
        assert_eq!(inf.g, 0.0);
    }

    #[test]
    fn superstep_cost_formula() {
        let m = BspModel { g: 1e-6, l: 0.5 };
        let c = m.superstep_cost(SimDuration::from_secs(2.0), 1_000_000);
        assert!((c.as_secs() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn analyze_prices_an_exchange() {
        // Two phases: local work, then an all-to-all of 1 MB per pair.
        let spec = ClusterSpec::homogeneous(4);
        let report = run_cluster(&spec, async |ctx| {
            ctx.charger.charge_work(Work::comparisons(10_000_000));
            ctx.mark_phase("compute");
            let outgoing: Vec<Vec<u8>> = (0..ctx.p).map(|_| vec![0u8; 1 << 20]).collect();
            let _ = ctx.all_to_all(outgoing).await;
            ctx.mark_phase("exchange");
        });
        let model = BspModel::from_network(&NetworkModel::fast_ethernet(), 4, 1 << 20);
        let steps = analyze(&report, &model);
        assert_eq!(steps.len(), 2);
        assert_eq!(steps[0].name, "compute");
        assert_eq!(steps[0].h_bytes, 0);
        assert!(steps[0].w.as_secs() > 2.0); // 10M comparisons at 280 ns
                                             // The exchange sends 3 MB per node.
        assert_eq!(steps[1].h_bytes, 3 << 20);
        // BSP predicted total is within a small factor of the simulation
        // (it upper-bounds: the simulation pipelines, BSP synchronizes).
        let predicted = predicted_total(&steps).as_secs();
        let measured = report.makespan.as_secs();
        assert!(
            predicted >= measured * 0.8 && predicted <= measured * 3.0,
            "BSP {predicted:.3}s vs simulated {measured:.3}s"
        );
    }

    #[test]
    fn empty_report_analyzes_to_nothing() {
        let spec = ClusterSpec::homogeneous(2);
        let report = run_cluster(&spec, async |_| ());
        let model = BspModel::from_network(&NetworkModel::myrinet(), 2, 1024);
        assert!(analyze(&report, &model).is_empty());
    }
}
