//! Collective operations: barrier, gather, broadcast, all-to-all.
//!
//! All collectives are built from timestamped point-to-point messages, so
//! their synchronizing effect on the virtual clocks is exact: a barrier
//! leaves every clock at ≥ the maximum participant clock at entry (plus the
//! wire costs), which is precisely how the makespan of a phase-structured
//! algorithm like PSRS is defined.
//!
//! Every collective call bumps the endpoint's internal sequence number;
//! since all nodes execute collectives in the same program order, sequence
//! numbers agree and back-to-back collectives cannot cross-talk.
//!
//! **Subset collectives** (`*_subset`) restrict a collective to an
//! explicit rank subset — the group-scoped sub-communicators of the
//! multi-level splitter path. They deliberately do *not* use the internal
//! sequence counter: overlapping subsets (a node can be both a group
//! member and a group leader) would desynchronize a shared per-endpoint
//! counter, so each call takes an explicit caller-supplied user [`Tag`]
//! instead. Per-sender FIFO delivery plus selective receives make a fixed
//! tag per algorithmic sub-step safe: successive rounds on the same
//! `(sender, tag)` pair are matched in send order.

use crate::charge::Charger;
use crate::comm::{Endpoint, Tag};

const KIND_BARRIER_IN: u16 = 0x8001;
const KIND_BARRIER_OUT: u16 = 0x8002;
const KIND_GATHER: u16 = 0x8003;
const KIND_BCAST: u16 = 0x8004;
const KIND_A2A: u16 = 0x8005;

impl Endpoint {
    /// Synchronizes all nodes (flat tree through rank 0).
    pub async fn barrier(&mut self, charger: &mut Charger) {
        let seq = self.next_seq();
        let p = self.p();
        let me = self.rank();
        if me == 0 {
            for from in 1..p {
                let _ = self
                    .recv_from(from, Tag::collective(KIND_BARRIER_IN, seq), charger)
                    .await;
            }
            for to in 1..p {
                self.send(
                    to,
                    Tag::collective(KIND_BARRIER_OUT, seq),
                    Vec::new(),
                    charger,
                );
            }
        } else {
            self.send(
                0,
                Tag::collective(KIND_BARRIER_IN, seq),
                Vec::new(),
                charger,
            );
            let _ = self
                .recv_from(0, Tag::collective(KIND_BARRIER_OUT, seq), charger)
                .await;
        }
    }

    /// Gathers every node's payload at `root`. Returns `Some(payloads)` at
    /// the root (indexed by rank) and `None` elsewhere.
    pub async fn gather(
        &mut self,
        root: usize,
        bytes: Vec<u8>,
        charger: &mut Charger,
    ) -> Option<Vec<Vec<u8>>> {
        let seq = self.next_seq();
        let p = self.p();
        let me = self.rank();
        if me == root {
            let mut out: Vec<Vec<u8>> = vec![Vec::new(); p];
            out[root] = bytes;
            for from in (0..p).filter(|&f| f != root) {
                let msg = self
                    .recv_from(from, Tag::collective(KIND_GATHER, seq), charger)
                    .await;
                out[from] = msg.bytes;
            }
            Some(out)
        } else {
            self.send(root, Tag::collective(KIND_GATHER, seq), bytes, charger);
            None
        }
    }

    /// Broadcasts `bytes` from `root` to everyone; returns the payload on
    /// every node (the root passes its own through untouched).
    pub async fn broadcast(
        &mut self,
        root: usize,
        bytes: Vec<u8>,
        charger: &mut Charger,
    ) -> Vec<u8> {
        let seq = self.next_seq();
        let p = self.p();
        let me = self.rank();
        if me == root {
            for to in (0..p).filter(|&t| t != root) {
                self.send(to, Tag::collective(KIND_BCAST, seq), bytes.clone(), charger);
            }
            bytes
        } else {
            self.recv_from(root, Tag::collective(KIND_BCAST, seq), charger)
                .await
                .bytes
        }
    }

    /// Personalized all-to-all: `outgoing[j]` goes to node `j`; returns
    /// `incoming[i]` = the payload node `i` sent here. The self-payload is
    /// moved locally for free.
    ///
    /// # Panics
    /// Panics if `outgoing.len() != p`.
    pub async fn all_to_all(
        &mut self,
        mut outgoing: Vec<Vec<u8>>,
        charger: &mut Charger,
    ) -> Vec<Vec<u8>> {
        let p = self.p();
        let me = self.rank();
        assert_eq!(outgoing.len(), p, "all_to_all needs one payload per node");
        let seq = self.next_seq();
        let mut incoming: Vec<Vec<u8>> = vec![Vec::new(); p];
        incoming[me] = std::mem::take(&mut outgoing[me]);
        // Send everything first (channels are unbounded, so this cannot
        // deadlock), then drain the inbound side.
        for to in (0..p).filter(|&t| t != me) {
            self.send(
                to,
                Tag::collective(KIND_A2A, seq),
                std::mem::take(&mut outgoing[to]),
                charger,
            );
        }
        for from in (0..p).filter(|&f| f != me) {
            let msg = self
                .recv_from(from, Tag::collective(KIND_A2A, seq), charger)
                .await;
            incoming[from] = msg.bytes;
        }
        incoming
    }

    fn next_seq(&mut self) -> u64 {
        self.coll_seq += 1;
        self.coll_seq
    }

    /// Position of this endpoint's rank inside `members`, panicking if the
    /// subset does not contain it — subset collectives must only be called
    /// by participating ranks.
    fn member_index(&self, members: &[usize]) -> usize {
        members
            .iter()
            .position(|&m| m == self.rank())
            .unwrap_or_else(|| {
                panic!(
                    "rank {} called a subset collective over {members:?} without being a member",
                    self.rank()
                )
            })
    }

    /// [`Self::gather`] restricted to `members` (sorted global ranks that
    /// include the caller). Returns `Some(payloads)` — indexed by member
    /// *position* — at `root` (a global rank in `members`), `None`
    /// elsewhere. `tag` must be a user tag unique to this algorithmic
    /// sub-step.
    pub async fn gather_subset(
        &mut self,
        members: &[usize],
        root: usize,
        bytes: Vec<u8>,
        tag: Tag,
        charger: &mut Charger,
    ) -> Option<Vec<Vec<u8>>> {
        let me_idx = self.member_index(members);
        let root_idx = members
            .iter()
            .position(|&m| m == root)
            .expect("subset gather root must be a member");
        if me_idx == root_idx {
            let mut out: Vec<Vec<u8>> = vec![Vec::new(); members.len()];
            out[root_idx] = bytes;
            for (idx, &from) in members.iter().enumerate().filter(|&(i, _)| i != root_idx) {
                out[idx] = self.recv_from(from, tag, charger).await.bytes;
            }
            Some(out)
        } else {
            self.send(root, tag, bytes, charger);
            None
        }
    }

    /// [`Self::broadcast`] restricted to `members`; returns the payload on
    /// every member. See [`Self::gather_subset`] for the tag contract.
    pub async fn broadcast_subset(
        &mut self,
        members: &[usize],
        root: usize,
        bytes: Vec<u8>,
        tag: Tag,
        charger: &mut Charger,
    ) -> Vec<u8> {
        let _ = self.member_index(members);
        if self.rank() == root {
            for &to in members.iter().filter(|&&m| m != root) {
                self.send(to, tag, bytes.clone(), charger);
            }
            bytes
        } else {
            self.recv_from(root, tag, charger).await.bytes
        }
    }

    /// [`Self::all_to_all`] restricted to `members`: `outgoing[i]` goes to
    /// the member at position `i`; returns payloads indexed by member
    /// position. See [`Self::gather_subset`] for the tag contract.
    ///
    /// # Panics
    /// Panics if `outgoing.len() != members.len()`.
    pub async fn all_to_all_subset(
        &mut self,
        members: &[usize],
        mut outgoing: Vec<Vec<u8>>,
        tag: Tag,
        charger: &mut Charger,
    ) -> Vec<Vec<u8>> {
        assert_eq!(
            outgoing.len(),
            members.len(),
            "subset all_to_all needs one payload per member"
        );
        let me_idx = self.member_index(members);
        let mut incoming: Vec<Vec<u8>> = vec![Vec::new(); members.len()];
        incoming[me_idx] = std::mem::take(&mut outgoing[me_idx]);
        for (idx, &to) in members.iter().enumerate().filter(|&(i, _)| i != me_idx) {
            self.send(to, tag, std::mem::take(&mut outgoing[idx]), charger);
        }
        for (idx, &from) in members.iter().enumerate().filter(|&(i, _)| i != me_idx) {
            incoming[idx] = self.recv_from(from, tag, charger).await.bytes;
        }
        incoming
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CpuModel;
    use crate::events::block_on;
    use crate::net::NetworkModel;
    use crate::spec::TimePolicy;
    use pdm::Disk;
    use sim::{Jitter, SimDuration};

    fn charger() -> Charger {
        Charger::new(
            CpuModel::free(),
            1.0,
            Jitter::none(),
            Disk::in_memory(64),
            TimePolicy::Modeled,
        )
    }

    /// Runs `f(rank, endpoint, charger)` on `p` threads; returns per-rank
    /// outputs.
    fn on_cluster<T: Send>(
        p: usize,
        net: NetworkModel,
        f: impl Fn(usize, &mut Endpoint, &mut Charger) -> T + Send + Sync,
    ) -> Vec<T> {
        let eps = Endpoint::mesh(p, net);
        let mut out: Vec<Option<T>> = Vec::new();
        for _ in 0..p {
            out.push(None);
        }
        std::thread::scope(|s| {
            let handles: Vec<_> = eps
                .into_iter()
                .enumerate()
                .map(|(rank, mut ep)| {
                    let f = &f;
                    s.spawn(move || {
                        let mut ch = charger();
                        f(rank, &mut ep, &mut ch)
                    })
                })
                .collect();
            for (slot, h) in out.iter_mut().zip(handles) {
                *slot = Some(h.join().expect("node panicked"));
            }
        });
        out.into_iter().map(|o| o.unwrap()).collect()
    }

    #[test]
    fn barrier_synchronizes_clocks() {
        let times = on_cluster(4, NetworkModel::fast_ethernet(), |rank, ep, ch| {
            // Node `rank` works for `rank` seconds before the barrier.
            ch.charge_cpu_raw(SimDuration::from_secs(rank as f64));
            block_on(ep.barrier(ch));
            ch.now().as_secs()
        });
        // Everyone leaves the barrier at ≥ the slowest node's entry time.
        for &t in &times {
            assert!(t >= 3.0, "clock {t} below the barrier floor");
        }
    }

    #[test]
    fn gather_collects_by_rank() {
        let results = on_cluster(3, NetworkModel::infinite(), |rank, ep, ch| {
            block_on(ep.gather(0, vec![rank as u8; rank + 1], ch))
        });
        let at_root = results[0].as_ref().expect("root gets the gather");
        assert_eq!(at_root[0], vec![0u8; 1]);
        assert_eq!(at_root[1], vec![1u8; 2]);
        assert_eq!(at_root[2], vec![2u8; 3]);
        assert!(results[1].is_none() && results[2].is_none());
    }

    #[test]
    fn broadcast_reaches_everyone() {
        let results = on_cluster(4, NetworkModel::infinite(), |rank, ep, ch| {
            let payload = if rank == 2 {
                b"pivots".to_vec()
            } else {
                Vec::new()
            };
            block_on(ep.broadcast(2, payload, ch))
        });
        assert!(results.iter().all(|r| r == b"pivots"));
    }

    #[test]
    fn all_to_all_routes_correctly() {
        let results = on_cluster(3, NetworkModel::infinite(), |rank, ep, ch| {
            // Node i sends the byte (10*i + j) to node j.
            let outgoing: Vec<Vec<u8>> = (0..3).map(|j| vec![(10 * rank + j) as u8]).collect();
            block_on(ep.all_to_all(outgoing, ch))
        });
        for (j, incoming) in results.iter().enumerate() {
            for (i, payload) in incoming.iter().enumerate() {
                assert_eq!(payload, &vec![(10 * i + j) as u8], "i={i} j={j}");
            }
        }
    }

    #[test]
    fn subset_collectives_route_within_the_group() {
        // Groups {0,2} and {1,3}: each group gathers at its first member,
        // broadcasts a verdict back, then all-to-alls inside the group —
        // all with fixed user tags, concurrently across groups.
        let results = on_cluster(4, NetworkModel::infinite(), |rank, ep, ch| {
            let members = if rank % 2 == 0 {
                vec![0usize, 2]
            } else {
                vec![1usize, 3]
            };
            let root = members[0];
            let g = block_on(ep.gather_subset(&members, root, vec![rank as u8], Tag::user(9), ch));
            let verdict = if rank == root {
                let got = g.as_ref().expect("root gathers");
                vec![got[0][0] + got[1][0]]
            } else {
                Vec::new()
            };
            let b = block_on(ep.broadcast_subset(&members, root, verdict, Tag::user(10), ch));
            let out: Vec<Vec<u8>> = members
                .iter()
                .map(|&m| vec![(rank * 10 + m) as u8])
                .collect();
            let a2a = block_on(ep.all_to_all_subset(&members, out, Tag::user(11), ch));
            (g, b, a2a)
        });
        // Gather lands only at each group's root, indexed by position.
        let at0 = results[0].0.as_ref().expect("rank 0 is a root");
        assert_eq!(at0, &vec![vec![0u8], vec![2u8]]);
        assert!(results[2].0.is_none());
        // Broadcast: group {0,2} sums to 2, group {1,3} to 4.
        assert_eq!(results[0].1, vec![2]);
        assert_eq!(results[2].1, vec![2]);
        assert_eq!(results[1].1, vec![4]);
        assert_eq!(results[3].1, vec![4]);
        // All-to-all by member position: member i of {0,2} receives
        // 10·peer + own rank.
        assert_eq!(results[2].2, vec![vec![2u8], vec![22u8]]);
        assert_eq!(results[3].2, vec![vec![13u8], vec![33u8]]);
    }

    #[test]
    #[should_panic(expected = "node panicked")]
    fn subset_collective_rejects_non_members() {
        let _ = on_cluster(2, NetworkModel::infinite(), |_rank, ep, ch| {
            // Rank 1 is not in the subset — must panic.
            block_on(ep.broadcast_subset(&[0], 0, Vec::new(), Tag::user(9), ch))
        });
    }

    #[test]
    fn consecutive_collectives_do_not_crosstalk() {
        let results = on_cluster(2, NetworkModel::infinite(), |rank, ep, ch| {
            let a = block_on(ep.broadcast(0, if rank == 0 { vec![1] } else { vec![] }, ch));
            let b = block_on(ep.broadcast(0, if rank == 0 { vec![2] } else { vec![] }, ch));
            block_on(ep.barrier(ch));
            let c = block_on(ep.broadcast(1, if rank == 1 { vec![3] } else { vec![] }, ch));
            (a, b, c)
        });
        for (a, b, c) in results {
            assert_eq!(a, vec![1]);
            assert_eq!(b, vec![2]);
            assert_eq!(c, vec![3]);
        }
    }
}
