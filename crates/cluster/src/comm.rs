//! Point-to-point messaging with Lamport-timestamped delivery.
//!
//! Every node owns an [`Endpoint`]. A message records its *arrival time* —
//! the sender's clock at send plus the network's wire time — and the
//! receiver merges that into its own clock, so causality and waiting fall
//! out of the timestamps without a global scheduler.
//!
//! Endpoints run over one of two transports, chosen by the runtime:
//!
//! * **Threads** — an inbound mpsc channel plus senders to every node;
//!   blocking receives park the OS thread. A 60-second real-time timeout
//!   turns an algorithmic deadlock into a loud panic instead of a hung
//!   test suite.
//! * **Events** — a shared [`Fabric`] mailbox; blocking receives park the
//!   node *task* on the single-threaded event scheduler, which detects
//!   deadlock immediately (all tasks parked) instead of timing out.
//!
//! The virtual-time arithmetic (link occupancy, arrival stamps, delivery
//! charges) is transport-independent, which is what makes the two runtimes
//! produce bit-identical clocks on blocking exchange patterns.
//!
//! Receives are *selective* (by sender and tag); out-of-order arrivals park
//! in a pending list. The blocking receives are `async`: under the thread
//! transport they never actually yield (the channel read blocks
//! internally), under the event transport the `.await` is the yield point.

use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use pdm::{record, Record};
use sim::SimTime;

use crate::charge::Charger;
use crate::events::{Fabric, Park, WaitKind};
use crate::net::NetworkModel;

/// Message tag: a user kind plus a sequence number for collectives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tag(pub u64);

impl Tag {
    /// A user-level tag (kinds `0..=0x7FFF`).
    pub fn user(kind: u16) -> Tag {
        assert!(kind < 0x8000, "user tags must be below 0x8000");
        Tag(kind as u64)
    }

    /// An internal collective tag: kind ≥ 0x8000 plus a per-endpoint
    /// sequence number (all nodes execute collectives in the same order, so
    /// sequence numbers agree).
    pub(crate) fn collective(kind: u16, seq: u64) -> Tag {
        debug_assert!(kind >= 0x8000);
        Tag((kind as u64) | (seq << 16))
    }
}

/// A delivered message.
#[derive(Debug)]
pub struct Message {
    /// Sender rank.
    pub from: usize,
    /// Tag it was sent with.
    pub tag: Tag,
    /// Virtual time at which the bytes are fully available at the receiver.
    pub arrival: SimTime,
    /// Virtual time at which transmission started on the sender's link
    /// (equals the send instant for self-sends). Provenance for the
    /// critical-path analyzer: the receiver's wait on this message traces
    /// back to the sender at this instant.
    pub depart: SimTime,
    /// Payload.
    pub bytes: Vec<u8>,
}

/// How messages physically move between endpoints. Virtual-time stamps are
/// computed identically on both arms; only the carrier differs.
#[derive(Debug)]
enum Transport {
    /// One unbounded mpsc channel per node (thread runtime).
    Threads {
        rx: Receiver<Message>,
        txs: Vec<Sender<Message>>,
    },
    /// Shared mailbox fabric (event runtime). The mutex is never contended
    /// — the event loop is single-threaded — it only keeps `Endpoint: Send`.
    Events { fabric: Arc<Mutex<Fabric>> },
}

/// One node's communication port.
#[derive(Debug)]
pub struct Endpoint {
    rank: usize,
    p: usize,
    transport: Transport,
    pending: Vec<Message>,
    net: NetworkModel,
    /// Per-destination link occupancy: the virtual time at which this
    /// node's outgoing link to each peer finishes its last transmission.
    /// Makes links FIFO (a later message cannot overtake an earlier one).
    link_free: Vec<SimTime>,
    pub(crate) coll_seq: u64,
    sent_messages: u64,
    sent_bytes: u64,
}

/// How long a blocking receive waits (wall-clock) before declaring the
/// cluster deadlocked. Thread transport only; the event scheduler detects
/// deadlock exactly, with no timeout.
const DEADLOCK_TIMEOUT: Duration = Duration::from_secs(60);

impl Endpoint {
    /// Wires up thread-transport endpoints for `p` nodes over the given
    /// fabric model.
    pub fn mesh(p: usize, net: NetworkModel) -> Vec<Endpoint> {
        let mut rxs = Vec::with_capacity(p);
        let mut txs = Vec::with_capacity(p);
        for _ in 0..p {
            let (tx, rx) = channel();
            txs.push(tx);
            rxs.push(rx);
        }
        rxs.into_iter()
            .enumerate()
            .map(|(rank, rx)| {
                Endpoint::with_transport(
                    rank,
                    p,
                    Transport::Threads {
                        rx,
                        txs: txs.clone(),
                    },
                    net.clone(),
                )
            })
            .collect()
    }

    /// Wires up event-transport endpoints for `p` nodes; the returned
    /// fabric is handed to the event scheduler.
    pub(crate) fn event_mesh(p: usize, net: NetworkModel) -> (Vec<Endpoint>, Arc<Mutex<Fabric>>) {
        let fabric = Fabric::new(p);
        let eps = (0..p)
            .map(|rank| {
                Endpoint::with_transport(
                    rank,
                    p,
                    Transport::Events {
                        fabric: fabric.clone(),
                    },
                    net.clone(),
                )
            })
            .collect();
        (eps, fabric)
    }

    fn with_transport(rank: usize, p: usize, transport: Transport, net: NetworkModel) -> Endpoint {
        Endpoint {
            rank,
            p,
            transport,
            pending: Vec::new(),
            net,
            link_free: vec![SimTime::ZERO; p],
            coll_seq: 0,
            sent_messages: 0,
            sent_bytes: 0,
        }
    }

    /// This endpoint's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Cluster size.
    pub fn p(&self) -> usize {
        self.p
    }

    /// The fabric model in use.
    pub fn net(&self) -> &NetworkModel {
        &self.net
    }

    /// Labels this rank with its current sub-communicator for deadlock
    /// diagnostics (`None` = back on the global communicator). Only the
    /// event runtime keeps a central registry; the thread transport has no
    /// central deadlock reporter, so this is a no-op there.
    pub fn set_group_label(&mut self, label: Option<&str>) {
        if let Transport::Events { fabric } = &self.transport {
            fabric
                .lock()
                .expect("fabric lock")
                .set_group(self.rank, label.map(String::from));
        }
    }

    /// Messages sent so far (excluding self-sends).
    pub fn sent_messages(&self) -> u64 {
        self.sent_messages
    }

    /// Bytes sent so far (excluding self-sends).
    pub fn sent_bytes(&self) -> u64 {
        self.sent_bytes
    }

    /// Sends `bytes` to node `to`. Charges the sender the per-message CPU
    /// overhead; the wire time shows up in the message's arrival timestamp.
    /// Self-sends are free local moves. Never blocks (both transports queue
    /// without bound), so sends are not yield points.
    pub fn send(&mut self, to: usize, tag: Tag, bytes: Vec<u8>, charger: &mut Charger) {
        assert!(to < self.p, "send to rank {to} of {}", self.p);
        let (depart, arrival) = if to == self.rank {
            (charger.now(), charger.now())
        } else {
            charger.charge_cpu_raw(self.net.send_overhead);
            self.sent_messages += 1;
            self.sent_bytes += bytes.len() as u64;
            // Store-and-forward FIFO link: transmission starts when both
            // the sender and the link are ready; the link stays busy for
            // the transfer, and the payload lands one latency later.
            let transfer = self.net.wire_time(bytes.len() as u64) - self.net.latency;
            let depart = charger.now().merge(self.link_free[to]);
            self.link_free[to] = depart + transfer;
            (depart, depart + transfer + self.net.latency)
        };
        let msg = Message {
            from: self.rank,
            tag,
            arrival,
            depart,
            bytes,
        };
        match &self.transport {
            Transport::Threads { txs, .. } => txs[to].send(msg).expect("receiver endpoint dropped"),
            Transport::Events { fabric } => fabric.lock().expect("fabric lock").deliver(to, msg),
        }
    }

    /// Waits until at least one new message lands on the pending list. The
    /// thread transport blocks the OS thread on its channel (deadlock
    /// timeout); the event transport parks the task on the scheduler.
    async fn await_delivery(&mut self, wait: WaitKind, now: SimTime) {
        match &mut self.transport {
            Transport::Threads { rx, .. } => match rx.recv_timeout(DEADLOCK_TIMEOUT) {
                Ok(msg) => {
                    self.pending.push(msg);
                    // Absorb whatever else already landed while we slept.
                    while let Ok(m) = rx.try_recv() {
                        self.pending.push(m);
                    }
                }
                Err(RecvTimeoutError::Timeout) => panic!(
                    "node {} deadlocked waiting for {}; {} messages pending",
                    self.rank,
                    wait.describe(),
                    self.pending.len()
                ),
                Err(RecvTimeoutError::Disconnected) => {
                    panic!("cluster torn down while node {} was receiving", self.rank)
                }
            },
            Transport::Events { fabric } => loop {
                let drained = fabric
                    .lock()
                    .expect("fabric lock")
                    .drain_into(self.rank, &mut self.pending);
                if drained {
                    return;
                }
                Park::new(fabric.clone(), self.rank, now, wait.clone()).await;
            },
        }
    }

    /// Moves everything already delivered onto the pending list without
    /// blocking.
    fn drain_available(&mut self) {
        match &mut self.transport {
            Transport::Threads { rx, .. } => {
                while let Ok(msg) = rx.try_recv() {
                    self.pending.push(msg);
                }
            }
            Transport::Events { fabric } => {
                fabric
                    .lock()
                    .expect("fabric lock")
                    .drain_into(self.rank, &mut self.pending);
            }
        }
    }

    /// Receives the next message from `from` with tag `tag`, blocking until
    /// it arrives. Merges the arrival timestamp into the node clock.
    ///
    /// # Panics
    /// Panics on deadlock: after 60 s of wall-clock inactivity under the
    /// thread transport, immediately under the event scheduler.
    pub async fn recv_from(&mut self, from: usize, tag: Tag, charger: &mut Charger) -> Message {
        loop {
            if let Some(i) = self
                .pending
                .iter()
                .position(|m| m.from == from && m.tag == tag)
            {
                let msg = self.pending.remove(i);
                self.charge_delivery(&msg, charger);
                return msg;
            }
            self.await_delivery(WaitKind::From { from, tag }, charger.now())
                .await;
        }
    }

    /// Per-message receive cost (self-deliveries are free local moves),
    /// then the Lamport merge of the arrival timestamp.
    fn charge_delivery(&self, msg: &Message, charger: &mut Charger) {
        if msg.from != self.rank {
            charger.charge_cpu_raw(self.net.recv_overhead);
        }
        charger.merge_arrival_from(msg.arrival, msg.from, msg.depart);
    }

    /// Index of the pending message with the earliest arrival among those
    /// matching any of `tags` (ties broken by sender rank, then FIFO
    /// position — a total, scheduling-independent order).
    fn earliest_pending(&self, tags: &[Tag]) -> Option<usize> {
        self.pending
            .iter()
            .enumerate()
            .filter(|(_, m)| tags.contains(&m.tag))
            .min_by_key(|(i, m)| (m.arrival, m.from, *i))
            .map(|(i, _)| i)
    }

    /// Non-blocking arrival-ordered receive from **any** source: returns
    /// the earliest-arriving message matching one of `tags` that has
    /// *virtually* arrived (`arrival <= charger.now()`), or `None`. Never
    /// advances the clock — a poll must not cost virtual time, and a
    /// message from the virtual future must stay invisible until the
    /// receiver's own work catches up to it.
    ///
    /// No per-message CPU overhead is charged here (nor by
    /// [`Self::recv_any`]): batch receivers charge `recv_overhead` in
    /// aggregate once the batch completes, which keeps the virtual clock
    /// independent of the real-thread interleaving (the arrival merge is a
    /// pure `max`, so *it* commutes; interleaved additive charges would
    /// not).
    pub fn try_recv_any(&mut self, tags: &[Tag], charger: &Charger) -> Option<Message> {
        self.drain_available();
        let now = charger.now();
        let idx = self
            .pending
            .iter()
            .enumerate()
            .filter(|(_, m)| tags.contains(&m.tag) && m.arrival <= now)
            .min_by_key(|(i, m)| (m.arrival, m.from, *i))
            .map(|(i, _)| i)?;
        Some(self.pending.remove(idx))
    }

    /// Blocking arrival-ordered receive from **any** source: the earliest-
    /// arriving message matching one of `tags`, waiting for one to exist if
    /// necessary. Merges the arrival timestamp into the clock (the wait);
    /// per-message CPU overhead is deliberately *not* charged — see
    /// [`Self::try_recv_any`].
    ///
    /// # Panics
    /// Panics on deadlock (see [`Self::recv_from`]).
    pub async fn recv_any(&mut self, tags: &[Tag], charger: &mut Charger) -> Message {
        loop {
            self.drain_available();
            if let Some(i) = self.earliest_pending(tags) {
                let msg = self.pending.remove(i);
                charger.merge_arrival_from(msg.arrival, msg.from, msg.depart);
                return msg;
            }
            self.await_delivery(
                WaitKind::Any {
                    tags: tags.to_vec(),
                },
                charger.now(),
            )
            .await;
        }
    }

    /// Typed send: encodes records as their fixed-size little-endian bytes.
    pub fn send_records<R: Record>(
        &mut self,
        to: usize,
        tag: Tag,
        records: &[R],
        charger: &mut Charger,
    ) {
        self.send(to, tag, record::encode_all(records), charger);
    }

    /// Typed receive counterpart of [`Self::send_records`].
    pub async fn recv_records<R: Record>(
        &mut self,
        from: usize,
        tag: Tag,
        charger: &mut Charger,
    ) -> Vec<R> {
        let msg = self.recv_from(from, tag, charger).await;
        record::decode_all(&msg.bytes)
    }

    /// Typed receive into a caller-owned scratch buffer (cleared first).
    /// Receive loops that drain thousands of small chunks reuse one
    /// allocation instead of building a fresh `Vec<R>` per message.
    pub async fn recv_records_into<R: Record>(
        &mut self,
        from: usize,
        tag: Tag,
        out: &mut Vec<R>,
        charger: &mut Charger,
    ) {
        let msg = self.recv_from(from, tag, charger).await;
        record::decode_all_into(&msg.bytes, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CpuModel;
    use crate::events::block_on;
    use crate::spec::TimePolicy;
    use pdm::Disk;
    use sim::Jitter;

    fn charger() -> Charger {
        Charger::new(
            CpuModel::free(),
            1.0,
            Jitter::none(),
            Disk::in_memory(64),
            TimePolicy::Modeled,
        )
    }

    #[test]
    fn two_node_ping_pong() {
        let mut eps = Endpoint::mesh(2, NetworkModel::fast_ethernet());
        let mut e1 = eps.pop().unwrap();
        let mut e0 = eps.pop().unwrap();
        let t = std::thread::spawn(move || {
            let mut ch = charger();
            let msg = block_on(e1.recv_from(0, Tag::user(1), &mut ch));
            assert_eq!(msg.bytes, b"ping");
            e1.send(0, Tag::user(2), b"pong".to_vec(), &mut ch);
            ch.now()
        });
        let mut ch = charger();
        e0.send(1, Tag::user(1), b"ping".to_vec(), &mut ch);
        let reply = block_on(e0.recv_from(1, Tag::user(2), &mut ch));
        assert_eq!(reply.bytes, b"pong");
        let peer_time = t.join().unwrap();
        // The reply's arrival is after two wire traversals.
        assert!(ch.now() > peer_time.merge(SimTime::ZERO) || ch.now().as_secs() > 0.0);
        assert!(
            ch.now().as_secs() >= 2.0 * 100e-6,
            "two latencies: {}",
            ch.now()
        );
    }

    #[test]
    fn selective_receive_reorders() {
        let mut eps = Endpoint::mesh(2, NetworkModel::infinite());
        let mut e1 = eps.pop().unwrap();
        let mut e0 = eps.pop().unwrap();
        let mut ch0 = charger();
        e0.send(1, Tag::user(1), vec![1], &mut ch0);
        e0.send(1, Tag::user(2), vec![2], &mut ch0);
        e0.send(1, Tag::user(3), vec![3], &mut ch0);
        let mut ch1 = charger();
        // Receive in reverse tag order.
        assert_eq!(
            block_on(e1.recv_from(0, Tag::user(3), &mut ch1)).bytes,
            vec![3]
        );
        assert_eq!(
            block_on(e1.recv_from(0, Tag::user(2), &mut ch1)).bytes,
            vec![2]
        );
        assert_eq!(
            block_on(e1.recv_from(0, Tag::user(1), &mut ch1)).bytes,
            vec![1]
        );
    }

    #[test]
    fn arrival_timestamp_reflects_bandwidth() {
        let mut eps = Endpoint::mesh(2, NetworkModel::fast_ethernet());
        let mut e1 = eps.pop().unwrap();
        let mut e0 = eps.pop().unwrap();
        let mut ch0 = charger();
        let payload = vec![0u8; 1_250_000]; // 0.1 s on 12.5 MB/s
        e0.send(1, Tag::user(1), payload, &mut ch0);
        let mut ch1 = charger();
        let msg = block_on(e1.recv_from(0, Tag::user(1), &mut ch1));
        assert!(msg.arrival.as_secs() >= 0.1, "arrival {}", msg.arrival);
        assert_eq!(ch1.now(), msg.arrival); // receiver waited for the bytes
    }

    #[test]
    fn self_send_is_instant() {
        let mut eps = Endpoint::mesh(1, NetworkModel::fast_ethernet());
        let mut e0 = eps.pop().unwrap();
        let mut ch = charger();
        e0.send(0, Tag::user(1), vec![42], &mut ch);
        let msg = block_on(e0.recv_from(0, Tag::user(1), &mut ch));
        assert_eq!(msg.bytes, vec![42]);
        assert_eq!(ch.now().as_secs(), 0.0);
        assert_eq!(e0.sent_messages(), 0);
    }

    #[test]
    fn typed_records_roundtrip() {
        let mut eps = Endpoint::mesh(2, NetworkModel::infinite());
        let mut e1 = eps.pop().unwrap();
        let mut e0 = eps.pop().unwrap();
        let mut ch0 = charger();
        let data: Vec<u32> = (0..100).collect();
        e0.send_records(1, Tag::user(7), &data, &mut ch0);
        let mut ch1 = charger();
        let got: Vec<u32> = block_on(e1.recv_records(0, Tag::user(7), &mut ch1));
        assert_eq!(got, data);
    }

    #[test]
    fn traffic_counters() {
        let mut eps = Endpoint::mesh(2, NetworkModel::infinite());
        let _e1 = eps.pop().unwrap();
        let mut e0 = eps.pop().unwrap();
        let mut ch = charger();
        e0.send(1, Tag::user(1), vec![0; 100], &mut ch);
        e0.send(1, Tag::user(1), vec![0; 50], &mut ch);
        assert_eq!(e0.sent_messages(), 2);
        assert_eq!(e0.sent_bytes(), 150);
    }

    #[test]
    #[should_panic(expected = "user tags must be below")]
    fn user_tag_range_enforced() {
        let _ = Tag::user(0x8000);
    }

    #[test]
    fn recv_any_orders_by_arrival_not_rank() {
        // Both senders transmit before the receiver looks; the bigger
        // payload from the lower rank arrives later, so arrival order and
        // rank order disagree. recv_any must follow arrivals.
        let mut eps = Endpoint::mesh(3, NetworkModel::fast_ethernet());
        let mut e2 = eps.pop().unwrap();
        let mut e1 = eps.pop().unwrap();
        let mut e0 = eps.pop().unwrap();
        let mut ch0 = charger();
        let mut ch1 = charger();
        e0.send(2, Tag::user(1), vec![0u8; 500_000], &mut ch0); // slow: 40 ms wire
        e1.send(2, Tag::user(1), vec![7u8; 100], &mut ch1); // fast
        let mut ch2 = charger();
        let first = block_on(e2.recv_any(&[Tag::user(1)], &mut ch2));
        let second = block_on(e2.recv_any(&[Tag::user(1)], &mut ch2));
        assert_eq!(first.from, 1, "earlier arrival must win");
        assert_eq!(second.from, 0);
        assert!(first.arrival <= second.arrival);
        // The clock merged both arrivals (pure max — no additive charge).
        assert_eq!(ch2.now(), second.arrival.merge(first.arrival));
    }

    #[test]
    fn recv_any_matches_tag_filter() {
        let mut eps = Endpoint::mesh(2, NetworkModel::infinite());
        let mut e1 = eps.pop().unwrap();
        let mut e0 = eps.pop().unwrap();
        let mut ch0 = charger();
        e0.send(1, Tag::user(9), vec![9], &mut ch0);
        e0.send(1, Tag::user(1), vec![1], &mut ch0);
        let mut ch1 = charger();
        // Only tag 1 qualifies; tag 9 stays pending for a later selective
        // receive.
        let msg = block_on(e1.recv_any(&[Tag::user(1)], &mut ch1));
        assert_eq!(msg.bytes, vec![1]);
        let parked = block_on(e1.recv_from(0, Tag::user(9), &mut ch1));
        assert_eq!(parked.bytes, vec![9]);
    }

    #[test]
    fn try_recv_any_respects_virtual_time() {
        let mut eps = Endpoint::mesh(2, NetworkModel::fast_ethernet());
        let mut e1 = eps.pop().unwrap();
        let mut e0 = eps.pop().unwrap();
        let mut ch0 = charger();
        e0.send(1, Tag::user(1), vec![0u8; 125_000], &mut ch0); // ~10 ms wire
        let mut ch1 = charger();
        // Wait until the message is physically in the channel, then poll: at
        // virtual time 0 the bytes are still on the wire, so the poll must
        // come up empty without advancing the clock.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            assert!(
                e1.try_recv_any(&[Tag::user(1)], &ch1).is_none(),
                "message from the virtual future leaked into a poll"
            );
            if !e1.pending.is_empty() {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "send never landed");
            std::thread::yield_now();
        }
        assert_eq!(ch1.now().as_secs(), 0.0);
        // Once the receiver's own work passes the arrival stamp, the poll
        // delivers.
        ch1.charge_cpu_raw(sim::SimDuration::from_secs(1.0));
        let msg = e1.try_recv_any(&[Tag::user(1)], &ch1).expect("arrived");
        assert_eq!(msg.from, 0);
        assert!(e1.try_recv_any(&[Tag::user(1)], &ch1).is_none());
    }

    #[test]
    fn event_transport_delivers_without_threads() {
        // The same ping-pong as above, but over the event fabric with no
        // extra thread: sends land synchronously in the peer's mailbox, so
        // single-threaded sequential code can drive both endpoints.
        let (mut eps, _fabric) = Endpoint::event_mesh(2, NetworkModel::fast_ethernet());
        let mut e1 = eps.pop().unwrap();
        let mut e0 = eps.pop().unwrap();
        let mut ch0 = charger();
        let mut ch1 = charger();
        e0.send(1, Tag::user(1), b"ping".to_vec(), &mut ch0);
        let msg = block_on(e1.recv_from(0, Tag::user(1), &mut ch1));
        assert_eq!(msg.bytes, b"ping");
        e1.send(0, Tag::user(2), b"pong".to_vec(), &mut ch1);
        let reply = block_on(e0.recv_from(1, Tag::user(2), &mut ch0));
        assert_eq!(reply.bytes, b"pong");
        assert_eq!(e0.sent_messages(), 1);
    }
}
