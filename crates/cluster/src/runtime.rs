//! Cluster runtime: executes node functions and collects outcomes.
//!
//! [`run_cluster`] materializes a [`ClusterSpec`]: every node gets a
//! private disk, RNG, charger and endpoint, all wrapped in a [`NodeCtx`]
//! façade, and the node function (an async closure) runs to completion.
//! The runtime then syncs outstanding I/O charges, executes a final
//! barrier (so every clock reflects the full run) and reports per-node
//! outcomes plus the makespan.
//!
//! Two interchangeable schedulers implement this contract, selected by
//! [`ClusterSpec::runtime`]:
//!
//! * **Threads** ([`RuntimeKind::Threads`]) — one OS thread per node;
//!   blocking receives park the thread on its mpsc channel. Node futures
//!   never actually suspend (the comm layer blocks internally), so each
//!   is driven by a single poll.
//! * **Events** ([`RuntimeKind::Events`]) — a single-threaded
//!   discrete-event executor; blocking receives are yield points that
//!   park the node *task* until the matching message is delivered. The
//!   runnable task with the smallest (virtual clock, rank) key runs
//!   next, so scheduling is a pure function of virtual time and the
//!   whole simulation — including the streamed exchange's arrival
//!   order — is deterministic. One process comfortably simulates
//!   hundreds of nodes.
//!
//! Both runtimes share the same per-node setup and finish path
//! ([`drive`]), and the virtual-time arithmetic in the comm layer is
//! transport-independent, so blocking exchange patterns produce
//! bit-identical clocks under either scheduler.

use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll, Waker};

use obs::{ClusterObs, NodeObs, Obs, SpanKind};
use pdm::{Disk, IoSnapshot, ScratchDir};
use sim::rng::Pcg64;
use sim::{Jitter, SimDuration, SimTime, SplitMix64};

use crate::charge::Charger;
use crate::comm::{Endpoint, Message, Tag};
use crate::events;
use crate::spec::{ClusterSpec, RuntimeKind, StorageKind};

/// One phase boundary recorded by [`NodeCtx::mark_phase`]: the cumulative
/// clock and traffic at the stamp (deltas between consecutive marks give
/// per-phase time and h-relation sizes — what the BSP analysis consumes).
#[derive(Debug, Clone, Copy)]
pub struct PhaseMark {
    /// Phase name.
    pub name: &'static str,
    /// Node clock at the end of the phase.
    pub at: SimTime,
    /// Cumulative bytes this node had sent by the end of the phase.
    pub sent_bytes: u64,
}

/// Cumulative charger readings at the previous phase mark; deltas against
/// it become one [`obs::PhaseCost`] record. Pure bookkeeping — only reads
/// accessors, never touches the clock.
#[derive(Debug, Clone, Copy, Default)]
struct CostCursor {
    cpu: f64,
    io_read: f64,
    io_write: f64,
    queue_wait: f64,
    overlap_saved: f64,
    wait: f64,
    coll_wait: f64,
    credit_wait: f64,
}

/// Everything a node function needs, bundled per node.
pub struct NodeCtx {
    /// This node's rank in `0..p`.
    pub rank: usize,
    /// Cluster size.
    pub p: usize,
    /// The full performance vector (shared knowledge, like the paper's
    /// `perf` array baked into the program).
    pub perf: Vec<u64>,
    /// This node's private disk.
    pub disk: Disk,
    /// Deterministic per-node RNG (forked from the spec seed).
    pub rng: Pcg64,
    /// Time accounting for this node.
    pub charger: Charger,
    /// Tracing handle (disabled unless [`ClusterSpec::tracing`] is set).
    /// Recording only reads clocks — it never advances them — so traced
    /// and untraced runs are observationally identical.
    pub obs: Obs,
    endpoint: Endpoint,
    phases: Vec<PhaseMark>,
    /// Cumulative message-wait seconds incurred inside collective spans
    /// (the "idle straggler" share of wait time).
    coll_wait: f64,
    /// Cumulative wait seconds attributed to flow-control credit stalls
    /// (reported by the streaming exchange-merge via
    /// [`Self::note_credit_wait`]).
    credit_wait: f64,
    /// Charger readings at the previous phase mark.
    cost_cursor: CostCursor,
}

impl NodeCtx {
    /// This node's performance figure.
    pub fn my_perf(&self) -> u64 {
        self.perf[self.rank]
    }

    /// Sum of all perf entries (the data-share denominator).
    pub fn perf_total(&self) -> u64 {
        self.perf.iter().sum()
    }

    /// Opens a collective span: `(wall, virtual, cumulative wait)` at
    /// entry, or `None` when tracing is disabled (skips even the clock
    /// reads).
    fn span_open(&self) -> Option<(f64, f64, f64)> {
        if self.obs.is_enabled() {
            Some((
                self.obs.elapsed(),
                self.charger.now().as_secs(),
                self.charger.wait_time().as_secs(),
            ))
        } else {
            None
        }
    }

    /// Closes a collective span opened by [`Self::span_open`]; the wait
    /// accumulated inside it is booked as collective (straggler) wait.
    fn span_close(&mut self, name: &'static str, opened: Option<(f64, f64, f64)>) {
        if let Some((w0, v0, wait0)) = opened {
            let w1 = self.obs.elapsed();
            let v1 = self.charger.now().as_secs();
            self.obs
                .record_span(name, SpanKind::Collective, w0, w1, Some((v0, v1)));
            self.coll_wait += (self.charger.wait_time().as_secs() - wait0).max(0.0);
        }
    }

    /// Books `secs` of already-charged message wait as a flow-control
    /// credit stall (called by the streaming exchange-merge when a blocking
    /// receive was entered while shipping was credit-blocked). Pure
    /// attribution — the wait itself was charged by the arrival merge.
    pub fn note_credit_wait(&mut self, secs: f64) {
        self.credit_wait += secs.max(0.0);
    }

    /// Sends `bytes` to `to`. Never blocks — sends are not yield points.
    pub fn send(&mut self, to: usize, tag: Tag, bytes: Vec<u8>) {
        self.obs.hist_record("net.msg_bytes", bytes.len() as u64);
        self.endpoint.send(to, tag, bytes, &mut self.charger);
    }

    /// Receives from `from` with `tag` (blocking, selective).
    pub async fn recv_from(&mut self, from: usize, tag: Tag) -> Message {
        self.endpoint.recv_from(from, tag, &mut self.charger).await
    }

    /// Typed record send.
    pub fn send_records<R: pdm::Record>(&mut self, to: usize, tag: Tag, records: &[R]) {
        self.obs
            .hist_record("net.msg_bytes", (records.len() * R::SIZE) as u64);
        self.endpoint
            .send_records(to, tag, records, &mut self.charger);
    }

    /// Typed record receive.
    pub async fn recv_records<R: pdm::Record>(&mut self, from: usize, tag: Tag) -> Vec<R> {
        self.endpoint
            .recv_records(from, tag, &mut self.charger)
            .await
    }

    /// Typed record receive into a reused scratch buffer (cleared first).
    pub async fn recv_records_into<R: pdm::Record>(
        &mut self,
        from: usize,
        tag: Tag,
        out: &mut Vec<R>,
    ) {
        self.endpoint
            .recv_records_into(from, tag, out, &mut self.charger)
            .await
    }

    /// Blocking arrival-ordered receive from any source (see
    /// [`Endpoint::recv_any`]): delivers whichever matching message lands
    /// first instead of polling ranks in a fixed order. Merges the arrival
    /// into the clock; per-message CPU overhead is charged separately in
    /// aggregate via [`Self::charge_recv_overheads`].
    pub async fn recv_any(&mut self, tags: &[Tag]) -> Message {
        self.endpoint.recv_any(tags, &mut self.charger).await
    }

    /// Non-blocking arrival-ordered receive: only messages that have
    /// virtually arrived (`arrival <= now`) are visible; never advances
    /// the clock (see [`Endpoint::try_recv_any`]).
    pub fn try_recv_any(&mut self, tags: &[Tag]) -> Option<Message> {
        self.endpoint.try_recv_any(tags, &self.charger)
    }

    /// Charges the per-message receive CPU overhead for `msgs` deliveries
    /// in one aggregate shot. Paired with [`Self::recv_any`] /
    /// [`Self::try_recv_any`], which deliberately skip the per-message
    /// charge: one summed charge is order-independent, so the virtual
    /// clock stays deterministic however the arrivals interleave.
    pub fn charge_recv_overheads(&mut self, msgs: u64) {
        if msgs > 0 {
            self.charger
                .charge_cpu_raw(self.endpoint.net().recv_overhead.scale(msgs as f64));
        }
    }

    /// Barrier across all nodes.
    pub async fn barrier(&mut self) {
        let span = self.span_open();
        self.endpoint.barrier(&mut self.charger).await;
        self.span_close("barrier", span);
    }

    /// Gather at `root`.
    pub async fn gather(&mut self, root: usize, bytes: Vec<u8>) -> Option<Vec<Vec<u8>>> {
        let span = self.span_open();
        self.obs.hist_record("net.msg_bytes", bytes.len() as u64);
        let out = self.endpoint.gather(root, bytes, &mut self.charger).await;
        self.span_close("gather", span);
        out
    }

    /// Broadcast from `root`.
    pub async fn broadcast(&mut self, root: usize, bytes: Vec<u8>) -> Vec<u8> {
        let span = self.span_open();
        if self.rank == root {
            self.obs.hist_record("net.msg_bytes", bytes.len() as u64);
        }
        let out = self
            .endpoint
            .broadcast(root, bytes, &mut self.charger)
            .await;
        self.span_close("broadcast", span);
        out
    }

    /// Personalized all-to-all.
    pub async fn all_to_all(&mut self, outgoing: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
        let span = self.span_open();
        if self.obs.is_enabled() {
            for (peer, msg) in outgoing.iter().enumerate() {
                if peer != self.rank {
                    self.obs.hist_record("net.msg_bytes", msg.len() as u64);
                }
            }
        }
        let out = self.endpoint.all_to_all(outgoing, &mut self.charger).await;
        self.span_close("all-to-all", span);
        out
    }

    /// Gather restricted to a rank subset (see
    /// [`Endpoint::gather_subset`]): `members` are sorted global ranks
    /// including this one, `root` a global rank in `members`, `tag` a user
    /// tag unique to the algorithmic sub-step. The root's result is
    /// indexed by member position.
    pub async fn gather_subset(
        &mut self,
        members: &[usize],
        root: usize,
        bytes: Vec<u8>,
        tag: Tag,
    ) -> Option<Vec<Vec<u8>>> {
        let span = self.span_open();
        self.obs.hist_record("net.msg_bytes", bytes.len() as u64);
        let out = self
            .endpoint
            .gather_subset(members, root, bytes, tag, &mut self.charger)
            .await;
        self.span_close("gather", span);
        out
    }

    /// Broadcast restricted to a rank subset (see
    /// [`Endpoint::broadcast_subset`]).
    pub async fn broadcast_subset(
        &mut self,
        members: &[usize],
        root: usize,
        bytes: Vec<u8>,
        tag: Tag,
    ) -> Vec<u8> {
        let span = self.span_open();
        if self.rank == root {
            self.obs.hist_record("net.msg_bytes", bytes.len() as u64);
        }
        let out = self
            .endpoint
            .broadcast_subset(members, root, bytes, tag, &mut self.charger)
            .await;
        self.span_close("broadcast", span);
        out
    }

    /// Personalized all-to-all restricted to a rank subset; payloads are
    /// indexed by member position (see [`Endpoint::all_to_all_subset`]).
    pub async fn all_to_all_subset(
        &mut self,
        members: &[usize],
        outgoing: Vec<Vec<u8>>,
        tag: Tag,
    ) -> Vec<Vec<u8>> {
        let span = self.span_open();
        if self.obs.is_enabled() {
            for (idx, msg) in outgoing.iter().enumerate() {
                if members[idx] != self.rank {
                    self.obs.hist_record("net.msg_bytes", msg.len() as u64);
                }
            }
        }
        let out = self
            .endpoint
            .all_to_all_subset(members, outgoing, tag, &mut self.charger)
            .await;
        self.span_close("all-to-all", span);
        out
    }

    /// Labels this node's current sub-communicator for the event
    /// runtime's deadlock report (`None` = global communicator). Pure
    /// diagnostics — never affects timing or routing.
    pub fn set_comm_group(&mut self, label: Option<&str>) {
        self.endpoint.set_group_label(label);
    }

    /// Records a phase boundary: prices outstanding I/O, then stamps
    /// `name` at the current clock. The phase report shows cumulative
    /// times, so phase `k`'s duration is `stamp[k] − stamp[k−1]`.
    pub fn mark_phase(&mut self, name: &'static str) {
        self.charger.sync_io();
        let at = self.charger.now();
        self.phases.push(PhaseMark {
            name,
            at,
            sent_bytes: self.endpoint.sent_bytes(),
        });
        if self.obs.is_enabled() {
            // Record the phase's resource deltas for the critical-path
            // analyzer. Reads accessors only — the clock was already synced
            // above, identically to the untraced path.
            let cur = CostCursor {
                cpu: self.charger.cpu_time().as_secs(),
                io_read: self.charger.io_read_time().as_secs(),
                io_write: self.charger.io_write_time().as_secs(),
                queue_wait: self.charger.io_queue_wait().as_secs(),
                overlap_saved: self.charger.overlap_saved().as_secs(),
                wait: self.charger.wait_time().as_secs(),
                coll_wait: self.coll_wait,
                credit_wait: self.credit_wait,
            };
            let prev = self.cost_cursor;
            let dom = self.charger.take_dominant();
            self.obs.phase_cost(obs::PhaseCost {
                name,
                end: at.as_secs(),
                cpu: (cur.cpu - prev.cpu).max(0.0),
                io_read: (cur.io_read - prev.io_read).max(0.0),
                io_write: (cur.io_write - prev.io_write).max(0.0),
                queue_wait: (cur.queue_wait - prev.queue_wait).max(0.0),
                overlap_saved: (cur.overlap_saved - prev.overlap_saved).max(0.0),
                wait: (cur.wait - prev.wait).max(0.0),
                coll_wait: (cur.coll_wait - prev.coll_wait).max(0.0),
                credit_wait: (cur.credit_wait - prev.credit_wait).max(0.0),
                dominant_from: dom.map_or(-1, |d| d.from as i64),
                dominant_depart: dom.map_or(0.0, |d| d.depart.as_secs()),
                dominant_arrival: dom.map_or(0.0, |d| d.arrival.as_secs()),
            });
            self.cost_cursor = cur;
        }
        // Close the phase span on the tracer with the same stamp the mark
        // reports (the tracer itself never touches the clock).
        self.obs.phase_mark(name, at.as_secs());
    }

    /// Synchronizes all nodes, then zeroes this node's clock, counters and
    /// phase marks. Call on **every** node at the same program point to
    /// exclude setup (e.g. workload generation) from the timed region, as
    /// the paper does for the initial data distribution.
    pub async fn reset_timing(&mut self) {
        self.barrier().await;
        self.charger.reset();
        self.phases.clear();
        self.coll_wait = 0.0;
        self.credit_wait = 0.0;
        self.cost_cursor = CostCursor::default();
        self.obs.reset();
    }

    /// Network traffic sent by this node so far.
    pub fn sent_bytes(&self) -> u64 {
        self.endpoint.sent_bytes()
    }

    /// Messages sent by this node so far.
    pub fn sent_messages(&self) -> u64 {
        self.endpoint.sent_messages()
    }
}

/// Per-node result of a cluster run.
#[derive(Debug)]
pub struct NodeOutcome<T> {
    /// Whatever the node function returned.
    pub value: T,
    /// The node's clock after the final barrier.
    pub finish: SimTime,
    /// Total block I/O performed by the node.
    pub io: IoSnapshot,
    /// Cumulative phase stamps recorded via [`NodeCtx::mark_phase`].
    pub phases: Vec<PhaseMark>,
    /// Charged CPU time (post-slowdown).
    pub cpu_time: SimDuration,
    /// Charged disk time (post-slowdown).
    pub io_time: SimDuration,
    /// Time spent waiting on messages.
    pub wait_time: SimDuration,
    /// Bytes this node pushed into the network.
    pub sent_bytes: u64,
    /// The node's finished observability data (empty unless
    /// [`ClusterSpec::tracing`] was set).
    pub obs: NodeObs,
}

/// One phase's per-node durations, derived from [`PhaseMark`] stamps.
#[derive(Debug, Clone)]
pub struct PhaseBreakdown {
    /// Phase name.
    pub name: &'static str,
    /// Duration of this phase on each node, indexed by rank.
    pub per_node: Vec<SimDuration>,
}

impl PhaseBreakdown {
    /// The slowest node's duration for this phase (what the makespan sees).
    pub fn max(&self) -> SimDuration {
        self.per_node
            .iter()
            .copied()
            .max()
            .unwrap_or(SimDuration::ZERO)
    }
}

/// Result of [`run_cluster`].
#[derive(Debug)]
pub struct ClusterReport<T> {
    /// Outcomes indexed by rank.
    pub nodes: Vec<NodeOutcome<T>>,
    /// The simulated wall time of the whole run (max node finish).
    pub makespan: SimDuration,
}

impl<T> ClusterReport<T> {
    /// Values only, indexed by rank.
    pub fn values(&self) -> Vec<&T> {
        self.nodes.iter().map(|n| &n.value).collect()
    }

    /// Total block I/O across nodes.
    pub fn total_io(&self) -> IoSnapshot {
        self.nodes
            .iter()
            .fold(IoSnapshot::default(), |acc, n| acc.plus(&n.io))
    }

    /// Per-phase, per-node durations derived from the cumulative
    /// [`PhaseMark`] stamps: phase `k` on a node lasted
    /// `at[k] − at[k−1]` (phase 0 starts at the timing reset). Phase
    /// order follows node 0; nodes that skipped a phase report zero.
    /// Works with or without tracing — marks are always recorded.
    pub fn phase_breakdown(&self) -> Vec<PhaseBreakdown> {
        let Some(first) = self.nodes.first() else {
            return Vec::new();
        };
        first
            .phases
            .iter()
            .enumerate()
            .map(|(idx, mark)| PhaseBreakdown {
                name: mark.name,
                per_node: self
                    .nodes
                    .iter()
                    .map(|n| match n.phases.get(idx) {
                        Some(m) => {
                            let prev = if idx == 0 {
                                SimTime::ZERO
                            } else {
                                n.phases[idx - 1].at
                            };
                            m.at.since(prev)
                        }
                        None => SimDuration::ZERO,
                    })
                    .collect(),
            })
            .collect()
    }

    /// Bundles every node's observability data (empty per-node records
    /// unless the spec enabled tracing). Cluster-level metrics start
    /// empty; trial runners inject cross-node gauges (e.g. skew) on top.
    pub fn cluster_obs(&self) -> ClusterObs {
        ClusterObs {
            nodes: self.nodes.iter().map(|n| n.obs.clone()).collect(),
            cluster: Default::default(),
        }
    }
}

/// Builds one node's context: disk, jitter, charger, RNG, tracer and
/// endpoint, identically for both runtimes.
fn make_node_ctx(
    spec: &ClusterSpec,
    rank: usize,
    endpoint: Endpoint,
    scratch: Option<&ScratchDir>,
) -> NodeCtx {
    let disk = match scratch {
        None => Disk::in_memory(spec.block_bytes),
        Some(dir) => Disk::on_files(dir.path(), spec.block_bytes),
    }
    .with_model(spec.disk_model.clone())
    .with_codec(spec.codec)
    .with_io_backend(spec.io_backend)
    .with_label(format!("node{rank}"));
    let jitter = Jitter::new(
        SplitMix64::mix(spec.seed ^ (rank as u64).wrapping_mul(0x9E37)),
        // Loaded nodes show proportionally noisier timings
        // (cf. Table 2's deviations); scale sigma by √slowdown.
        (spec.jitter_sigma * spec.slowdown(rank).sqrt()).min(0.9),
    );
    let charger = Charger::new(
        spec.cpu.clone(),
        spec.slowdown(rank),
        jitter,
        disk.clone(),
        spec.time_policy,
    );
    let node_obs = if spec.tracing {
        Obs::enabled()
    } else {
        Obs::disabled()
    };
    NodeCtx {
        rank,
        p: spec.p(),
        perf: spec.perf.clone(),
        disk,
        rng: Pcg64::with_stream(spec.seed, rank as u64),
        charger,
        obs: node_obs,
        endpoint,
        phases: Vec::new(),
        coll_wait: 0.0,
        credit_wait: 0.0,
        cost_cursor: CostCursor::default(),
    }
}

/// Runs the node function and the shared finish path — the final I/O
/// sync + barrier, counter folding and outcome assembly. Both runtimes
/// drive this same future, so a node's observable behavior cannot depend
/// on which scheduler ran it.
async fn drive<T, F>(ctx: &mut NodeCtx, f: &F, perf: u64) -> NodeOutcome<T>
where
    F: AsyncFn(&mut NodeCtx) -> T,
{
    let value = f(ctx).await;
    ctx.charger.sync_io();
    ctx.barrier().await;
    let io = ctx.disk.stats().snapshot();
    if ctx.obs.is_enabled() {
        // Fold the classic report counters into the unified registry so
        // exporters see one coherent namespace.
        ctx.obs.counter_add("io.blocks_read", io.blocks_read);
        ctx.obs.counter_add("io.blocks_written", io.blocks_written);
        ctx.obs.counter_add("io.bytes_read", io.bytes_read);
        ctx.obs.counter_add("io.bytes_written", io.bytes_written);
        ctx.obs.counter_add("io.random_reads", io.random_reads);
        ctx.obs.counter_add("io.seek_bytes", io.seek_bytes);
        ctx.obs.counter_add("io.files_created", io.files_created);
        // Shared-disk queueing diagnostics: virtual time the node's
        // streams spent waiting on the device queue, and the observed
        // stream concurrency.
        ctx.obs.counter_add(
            "io.queue.wait_us",
            (ctx.charger.io_queue_wait().as_secs() * 1e6).round() as u64,
        );
        ctx.obs
            .counter_add("io.queue.stream_opens", ctx.disk.stats().stream_opens());
        ctx.obs.gauge_set(
            "io.queue.peak_streams",
            ctx.disk.stats().peak_streams() as f64,
        );
        ctx.obs
            .counter_add("net.sent_bytes", ctx.endpoint.sent_bytes());
        ctx.obs
            .counter_add("net.sent_messages", ctx.endpoint.sent_messages());
        ctx.obs
            .gauge_set("time.cpu_secs", ctx.charger.cpu_time().as_secs());
        ctx.obs
            .gauge_set("time.io_secs", ctx.charger.io_time().as_secs());
        ctx.obs
            .gauge_set("time.io_read_secs", ctx.charger.io_read_time().as_secs());
        ctx.obs
            .gauge_set("time.io_write_secs", ctx.charger.io_write_time().as_secs());
        ctx.obs
            .gauge_set("time.wait_secs", ctx.charger.wait_time().as_secs());
        ctx.obs.gauge_set(
            "time.overlap_saved_secs",
            ctx.charger.overlap_saved().as_secs(),
        );
        ctx.obs
            .gauge_set("time.finish_secs", ctx.charger.now().as_secs());
    }
    let rank = ctx.rank;
    let node_obs = ctx.obs.finish(rank, format!("node{rank} (perf {perf})"));
    NodeOutcome {
        value,
        finish: ctx.charger.now(),
        io,
        phases: std::mem::take(&mut ctx.phases),
        cpu_time: ctx.charger.cpu_time(),
        io_time: ctx.charger.io_time(),
        wait_time: ctx.charger.wait_time(),
        sent_bytes: ctx.endpoint.sent_bytes(),
        obs: node_obs,
    }
}

/// Per-node scratch dirs for file-backed clusters, kept alive until every
/// node finishes.
fn make_scratches(spec: &ClusterSpec) -> Vec<Option<ScratchDir>> {
    (0..spec.p())
        .map(|i| match spec.storage {
            StorageKind::Memory => None,
            StorageKind::Files => Some(
                ScratchDir::new(&format!("cluster-node{i}")).expect("cannot create scratch dir"),
            ),
        })
        .collect()
}

fn assemble_report<T>(outcomes: Vec<Option<NodeOutcome<T>>>) -> ClusterReport<T> {
    let nodes: Vec<NodeOutcome<T>> = outcomes.into_iter().map(|o| o.unwrap()).collect();
    let makespan = nodes
        .iter()
        .map(|n| n.finish)
        .max()
        .unwrap_or(SimTime::ZERO)
        .since(SimTime::ZERO);
    ClusterReport { nodes, makespan }
}

/// Runs `f` on every node of the cluster and reports outcomes plus the
/// makespan. The scheduler — thread-per-node or single-threaded
/// discrete-event — is chosen by [`ClusterSpec::runtime`].
///
/// The runtime adds a final I/O sync + barrier after `f` returns so that
/// every node's clock covers the entire computation; the makespan is the
/// maximum finish time.
///
/// ```
/// use cluster::{run_cluster, ClusterSpec, Tag};
///
/// // Two nodes, the second 4x faster; node 0 sends its rank to node 1.
/// let spec = ClusterSpec::new(vec![1, 4]);
/// let report = run_cluster(&spec, async |ctx| {
///     if ctx.rank == 0 {
///         ctx.send_records::<u32>(1, Tag::user(1), &[7]);
///         0
///     } else {
///         ctx.recv_records::<u32>(0, Tag::user(1)).await[0]
///     }
/// });
/// assert_eq!(report.nodes[1].value, 7);
/// assert!(report.makespan.as_secs() > 0.0); // wire time was charged
/// ```
///
/// # Panics
/// Propagates panics from node functions.
pub fn run_cluster<T, F>(spec: &ClusterSpec, f: F) -> ClusterReport<T>
where
    T: Send,
    F: AsyncFn(&mut NodeCtx) -> T + Send + Sync,
{
    match spec.runtime {
        RuntimeKind::Threads => run_threads(spec, &f),
        RuntimeKind::Events => run_events(spec, &f),
    }
}

/// The thread runtime: one OS thread per node. Each node future is
/// completed by a single poll — the comm layer blocks the thread
/// internally, so `Pending` never surfaces.
fn run_threads<T, F>(spec: &ClusterSpec, f: &F) -> ClusterReport<T>
where
    T: Send,
    F: AsyncFn(&mut NodeCtx) -> T + Send + Sync,
{
    let p = spec.p();
    let endpoints = Endpoint::mesh(p, spec.net.clone());
    let scratches = make_scratches(spec);

    let mut outcomes: Vec<Option<NodeOutcome<T>>> = Vec::with_capacity(p);
    for _ in 0..p {
        outcomes.push(None);
    }

    std::thread::scope(|s| {
        let handles: Vec<_> = endpoints
            .into_iter()
            .enumerate()
            .map(|(rank, endpoint)| {
                let scratch = &scratches[rank];
                s.spawn(move || {
                    let mut ctx = make_node_ctx(spec, rank, endpoint, scratch.as_ref());
                    // Install the handle in TLS so library code below this
                    // frame (the external sorters) can record spans and
                    // metrics without threading the handle through.
                    let _obs_guard = obs::install(ctx.obs.clone());
                    events::block_on(drive(&mut ctx, f, spec.perf[rank]))
                })
            })
            .collect();
        for (slot, h) in outcomes.iter_mut().zip(handles) {
            *slot = Some(h.join().expect("node thread panicked"));
        }
    });

    assemble_report(outcomes)
}

/// The event runtime: all nodes as cooperatively-scheduled tasks on one
/// thread. The runnable task with the smallest (virtual clock, rank) key
/// is resumed next; a blocking receive with an empty mailbox parks its
/// task, and the matching delivery wakes it. Deadlock (all live tasks
/// parked) panics immediately with a per-node wait report instead of
/// relying on the thread transport's 60 s timeout.
fn run_events<'a, T, F>(spec: &'a ClusterSpec, f: &'a F) -> ClusterReport<T>
where
    T: Send + 'a,
    F: AsyncFn(&mut NodeCtx) -> T + Send + Sync,
{
    let p = spec.p();
    let (endpoints, fabric) = Endpoint::event_mesh(p, spec.net.clone());
    let scratches = make_scratches(spec);

    /// One node task: the boxed context and the future driving it.
    /// `fut` is declared first so it drops before `ctx` — it holds an
    /// exclusive borrow of the boxed context through a raw pointer.
    struct Task<'f, T> {
        fut: Option<Pin<Box<dyn Future<Output = NodeOutcome<T>> + 'f>>>,
        _ctx: Box<NodeCtx>,
        /// The node's tracer, installed in TLS around every poll so
        /// library code attributes spans to the *task*, not the shared
        /// executor thread.
        obs: Obs,
    }

    let mut tasks: Vec<Task<'a, T>> = Vec::with_capacity(p);
    for (rank, endpoint) in endpoints.into_iter().enumerate() {
        let mut ctx = Box::new(make_node_ctx(
            spec,
            rank,
            endpoint,
            scratches[rank].as_ref(),
        ));
        let obs = ctx.obs.clone();
        let ctx_ptr: *mut NodeCtx = &mut *ctx;
        // SAFETY: the box pins the context to a stable heap address for
        // the task's lifetime, and the future (dropped first — see the
        // field order on `Task`) is the only code that touches it.
        let fut: Pin<Box<dyn Future<Output = NodeOutcome<T>> + 'a>> =
            Box::pin(drive(unsafe { &mut *ctx_ptr }, f, spec.perf[rank]));
        tasks.push(Task {
            fut: Some(fut),
            _ctx: ctx,
            obs,
        });
    }

    let mut outcomes: Vec<Option<NodeOutcome<T>>> = (0..p).map(|_| None).collect();
    let mut cx = Context::from_waker(Waker::noop());
    let mut remaining = p;
    while remaining > 0 {
        let rank = {
            let fab = fabric.lock().expect("fabric lock");
            match fab.next_runnable() {
                Some(rank) => rank,
                None => {
                    assert!(!fab.all_done(), "tasks outlived their outcomes");
                    panic!("{}", fab.deadlock_report());
                }
            }
        };
        let task = &mut tasks[rank];
        let poll = {
            // Scope the TLS install to the poll: whichever task runs owns
            // the recorder for exactly that slice of execution. Untraced
            // runs skip the TLS churn — a disabled recorder observes
            // nothing either way, and polls are the executor's hot path.
            let _obs_guard = task
                .obs
                .is_enabled()
                .then(|| obs::install(task.obs.clone()));
            task.fut
                .as_mut()
                .expect("completed task scheduled again")
                .as_mut()
                .poll(&mut cx)
        };
        match poll {
            Poll::Ready(outcome) => {
                task.fut = None;
                outcomes[rank] = Some(outcome);
                fabric.lock().expect("fabric lock").mark_done(rank);
                remaining -= 1;
            }
            Poll::Pending => {
                // The only legal yield is a parked receive; anything else
                // could never be woken.
                fabric.lock().expect("fabric lock").assert_parked(rank);
            }
        }
    }
    drop(tasks);

    assemble_report(outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::charge::Work;
    use crate::cost::CpuModel;
    use pdm::DiskModel;

    #[test]
    fn nodes_run_and_report() {
        let spec = ClusterSpec::homogeneous(3);
        let report = run_cluster(&spec, async |ctx| ctx.rank * 10);
        assert_eq!(report.nodes.len(), 3);
        for (rank, n) in report.nodes.iter().enumerate() {
            assert_eq!(n.value, rank * 10);
        }
    }

    #[test]
    fn makespan_is_slowest_node() {
        let spec = ClusterSpec::new(vec![1, 4]); // node 0 is 4× slower
        let report = run_cluster(&spec, async |ctx| {
            ctx.charger.compute(Work::comparisons(1_000_000), || ());
        });
        // Reference work = 0.28 s; node 0 takes 1.12 s; makespan ≈ that
        // plus barrier wire time.
        assert!(report.makespan.as_secs() >= 1.12);
        assert!(report.makespan.as_secs() < 1.2);
        // Both nodes finish at (about) the makespan thanks to the barrier.
        assert!(report.nodes[1].finish.as_secs() >= 1.12);
    }

    #[test]
    fn per_node_disks_are_private() {
        let spec = ClusterSpec::homogeneous(2);
        let report = run_cluster(&spec, async |ctx| {
            let name = "private";
            ctx.disk
                .write_file::<u32>(name, &[ctx.rank as u32])
                .unwrap();
            ctx.disk.read_file::<u32>(name).unwrap()
        });
        assert_eq!(report.nodes[0].value, vec![0]);
        assert_eq!(report.nodes[1].value, vec![1]);
    }

    #[test]
    fn io_counted_and_charged() {
        let spec = ClusterSpec::homogeneous(1).with_disk_model(DiskModel::scsi_2000());
        let report = run_cluster(&spec, async |ctx| {
            let data: Vec<u32> = (0..10_000).collect();
            ctx.disk.write_file("f", &data).unwrap();
            ctx.disk.read_file::<u32>("f").unwrap().len()
        });
        assert_eq!(report.nodes[0].value, 10_000);
        assert!(report.nodes[0].io.blocks_written > 0);
        assert!(report.nodes[0].io_time.as_secs() > 0.0);
    }

    #[test]
    fn phase_marks_are_cumulative() {
        let spec = ClusterSpec::homogeneous(1).with_cpu(CpuModel::alpha_533());
        let report = run_cluster(&spec, async |ctx| {
            ctx.charger.charge_work(Work::comparisons(1000));
            ctx.mark_phase("first");
            ctx.charger.charge_work(Work::comparisons(1000));
            ctx.mark_phase("second");
        });
        let phases = &report.nodes[0].phases;
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].name, "first");
        assert!(phases[1].at > phases[0].at);
    }

    #[test]
    fn messaging_inside_cluster() {
        let spec = ClusterSpec::homogeneous(2);
        let report = run_cluster(&spec, async |ctx| {
            if ctx.rank == 0 {
                ctx.send_records(1, Tag::user(5), &[1u32, 2, 3]);
                0
            } else {
                let v: Vec<u32> = ctx.recv_records(0, Tag::user(5)).await;
                v.iter().sum::<u32>() as usize
            }
        });
        assert_eq!(report.nodes[1].value, 6);
        assert!(report.nodes[1].wait_time.as_secs() > 0.0);
        assert!(report.nodes[0].sent_bytes >= 12);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let spec = ClusterSpec::new(vec![1, 2]).with_jitter(0.05).with_seed(7);
            run_cluster(&spec, async |ctx| {
                ctx.charger.compute(Work::comparisons(500_000), || ());
                ctx.barrier().await;
                ctx.charger.now().as_secs()
            })
        };
        let a = run();
        let b = run();
        assert_eq!(a.makespan, b.makespan);
        for (x, y) in a.nodes.iter().zip(&b.nodes) {
            assert_eq!(x.value, y.value);
        }
    }

    #[test]
    fn event_runtime_matches_threads_bitwise() {
        // The same jittered compute + message + barrier workload must
        // produce bit-identical clocks, traffic and values under both
        // schedulers: charges happen in per-node program order either
        // way, and arrival merges are commutative maxima.
        let run = |runtime: RuntimeKind| {
            let spec = ClusterSpec::new(vec![1, 2, 4])
                .with_jitter(0.05)
                .with_seed(11)
                .with_runtime(runtime);
            run_cluster(&spec, async |ctx| {
                ctx.charger
                    .compute(Work::comparisons(100_000 * (ctx.rank as u64 + 1)), || ());
                if ctx.rank == 0 {
                    for to in 1..ctx.p {
                        ctx.send_records(to, Tag::user(2), &[to as u32; 64]);
                    }
                } else {
                    let v: Vec<u32> = ctx.recv_records(0, Tag::user(2)).await;
                    assert_eq!(v.len(), 64);
                }
                ctx.mark_phase("exchange");
                ctx.barrier().await;
                ctx.charger.now().as_secs()
            })
        };
        let threads = run(RuntimeKind::Threads);
        let events = run(RuntimeKind::Events);
        assert_eq!(threads.makespan, events.makespan);
        for (a, b) in threads.nodes.iter().zip(&events.nodes) {
            assert_eq!(a.value, b.value);
            assert_eq!(a.finish, b.finish);
            assert_eq!(a.cpu_time, b.cpu_time);
            assert_eq!(a.wait_time, b.wait_time);
            assert_eq!(a.sent_bytes, b.sent_bytes);
            assert_eq!(a.io, b.io);
            assert_eq!(a.phases.len(), b.phases.len());
            for (pa, pb) in a.phases.iter().zip(&b.phases) {
                assert_eq!(pa.at, pb.at);
            }
        }
    }

    #[test]
    fn event_runtime_scales_to_many_nodes() {
        // 64 nodes in one process: a full barrier + ring exchange. The
        // thread runtime would need 64 OS threads for this.
        let spec = ClusterSpec::homogeneous(64).with_runtime(RuntimeKind::Events);
        let report = run_cluster(&spec, async |ctx| {
            let next = (ctx.rank + 1) % ctx.p;
            let prev = (ctx.rank + ctx.p - 1) % ctx.p;
            ctx.send_records(next, Tag::user(3), &[ctx.rank as u32]);
            let got: Vec<u32> = ctx.recv_records(prev, Tag::user(3)).await;
            ctx.barrier().await;
            got[0]
        });
        assert_eq!(report.nodes.len(), 64);
        for (rank, n) in report.nodes.iter().enumerate() {
            assert_eq!(n.value as usize, (rank + 64 - 1) % 64);
        }
    }

    #[test]
    #[should_panic(expected = "deadlocked")]
    fn event_runtime_detects_deadlock_immediately() {
        // Both nodes receive from each other without anyone sending: the
        // event scheduler sees every live task parked and panics at once
        // (the thread runtime would sit in its 60 s timeout).
        let spec = ClusterSpec::homogeneous(2).with_runtime(RuntimeKind::Events);
        let _ = run_cluster(&spec, async |ctx| {
            let peer = 1 - ctx.rank;
            let _ = ctx.recv_from(peer, Tag::user(1)).await;
        });
    }

    #[test]
    fn tls_recorder_follows_the_task_not_the_thread() {
        // Regression for the per-task recorder: all event-runtime nodes
        // share one executor thread, and each barrier parks the task and
        // hands the thread to the other node. Library code that records
        // through the TLS handle (obs::counter_add) must still attribute
        // to the node whose task is running.
        let spec = ClusterSpec::homogeneous(2)
            .with_tracing(true)
            .with_runtime(RuntimeKind::Events);
        let report = run_cluster(&spec, async |ctx| {
            for _ in 0..3 {
                if ctx.rank == 0 {
                    obs::counter_add("test.left", 1);
                } else {
                    obs::counter_add("test.right", 1);
                }
                ctx.barrier().await;
            }
        });
        let left = &report.nodes[0].obs.metrics.counters;
        let right = &report.nodes[1].obs.metrics.counters;
        assert_eq!(left.get("test.left"), Some(&3));
        assert_eq!(left.get("test.right"), None, "node 1's counts leaked");
        assert_eq!(right.get("test.right"), Some(&3));
        assert_eq!(right.get("test.left"), None, "node 0's counts leaked");
    }

    #[test]
    fn tracing_records_phase_spans_and_metrics() {
        let spec = ClusterSpec::new(vec![1, 2]).with_tracing(true);
        let report = run_cluster(&spec, async |ctx| {
            ctx.charger.charge_work(Work::comparisons(1000));
            ctx.mark_phase("first");
            if ctx.rank == 0 {
                ctx.send_records(1, Tag::user(9), &[1u32, 2, 3]);
            } else {
                let _: Vec<u32> = ctx.recv_records(0, Tag::user(9)).await;
            }
            ctx.barrier().await;
            ctx.mark_phase("second");
        });
        for node in &report.nodes {
            let phases: Vec<_> = node.obs.phases().map(|s| s.name).collect();
            assert_eq!(phases, vec!["first", "second"]);
            // Phase stamps on the tracer agree with the classic marks.
            for (span, mark) in node.obs.phases().zip(&node.phases) {
                assert_eq!(span.virt_end, Some(mark.at.as_secs()));
            }
            // The barrier shows up as a collective span.
            assert!(node
                .obs
                .spans
                .iter()
                .any(|s| s.kind == obs::SpanKind::Collective && s.name == "barrier"));
            // Classic counters were folded into the registry.
            assert_eq!(
                node.obs.metrics.counters.get("io.blocks_read"),
                Some(&node.io.blocks_read)
            );
            assert_eq!(
                node.obs.metrics.counters.get("net.sent_bytes"),
                Some(&node.sent_bytes)
            );
        }
        // The sender's message-size histogram saw the 12-byte payload.
        let hist = report.nodes[0]
            .obs
            .metrics
            .histograms
            .get("net.msg_bytes")
            .expect("sender records message sizes");
        assert_eq!(hist.count, 1);
        assert_eq!(hist.sum, 12);
    }

    #[test]
    fn tracing_records_phase_costs_satisfying_the_identity() {
        let spec = ClusterSpec::new(vec![1, 2]).with_tracing(true);
        let report = run_cluster(&spec, async |ctx| {
            ctx.charger.charge_work(Work::comparisons(500_000));
            ctx.disk
                .write_file::<u32>("f", &(0..2048).collect::<Vec<_>>())
                .unwrap();
            ctx.mark_phase("work");
            if ctx.rank == 0 {
                ctx.send_records(1, Tag::user(3), &[9u32; 256]);
            } else {
                let _: Vec<u32> = ctx.recv_records(0, Tag::user(3)).await;
            }
            ctx.barrier().await;
            ctx.mark_phase("exchange");
        });
        for node in &report.nodes {
            let costs = &node.obs.phase_costs;
            assert_eq!(costs.len(), 2);
            assert_eq!(costs[0].name, "work");
            // The Charger identity: duration = cpu + io − overlap + wait,
            // exactly, per phase.
            let mut start = 0.0;
            for c in costs {
                let dur = c.end - start;
                let accounted = c.cpu + c.io_read + c.io_write - c.overlap_saved + c.wait;
                assert!(
                    (dur - accounted).abs() < 1e-9,
                    "node {} phase {}: dur {dur} vs accounted {accounted}",
                    node.obs.node,
                    c.name
                );
                start = c.end;
            }
            // Phase ends agree with the classic marks.
            for (c, mark) in costs.iter().zip(&node.phases) {
                assert_eq!(c.end, mark.at.as_secs());
            }
        }
        // The receiver's exchange phase waited on node 0's message or the
        // barrier; its dominant sender must be a real peer.
        let recv_costs = &report.nodes[1].obs.phase_costs[1];
        assert!(recv_costs.wait > 0.0);
        if recv_costs.dominant_from >= 0 {
            assert_eq!(recv_costs.dominant_from, 0);
            assert!(recv_costs.dominant_depart <= recv_costs.dominant_arrival);
        }
        // The barrier wait was booked as collective straggling.
        assert!(report
            .nodes
            .iter()
            .any(|n| n.obs.phase_costs.iter().any(|c| c.coll_wait > 0.0)));
    }

    #[test]
    fn untraced_run_records_no_phase_costs() {
        let spec = ClusterSpec::homogeneous(2);
        let report = run_cluster(&spec, async |ctx| {
            ctx.mark_phase("only");
        });
        for node in &report.nodes {
            assert!(node.obs.phase_costs.is_empty());
        }
    }

    #[test]
    fn tracing_off_yields_empty_obs() {
        let spec = ClusterSpec::homogeneous(2);
        let report = run_cluster(&spec, async |ctx| {
            ctx.mark_phase("only");
        });
        for node in &report.nodes {
            assert!(node.obs.spans.is_empty());
            assert!(node.obs.metrics.is_empty());
        }
    }

    #[test]
    fn phase_breakdown_from_marks() {
        let spec = ClusterSpec::new(vec![1, 4]);
        let report = run_cluster(&spec, async |ctx| {
            ctx.charger.charge_work(Work::comparisons(1_000_000));
            ctx.mark_phase("compute");
            ctx.barrier().await;
            ctx.mark_phase("sync");
        });
        let breakdown = report.phase_breakdown();
        assert_eq!(breakdown.len(), 2);
        assert_eq!(breakdown[0].name, "compute");
        assert_eq!(breakdown[0].per_node.len(), 2);
        // Node 0 is 4x slower, so its compute phase takes 4x longer.
        let slow = breakdown[0].per_node[0].as_secs();
        let fast = breakdown[0].per_node[1].as_secs();
        assert!((slow / fast - 4.0).abs() < 1e-9);
        assert_eq!(breakdown[0].max().as_secs(), slow);
        // Durations are deltas: the sync phase excludes compute time.
        assert!(breakdown[1].per_node[1].as_secs() < slow);
    }

    #[test]
    fn file_backed_cluster_works() {
        let spec = ClusterSpec::homogeneous(2).with_storage(StorageKind::Files);
        let report = run_cluster(&spec, async |ctx| {
            ctx.disk
                .write_file::<u32>("x", &[ctx.rank as u32; 100])
                .unwrap();
            ctx.disk.len_records::<u32>("x").unwrap()
        });
        assert!(report.nodes.iter().all(|n| n.value == 100));
    }
}
