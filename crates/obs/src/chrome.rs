//! Chrome `trace_event` exporter.
//!
//! Emits one "process" per simulated node on the **virtual-time** axis, so
//! Perfetto / `chrome://tracing` render exactly the per-node, per-phase
//! Gantt the paper's tables describe. Phase and collective spans carry
//! virtual endpoints directly; wall-only [`SpanKind::Task`] spans are
//! linearly rescaled into the virtual window of the smallest enclosing
//! virtual-bearing span (they happened inside that phase's wall window, so
//! they are drawn inside its virtual window). Properly nested "X" complete
//! events stack automatically in the viewer.

use crate::json::{escape, num};
use crate::report::{ClusterObs, NodeObs};
use crate::span::SpanRecord;

/// Virtual window (µs endpoints) a span should be drawn in.
fn virt_window_us(span: &SpanRecord, node: &NodeObs) -> (f64, f64) {
    if let (Some(a), Some(b)) = (span.virt_start, span.virt_end) {
        return (a * 1e6, b * 1e6);
    }
    // Wall-only span: map into the smallest enclosing virtual-bearing span.
    let host = node
        .spans
        .iter()
        .filter(|s| s.has_virtual() && s.contains_wall(span))
        .min_by(|x, y| x.wall_secs().total_cmp(&y.wall_secs()));
    match host {
        Some(h) => {
            let (hv0, hv1) = (h.virt_start.unwrap(), h.virt_end.unwrap());
            let hw = h.wall_secs();
            if hw <= 0.0 {
                // Degenerate wall window: pin to the host's virtual start.
                return (hv0 * 1e6, hv0 * 1e6);
            }
            let scale = (hv1 - hv0) / hw;
            let v0 = hv0 + (span.wall_start - h.wall_start) * scale;
            let v1 = hv0 + (span.wall_end - h.wall_start) * scale;
            (v0 * 1e6, v1 * 1e6)
        }
        // No host: fall back to the raw wall axis.
        None => (span.wall_start * 1e6, span.wall_end * 1e6),
    }
}

/// Serialises a [`ClusterObs`] as a Chrome `trace_event` JSON document
/// (`{"traceEvents":[...]}`): per node, an "M" `process_name` metadata
/// event plus one "X" complete event per span, `pid` = node rank,
/// timestamps in virtual microseconds.
pub fn chrome_trace(obs: &ClusterObs) -> String {
    let mut events: Vec<String> = Vec::new();
    for node in &obs.nodes {
        events.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\
             \"args\":{{\"name\":\"{}\"}}}}",
            node.node,
            escape(&node.label),
        ));
        events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\
             \"args\":{{\"name\":\"virtual time\"}}}}",
            node.node,
        ));
        for span in &node.spans {
            let (ts, end) = virt_window_us(span, node);
            let dur = (end - ts).max(0.0);
            events.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":{},\"tid\":0,\
                 \"ts\":{},\"dur\":{}}}",
                escape(span.name),
                span.kind.label(),
                node.node,
                num(ts),
                num(dur),
            ));
        }
    }
    format!(
        "{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ms\"}}",
        events.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate;
    use crate::span::{Obs, SpanKind};

    fn sample_node() -> NodeObs {
        let obs = Obs::enabled();
        // A phase of 2 virtual seconds, with a wall-only task inside it.
        let w0 = obs.elapsed();
        obs.record_span("inner", SpanKind::Task, w0, w0, None);
        obs.phase_mark("local-sort", 2.0);
        obs.phase_mark("merge", 3.0);
        obs.finish(0, "node0 (perf 1)".to_string())
    }

    #[test]
    fn output_is_valid_json_with_expected_events() {
        let cluster = ClusterObs {
            nodes: vec![sample_node()],
            cluster: Default::default(),
        };
        let doc = chrome_trace(&cluster);
        validate(&doc).expect("chrome trace must be valid JSON");
        assert!(doc.contains("\"traceEvents\""));
        assert!(doc.contains("\"process_name\""));
        assert!(doc.contains("\"name\":\"local-sort\""));
        assert!(doc.contains("\"cat\":\"phase\""));
        assert!(doc.contains("\"cat\":\"task\""));
    }

    #[test]
    fn phase_spans_use_virtual_microseconds() {
        let node = sample_node();
        let phase = node.phases().next().unwrap().clone();
        let (ts, end) = virt_window_us(&phase, &node);
        assert_eq!(ts, 0.0);
        assert_eq!(end, 2_000_000.0);
    }

    #[test]
    fn wall_only_spans_rescale_into_host_phase() {
        let node = sample_node();
        let task = node
            .spans
            .iter()
            .find(|s| s.kind == SpanKind::Task)
            .unwrap()
            .clone();
        let (ts, end) = virt_window_us(&task, &node);
        // The task sits inside the first phase's wall window, so its virtual
        // window must land inside [0, 2s] in microseconds.
        assert!(ts >= 0.0 && end <= 2_000_000.0 && ts <= end);
    }

    #[test]
    fn orphan_wall_span_falls_back_to_wall_axis() {
        let span = SpanRecord {
            name: "orphan",
            kind: SpanKind::Task,
            wall_start: 1.0,
            wall_end: 2.0,
            virt_start: None,
            virt_end: None,
        };
        let node = NodeObs {
            spans: vec![span.clone()],
            ..Default::default()
        };
        assert_eq!(virt_window_us(&span, &node), (1e6, 2e6));
    }
}
