//! Phase-span tracing and unified metrics for the sorting workspace.
//!
//! The paper's whole evaluation is a per-phase, per-node accounting of
//! Algorithm 1; this crate turns that story into first-class data instead of
//! scattered report structs:
//!
//! * **Spans** ([`SpanRecord`]) carry both *virtual* time (the simulated
//!   node clock, as plain `f64` seconds) and *wall* time. Phase boundaries
//!   ([`Obs::phase_mark`]) produce one contiguous span per Algorithm-1 step;
//!   collectives and inner sorter stages nest inside them.
//! * A **metrics registry** ([`metrics::Metrics`]) of named counters, gauges
//!   and power-of-two-bucket histograms unifies the `IoSnapshot`,
//!   `SortReport`/`MergeReport`, `key_ops` and `overlap_saved` plumbing,
//!   plus run-length, message-size and partition-size distributions.
//! * **Exporters**: Chrome `trace_event` JSON ([`chrome::chrome_trace`],
//!   one "process" per simulated node on the virtual-time axis — loadable
//!   in Perfetto), machine-readable metrics JSON ([`json::metrics_json`])
//!   and a terminal per-node phase Gantt + skew table
//!   ([`render::render_profile`]).
//!
//! # Zero cost when disabled
//!
//! Everything funnels through an [`Obs`] handle that is either enabled
//! (an `Rc<RefCell<…>>` recorder) or a no-op. Recording **never** touches
//! clocks, RNGs, disks or the network — it only *reads* the times it is
//! handed — so a traced run is observationally identical to an untraced
//! one: byte-identical sorted output, identical I/O counters, identical
//! virtual times (the differential test in the workspace root proves it).
//!
//! # Thread-local use
//!
//! The cluster runtime [`install`]s each node's handle in thread-local
//! storage before running the node function, so deep library code (the
//! external sorters) can open [`scoped`] spans and bump [`counter_add`] /
//! [`hist_record`] metrics without threading a handle through every
//! signature. Threads without an installed handle (e.g. pipelined sort
//! workers) observe a disabled handle and pay a TLS read per call.

pub mod chrome;
pub mod critpath;
pub mod json;
pub mod metrics;
pub mod render;
pub mod report;
pub mod span;
pub mod whatif;

pub use chrome::chrome_trace;
pub use critpath::{
    calibration_report, critical_path, Blame, CritPath, PhaseCost, Segment, BLAME_CATEGORIES,
};
pub use json::{metrics_json, parse, validate, Json};
pub use metrics::{Histogram, Metrics, MetricsSnapshot};
pub use render::render_profile;
pub use report::{ClusterObs, NodeObs};
pub use span::{Obs, SpanKind, SpanRecord};
pub use whatif::{critpath_json, estimate_without, render_whatif, whatif_table, WhatIf};

use std::cell::RefCell;

thread_local! {
    static CURRENT: RefCell<Obs> = RefCell::new(Obs::disabled());
}

/// Installs `obs` as this thread's current handle; the previous handle is
/// restored when the guard drops. The cluster runtime calls this once per
/// node thread.
#[must_use = "the previous handle is restored when the guard drops"]
pub fn install(obs: Obs) -> InstallGuard {
    let prev = CURRENT.with(|c| std::mem::replace(&mut *c.borrow_mut(), obs));
    InstallGuard { prev: Some(prev) }
}

/// Restores the previously installed handle on drop (see [`install`]).
pub struct InstallGuard {
    prev: Option<Obs>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            CURRENT.with(|c| *c.borrow_mut() = prev);
        }
    }
}

/// The current thread's handle (disabled if none was installed).
pub fn current() -> Obs {
    CURRENT.with(|c| c.borrow().clone())
}

/// Opens a wall-clock span on the current thread's handle; the span is
/// recorded when the guard drops. A no-op (one TLS read) when tracing is
/// disabled. Inner spans carry only wall time — the Chrome exporter rescales
/// them into the virtual window of the enclosing phase span.
pub fn scoped(name: &'static str) -> ScopedSpan {
    let obs = current();
    let start = obs.elapsed();
    ScopedSpan { obs, name, start }
}

/// Guard returned by [`scoped`]; records the span on drop.
pub struct ScopedSpan {
    obs: Obs,
    name: &'static str,
    start: f64,
}

impl Drop for ScopedSpan {
    fn drop(&mut self) {
        if self.obs.is_enabled() {
            let end = self.obs.elapsed();
            self.obs
                .record_span(self.name, SpanKind::Task, self.start, end, None);
        }
    }
}

/// Adds to a named counter on the current thread's handle.
pub fn counter_add(name: &'static str, v: u64) {
    CURRENT.with(|c| c.borrow().counter_add(name, v));
}

/// Sets a named gauge on the current thread's handle.
pub fn gauge_set(name: &'static str, v: f64) {
    CURRENT.with(|c| c.borrow().gauge_set(name, v));
}

/// Records a value into a named histogram on the current thread's handle.
pub fn hist_record(name: &'static str, v: u64) {
    CURRENT.with(|c| c.borrow().hist_record(name, v));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_thread_local_is_noop() {
        // No handle installed: all free functions are inert.
        {
            let _span = scoped("nothing");
            counter_add("c", 1);
            hist_record("h", 2);
            gauge_set("g", 3.0);
        }
        assert!(!current().is_enabled());
    }

    #[test]
    fn install_scopes_and_restores() {
        let obs = Obs::enabled();
        {
            let _guard = install(obs.clone());
            assert!(current().is_enabled());
            {
                let _span = scoped("work");
                counter_add("c", 2);
                hist_record("h", 5);
            }
        }
        assert!(!current().is_enabled(), "previous handle restored");
        let node = obs.finish(0, "n0".to_string());
        assert_eq!(node.spans.len(), 1);
        assert_eq!(node.spans[0].name, "work");
        assert_eq!(node.spans[0].kind, SpanKind::Task);
        assert_eq!(node.metrics.counters.get("c"), Some(&2));
        assert_eq!(node.metrics.histograms.get("h").unwrap().count, 1);
    }

    #[test]
    fn nested_installs_restore_in_order() {
        let a = Obs::enabled();
        let b = Obs::enabled();
        let g1 = install(a.clone());
        {
            let _g2 = install(b.clone());
            counter_add("x", 1);
        }
        counter_add("x", 10);
        drop(g1);
        assert_eq!(
            b.finish(0, String::new()).metrics.counters.get("x"),
            Some(&1)
        );
        assert_eq!(
            a.finish(0, String::new()).metrics.counters.get("x"),
            Some(&10)
        );
    }
}
