//! Terminal rendering: per-node phase Gantt chart + partition-skew table.

use crate::report::ClusterObs;

const GANTT_WIDTH: usize = 60;

/// Letters used to draw a phase bar. Multi-word names take the first letter
/// of each '+'/'-'-separated word ("local-sort" → "LS",
/// "partition+redistribute" → "PR"); single words take their first two
/// letters ("pivots" → "PI", "partition" → "PA") so the Algorithm 1 phase
/// codes stay distinct.
fn phase_code(name: &str) -> String {
    let words: Vec<&str> = name.split(['-', '+', ' ']).collect();
    if words.len() >= 2 {
        words
            .iter()
            .filter_map(|w| w.chars().next())
            .map(|c| c.to_ascii_uppercase())
            .collect()
    } else {
        name.chars()
            .take(2)
            .map(|c| c.to_ascii_uppercase())
            .collect()
    }
}

/// Renders a per-node phase Gantt on the virtual-time axis plus, when the
/// trial runner injected skew gauges, a per-node partition-size table and
/// the PSRS expansion-vs-bound verdict. Pure formatting: no I/O.
pub fn render_profile(obs: &ClusterObs) -> String {
    let mut out = String::new();
    let makespan = obs.virt_end();
    out.push_str(&format!(
        "phase timeline (virtual time, makespan {:.4}s)\n",
        makespan
    ));

    // Legend from first-appearance order of phase names.
    let mut legend: Vec<&'static str> = Vec::new();
    for node in &obs.nodes {
        for p in node.phases() {
            if !legend.contains(&p.name) {
                legend.push(p.name);
            }
        }
    }
    if legend.is_empty() {
        out.push_str("  (no phase spans recorded)\n");
        return out;
    }
    out.push_str("  legend: ");
    for (i, name) in legend.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("{}={}", phase_code(name), name));
    }
    out.push('\n');

    let scale = if makespan > 0.0 {
        GANTT_WIDTH as f64 / makespan
    } else {
        0.0
    };
    for node in &obs.nodes {
        let mut bar = vec![' '; GANTT_WIDTH];
        for p in node.phases() {
            let (Some(v0), Some(v1)) = (p.virt_start, p.virt_end) else {
                continue;
            };
            let a = ((v0 * scale) as usize).min(GANTT_WIDTH);
            let b = ((v1 * scale).ceil() as usize).clamp(a, GANTT_WIDTH);
            let code = phase_code(p.name);
            let code: Vec<char> = code.chars().collect();
            for (k, slot) in bar[a..b].iter_mut().enumerate() {
                *slot = code[k % code.len()];
            }
        }
        let bar: String = bar.into_iter().collect();
        out.push_str(&format!(
            "  {:<18} |{}| {:.4}s\n",
            node.label,
            bar,
            node.virt_end()
        ));
    }

    // Per-phase duration table (slowest node per phase dominates makespan).
    out.push_str("\nper-node phase durations (virtual seconds)\n");
    out.push_str(&format!("  {:<24}", "phase"));
    for node in &obs.nodes {
        out.push_str(&format!(" {:>10}", format!("node{}", node.node)));
    }
    out.push('\n');
    for name in &legend {
        out.push_str(&format!("  {name:<24}"));
        for node in &obs.nodes {
            let d: f64 = node
                .phases()
                .filter(|p| p.name == *name)
                .map(|p| p.virt_secs())
                .sum();
            out.push_str(&format!(" {d:>10.4}"));
        }
        out.push('\n');
    }

    // Skew table, present when the runner injected the PSRS gauges.
    let expansion = obs.cluster.gauges.get("skew.expansion");
    let bound = obs.cluster.gauges.get("skew.bound");
    if let (Some(&expansion), Some(&bound)) = (expansion, bound) {
        out.push_str("\npartition skew (PSRS bound check)\n");
        out.push_str(&format!(
            "  {:<8} {:>16} {:>16} {:>10}\n",
            "node", "received", "expected", "ratio"
        ));
        for node in &obs.nodes {
            let recv = node.metrics.gauges.get("psrs.received_records");
            let exp = node.metrics.gauges.get("psrs.expected_records");
            if let (Some(&recv), Some(&exp)) = (recv, exp) {
                let ratio = if exp > 0.0 { recv / exp } else { 0.0 };
                out.push_str(&format!(
                    "  node{:<4} {:>16.0} {:>16.0} {:>10.4}\n",
                    node.node, recv, exp, ratio
                ));
            }
        }
        let verdict = if expansion <= bound { "OK" } else { "VIOLATED" };
        out.push_str(&format!(
            "  max expansion {expansion:.4} vs bound {bound:.4} -> {verdict}\n"
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsSnapshot;
    use crate::report::NodeObs;
    use crate::span::Obs;

    fn node_with_phases(rank: usize, marks: &[(&'static str, f64)]) -> NodeObs {
        let obs = Obs::enabled();
        for &(name, at) in marks {
            obs.phase_mark(name, at);
        }
        let mut node = obs.finish(rank, format!("node{rank}"));
        node.metrics.gauge_set("psrs.received_records", 120.0);
        node.metrics.gauge_set("psrs.expected_records", 100.0);
        node
    }

    #[test]
    fn renders_gantt_legend_and_skew() {
        let mut cluster_metrics = MetricsSnapshot::default();
        cluster_metrics.gauge_set("skew.expansion", 1.2);
        cluster_metrics.gauge_set("skew.bound", 1.5);
        let obs = ClusterObs {
            nodes: vec![
                node_with_phases(0, &[("local-sort", 1.0), ("merge", 2.0)]),
                node_with_phases(1, &[("local-sort", 0.5), ("merge", 1.5)]),
            ],
            cluster: cluster_metrics,
        };
        let text = render_profile(&obs);
        assert!(text.contains("legend: LS=local-sort, ME=merge"));
        assert!(text.contains("node0"));
        assert!(text.contains("per-node phase durations"));
        assert!(text.contains("partition skew"));
        assert!(text.contains("-> OK"));
    }

    #[test]
    fn empty_cluster_does_not_panic() {
        let text = render_profile(&ClusterObs::default());
        assert!(text.contains("no phase spans recorded"));
    }

    #[test]
    fn skew_section_absent_without_gauges() {
        let obs = ClusterObs {
            nodes: vec![node_with_phases(0, &[("local-sort", 1.0)])],
            cluster: MetricsSnapshot::default(),
        };
        let text = render_profile(&obs);
        assert!(!text.contains("partition skew"));
    }

    #[test]
    fn node_with_no_spans_renders_without_panic() {
        // A node that recorded nothing (e.g. it died before its first
        // phase mark) must not break the whole profile.
        let obs = ClusterObs {
            nodes: vec![NodeObs {
                node: 3,
                label: "node3 (idle)".to_string(),
                ..NodeObs::default()
            }],
            cluster: MetricsSnapshot::default(),
        };
        let text = render_profile(&obs);
        assert!(text.contains("no phase spans recorded"));
    }

    #[test]
    fn single_node_run_renders() {
        let obs = ClusterObs {
            nodes: vec![node_with_phases(0, &[("local-sort", 2.0)])],
            cluster: MetricsSnapshot::default(),
        };
        let text = render_profile(&obs);
        assert!(text.contains("legend: LS=local-sort"));
        assert!(text.contains("2.0000s"));
        assert!(text.contains("per-node phase durations"));
    }

    #[test]
    fn zero_duration_phases_render_as_zero_rows() {
        // Two marks at the same instant give "pivots" zero duration; the
        // empty gantt slice (a == b) and the 0.0000 duration cell must
        // both be fine.
        let obs = ClusterObs {
            nodes: vec![node_with_phases(
                0,
                &[("local-sort", 1.0), ("pivots", 1.0), ("merge", 2.0)],
            )],
            cluster: MetricsSnapshot::default(),
        };
        let text = render_profile(&obs);
        let pivots_row = text
            .lines()
            .find(|l| l.trim_start().starts_with("pivots"))
            .expect("pivots duration row");
        assert!(pivots_row.contains("0.0000"));
    }

    #[test]
    fn zero_makespan_run_renders_without_panic() {
        // Every phase ends at t = 0: the gantt scale degenerates to zero.
        let obs = ClusterObs {
            nodes: vec![node_with_phases(0, &[("local-sort", 0.0), ("merge", 0.0)])],
            cluster: MetricsSnapshot::default(),
        };
        let text = render_profile(&obs);
        assert!(text.contains("makespan 0.0000s"));
    }

    #[test]
    fn phase_codes() {
        assert_eq!(phase_code("local-sort"), "LS");
        assert_eq!(phase_code("partition+redistribute"), "PR");
        assert_eq!(phase_code("merge"), "ME");
        // The two P-phases of Algorithm 1 must be distinguishable.
        assert_ne!(phase_code("pivots"), phase_code("partition"));
    }
}
