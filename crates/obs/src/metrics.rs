//! The unified metrics registry: named counters, gauges and
//! power-of-two-bucket histograms.
//!
//! Metric names are `&'static str` dotted paths (`io.blocks_read`,
//! `extsort.run_records`, `net.msg_bytes`, `skew.expansion`, …) — see
//! DESIGN.md §Observability for the naming scheme. Registries live on a
//! node's [`crate::Obs`] handle; [`MetricsSnapshot`] is the `Send`,
//! exporter-facing copy.

use std::collections::BTreeMap;

/// Number of histogram buckets: one per possible bit width of a `u64`
/// value, plus one for zero.
const BUCKETS: usize = 65;

/// A fixed-shape histogram over `u64` values with power-of-two buckets.
///
/// Value `v` lands in bucket `bit_width(v)` (0 for `v == 0`), i.e. the
/// bucket whose inclusive upper bound is `2^idx − 1`. This keeps recording
/// allocation-free and gives log-scale resolution, which is what run
/// lengths, message sizes and partition sizes need.
#[derive(Clone)]
pub struct Histogram {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (meaningful when `count > 0`).
    pub min: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Per-bucket counts, indexed by bit width.
    pub buckets: [u64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }
}

impl Histogram {
    /// Bucket index for a value: its bit width (zero maps to bucket 0).
    fn bucket_idx(v: u64) -> usize {
        (u64::BITS - v.leading_zeros()) as usize
    }

    /// Inclusive upper bound of a bucket: `2^idx − 1` (saturating).
    fn bucket_le(idx: usize) -> u64 {
        if idx >= 64 {
            u64::MAX
        } else {
            (1u64 << idx) - 1
        }
    }

    /// Records one value. All tallies saturate instead of wrapping —
    /// GB-scale runs record billions of values and a wrapped counter would
    /// silently corrupt every derived report; debug builds assert instead.
    pub fn record(&mut self, v: u64) {
        debug_assert!(self.count < u64::MAX, "histogram count overflow");
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        let idx = Self::bucket_idx(v);
        debug_assert!(self.buckets[idx] < u64::MAX, "histogram bucket overflow");
        self.buckets[idx] = self.buckets[idx].saturating_add(1);
    }

    /// Exporter-facing copy with only the occupied buckets.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0 } else { self.min },
            max: self.max,
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, &c)| (Self::bucket_le(i), c))
                .collect(),
        }
    }
}

/// `Send` copy of a [`Histogram`] with sparse `(le, count)` buckets, where
/// `le` is the bucket's inclusive upper bound.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Occupied buckets as `(inclusive upper bound, count)`.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// The live registry held by an enabled [`crate::Obs`].
#[derive(Default)]
pub struct Metrics {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl Metrics {
    /// Adds to a named counter (created at zero on first use). Saturating:
    /// a wrapped hot counter (block counts on GB-scale runs) would corrupt
    /// reports silently; debug builds assert instead.
    pub fn counter_add(&mut self, name: &'static str, v: u64) {
        let entry = self.counters.entry(name).or_insert(0);
        debug_assert!(entry.checked_add(v).is_some(), "counter {name} overflow");
        *entry = entry.saturating_add(v);
    }

    /// Sets a named gauge (last write wins).
    pub fn gauge_set(&mut self, name: &'static str, v: f64) {
        self.gauges.insert(name, v);
    }

    /// Records a value into a named histogram.
    pub fn hist_record(&mut self, name: &'static str, v: u64) {
        self.histograms.entry(name).or_default().record(v);
    }

    /// `Send` copy of the whole registry.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(&k, h)| (k, h.snapshot()))
                .collect(),
        }
    }
}

/// `Send` copy of a registry; what exporters and reports consume. The
/// cluster runtime also injects derived values (charger times, I/O
/// snapshot counters, skew gauges) directly into snapshots via the
/// mutation helpers.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Monotonic counts, keyed by dotted metric name.
    pub counters: BTreeMap<&'static str, u64>,
    /// Point-in-time values, keyed by dotted metric name.
    pub gauges: BTreeMap<&'static str, f64>,
    /// Value distributions, keyed by dotted metric name.
    pub histograms: BTreeMap<&'static str, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Adds to a counter in the snapshot (for post-run injection).
    /// Saturating, like [`Metrics::counter_add`].
    pub fn counter_add(&mut self, name: &'static str, v: u64) {
        let entry = self.counters.entry(name).or_insert(0);
        debug_assert!(entry.checked_add(v).is_some(), "counter {name} overflow");
        *entry = entry.saturating_add(v);
    }

    /// Sets a gauge in the snapshot (for post-run injection).
    pub fn gauge_set(&mut self, name: &'static str, v: f64) {
        self.gauges.insert(name, v);
    }

    /// Whether nothing was recorded or injected.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        let mut h = Histogram::default();
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1000] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 8);
        assert_eq!(snap.sum, 1025);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, 1000);
        // 0 → le 0; 1 → le 1; 2,3 → le 3; 4,7 → le 7; 8 → le 15; 1000 → le 1023.
        assert_eq!(
            snap.buckets,
            vec![(0, 1), (1, 1), (3, 2), (7, 2), (15, 1), (1023, 1)]
        );
        assert!((snap.mean() - 1025.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_snapshot_is_sane() {
        let snap = Histogram::default().snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, 0);
        assert!(snap.buckets.is_empty());
        assert_eq!(snap.mean(), 0.0);
    }

    #[test]
    fn huge_values_land_in_the_top_bucket() {
        let mut h = Histogram::default();
        h.record(u64::MAX);
        assert_eq!(h.snapshot().buckets, vec![(u64::MAX, 1)]);
    }

    #[test]
    fn top_bucket_boundary_values() {
        // Pin the edge cases around the last two buckets: 2^63 − 1 is the
        // largest value of bucket 63 (le 2^63 − 1); 2^63 and u64::MAX both
        // land in bucket 64, whose inclusive bound saturates at u64::MAX
        // rather than computing 2^64 − 1 via a shift overflow.
        let mut h = Histogram::default();
        h.record((1u64 << 63) - 1);
        h.record(1u64 << 63);
        h.record(u64::MAX);
        let snap = h.snapshot();
        assert_eq!(
            snap.buckets,
            vec![((1u64 << 63) - 1, 1), (u64::MAX, 2)],
            "2^63 must cross into the saturated top bucket"
        );
        assert_eq!(snap.max, u64::MAX);
        // The sum saturates instead of wrapping.
        assert_eq!(snap.sum, u64::MAX);
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn release_arithmetic_saturates_instead_of_wrapping() {
        let mut m = Metrics::default();
        m.counter_add("c", u64::MAX);
        m.counter_add("c", 1);
        assert_eq!(m.snapshot().counters.get("c"), Some(&u64::MAX));

        let mut snap = MetricsSnapshot::default();
        snap.counter_add("c", u64::MAX - 1);
        snap.counter_add("c", 5);
        assert_eq!(snap.counters.get("c"), Some(&u64::MAX));

        let mut h = Histogram {
            count: u64::MAX,
            ..Histogram::default()
        };
        h.record(1);
        assert_eq!(h.count, u64::MAX, "count saturates");
    }

    #[test]
    fn registry_round_trip() {
        let mut m = Metrics::default();
        m.counter_add("io.blocks_read", 3);
        m.counter_add("io.blocks_read", 4);
        m.gauge_set("skew.expansion", 1.25);
        m.gauge_set("skew.expansion", 1.5);
        m.hist_record("net.msg_bytes", 512);
        let snap = m.snapshot();
        assert_eq!(snap.counters.get("io.blocks_read"), Some(&7));
        assert_eq!(snap.gauges.get("skew.expansion"), Some(&1.5));
        assert_eq!(snap.histograms.get("net.msg_bytes").unwrap().count, 1);
        assert!(!snap.is_empty());
    }

    #[test]
    fn snapshot_injection_helpers() {
        let mut snap = MetricsSnapshot::default();
        assert!(snap.is_empty());
        snap.counter_add("net.sent_bytes", 100);
        snap.counter_add("net.sent_bytes", 1);
        snap.gauge_set("time.cpu_secs", 2.5);
        assert_eq!(snap.counters.get("net.sent_bytes"), Some(&101));
        assert_eq!(snap.gauges.get("time.cpu_secs"), Some(&2.5));
    }
}
