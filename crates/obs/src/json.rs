//! Hand-rolled JSON: a small writer and a strict recursive-descent
//! validator. The workspace is deliberately dependency-free, so exporters
//! build strings directly; the validator backs the differential and CI
//! schema tests without pulling in a parser crate.

use crate::report::ClusterObs;

/// Escapes a string for embedding inside JSON double quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number. JSON has no NaN/Infinity, so
/// non-finite values degrade to `0` rather than emitting invalid output.
pub fn num(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    // `{:?}` for f64 is the shortest representation that round-trips and
    // always contains a '.' or exponent, which keeps it a valid number.
    format!("{v:?}")
}

/// Validates that `s` is a single well-formed JSON value. Returns a
/// byte-offset error message on failure. Strict: trailing garbage,
/// trailing commas, unquoted keys and non-finite numbers all fail.
pub fn validate(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(b, &mut pos);
    parse_value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        None => Err(format!("unexpected end of input at byte {pos}", pos = *pos)),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_lit(b, pos, "true"),
        Some(b'f') => parse_lit(b, pos, "false"),
        Some(b'n') => parse_lit(b, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte {c:?} at {pos}", pos = *pos)),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        if b.len() < *pos + 5
                            || !b[*pos + 1..*pos + 5].iter().all(u8::is_ascii_hexdigit)
                        {
                            return Err(format!("bad \\u escape at byte {pos}", pos = *pos));
                        }
                        *pos += 5;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
            }
            c if c < 0x20 => {
                return Err(format!("raw control byte in string at {pos}", pos = *pos))
            }
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let int_digits = eat_digits(b, pos);
    if int_digits == 0 {
        return Err(format!("number missing digits at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if eat_digits(b, pos) == 0 {
            return Err(format!("number missing fraction digits at byte {start}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if eat_digits(b, pos) == 0 {
            return Err(format!("number missing exponent digits at byte {start}"));
        }
    }
    Ok(())
}

fn eat_digits(b: &[u8], pos: &mut usize) -> usize {
    let start = *pos;
    while *pos < b.len() && b[*pos].is_ascii_digit() {
        *pos += 1;
    }
    *pos - start
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => {
                *pos += 1;
                skip_ws(b, pos);
            }
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected string key at byte {pos}", pos = *pos));
        }
        parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

/// A parsed JSON value. Object members keep document order (the writer
/// emits sorted registries, so order is meaningful for diffing).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON has one numeric type).
    Num(f64),
    /// A string, with escapes decoded.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as ordered `(key, value)` members.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object (`None` on other variants or a missing
    /// key).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value (`None` on non-numbers).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value (`None` on non-strings).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses a single JSON document into a [`Json`] value. Same strictness
/// as [`validate`] (in fact it validates first, so error offsets match).
pub fn parse(s: &str) -> Result<Json, String> {
    validate(s)?;
    let b = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(b, &mut pos);
    Ok(build_value(b, &mut pos))
}

/// Builds the value at `pos`; input is already validated, so this cannot
/// fail and panics only on internal inconsistency.
fn build_value(b: &[u8], pos: &mut usize) -> Json {
    match b[*pos] {
        b'{' => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(b, pos);
            if b[*pos] == b'}' {
                *pos += 1;
                return Json::Obj(members);
            }
            loop {
                skip_ws(b, pos);
                let key = build_string(b, pos);
                skip_ws(b, pos);
                *pos += 1; // ':'
                skip_ws(b, pos);
                let value = build_value(b, pos);
                members.push((key, value));
                skip_ws(b, pos);
                if b[*pos] == b',' {
                    *pos += 1;
                } else {
                    *pos += 1; // '}'
                    return Json::Obj(members);
                }
            }
        }
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b[*pos] == b']' {
                *pos += 1;
                return Json::Arr(items);
            }
            loop {
                items.push(build_value(b, pos));
                skip_ws(b, pos);
                if b[*pos] == b',' {
                    *pos += 1;
                    skip_ws(b, pos);
                } else {
                    *pos += 1; // ']'
                    return Json::Arr(items);
                }
            }
        }
        b'"' => Json::Str(build_string(b, pos)),
        b't' => {
            *pos += 4;
            Json::Bool(true)
        }
        b'f' => {
            *pos += 5;
            Json::Bool(false)
        }
        b'n' => {
            *pos += 4;
            Json::Null
        }
        _ => {
            let start = *pos;
            let _ = parse_number(b, pos);
            let text = std::str::from_utf8(&b[start..*pos]).expect("validated ascii number");
            Json::Num(text.parse().expect("validated number"))
        }
    }
}

fn build_string(b: &[u8], pos: &mut usize) -> String {
    *pos += 1; // opening '"'
    let mut out = String::new();
    loop {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return out;
            }
            b'\\' => {
                *pos += 1;
                match b[*pos] {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = std::str::from_utf8(&b[*pos + 1..*pos + 5])
                            .expect("validated hex digits");
                        let code = u32::from_str_radix(hex, 16).expect("validated hex");
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => unreachable!("validated escape"),
                }
                *pos += 1;
            }
            _ => {
                // Copy one UTF-8 scalar (validated input is valid UTF-8).
                let rest = std::str::from_utf8(&b[*pos..]).expect("validated utf8");
                let c = rest.chars().next().expect("non-empty string body");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn snapshot_json(m: &crate::metrics::MetricsSnapshot, out: &mut String) {
    out.push_str("{\"counters\":{");
    for (i, (k, v)) in m.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{}", escape(k), v));
    }
    out.push_str("},\"gauges\":{");
    for (i, (k, v)) in m.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{}", escape(k), num(*v)));
    }
    out.push_str("},\"histograms\":{");
    for (i, (k, h)) in m.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\"buckets\":[",
            escape(k),
            h.count,
            h.sum,
            h.min,
            h.max,
            num(h.mean()),
        ));
        for (j, (le, c)) in h.buckets.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"le\":{le},\"count\":{c}}}"));
        }
        out.push_str("]}");
    }
    out.push_str("}}");
}

/// Serialises a [`ClusterObs`] as the `hetsort-metrics-v1` document:
/// per-node counters/gauges/histograms and phase durations plus the
/// cluster-level registry (skew gauges). Validated in CI against
/// `schemas/validate_metrics.py`.
pub fn metrics_json(obs: &ClusterObs) -> String {
    let mut out = String::new();
    out.push_str("{\"schema\":\"hetsort-metrics-v1\",\"nodes\":[");
    for (i, node) in obs.nodes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"node\":{},\"label\":\"{}\",\"phases\":[",
            node.node,
            escape(&node.label)
        ));
        for (j, p) in node.phases().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"virt_secs\":{},\"wall_secs\":{}}}",
                escape(p.name),
                num(p.virt_secs()),
                num(p.wall_secs()),
            ));
        }
        out.push_str("],\"metrics\":");
        snapshot_json(&node.metrics, &mut out);
        out.push('}');
    }
    out.push_str("],\"cluster\":");
    snapshot_json(&obs.cluster, &mut out);
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::NodeObs;
    use crate::span::Obs;

    #[test]
    fn escape_covers_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn num_is_always_valid_json() {
        for v in [0.0, -1.5, 1e30, 123456.789, f64::NAN, f64::INFINITY] {
            let n = num(v);
            assert!(validate(&n).is_ok(), "{n}");
        }
    }

    #[test]
    fn validator_accepts_and_rejects() {
        assert!(validate(r#"{"a":[1,2.5,-3e2],"b":"x\n","c":null,"d":true}"#).is_ok());
        assert!(validate("").is_err());
        assert!(validate("{").is_err());
        assert!(validate("[1,]").is_err());
        assert!(validate("{'a':1}").is_err());
        assert!(validate("{\"a\":1} extra").is_err());
        assert!(validate("1 2").is_err());
    }

    #[test]
    fn parse_builds_values() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": "x\nA", "c": null, "d": true}"#;
        let v = parse(doc).expect("parses");
        assert_eq!(
            v.get("a").unwrap(),
            &Json::Arr(vec![Json::Num(1.0), Json::Num(2.5), Json::Num(-300.0)])
        );
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\nA"));
        assert_eq!(v.get("c").unwrap(), &Json::Null);
        assert_eq!(v.get("d").unwrap(), &Json::Bool(true));
        assert_eq!(v.get("a").unwrap().as_f64(), None);
        assert!(v.get("missing").is_none());
        assert!(parse("{bad}").is_err());
        assert_eq!(parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(parse("{}").unwrap(), Json::Obj(vec![]));
    }

    #[test]
    fn parse_round_trips_metrics_doc() {
        let obs = Obs::enabled();
        obs.phase_mark("local-sort", 1.0);
        obs.counter_add("c", 3);
        obs.hist_record("h", 7);
        let cluster = ClusterObs {
            nodes: vec![obs.finish(0, "n0".to_string())],
            cluster: Default::default(),
        };
        let v = parse(&metrics_json(&cluster)).expect("parses");
        assert_eq!(
            v.get("schema").unwrap().as_str(),
            Some("hetsort-metrics-v1")
        );
        let nodes = match v.get("nodes").unwrap() {
            Json::Arr(items) => items,
            other => panic!("nodes must be an array, got {other:?}"),
        };
        assert_eq!(nodes.len(), 1);
    }

    #[test]
    fn metrics_json_key_order_is_insertion_independent() {
        // Regression: --metrics-out output must diff cleanly across runs,
        // so registry iteration (and therefore the serialized key order)
        // must be sorted regardless of the order metrics were recorded in.
        let forward = Obs::enabled();
        for name in ["alpha", "mid", "zeta"] {
            forward.counter_add(name, 1);
            forward.gauge_set(name, 2.0);
            forward.hist_record(name, 3);
        }
        let backward = Obs::enabled();
        for name in ["zeta", "mid", "alpha"] {
            backward.counter_add(name, 1);
            backward.gauge_set(name, 2.0);
            backward.hist_record(name, 3);
        }
        let doc_f = metrics_json(&ClusterObs {
            nodes: vec![forward.finish(0, "n0".to_string())],
            cluster: Default::default(),
        });
        let doc_b = metrics_json(&ClusterObs {
            nodes: vec![backward.finish(0, "n0".to_string())],
            cluster: Default::default(),
        });
        assert_eq!(doc_f, doc_b, "serialized metrics depend on insertion order");
        let alpha = doc_f.find("\"alpha\"").unwrap();
        let zeta = doc_f.find("\"zeta\"").unwrap();
        assert!(alpha < zeta, "keys must serialize in sorted order");
    }

    #[test]
    fn metrics_json_round_trips_through_validator() {
        let obs = Obs::enabled();
        obs.phase_mark("local-sort", 2.0);
        obs.phase_mark("merge", 5.0);
        obs.counter_add("io.blocks_read", 12);
        obs.gauge_set("time.cpu_secs", 1.5);
        obs.hist_record("net.msg_bytes", 4096);
        let node = obs.finish(0, "node0 (perf 1)".to_string());
        let cluster = ClusterObs {
            nodes: vec![node, NodeObs::default()],
            cluster: {
                let mut m = crate::metrics::MetricsSnapshot::default();
                m.gauge_set("skew.expansion", 1.1);
                m
            },
        };
        let doc = metrics_json(&cluster);
        validate(&doc).expect("metrics doc must be valid JSON");
        assert!(doc.contains("\"schema\":\"hetsort-metrics-v1\""));
        assert!(doc.contains("\"name\":\"local-sort\""));
        assert!(doc.contains("\"skew.expansion\":1.1"));
        assert!(doc.contains("\"io.blocks_read\":12"));
    }
}
