//! Hand-rolled JSON: a small writer and a strict recursive-descent
//! validator. The workspace is deliberately dependency-free, so exporters
//! build strings directly; the validator backs the differential and CI
//! schema tests without pulling in a parser crate.

use crate::report::ClusterObs;

/// Escapes a string for embedding inside JSON double quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number. JSON has no NaN/Infinity, so
/// non-finite values degrade to `0` rather than emitting invalid output.
pub fn num(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    // `{:?}` for f64 is the shortest representation that round-trips and
    // always contains a '.' or exponent, which keeps it a valid number.
    format!("{v:?}")
}

/// Validates that `s` is a single well-formed JSON value. Returns a
/// byte-offset error message on failure. Strict: trailing garbage,
/// trailing commas, unquoted keys and non-finite numbers all fail.
pub fn validate(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(b, &mut pos);
    parse_value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        None => Err(format!("unexpected end of input at byte {pos}", pos = *pos)),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_lit(b, pos, "true"),
        Some(b'f') => parse_lit(b, pos, "false"),
        Some(b'n') => parse_lit(b, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte {c:?} at {pos}", pos = *pos)),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        if b.len() < *pos + 5
                            || !b[*pos + 1..*pos + 5].iter().all(u8::is_ascii_hexdigit)
                        {
                            return Err(format!("bad \\u escape at byte {pos}", pos = *pos));
                        }
                        *pos += 5;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
            }
            c if c < 0x20 => {
                return Err(format!("raw control byte in string at {pos}", pos = *pos))
            }
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let int_digits = eat_digits(b, pos);
    if int_digits == 0 {
        return Err(format!("number missing digits at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if eat_digits(b, pos) == 0 {
            return Err(format!("number missing fraction digits at byte {start}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if eat_digits(b, pos) == 0 {
            return Err(format!("number missing exponent digits at byte {start}"));
        }
    }
    Ok(())
}

fn eat_digits(b: &[u8], pos: &mut usize) -> usize {
    let start = *pos;
    while *pos < b.len() && b[*pos].is_ascii_digit() {
        *pos += 1;
    }
    *pos - start
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => {
                *pos += 1;
                skip_ws(b, pos);
            }
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected string key at byte {pos}", pos = *pos));
        }
        parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

fn snapshot_json(m: &crate::metrics::MetricsSnapshot, out: &mut String) {
    out.push_str("{\"counters\":{");
    for (i, (k, v)) in m.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{}", escape(k), v));
    }
    out.push_str("},\"gauges\":{");
    for (i, (k, v)) in m.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{}", escape(k), num(*v)));
    }
    out.push_str("},\"histograms\":{");
    for (i, (k, h)) in m.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\"buckets\":[",
            escape(k),
            h.count,
            h.sum,
            h.min,
            h.max,
            num(h.mean()),
        ));
        for (j, (le, c)) in h.buckets.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"le\":{le},\"count\":{c}}}"));
        }
        out.push_str("]}");
    }
    out.push_str("}}");
}

/// Serialises a [`ClusterObs`] as the `hetsort-metrics-v1` document:
/// per-node counters/gauges/histograms and phase durations plus the
/// cluster-level registry (skew gauges). Validated in CI against
/// `schemas/validate_metrics.py`.
pub fn metrics_json(obs: &ClusterObs) -> String {
    let mut out = String::new();
    out.push_str("{\"schema\":\"hetsort-metrics-v1\",\"nodes\":[");
    for (i, node) in obs.nodes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"node\":{},\"label\":\"{}\",\"phases\":[",
            node.node,
            escape(&node.label)
        ));
        for (j, p) in node.phases().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"virt_secs\":{},\"wall_secs\":{}}}",
                escape(p.name),
                num(p.virt_secs()),
                num(p.wall_secs()),
            ));
        }
        out.push_str("],\"metrics\":");
        snapshot_json(&node.metrics, &mut out);
        out.push('}');
    }
    out.push_str("],\"cluster\":");
    snapshot_json(&obs.cluster, &mut out);
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::NodeObs;
    use crate::span::Obs;

    #[test]
    fn escape_covers_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn num_is_always_valid_json() {
        for v in [0.0, -1.5, 1e30, 123456.789, f64::NAN, f64::INFINITY] {
            let n = num(v);
            assert!(validate(&n).is_ok(), "{n}");
        }
    }

    #[test]
    fn validator_accepts_and_rejects() {
        assert!(validate(r#"{"a":[1,2.5,-3e2],"b":"x\n","c":null,"d":true}"#).is_ok());
        assert!(validate("").is_err());
        assert!(validate("{").is_err());
        assert!(validate("[1,]").is_err());
        assert!(validate("{'a':1}").is_err());
        assert!(validate("{\"a\":1} extra").is_err());
        assert!(validate("1 2").is_err());
    }

    #[test]
    fn metrics_json_round_trips_through_validator() {
        let obs = Obs::enabled();
        obs.phase_mark("local-sort", 2.0);
        obs.phase_mark("merge", 5.0);
        obs.counter_add("io.blocks_read", 12);
        obs.gauge_set("time.cpu_secs", 1.5);
        obs.hist_record("net.msg_bytes", 4096);
        let node = obs.finish(0, "node0 (perf 1)".to_string());
        let cluster = ClusterObs {
            nodes: vec![node, NodeObs::default()],
            cluster: {
                let mut m = crate::metrics::MetricsSnapshot::default();
                m.gauge_set("skew.expansion", 1.1);
                m
            },
        };
        let doc = metrics_json(&cluster);
        validate(&doc).expect("metrics doc must be valid JSON");
        assert!(doc.contains("\"schema\":\"hetsort-metrics-v1\""));
        assert!(doc.contains("\"name\":\"local-sort\""));
        assert!(doc.contains("\"skew.expansion\":1.1"));
        assert!(doc.contains("\"io.blocks_read\":12"));
    }
}
