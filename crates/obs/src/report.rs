//! Finished, `Send` observability data: per-node and cluster-wide.

use crate::metrics::MetricsSnapshot;
use crate::span::{SpanKind, SpanRecord};

/// Everything one node recorded: its spans and its metrics registry
/// snapshot. Plain data — safe to ship across the node-thread join.
#[derive(Debug, Clone, Default)]
pub struct NodeObs {
    /// Node rank.
    pub node: usize,
    /// Human-readable label ("node2 (perf 4)"), used as the Chrome
    /// process name.
    pub label: String,
    /// All finished spans, in recording order.
    pub spans: Vec<SpanRecord>,
    /// The node's metric registry at finish time.
    pub metrics: MetricsSnapshot,
}

impl NodeObs {
    /// The node's phase spans, in recording order.
    pub fn phases(&self) -> impl Iterator<Item = &SpanRecord> {
        self.spans.iter().filter(|s| s.kind == SpanKind::Phase)
    }

    /// Virtual end of the last phase span (0 when none).
    pub fn virt_end(&self) -> f64 {
        self.phases()
            .filter_map(|s| s.virt_end)
            .fold(0.0f64, f64::max)
    }
}

/// All nodes' observability data plus cluster-level metrics (skew gauges
/// and other cross-node derivations injected by the trial runner).
#[derive(Debug, Clone, Default)]
pub struct ClusterObs {
    /// Per-node data, indexed by rank.
    pub nodes: Vec<NodeObs>,
    /// Cluster-wide metrics (e.g. `skew.expansion`, `skew.bound`).
    pub cluster: MetricsSnapshot,
}

impl ClusterObs {
    /// Largest virtual phase end across all nodes (the traced makespan).
    pub fn virt_end(&self) -> f64 {
        self.nodes
            .iter()
            .map(|n| n.virt_end())
            .fold(0.0f64, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Obs;

    #[test]
    fn phase_accessors() {
        let obs = Obs::enabled();
        obs.phase_mark("a", 2.0);
        obs.record_span("t", SpanKind::Task, 0.0, 0.1, None);
        obs.phase_mark("b", 5.0);
        let node = obs.finish(1, "node1".to_string());
        let names: Vec<_> = node.phases().map(|s| s.name).collect();
        assert_eq!(names, vec!["a", "b"]);
        assert_eq!(node.virt_end(), 5.0);

        let cluster = ClusterObs {
            nodes: vec![NodeObs::default(), node],
            cluster: Default::default(),
        };
        assert_eq!(cluster.virt_end(), 5.0);
    }
}
