//! Finished, `Send` observability data: per-node and cluster-wide.

use crate::critpath::PhaseCost;
use crate::metrics::MetricsSnapshot;
use crate::span::{SpanKind, SpanRecord};

/// Everything one node recorded: its spans and its metrics registry
/// snapshot. Plain data — safe to ship across the node-thread join.
#[derive(Debug, Clone, Default)]
pub struct NodeObs {
    /// Node rank.
    pub node: usize,
    /// Human-readable label ("node2 (perf 4)"), used as the Chrome
    /// process name.
    pub label: String,
    /// All finished spans, in recording order.
    pub spans: Vec<SpanRecord>,
    /// The node's metric registry at finish time.
    pub metrics: MetricsSnapshot,
    /// Per-phase resource-cost records (empty unless the cluster runtime
    /// recorded them; see [`crate::critpath`]).
    pub phase_costs: Vec<PhaseCost>,
}

impl NodeObs {
    /// The node's phase spans, in recording order.
    pub fn phases(&self) -> impl Iterator<Item = &SpanRecord> {
        self.spans.iter().filter(|s| s.kind == SpanKind::Phase)
    }

    /// Virtual end of the last phase span (0 when none).
    pub fn virt_end(&self) -> f64 {
        self.phases()
            .filter_map(|s| s.virt_end)
            .fold(0.0f64, f64::max)
    }
}

/// All nodes' observability data plus cluster-level metrics (skew gauges
/// and other cross-node derivations injected by the trial runner).
#[derive(Debug, Clone, Default)]
pub struct ClusterObs {
    /// Per-node data, indexed by rank.
    pub nodes: Vec<NodeObs>,
    /// Cluster-wide metrics (e.g. `skew.expansion`, `skew.bound`).
    pub cluster: MetricsSnapshot,
}

impl ClusterObs {
    /// Largest virtual phase end across all nodes (the traced makespan).
    pub fn virt_end(&self) -> f64 {
        self.nodes
            .iter()
            .map(|n| n.virt_end())
            .fold(0.0f64, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Obs;

    #[test]
    fn phase_accessors() {
        let obs = Obs::enabled();
        obs.phase_mark("a", 2.0);
        obs.record_span("t", SpanKind::Task, 0.0, 0.1, None);
        obs.phase_mark("b", 5.0);
        let node = obs.finish(1, "node1".to_string());
        let names: Vec<_> = node.phases().map(|s| s.name).collect();
        assert_eq!(names, vec!["a", "b"]);
        assert_eq!(node.virt_end(), 5.0);

        let cluster = ClusterObs {
            nodes: vec![NodeObs::default(), node],
            cluster: Default::default(),
        };
        assert_eq!(cluster.virt_end(), 5.0);
    }

    #[test]
    fn empty_span_set_yields_zero_virt_end() {
        let node = Obs::enabled().finish(0, "node0".to_string());
        assert_eq!(node.phases().count(), 0);
        assert_eq!(node.virt_end(), 0.0);
        assert_eq!(ClusterObs::default().virt_end(), 0.0);
    }

    #[test]
    fn zero_duration_phase_is_kept_with_zero_span() {
        let obs = Obs::enabled();
        obs.phase_mark("local-sort", 1.0);
        obs.phase_mark("pivots", 1.0); // same instant: zero duration
        let node = obs.finish(0, "node0".to_string());
        let pivots = node.phases().find(|s| s.name == "pivots").unwrap();
        assert_eq!(pivots.virt_secs(), 0.0);
        assert_eq!(node.virt_end(), 1.0);
    }

    #[test]
    fn task_span_ending_after_its_parent_phase_does_not_leak() {
        // A straggling worker task can outlive the wall window of the
        // phase that spawned it; only phase spans define the virtual
        // timeline, so the overhang must not move virt_end.
        let obs = Obs::enabled();
        obs.phase_mark("local-sort", 1.0);
        obs.record_span("chunk-sort-0", SpanKind::Task, 0.5, 50.0, None);
        obs.phase_mark("merge", 2.0);
        let node = obs.finish(0, "node0".to_string());
        assert_eq!(node.virt_end(), 2.0);
        assert_eq!(node.phases().count(), 2);
        let task = node
            .spans
            .iter()
            .find(|s| s.name == "chunk-sort-0")
            .unwrap();
        assert!(task.virt_end.is_none(), "task spans carry wall time only");
    }
}
