//! What-if replay of the critical path.
//!
//! Given an extracted [`CritPath`], estimate the makespan with one blame
//! category made free: every path slice keeps its other categories and
//! drops the zeroed one. This is the *first-order* estimate — it assumes
//! the path itself would not reroute through a different node once the
//! category is free — so it is an optimistic bound, the same way "if disk
//! were free" reasoning is in the paper's phase tables. It ranks
//! optimization targets; benchmarks confirm them.
//!
//! By construction, zeroing *no* category reproduces the makespan exactly
//! (blame tiles the path), which the differential suite pins.

use crate::critpath::{Blame, CritPath, BLAME_CATEGORIES};

/// One row of the what-if ranking.
#[derive(Debug, Clone)]
pub struct WhatIf {
    /// Category zeroed out.
    pub category: &'static str,
    /// Seconds of the path attributed to the category.
    pub path_secs: f64,
    /// Estimated makespan with the category free.
    pub estimate_secs: f64,
    /// `makespan / estimate` — how much faster the run would be.
    pub speedup: f64,
}

/// Estimated makespan with `category` zeroed; `None` zeroes nothing and
/// returns the makespan exactly. Unknown category names also zero nothing.
pub fn estimate_without(path: &CritPath, category: Option<&str>) -> f64 {
    let removed = category.and_then(|c| path.blame.get(c)).unwrap_or(0.0);
    (path.makespan - removed).max(0.0)
}

/// The full what-if ranking, best (largest speedup) first. Ties keep the
/// fixed category order, so output is deterministic.
pub fn whatif_table(path: &CritPath) -> Vec<WhatIf> {
    let mut rows: Vec<WhatIf> = BLAME_CATEGORIES
        .iter()
        .map(|&cat| {
            let secs = path.blame.get(cat).unwrap_or(0.0);
            let estimate = estimate_without(path, Some(cat));
            WhatIf {
                category: cat,
                path_secs: secs,
                estimate_secs: estimate,
                speedup: if estimate > 0.0 {
                    path.makespan / estimate
                } else if path.makespan > 0.0 {
                    f64::INFINITY
                } else {
                    1.0
                },
            }
        })
        .collect();
    rows.sort_by(|a, b| {
        b.path_secs
            .partial_cmp(&a.path_secs)
            .expect("finite blame seconds")
    });
    rows
}

/// Renders the ranking as an aligned text table.
pub fn render_whatif(path: &CritPath) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "critical path: {:.6}s over {} segments (blame sum err {:.3e})\n",
        path.makespan,
        path.segments.len(),
        path.blame_sum_rel_err()
    ));
    out.push_str("what-if (category made free, first-order estimate):\n");
    out.push_str(&format!(
        "  {:<15} {:>12} {:>12} {:>9}\n",
        "category", "path secs", "est. secs", "speedup"
    ));
    for row in whatif_table(path) {
        out.push_str(&format!(
            "  {:<15} {:>12.6} {:>12.6} {:>8.2}x\n",
            row.category, row.path_secs, row.estimate_secs, row.speedup
        ));
    }
    out
}

/// Exports the path, blame totals and what-if ranking as
/// `hetsort-critpath-v1` JSON.
pub fn critpath_json(path: &CritPath) -> String {
    use crate::json::num;
    let blame_obj = |b: &Blame| {
        let fields: Vec<String> = b
            .parts()
            .iter()
            .map(|(n, v)| format!("\"{n}\": {}", num(*v)))
            .collect();
        format!("{{{}}}", fields.join(", "))
    };
    let whatif: Vec<String> = whatif_table(path)
        .iter()
        .map(|r| {
            format!(
                "    {{\"category\": \"{}\", \"path_secs\": {}, \"estimate_secs\": {}, \
                 \"speedup\": {}}}",
                r.category,
                num(r.path_secs),
                num(r.estimate_secs),
                num(if r.speedup.is_finite() {
                    r.speedup
                } else {
                    0.0
                })
            )
        })
        .collect();
    let segments: Vec<String> = path
        .segments
        .iter()
        .map(|s| {
            format!(
                "    {{\"node\": {}, \"phase\": \"{}\", \"start\": {}, \"end\": {}, \
                 \"blame\": {}}}",
                s.node,
                s.phase,
                num(s.start),
                num(s.end),
                blame_obj(&s.blame)
            )
        })
        .collect();
    format!(
        "{{\n  \"schema\": \"hetsort-critpath-v1\",\n  \"makespan_secs\": {},\n  \
         \"blame\": {},\n  \"blame_sum_rel_err\": {},\n  \"whatif\": [\n{}\n  ],\n  \
         \"segments\": [\n{}\n  ]\n}}\n",
        num(path.makespan),
        blame_obj(&path.blame),
        num(path.blame_sum_rel_err()),
        whatif.join(",\n"),
        segments.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::critpath::Segment;

    fn path() -> CritPath {
        let blame = Blame {
            cpu: 6.0,
            io_read: 2.0,
            io_write: 1.0,
            net_transfer: 1.0,
            ..Blame::default()
        };
        CritPath {
            makespan: 10.0,
            blame,
            segments: vec![Segment {
                node: 0,
                phase: "merge",
                start: 0.0,
                end: 10.0,
                blame,
            }],
        }
    }

    #[test]
    fn no_category_reproduces_makespan_exactly() {
        let p = path();
        assert_eq!(estimate_without(&p, None), 10.0);
        assert_eq!(estimate_without(&p, Some("not-a-category")), 10.0);
    }

    #[test]
    fn zeroing_cpu_drops_its_share() {
        let p = path();
        assert!((estimate_without(&p, Some("cpu")) - 4.0).abs() < 1e-12);
        assert!((estimate_without(&p, Some("io-read")) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn table_is_ranked_by_path_share() {
        let p = path();
        let rows = whatif_table(&p);
        assert_eq!(rows.len(), 7);
        assert_eq!(rows[0].category, "cpu");
        assert!((rows[0].speedup - 2.5).abs() < 1e-12);
        for pair in rows.windows(2) {
            assert!(pair[0].path_secs >= pair[1].path_secs);
        }
    }

    #[test]
    fn json_is_valid_and_tagged() {
        let p = path();
        let doc = critpath_json(&p);
        crate::json::validate(&doc).expect("valid json");
        assert!(doc.contains("hetsort-critpath-v1"));
        assert!(doc.contains("\"whatif\""));
        assert!(render_whatif(&p).contains("cpu"));
    }
}
