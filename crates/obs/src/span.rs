//! The tracer handle and its span records.
//!
//! An [`Obs`] is either *disabled* (every call is a branch on `None`) or
//! *enabled*, in which case it owns a recorder behind `Rc<RefCell<…>>` —
//! a handle is cheap to clone and deliberately **not** `Send`: each
//! simulated node records on its own thread, and the finished, `Send`
//! data is extracted with [`Obs::finish`].
//!
//! Recording only ever *reads* the virtual times it is handed; it never
//! syncs I/O, draws jitter or otherwise perturbs the simulation. This is
//! the invariant behind the tracing-on/off differential guarantee.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Instant;

use crate::critpath::PhaseCost;
use crate::metrics::Metrics;
use crate::report::NodeObs;

/// What a span represents; exported as the Chrome event category.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// An Algorithm-1 phase, delimited by consecutive phase marks. Carries
    /// both virtual and wall time.
    Phase,
    /// A communication collective (gather, broadcast, all-to-all, barrier).
    /// Carries both virtual and wall time.
    Collective,
    /// An inner library stage (run formation, a merge pass). Wall time
    /// only; the Chrome exporter rescales it into the enclosing phase's
    /// virtual window.
    Task,
}

impl SpanKind {
    /// Lower-case label used as the Chrome `cat` field.
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Phase => "phase",
            SpanKind::Collective => "collective",
            SpanKind::Task => "task",
        }
    }
}

/// One finished span. Wall times are seconds since the handle's epoch;
/// virtual times are simulated seconds (absent for [`SpanKind::Task`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span name (phase names match the paper's Algorithm 1 steps).
    pub name: &'static str,
    /// What the span represents.
    pub kind: SpanKind,
    /// Wall-clock start, seconds since the tracer epoch.
    pub wall_start: f64,
    /// Wall-clock end, seconds since the tracer epoch.
    pub wall_end: f64,
    /// Virtual start, simulated seconds (if known).
    pub virt_start: Option<f64>,
    /// Virtual end, simulated seconds (if known).
    pub virt_end: Option<f64>,
}

impl SpanRecord {
    /// Whether both virtual endpoints are known.
    pub fn has_virtual(&self) -> bool {
        self.virt_start.is_some() && self.virt_end.is_some()
    }

    /// Whether `other` falls entirely inside this span's wall window.
    pub fn contains_wall(&self, other: &SpanRecord) -> bool {
        self.wall_start <= other.wall_start && other.wall_end <= self.wall_end
    }

    /// Wall duration in seconds.
    pub fn wall_secs(&self) -> f64 {
        (self.wall_end - self.wall_start).max(0.0)
    }

    /// Virtual duration in seconds (0 when unknown).
    pub fn virt_secs(&self) -> f64 {
        match (self.virt_start, self.virt_end) {
            (Some(a), Some(b)) => (b - a).max(0.0),
            _ => 0.0,
        }
    }
}

struct Inner {
    epoch: Instant,
    /// Phase cursor: the wall/virtual stamp of the previous phase mark (or
    /// of the last reset). A mark records the span cursor → now.
    cursor_wall: f64,
    cursor_virt: f64,
    spans: Vec<SpanRecord>,
    metrics: Metrics,
    /// Per-phase resource cost records for the critical-path analyzer,
    /// pushed by the cluster runtime at each phase mark.
    phase_costs: Vec<PhaseCost>,
}

/// A tracing handle: a no-op when disabled, a per-node recorder when
/// enabled. Cheap to clone (shared recorder); not `Send` by design.
#[derive(Clone, Default)]
pub struct Obs {
    inner: Option<Rc<RefCell<Inner>>>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Obs {
    /// A no-op handle: every method is a branch and a return.
    pub fn disabled() -> Obs {
        Obs { inner: None }
    }

    /// A recording handle whose wall epoch is *now*.
    pub fn enabled() -> Obs {
        Obs {
            inner: Some(Rc::new(RefCell::new(Inner {
                epoch: Instant::now(),
                cursor_wall: 0.0,
                cursor_virt: 0.0,
                spans: Vec::new(),
                metrics: Metrics::default(),
                phase_costs: Vec::new(),
            }))),
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Wall seconds since the epoch (0 when disabled).
    pub fn elapsed(&self) -> f64 {
        match &self.inner {
            Some(rc) => rc.borrow().epoch.elapsed().as_secs_f64(),
            None => 0.0,
        }
    }

    /// Records the phase that just ended: a [`SpanKind::Phase`] span from
    /// the previous mark (or reset) to now, with `virt_now` as its virtual
    /// end. Call *after* the caller has synced its clock for the boundary,
    /// passing the same stamp it reports elsewhere.
    pub fn phase_mark(&self, name: &'static str, virt_now: f64) {
        if let Some(rc) = &self.inner {
            let mut inner = rc.borrow_mut();
            let wall_now = inner.epoch.elapsed().as_secs_f64();
            let (w0, v0) = (inner.cursor_wall, inner.cursor_virt);
            inner.spans.push(SpanRecord {
                name,
                kind: SpanKind::Phase,
                wall_start: w0,
                wall_end: wall_now,
                virt_start: Some(v0),
                virt_end: Some(virt_now),
            });
            inner.cursor_wall = wall_now;
            inner.cursor_virt = virt_now;
        }
    }

    /// Records a finished span with explicit wall endpoints and optional
    /// virtual endpoints.
    pub fn record_span(
        &self,
        name: &'static str,
        kind: SpanKind,
        wall_start: f64,
        wall_end: f64,
        virt: Option<(f64, f64)>,
    ) {
        if let Some(rc) = &self.inner {
            rc.borrow_mut().spans.push(SpanRecord {
                name,
                kind,
                wall_start,
                wall_end,
                virt_start: virt.map(|(a, _)| a),
                virt_end: virt.map(|(_, b)| b),
            });
        }
    }

    /// Drops everything recorded so far and re-arms the phase cursor at the
    /// current wall time and virtual time zero. Mirrors the cluster's
    /// `reset_timing` (setup work is excluded from the traced region).
    pub fn reset(&self) {
        if let Some(rc) = &self.inner {
            let mut inner = rc.borrow_mut();
            inner.cursor_wall = inner.epoch.elapsed().as_secs_f64();
            inner.cursor_virt = 0.0;
            inner.spans.clear();
            inner.metrics = Metrics::default();
            inner.phase_costs.clear();
        }
    }

    /// Records one phase's resource-cost breakdown (see [`PhaseCost`]).
    /// The cluster runtime pushes one record per phase mark; pure data, no
    /// clock interaction.
    pub fn phase_cost(&self, cost: PhaseCost) {
        if let Some(rc) = &self.inner {
            rc.borrow_mut().phase_costs.push(cost);
        }
    }

    /// Adds to a named counter.
    pub fn counter_add(&self, name: &'static str, v: u64) {
        if let Some(rc) = &self.inner {
            rc.borrow_mut().metrics.counter_add(name, v);
        }
    }

    /// Sets a named gauge.
    pub fn gauge_set(&self, name: &'static str, v: f64) {
        if let Some(rc) = &self.inner {
            rc.borrow_mut().metrics.gauge_set(name, v);
        }
    }

    /// Records a value into a named histogram.
    pub fn hist_record(&self, name: &'static str, v: u64) {
        if let Some(rc) = &self.inner {
            rc.borrow_mut().metrics.hist_record(name, v);
        }
    }

    /// Extracts the finished, `Send` per-node data. An empty [`NodeObs`]
    /// when disabled.
    pub fn finish(&self, node: usize, label: String) -> NodeObs {
        match &self.inner {
            None => NodeObs {
                node,
                label,
                spans: Vec::new(),
                metrics: Default::default(),
                phase_costs: Vec::new(),
            },
            Some(rc) => {
                let inner = rc.borrow();
                NodeObs {
                    node,
                    label,
                    spans: inner.spans.clone(),
                    metrics: inner.metrics.snapshot(),
                    phase_costs: inner.phase_costs.clone(),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let obs = Obs::disabled();
        obs.phase_mark("p", 1.0);
        obs.record_span("s", SpanKind::Task, 0.0, 1.0, None);
        obs.counter_add("c", 1);
        obs.hist_record("h", 1);
        obs.gauge_set("g", 1.0);
        obs.reset();
        assert_eq!(obs.elapsed(), 0.0);
        let node = obs.finish(3, "label".to_string());
        assert_eq!(node.node, 3);
        assert!(node.spans.is_empty());
        assert!(node.metrics.counters.is_empty());
    }

    #[test]
    fn phase_marks_form_contiguous_spans() {
        let obs = Obs::enabled();
        obs.phase_mark("first", 2.0);
        obs.phase_mark("second", 5.0);
        let node = obs.finish(0, String::new());
        assert_eq!(node.spans.len(), 2);
        let (a, b) = (&node.spans[0], &node.spans[1]);
        assert_eq!(a.name, "first");
        assert_eq!(a.virt_start, Some(0.0));
        assert_eq!(a.virt_end, Some(2.0));
        assert_eq!(b.virt_start, Some(2.0));
        assert_eq!(b.virt_end, Some(5.0));
        assert_eq!(a.wall_end, b.wall_start, "phases tile the wall axis");
        assert!(a.kind == SpanKind::Phase && b.kind == SpanKind::Phase);
        assert!((a.virt_secs() - 2.0).abs() < 1e-12);
        assert!((b.virt_secs() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn reset_drops_history_and_rebases() {
        let obs = Obs::enabled();
        obs.phase_mark("setup", 9.0);
        obs.counter_add("c", 4);
        obs.reset();
        obs.phase_mark("real", 1.5);
        let node = obs.finish(0, String::new());
        assert_eq!(node.spans.len(), 1);
        assert_eq!(node.spans[0].name, "real");
        assert_eq!(node.spans[0].virt_start, Some(0.0), "virtual axis rebased");
        assert!(node.metrics.counters.is_empty());
    }

    #[test]
    fn span_geometry_helpers() {
        let outer = SpanRecord {
            name: "outer",
            kind: SpanKind::Phase,
            wall_start: 0.0,
            wall_end: 10.0,
            virt_start: Some(0.0),
            virt_end: Some(100.0),
        };
        let inner = SpanRecord {
            name: "inner",
            kind: SpanKind::Task,
            wall_start: 2.0,
            wall_end: 3.0,
            virt_start: None,
            virt_end: None,
        };
        assert!(outer.has_virtual() && !inner.has_virtual());
        assert!(outer.contains_wall(&inner) && !inner.contains_wall(&outer));
        assert_eq!(inner.wall_secs(), 1.0);
        assert_eq!(inner.virt_secs(), 0.0);
        assert_eq!(outer.virt_secs(), 100.0);
    }

    #[test]
    fn clones_share_the_recorder() {
        let a = Obs::enabled();
        let b = a.clone();
        b.counter_add("shared", 7);
        assert_eq!(
            a.finish(0, String::new()).metrics.counters.get("shared"),
            Some(&7)
        );
    }
}
