//! Critical-path extraction with blame attribution.
//!
//! The paper's whole argument is about *where heterogeneous-cluster time
//! goes* — slow CPUs vs. disk vs. communication. This module answers that
//! question automatically from a trace: the cluster runtime records one
//! [`PhaseCost`] per phase per node (resource-time deltas straight off the
//! Charger's exact accounting identity), and [`critical_path`] walks the
//! cross-node causal chain backwards from the makespan, attributing every
//! second on the path to one of seven blame categories.
//!
//! # The accounting identity
//!
//! A node's clock only ever advances through four channels, so for any
//! phase window the Charger guarantees **exactly**
//!
//! ```text
//! duration = cpu + io − overlap_saved + wait
//! ```
//!
//! where `io = io_read + io_write` and `wait` further splits into message
//! transfer, collective straggling and credit stalls. [`PhaseCost::blame`]
//! converts that identity into the seven categories and renormalizes so
//! blame sums to the phase duration *exactly* — which makes the whole-path
//! invariant (blame sums to the makespan within 1%) hold by construction.
//!
//! # The causal chain
//!
//! Edges of the DAG are (a) intra-node phase ordering (a phase cannot
//! start before its predecessor ends), and (b) message send→recv pairs:
//! when a phase's largest clock jump came from waiting on a message
//! (the Charger's dominant-wait record), the receiver's timeline before
//! that arrival was *not* load-bearing — the sender's timeline up to the
//! departure instant was. The backward walk follows exactly those edges,
//! inserting a pure `net-transfer` segment for the wire time, so the
//! extracted segments tile `[0, makespan]` with no gaps or overlaps.

use crate::report::ClusterObs;

/// Small tolerance for the backward walk's time comparisons (seconds).
const EPS: f64 = 1e-12;

/// One phase's resource-time breakdown on one node, recorded by the
/// cluster runtime at the phase mark. All fields are virtual seconds of
/// *delta* within the phase, except `end` (the phase's virtual end) and
/// the `dominant_*` provenance of the largest message wait.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseCost {
    /// Phase name (matches the phase span vocabulary).
    pub name: &'static str,
    /// Virtual end of the phase; its start is the previous record's end
    /// (or 0 for the first phase).
    pub end: f64,
    /// Charged CPU seconds in the phase.
    pub cpu: f64,
    /// Read share of charged I/O seconds.
    pub io_read: f64,
    /// Write share of charged I/O seconds.
    pub io_write: f64,
    /// Share of the I/O charge attributable to shared-disk queueing
    /// (already included in `io_read + io_write`).
    pub queue_wait: f64,
    /// Seconds hidden by CPU/I/O overlap (`cpu + io − overlap_saved`
    /// is what actually hit the clock).
    pub overlap_saved: f64,
    /// Total message-wait seconds (Lamport merge jumps).
    pub wait: f64,
    /// Share of `wait` spent inside collectives (stragglers at barriers,
    /// gathers, broadcasts).
    pub coll_wait: f64,
    /// Share of `wait` spent blocked on flow-control credits in the
    /// streaming exchange-merge.
    pub credit_wait: f64,
    /// Sender rank of the largest single message wait in the phase
    /// (−1 when no arrival jumped the clock).
    pub dominant_from: i64,
    /// Virtual time that message departed the sender.
    pub dominant_depart: f64,
    /// Virtual time it arrived (the clock's value after the jump).
    pub dominant_arrival: f64,
}

/// Seconds attributed to each blame category. Categories are disjoint and
/// (for a [`PhaseCost::blame`] or a [`CritPath::blame`]) sum exactly to
/// the window they describe.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Blame {
    /// Computation (sorting, merging, message packing).
    pub cpu: f64,
    /// Disk reads, net of queueing.
    pub io_read: f64,
    /// Disk writes, net of queueing.
    pub io_write: f64,
    /// Shared-disk queueing under concurrent request streams.
    pub queue_wait: f64,
    /// Time on the wire (message transfer + latency).
    pub net_transfer: f64,
    /// Blocked on streaming-merge flow-control credits.
    pub credit_stall: f64,
    /// Waiting for slower peers at collectives.
    pub idle_straggler: f64,
}

/// Category names, in the fixed reporting order.
pub const BLAME_CATEGORIES: [&str; 7] = [
    "cpu",
    "io-read",
    "io-write",
    "queue-wait",
    "net-transfer",
    "credit-stall",
    "idle-straggler",
];

impl Blame {
    /// The categories as `(name, seconds)` pairs in reporting order.
    pub fn parts(&self) -> [(&'static str, f64); 7] {
        [
            ("cpu", self.cpu),
            ("io-read", self.io_read),
            ("io-write", self.io_write),
            ("queue-wait", self.queue_wait),
            ("net-transfer", self.net_transfer),
            ("credit-stall", self.credit_stall),
            ("idle-straggler", self.idle_straggler),
        ]
    }

    /// Seconds in a category by name (`None` for an unknown name).
    pub fn get(&self, category: &str) -> Option<f64> {
        self.parts()
            .iter()
            .find(|(n, _)| *n == category)
            .map(|(_, v)| *v)
    }

    /// Sum over all categories.
    pub fn total(&self) -> f64 {
        self.parts().iter().map(|(_, v)| v).sum()
    }

    /// Adds `other` scaled by `k`.
    pub fn add_scaled(&mut self, other: &Blame, k: f64) {
        self.cpu += other.cpu * k;
        self.io_read += other.io_read * k;
        self.io_write += other.io_write * k;
        self.queue_wait += other.queue_wait * k;
        self.net_transfer += other.net_transfer * k;
        self.credit_stall += other.credit_stall * k;
        self.idle_straggler += other.idle_straggler * k;
    }

    /// Scales every category by `k` in place.
    fn scale(&mut self, k: f64) {
        self.cpu *= k;
        self.io_read *= k;
        self.io_write *= k;
        self.queue_wait *= k;
        self.net_transfer *= k;
        self.credit_stall *= k;
        self.idle_straggler *= k;
    }
}

impl PhaseCost {
    /// Attributes this phase's `duration` seconds to the seven categories.
    ///
    /// The effective (clock-visible) charge subtracts `overlap_saved` from
    /// the smaller of the CPU and I/O components (the hidden one under the
    /// `max(cpu, io)` overlap rule); the I/O side then splits into direct
    /// read/write transfer and queueing pro-rata, and the wait splits into
    /// credit stalls, collective straggling and residual wire time. The
    /// result is renormalized so the categories sum to `duration` exactly.
    pub fn blame(&self, duration: f64) -> Blame {
        let dur = duration.max(0.0);
        let io = self.io_read + self.io_write;
        let saved = self.overlap_saved.max(0.0);
        let (cpu_eff, io_eff) = if self.cpu <= io {
            ((self.cpu - saved).max(0.0), io)
        } else {
            (self.cpu, (io - saved).max(0.0))
        };
        let queue_eff = if io > 0.0 {
            (self.queue_wait * io_eff / io).clamp(0.0, io_eff)
        } else {
            0.0
        };
        let io_direct = io_eff - queue_eff;
        let (read_eff, write_eff) = if io > 0.0 {
            let r = io_direct * self.io_read / io;
            (r, io_direct - r)
        } else {
            (0.0, 0.0)
        };
        let wait = self.wait.max(0.0);
        let credit = self.credit_wait.clamp(0.0, wait);
        let straggler = self.coll_wait.clamp(0.0, wait - credit);
        let net = (wait - credit - straggler).max(0.0);

        let mut b = Blame {
            cpu: cpu_eff,
            io_read: read_eff,
            io_write: write_eff,
            queue_wait: queue_eff,
            net_transfer: net,
            credit_stall: credit,
            idle_straggler: straggler,
        };
        let sum = b.total();
        if sum > 0.0 {
            b.scale(dur / sum);
        } else {
            b.cpu = dur;
        }
        b
    }
}

/// One slice of the critical path: `[start, end]` virtual seconds spent on
/// `node`, attributed per category. `phase` is the phase the node was in
/// (or `"net-transfer"` for a pure wire segment between two nodes).
#[derive(Debug, Clone)]
pub struct Segment {
    /// Node whose timeline this slice lies on (the receiver, for wire
    /// segments).
    pub node: usize,
    /// Phase name, or `"net-transfer"`.
    pub phase: &'static str,
    /// Virtual start of the slice.
    pub start: f64,
    /// Virtual end of the slice.
    pub end: f64,
    /// Blame within the slice; sums to `end − start` exactly.
    pub blame: Blame,
}

/// The extracted end-to-end critical path.
#[derive(Debug, Clone)]
pub struct CritPath {
    /// Traced makespan (largest virtual phase end across nodes).
    pub makespan: f64,
    /// Total blame over the whole path; sums to `makespan` exactly
    /// (within float rounding).
    pub blame: Blame,
    /// Path slices in chronological order, tiling `[0, makespan]`.
    pub segments: Vec<Segment>,
}

impl CritPath {
    /// Relative error between the blame total and the makespan
    /// (0 when the makespan is 0).
    pub fn blame_sum_rel_err(&self) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        (self.blame.total() - self.makespan).abs() / self.makespan
    }
}

/// Phase geometry for one node: name plus `[start, end]` window.
struct PhaseWindow {
    cost: PhaseCost,
    start: f64,
}

fn windows(costs: &[PhaseCost]) -> Vec<PhaseWindow> {
    let mut out = Vec::with_capacity(costs.len());
    let mut start = 0.0;
    for c in costs {
        out.push(PhaseWindow { cost: *c, start });
        start = c.end.max(start);
    }
    out
}

/// Index of the phase on `node` whose window contains `t` (the latest
/// phase with `start < t`), or `None` when `t` precedes all work.
fn phase_at(wins: &[PhaseWindow], t: f64) -> Option<usize> {
    if t <= EPS {
        return None;
    }
    // Prefer the earliest phase whose end reaches t (skips zero-duration
    // phases stacked at the same instant); fall back to the last phase if
    // t sits past the node's recorded end.
    match wins.iter().position(|w| w.cost.end >= t - EPS) {
        Some(i) => Some(i),
        None if !wins.is_empty() => Some(wins.len() - 1),
        None => None,
    }
}

/// Extracts the end-to-end critical path from a traced run. `None` when no
/// node recorded phase costs (e.g. tracing was off or the runtime predates
/// the recorder).
pub fn critical_path(obs: &ClusterObs) -> Option<CritPath> {
    let per_node: Vec<Vec<PhaseWindow>> =
        obs.nodes.iter().map(|n| windows(&n.phase_costs)).collect();
    // The makespan owner: the node whose recorded phases end last.
    let (mut node, makespan) = per_node
        .iter()
        .enumerate()
        .filter_map(|(i, w)| w.last().map(|l| (i, l.cost.end)))
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite virtual times"))?;

    let mut segments: Vec<Segment> = Vec::new();
    let mut cur_t = makespan;
    let mut blame = Blame::default();
    // Bounded walk: each iteration either consumes a phase slice or jumps
    // across a message edge, both of which strictly decrease cur_t.
    for _ in 0..10_000 {
        if cur_t <= EPS {
            break;
        }
        let wins = &per_node[node];
        let Some(idx) = phase_at(wins, cur_t) else {
            break;
        };
        let w = &wins[idx];
        let seg_lo = w.start.min(cur_t);
        let dur = (w.cost.end - w.start).max(0.0);
        let phase_blame = w.cost.blame(dur);

        // A message edge is load-bearing when the phase's dominant wait
        // arrived strictly inside the remaining window and its departure
        // predates both the arrival and the window top: everything on this
        // node before the arrival was slack, the sender's timeline was not.
        let d_from = w.cost.dominant_from;
        let follow_edge = d_from >= 0
            && (d_from as usize) < per_node.len()
            && d_from as usize != node
            && !per_node[d_from as usize].is_empty()
            && w.cost.dominant_arrival > seg_lo + EPS
            && w.cost.dominant_arrival < cur_t - EPS
            && w.cost.dominant_depart < w.cost.dominant_arrival - EPS
            && w.cost.dominant_depart < cur_t - EPS;

        let slice_lo = if follow_edge {
            w.cost.dominant_arrival
        } else {
            seg_lo
        };
        let width = (cur_t - slice_lo).max(0.0);
        if width > 0.0 {
            let mut b = phase_blame;
            b.scale(if dur > 0.0 { width / dur } else { 0.0 });
            if dur <= 0.0 {
                b.cpu = width; // degenerate: phase recorded no duration
            }
            blame.add_scaled(&b, 1.0);
            segments.push(Segment {
                node,
                phase: w.cost.name,
                start: slice_lo,
                end: cur_t,
                blame: b,
            });
        }

        if follow_edge {
            // Pure wire segment from the sender's departure to the arrival.
            let depart = w.cost.dominant_depart.max(0.0);
            let wire = Blame {
                net_transfer: w.cost.dominant_arrival - depart,
                ..Blame::default()
            };
            blame.add_scaled(&wire, 1.0);
            segments.push(Segment {
                node,
                phase: "net-transfer",
                start: depart,
                end: w.cost.dominant_arrival,
                blame: wire,
            });
            node = d_from as usize;
            cur_t = depart;
        } else {
            cur_t = seg_lo;
        }
    }
    segments.reverse();
    Some(CritPath {
        makespan,
        blame,
        segments,
    })
}

/// Joins the planner's predicted merge time (the
/// `planner.predicted_merge_secs` gauge, recorded at the step-5 merge site)
/// against the measured `merge` phase span, per node. Returns an aligned
/// text table, or `None` when no node carries a prediction (streamed runs
/// fuse the merge and skip it). The residual convention is
/// `measured − predicted` (positive = the model was optimistic).
pub fn calibration_report(obs: &ClusterObs) -> Option<String> {
    let mut rows = Vec::new();
    for node in &obs.nodes {
        let Some(&predicted) = node.metrics.gauges.get("planner.predicted_merge_secs") else {
            continue;
        };
        let measured: f64 = node
            .phases()
            .filter(|p| p.name == "merge")
            .map(|p| p.virt_secs())
            .sum();
        if measured <= 0.0 {
            continue;
        }
        let residual = measured - predicted;
        rows.push((
            node.node,
            predicted,
            measured,
            residual,
            residual / measured,
        ));
    }
    if rows.is_empty() {
        return None;
    }
    let mut out = String::from("planner calibration (merge phase, virtual seconds):\n");
    out.push_str(&format!(
        "  {:<6} {:>12} {:>12} {:>12} {:>9}\n",
        "node", "predicted", "measured", "residual", "rel"
    ));
    let mut max_rel = 0.0f64;
    let mut sum_rel = 0.0f64;
    for (node, predicted, measured, residual, rel) in &rows {
        out.push_str(&format!(
            "  {:<6} {:>12.6} {:>12.6} {:>+12.6} {:>+8.1}%\n",
            node,
            predicted,
            measured,
            residual,
            rel * 100.0
        ));
        max_rel = max_rel.max(rel.abs());
        sum_rel += rel.abs();
    }
    out.push_str(&format!(
        "  mean |rel| {:.1}%, max |rel| {:.1}% over {} nodes\n",
        sum_rel / rows.len() as f64 * 100.0,
        max_rel * 100.0,
        rows.len()
    ));
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::NodeObs;

    fn cost(name: &'static str, end: f64, cpu: f64, io_r: f64, io_w: f64, wait: f64) -> PhaseCost {
        PhaseCost {
            name,
            end,
            cpu,
            io_read: io_r,
            io_write: io_w,
            wait,
            dominant_from: -1,
            ..PhaseCost::default()
        }
    }

    fn node_obs(node: usize, costs: Vec<PhaseCost>) -> NodeObs {
        NodeObs {
            node,
            phase_costs: costs,
            ..NodeObs::default()
        }
    }

    #[test]
    fn no_phase_costs_yields_none() {
        let obs = ClusterObs {
            nodes: vec![NodeObs::default()],
            cluster: Default::default(),
        };
        assert!(critical_path(&obs).is_none());
    }

    #[test]
    fn single_node_blame_tiles_makespan() {
        let obs = ClusterObs {
            nodes: vec![node_obs(
                0,
                vec![
                    cost("local-sort", 4.0, 3.0, 1.0, 0.0, 0.0),
                    cost("merge", 10.0, 2.0, 1.0, 3.0, 0.0),
                ],
            )],
            cluster: Default::default(),
        };
        let cp = critical_path(&obs).expect("path");
        assert_eq!(cp.makespan, 10.0);
        assert!(
            cp.blame_sum_rel_err() < 1e-9,
            "err {}",
            cp.blame_sum_rel_err()
        );
        assert_eq!(cp.segments.len(), 2);
        assert_eq!(cp.segments[0].phase, "local-sort");
        assert_eq!(cp.segments[1].phase, "merge");
        assert!((cp.blame.cpu - 3.0 - 2.0).abs() < 1e-9);
        assert!((cp.blame.io_write - 3.0).abs() < 1e-9);
    }

    #[test]
    fn phase_blame_respects_overlap_and_queue() {
        // cpu 2, io 6 (4r + 2w) with 2 saved by overlap and 3 of the io
        // being queueing: duration = 2 + 6 − 2 = 6... phase says end − start.
        let pc = PhaseCost {
            name: "merge",
            end: 6.0,
            cpu: 2.0,
            io_read: 4.0,
            io_write: 2.0,
            queue_wait: 3.0,
            overlap_saved: 2.0,
            ..PhaseCost::default()
        };
        let b = pc.blame(6.0);
        assert!((b.total() - 6.0).abs() < 1e-12);
        // cpu fully hidden by overlap: zero cpu blame.
        assert_eq!(b.cpu, 0.0);
        assert!(b.queue_wait > 0.0);
        assert!(b.io_read > b.io_write, "reads dominate the direct io");
    }

    #[test]
    fn wait_splits_into_credit_straggler_net() {
        let pc = PhaseCost {
            name: "exchange-merge",
            end: 10.0,
            cpu: 2.0,
            wait: 8.0,
            credit_wait: 3.0,
            coll_wait: 1.0,
            ..PhaseCost::default()
        };
        let b = pc.blame(10.0);
        assert!((b.total() - 10.0).abs() < 1e-12);
        assert!((b.credit_stall - 3.0).abs() < 1e-9);
        assert!((b.idle_straggler - 1.0).abs() < 1e-9);
        assert!((b.net_transfer - 4.0).abs() < 1e-9);
        assert!((b.cpu - 2.0).abs() < 1e-9);
    }

    #[test]
    fn zero_cost_phase_blames_cpu() {
        let pc = cost("pivots", 5.0, 0.0, 0.0, 0.0, 0.0);
        let b = pc.blame(5.0);
        assert_eq!(b.cpu, 5.0);
        assert_eq!(b.total(), 5.0);
    }

    #[test]
    fn message_edge_jumps_to_sender() {
        // Node 1 waits from t=2 to t=9 on a message node 0 sent at t=4
        // (arriving t=8): the path must hop to node 0's timeline.
        let mut recv_phase = cost("merge", 10.0, 2.0, 0.0, 0.0, 6.0);
        recv_phase.dominant_from = 0;
        recv_phase.dominant_depart = 4.0;
        recv_phase.dominant_arrival = 8.0;
        let obs = ClusterObs {
            nodes: vec![
                node_obs(0, vec![cost("local-sort", 6.0, 6.0, 0.0, 0.0, 0.0)]),
                node_obs(
                    1,
                    vec![cost("local-sort", 2.0, 2.0, 0.0, 0.0, 0.0), recv_phase],
                ),
            ],
            cluster: Default::default(),
        };
        let cp = critical_path(&obs).expect("path");
        assert_eq!(cp.makespan, 10.0);
        assert!(
            cp.blame_sum_rel_err() < 1e-9,
            "err {}",
            cp.blame_sum_rel_err()
        );
        let phases: Vec<_> = cp.segments.iter().map(|s| (s.node, s.phase)).collect();
        assert!(
            phases.contains(&(1, "net-transfer")),
            "wire segment present: {phases:?}"
        );
        assert!(
            phases.contains(&(0, "local-sort")),
            "sender timeline on path: {phases:?}"
        );
        // Wire time 8−4 = 4s lands in net-transfer.
        assert!(cp.blame.net_transfer >= 4.0 - 1e-9);
        // Segments tile [0, makespan] in order.
        let mut t = 0.0;
        for s in &cp.segments {
            assert!((s.start - t).abs() < 1e-9, "gap at {t}: {s:?}");
            t = s.end;
        }
        assert!((t - 10.0).abs() < 1e-9);
    }

    #[test]
    fn calibration_report_joins_prediction_and_span() {
        use crate::span::{SpanKind, SpanRecord};
        let mut node = NodeObs {
            node: 2,
            spans: vec![SpanRecord {
                name: "merge",
                kind: SpanKind::Phase,
                wall_start: 0.0,
                wall_end: 1.0,
                virt_start: Some(2.0),
                virt_end: Some(6.0),
            }],
            ..NodeObs::default()
        };
        node.metrics.gauge_set("planner.predicted_merge_secs", 3.0);
        let obs = ClusterObs {
            nodes: vec![NodeObs::default(), node],
            cluster: Default::default(),
        };
        let report = calibration_report(&obs).expect("one calibrated node");
        assert!(report.contains("predicted"), "{report}");
        assert!(report.contains("3.000000"), "{report}");
        assert!(report.contains("4.000000"), "{report}");
        // No predictions at all → no report.
        let empty = ClusterObs {
            nodes: vec![NodeObs::default()],
            cluster: Default::default(),
        };
        assert!(calibration_report(&empty).is_none());
    }

    #[test]
    fn self_edges_and_past_arrivals_are_ignored() {
        let mut p = cost("merge", 5.0, 5.0, 0.0, 0.0, 0.0);
        p.dominant_from = 0; // self
        p.dominant_depart = 1.0;
        p.dominant_arrival = 3.0;
        let obs = ClusterObs {
            nodes: vec![node_obs(0, vec![p])],
            cluster: Default::default(),
        };
        let cp = critical_path(&obs).expect("path");
        assert_eq!(cp.segments.len(), 1);
        assert!(cp.blame_sum_rel_err() < 1e-9);
    }
}
