//! Implementation of the `hetsort` command-line tool.
//!
//! Four subcommands, operating on *real files* in a directory (the
//! simulated-disk layer in file-backed mode) or on a simulated cluster:
//!
//! ```text
//! hetsort gen     --dir D --name input --n 1000000 [--bench uniform] [--seed 7]
//! hetsort sort    --dir D --input input --output sorted
//!                 [--mem 1048576] [--tapes 16] [--block 32768]
//!                 [--algo polyphase|balanced|distribution] [--workers W]
//!                 [--merge-workers W|auto] [--kernel radix|comparison|ips4o]
//!                 [--codec zerocopy|copy] [--io-backend serial|batched]
//! hetsort verify  --dir D --sorted sorted [--input input]
//! hetsort cluster --n 16777216 --perf 1,1,4,4 [--hardware 1,1,4,4]
//!                 [--net fe|myrinet] [--bench uniform] [--msg 8192]
//!                 [--mem N] [--tapes 16] [--block 32768] [--seed 7]
//!                 [--workers W] [--merge-workers W|auto]
//!                 [--disk scsi|nvme|free] [--kernel radix|comparison]
//!                 [--runtime threads|events] [--splitter flat|grouped]
//!                 [--trace-out trace.json] [--metrics-out metrics.json]
//!                 [--critpath-out critpath.json] [--whatif]
//!                 [--calibration-report] [--profile] [--streaming-merge]
//! ```
//!
//! `--workers W` (W >= 1) enables the pipelined execution engine: W
//! in-core sort workers plus prefetch/write-behind I/O threads. Output
//! and I/O counters are identical to the sequential default; only the
//! charged time changes.
//!
//! `--merge-workers W` (W >= 2) enables range-partitioned parallel
//! merging: every k-way merge samples splitters from its sorted inputs
//! and runs W loser trees over disjoint key ranges concurrently. Output
//! is byte-identical to the sequential merge and the streaming I/O is
//! unchanged (splitter probes appear as extra metered random reads).
//! Composes with `--workers`; either can be used alone. Note that
//! `cluster` charges the paper's year-2000 SCSI disk model by default
//! (`--disk scsi`), on which the 8 ms probe seeks outweigh the divided
//! merge CPU — an explicit worker count *raises* the reported virtual
//! time there, while on `--disk nvme` 4 workers win ~3.2x.
//!
//! `--merge-workers auto` hands every unpinned knob to the adaptive
//! planner: it prices candidate worker counts against the device's
//! contention model (queue depth, seek settle) and picks the cheapest
//! plan — sequential on `scsi`, wide on `nvme` — and derives prefetch
//! depth, message size and streaming-vs-staged exchange from the same
//! model. Explicit `--msg`, `--streaming-merge` or a numeric
//! `--merge-workers` remain overrides.
//!
//! `--trace-out`, `--metrics-out` and `--profile` enable the phase-span
//! tracer for `cluster` runs: `--trace-out PATH` writes a Chrome
//! `trace_event` JSON (load it at <https://ui.perfetto.dev>, one process
//! per node on the virtual-time axis), `--metrics-out PATH` writes the
//! unified metrics registry as JSON, and `--profile` (a bare flag, no
//! value) prints a per-node phase Gantt chart plus the PSRS skew table to
//! the terminal. Tracing never touches the virtual clocks: the reported
//! times, outputs and I/O counters are identical with and without it.
//!
//! `--critpath-out PATH`, `--whatif` and `--calibration-report` drive the
//! critical-path profiler over the same trace: `--critpath-out` writes the
//! blame-attributed critical path as JSON (`hetsort-critpath-v1`),
//! `--whatif` (bare flag) prints the ranked what-if table — for each blame
//! category, the estimated makespan if that cost were eliminated — and
//! `--calibration-report` (bare flag) prints the planner's predicted merge
//! time against the measured merge span per node, with residuals.
//!
//! `--streaming-merge` (a bare flag) fuses PSRS steps 3-5 into one
//! streaming exchange-merge: partition chunks feed the final merge
//! directly, with no staging files and credit-based flow control, so
//! the run reports three phases (`local-sort`, `pivots`,
//! `exchange-merge`) and ~`4·Q/B` fewer block I/Os per node.
//!
//! `--kernel` picks the in-core sort kernel: `radix` (the default fast
//! path — LSD radix run formation plus cached-key merges, billed as cheap
//! key operations), `ips4o` (branchless in-place sample sort — same
//! key-op billing, O(k·B) scratch instead of radix's O(n) copy) or
//! `comparison` (the comparison-based reference the paper's cost model
//! was calibrated on). All produce byte-identical output.
//!
//! `--runtime` picks the cluster scheduler for `cluster` runs: `threads`
//! (the default — one OS thread per simulated node) or `events` (every
//! node is a task on a single-threaded discrete-event scheduler, which
//! scales to hundreds of nodes in one process). Sorted output, I/O
//! counters and — for the blocking exchange variants — the virtual
//! clocks are identical under both.
//!
//! `--splitter` picks how `cluster` runs select the p−1 splitters:
//! `flat` (the default — every node's sample is gathered and sorted at
//! rank 0, the paper's step 2) or `grouped` (two-level √p-group
//! selection: group leaders pre-sort and compress their members'
//! samples to weighted candidates, so no node ever sorts a Θ(p²)
//! sample or absorbs p simultaneous first messages). The sorted output
//! is byte-identical either way.
//!
//! `--codec` picks how `sort`/`gen`/`verify` move records between disk
//! blocks and memory: `zerocopy` (the default — plain-old-data records
//! are viewed in place) or `copy` (the staged reference codec).
//! `--io-backend` picks how pipelined readers/writers submit block I/O:
//! `serial` (one worker thread per stream, the default) or `batched`
//! (a multi-request [`pdm::IoBatch`] with genuinely concurrent
//! positional reads and writes). Both axes are observationally identical
//! — byte-identical files and identical metered I/O counters.

use std::collections::HashMap;

use extsort::{fingerprint_file, is_sorted_file, ExtSortConfig, PipelineConfig, SortKernel};
use hetsort::{run_trial, PerfVector, SortAlgo, SplitterStrategy, TrialConfig};
use pdm::{Codec, Disk, IoBackend};
use workloads::{generate_to_disk, Benchmark, Layout};

/// Parsed `--key value` options (plus the subcommand).
#[derive(Debug)]
pub struct Options {
    /// The subcommand word.
    pub command: String,
    flags: HashMap<String, String>,
}

impl Options {
    /// Parses an argument list (without the program name).
    ///
    /// # Errors
    /// Returns a message when the command is missing or a flag is malformed.
    pub fn parse(args: &[String]) -> Result<Options, String> {
        /// Flags that may appear bare (no value): `--profile` alone means
        /// `--profile true`. A following token that is itself a `--flag`
        /// is not consumed as the value.
        const BOOL_FLAGS: &[&str] = &["profile", "streaming-merge", "whatif", "calibration-report"];
        let mut it = args.iter().peekable();
        let command = it.next().ok_or_else(usage)?.clone();
        let mut flags = HashMap::new();
        while let Some(key) = it.next() {
            let key = key
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --flag, got {key:?}"))?;
            let value = if BOOL_FLAGS.contains(&key) {
                match it.peek() {
                    Some(v) if !v.starts_with("--") => it.next().unwrap().clone(),
                    _ => "true".to_string(),
                }
            } else {
                it.next()
                    .ok_or_else(|| format!("flag --{key} needs a value"))?
                    .clone()
            };
            flags.insert(key.to_string(), value);
        }
        Ok(Options { command, flags })
    }

    /// A required string flag.
    pub fn required(&self, key: &str) -> Result<&str, String> {
        self.flags
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required flag --{key}"))
    }

    /// An optional string flag with a default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.flags.get(key).map(String::as_str).unwrap_or(default)
    }

    /// A boolean flag: absent means `false`, bare (`--profile`) means
    /// `true`, and an explicit `true`/`false` value is honoured.
    pub fn flag(&self, key: &str) -> Result<bool, String> {
        match self.flags.get(key).map(String::as_str) {
            None => Ok(false),
            Some("true") | Some("1") | Some("yes") => Ok(true),
            Some("false") | Some("0") | Some("no") => Ok(false),
            Some(v) => Err(format!("flag --{key} expects true/false, got {v:?}")),
        }
    }

    /// A numeric flag with a default.
    pub fn num_or(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("flag --{key} expects an integer, got {v:?}")),
        }
    }
}

/// The usage banner.
pub fn usage() -> String {
    "usage: hetsort <gen|sort|verify|cluster> [--flag value]...\n\
     see `hetsort help` or the crate docs for the flag list"
        .to_string()
}

/// Parses a comma-separated perf vector like `1,1,4,4`.
pub fn parse_perf(s: &str) -> Result<PerfVector, String> {
    let parts: Result<Vec<u64>, _> = s.split(',').map(|x| x.trim().parse()).collect();
    match parts {
        Ok(v) if !v.is_empty() && v.iter().all(|&x| x > 0) => Ok(PerfVector::new(v)),
        _ => Err(format!("bad perf vector {s:?} (expected e.g. 1,1,4,4)")),
    }
}

/// Parses a sort kernel name (`radix`, `comparison` or `ips4o`).
pub fn parse_kernel(s: &str) -> Result<SortKernel, String> {
    SortKernel::parse(s)
        .ok_or_else(|| format!("unknown --kernel {s:?} (radix, comparison or ips4o)"))
}

/// Parses a block codec name (`zerocopy` or `copy`).
pub fn parse_codec(s: &str) -> Result<Codec, String> {
    Codec::parse(s).ok_or_else(|| format!("unknown --codec {s:?} (zerocopy or copy)"))
}

/// Parses an I/O backend name (`serial` or `batched`).
pub fn parse_io_backend(s: &str) -> Result<IoBackend, String> {
    IoBackend::parse(s).ok_or_else(|| format!("unknown --io-backend {s:?} (serial or batched)"))
}

/// How `--merge-workers` was given.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeWorkers {
    /// Flag absent (or `0`): keep the config's default.
    Default,
    /// `--merge-workers auto`: let the planner price candidates against the
    /// device's contention model and pick the cheapest plan.
    Auto,
    /// `--merge-workers W` with `W ≥ 1`: an explicit order the planner
    /// honours even where its model predicts a loss.
    Explicit(usize),
}

/// Parses `--merge-workers` (`auto` or a worker count).
pub fn parse_merge_workers(opts: &Options) -> Result<MergeWorkers, String> {
    match opts.get_or("merge-workers", "0") {
        "auto" => Ok(MergeWorkers::Auto),
        v => match v.parse::<usize>() {
            Ok(0) => Ok(MergeWorkers::Default),
            Ok(w) => Ok(MergeWorkers::Explicit(w)),
            Err(_) => Err(format!(
                "flag --merge-workers expects an integer or `auto`, got {v:?}"
            )),
        },
    }
}

/// Parses a cluster runtime name (`threads` or `events`).
pub fn parse_runtime(s: &str) -> Result<cluster::RuntimeKind, String> {
    cluster::RuntimeKind::parse(s)
        .ok_or_else(|| format!("unknown --runtime {s:?} (threads or events)"))
}

/// Parses a splitter strategy name (`flat` or `grouped`).
pub fn parse_splitter(s: &str) -> Result<SplitterStrategy, String> {
    match s {
        "flat" => Ok(SplitterStrategy::Flat),
        "grouped" => Ok(SplitterStrategy::grouped()),
        other => Err(format!("unknown --splitter {other:?} (flat or grouped)")),
    }
}

/// Parses a disk model name (`scsi`, `nvme` or `free`).
pub fn parse_disk(s: &str) -> Result<pdm::DiskModel, String> {
    match s {
        "scsi" | "scsi_2000" => Ok(pdm::DiskModel::scsi_2000()),
        "nvme" | "nvme_modern" => Ok(pdm::DiskModel::nvme_modern()),
        "free" => Ok(pdm::DiskModel::free()),
        other => Err(format!("unknown --disk {other:?} (scsi, nvme or free)")),
    }
}

/// Parses a benchmark by name or id.
pub fn parse_bench(s: &str) -> Result<Benchmark, String> {
    if let Ok(id) = s.parse::<usize>() {
        if id < Benchmark::ALL.len() {
            return Ok(Benchmark::from_id(id));
        }
    }
    Benchmark::ALL
        .into_iter()
        .find(|b| b.name() == s)
        .ok_or_else(|| {
            let names: Vec<&str> = Benchmark::ALL.iter().map(|b| b.name()).collect();
            format!("unknown benchmark {s:?}; known: {}", names.join(", "))
        })
}

/// Runs a parsed command; returns the human-readable output.
pub fn run(opts: &Options) -> Result<String, String> {
    match opts.command.as_str() {
        "gen" => cmd_gen(opts),
        "sort" => cmd_sort(opts),
        "verify" => cmd_verify(opts),
        "cluster" => cmd_cluster(opts),
        "help" | "--help" | "-h" => Ok(usage()),
        other => Err(format!("unknown command {other:?}\n{}", usage())),
    }
}

fn open_dir(opts: &Options) -> Result<Disk, String> {
    let dir = opts.required("dir")?;
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir:?}: {e}"))?;
    let block = opts.num_or("block", 32 * 1024)? as usize;
    let codec = parse_codec(opts.get_or("codec", Codec::default().name()))?;
    let io = parse_io_backend(opts.get_or("io-backend", IoBackend::default().name()))?;
    Ok(Disk::on_files(dir, block)
        .with_codec(codec)
        .with_io_backend(io))
}

fn cmd_gen(opts: &Options) -> Result<String, String> {
    let disk = open_dir(opts)?;
    let name = opts.required("name")?;
    let n = opts.num_or("n", 1 << 20)?;
    let bench = parse_bench(opts.get_or("bench", "uniform"))?;
    let seed = opts.num_or("seed", 2002)?;
    generate_to_disk(&disk, name, bench, seed, Layout::single(n)).map_err(|e| e.to_string())?;
    Ok(format!(
        "wrote {n} records of benchmark {bench} ({} MiB) to {name:?}",
        (n * 4) >> 20
    ))
}

fn cmd_sort(opts: &Options) -> Result<String, String> {
    let disk = open_dir(opts)?;
    let input = opts.required("input")?;
    let output = opts.required("output")?;
    let mem = opts.num_or("mem", 1 << 20)? as usize;
    let tapes = opts.num_or("tapes", 16)? as usize;
    let algo = opts.get_or("algo", "polyphase");
    let kernel = parse_kernel(opts.get_or("kernel", SortKernel::default().name()))?;
    let mut cfg = ExtSortConfig::new(mem)
        .with_tapes(tapes)
        .with_kernel(kernel);
    let workers = opts.num_or("workers", 0)? as usize;
    if workers > 0 {
        cfg = cfg.with_pipeline(PipelineConfig::with_workers(workers));
    }
    match parse_merge_workers(opts)? {
        MergeWorkers::Auto => {
            cfg = cfg.with_pipeline(PipelineConfig::adaptive(workers.max(1)));
        }
        MergeWorkers::Explicit(w) => cfg = cfg.with_merge_workers(w),
        MergeWorkers::Default => {}
    }
    let start = std::time::Instant::now();
    let report = match algo {
        "polyphase" => extsort::polyphase_sort::<u32>(&disk, input, output, "cli", &cfg),
        "balanced" => extsort::balanced_kway_sort::<u32>(&disk, input, output, "cli", &cfg),
        "distribution" => extsort::distribution_sort::<u32>(&disk, input, output, "cli", &cfg),
        other => return Err(format!("unknown --algo {other:?}")),
    }
    .map_err(|e| e.to_string())?;
    Ok(format!(
        "sorted {} records with {algo} ({} kernel) in {:.2}s wall time\n\
         initial runs {}, passes {}, comparisons {}, key ops {}, block I/Os {}",
        report.records,
        kernel.name(),
        start.elapsed().as_secs_f64(),
        report.initial_runs,
        report.merge_phases,
        report.comparisons,
        report.key_ops,
        report.io.total_blocks()
    ))
}

fn cmd_verify(opts: &Options) -> Result<String, String> {
    let disk = open_dir(opts)?;
    let sorted = opts.required("sorted")?;
    if !is_sorted_file::<u32>(&disk, sorted).map_err(|e| e.to_string())? {
        return Err(format!("{sorted:?} is NOT sorted"));
    }
    let mut msg = format!("{sorted:?} is sorted");
    if let Some(input) = opts.flags.get("input") {
        let fin = fingerprint_file::<u32>(&disk, input).map_err(|e| e.to_string())?;
        let fout = fingerprint_file::<u32>(&disk, sorted).map_err(|e| e.to_string())?;
        if fin != fout {
            return Err(format!("{sorted:?} is NOT a permutation of {input:?}"));
        }
        msg.push_str(&format!(" and a permutation of {input:?}"));
    }
    Ok(msg)
}

fn cmd_cluster(opts: &Options) -> Result<String, String> {
    let declared = parse_perf(opts.get_or("perf", "1,1,1,1"))?;
    let hardware = parse_perf(opts.get_or("hardware", opts.get_or("perf", "1,1,1,1")))?;
    if hardware.p() != declared.p() {
        return Err("--perf and --hardware must have the same width".into());
    }
    let n = opts.num_or("n", 1 << 20)?;
    let mut cfg = TrialConfig::new(hardware.as_slice().to_vec(), declared, n);
    cfg.bench = parse_bench(opts.get_or("bench", "uniform"))?;
    cfg.mem_records = opts.num_or("mem", (n / 16).max(16 * 16 * 1024))? as usize;
    cfg.tapes = opts.num_or("tapes", 16)? as usize;
    cfg.msg_records = opts.num_or("msg", 8192)? as usize;
    cfg.block_bytes = opts.num_or("block", 32 * 1024)? as usize;
    cfg.seed = opts.num_or("seed", 2002)?;
    cfg.disk_model = parse_disk(opts.get_or("disk", "scsi"))?;
    let workers = opts.num_or("workers", 0)? as usize;
    if workers > 0 {
        cfg.pipeline = PipelineConfig::with_workers(workers);
    }
    let adaptive = match parse_merge_workers(opts)? {
        MergeWorkers::Auto => {
            cfg.pipeline = PipelineConfig::adaptive(workers.max(1));
            true
        }
        MergeWorkers::Explicit(w) => {
            cfg.pipeline = cfg.pipeline.with_merge_workers(w);
            false
        }
        MergeWorkers::Default => false,
    };
    cfg.kernel = parse_kernel(opts.get_or("kernel", SortKernel::default().name()))?;
    cfg.runtime = parse_runtime(opts.get_or("runtime", cluster::RuntimeKind::default().name()))?;
    cfg.splitter = parse_splitter(opts.get_or("splitter", "flat"))?;
    cfg.streaming = opts.flag("streaming-merge")?;
    if adaptive {
        // Knobs the user left on their defaults follow the device plan;
        // explicit values stay overrides.
        let plan = extsort::plan_exchange(
            &cfg.disk_model,
            cfg.block_bytes / std::mem::size_of::<u32>(),
            opts.flags.contains_key("msg").then_some(cfg.msg_records),
        );
        cfg.msg_records = plan.msg_records;
        if !opts.flags.contains_key("streaming-merge") {
            cfg.streaming = plan.streaming;
        }
    }
    cfg.net = match opts.get_or("net", "fe") {
        "fe" | "fast-ethernet" => cluster::NetworkModel::fast_ethernet(),
        "myrinet" => cluster::NetworkModel::myrinet(),
        "infinite" => cluster::NetworkModel::infinite(),
        other => return Err(format!("unknown --net {other:?}")),
    };
    cfg.algo = match opts.get_or("algo", "psrs") {
        "psrs" => SortAlgo::ExternalPsrs,
        "overpartition" => SortAlgo::OverpartitionExternal,
        other => return Err(format!("unknown --algo {other:?}")),
    };
    let trace_out = opts.flags.get("trace-out").cloned();
    let metrics_out = opts.flags.get("metrics-out").cloned();
    let critpath_out = opts.flags.get("critpath-out").cloned();
    let profile = opts.flag("profile")?;
    let whatif = opts.flag("whatif")?;
    let calibration = opts.flag("calibration-report")?;
    cfg.trace = trace_out.is_some()
        || metrics_out.is_some()
        || critpath_out.is_some()
        || profile
        || whatif
        || calibration;
    let result = run_trial(&cfg).map_err(|e| e.to_string())?;
    let mut out = format!(
        "sorted n = {} on {} nodes in {:.3} virtual seconds\n\
         partition sizes {:?}\n\
         sublist expansion S(max) = {:.5}\n\
         network traffic {:.1} MiB, {} block I/Os",
        result.n,
        cfg.hardware.len(),
        result.time_secs,
        result.balance.sizes,
        result.balance.expansion(),
        result.sent_bytes as f64 / (1 << 20) as f64,
        result.total_io_blocks
    );
    if let Some(obs) = &result.obs {
        if let Some(path) = &trace_out {
            std::fs::write(path, obs::chrome_trace(obs))
                .map_err(|e| format!("cannot write {path:?}: {e}"))?;
            out.push_str(&format!("\nwrote chrome trace to {path:?}"));
        }
        if let Some(path) = &metrics_out {
            std::fs::write(path, obs::metrics_json(obs))
                .map_err(|e| format!("cannot write {path:?}: {e}"))?;
            out.push_str(&format!("\nwrote metrics to {path:?}"));
        }
        if profile {
            out.push('\n');
            out.push_str(&obs::render_profile(obs));
        }
        if critpath_out.is_some() || whatif {
            match obs::critical_path(obs) {
                Some(path) => {
                    if let Some(p) = &critpath_out {
                        std::fs::write(p, obs::critpath_json(&path))
                            .map_err(|e| format!("cannot write {p:?}: {e}"))?;
                        out.push_str(&format!("\nwrote critical path to {p:?}"));
                    }
                    if whatif {
                        out.push('\n');
                        out.push_str(&obs::render_whatif(&path));
                    }
                }
                None => out.push_str("\nno critical path: run recorded no phase costs"),
            }
        }
        if calibration {
            out.push('\n');
            out.push_str(
                obs::calibration_report(obs)
                    .as_deref()
                    .unwrap_or("no calibration data: run recorded no merge predictions"),
            );
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(args: &[&str]) -> Options {
        Options::parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn parse_flags() {
        let o = opts(&["sort", "--dir", "/tmp/x", "--mem", "1024"]);
        assert_eq!(o.command, "sort");
        assert_eq!(o.required("dir").unwrap(), "/tmp/x");
        assert_eq!(o.num_or("mem", 0).unwrap(), 1024);
        assert_eq!(o.num_or("tapes", 16).unwrap(), 16);
        assert_eq!(o.get_or("algo", "polyphase"), "polyphase");
    }

    #[test]
    fn parse_errors() {
        assert!(Options::parse(&[]).is_err());
        assert!(Options::parse(&["sort".into(), "oops".into()]).is_err());
        assert!(Options::parse(&["sort".into(), "--mem".into()]).is_err());
        let o = opts(&["sort", "--mem", "abc"]);
        assert!(o.num_or("mem", 0).is_err());
        assert!(o.required("dir").is_err());
    }

    #[test]
    fn perf_parsing() {
        assert_eq!(parse_perf("1,1,4,4").unwrap(), PerfVector::paper_1144());
        assert_eq!(parse_perf(" 2, 3 ").unwrap(), PerfVector::new(vec![2, 3]));
        assert!(parse_perf("").is_err());
        assert!(parse_perf("1,0").is_err());
        assert!(parse_perf("1,x").is_err());
    }

    #[test]
    fn bench_parsing() {
        assert_eq!(parse_bench("uniform").unwrap(), Benchmark::Uniform);
        assert_eq!(parse_bench("0").unwrap(), Benchmark::Uniform);
        assert_eq!(parse_bench("7").unwrap(), Benchmark::ReverseSorted);
        assert!(parse_bench("nope").is_err());
        assert!(parse_bench("99").is_err());
    }

    #[test]
    fn gen_sort_verify_pipeline() {
        let scratch = pdm::ScratchDir::new("cli-test").unwrap();
        let dir = scratch.path().to_str().unwrap().to_string();
        let out = run(&opts(&[
            "gen", "--dir", &dir, "--name", "input", "--n", "20000", "--seed", "5",
        ]))
        .unwrap();
        assert!(out.contains("20000 records"));
        let out = run(&opts(&[
            "sort", "--dir", &dir, "--input", "input", "--output", "sorted", "--mem", "131072",
            "--tapes", "4", "--block", "4096",
        ]))
        .unwrap();
        assert!(out.contains("sorted 20000 records"), "{out}");
        let out = run(&opts(&[
            "verify", "--dir", &dir, "--sorted", "sorted", "--input", "input", "--block", "4096",
        ]))
        .unwrap();
        assert!(out.contains("is sorted and a permutation"), "{out}");
    }

    #[test]
    fn sort_all_algorithms() {
        for algo in ["polyphase", "balanced", "distribution"] {
            let scratch = pdm::ScratchDir::new("cli-algo").unwrap();
            let dir = scratch.path().to_str().unwrap().to_string();
            run(&opts(&[
                "gen", "--dir", &dir, "--name", "in", "--n", "5000",
            ]))
            .unwrap();
            let out = run(&opts(&[
                "sort", "--dir", &dir, "--input", "in", "--output", "out", "--mem", "65536",
                "--tapes", "4", "--block", "4096", "--algo", algo,
            ]))
            .unwrap();
            assert!(out.contains("sorted 5000"), "{algo}: {out}");
            run(&opts(&[
                "verify", "--dir", &dir, "--sorted", "out", "--input", "in", "--block", "4096",
            ]))
            .unwrap();
        }
    }

    #[test]
    fn kernel_parsing() {
        assert_eq!(parse_kernel("radix").unwrap(), SortKernel::Radix);
        assert_eq!(parse_kernel("comparison").unwrap(), SortKernel::Comparison);
        assert_eq!(parse_kernel("ips4o").unwrap(), SortKernel::Ips4o);
        assert!(parse_kernel("bogus").is_err());
    }

    #[test]
    fn codec_and_io_backend_parsing() {
        assert_eq!(parse_codec("zerocopy").unwrap(), Codec::ZeroCopy);
        assert_eq!(parse_codec("copy").unwrap(), Codec::Copying);
        assert!(parse_codec("bogus").is_err());
        assert_eq!(parse_io_backend("serial").unwrap(), IoBackend::Serial);
        assert_eq!(parse_io_backend("batched").unwrap(), IoBackend::Batched);
        assert!(parse_io_backend("bogus").is_err());
    }

    #[test]
    fn sort_codec_and_io_backend_flags_respected() {
        // Same input sorted under every codec × io-backend cell must yield
        // the same verified output file.
        let scratch = pdm::ScratchDir::new("cli-codec").unwrap();
        let dir = scratch.path().to_str().unwrap().to_string();
        run(&opts(&[
            "gen", "--dir", &dir, "--name", "in", "--n", "20000", "--seed", "9",
        ]))
        .unwrap();
        for codec in ["zerocopy", "copy"] {
            for io in ["serial", "batched"] {
                let out_name = format!("out-{codec}-{io}");
                let out = run(&opts(&[
                    "sort",
                    "--dir",
                    &dir,
                    "--input",
                    "in",
                    "--output",
                    &out_name,
                    "--mem",
                    "65536",
                    "--tapes",
                    "4",
                    "--block",
                    "4096",
                    "--codec",
                    codec,
                    "--io-backend",
                    io,
                    "--workers",
                    "2",
                ]))
                .unwrap();
                assert!(out.contains("sorted 20000"), "{codec}/{io}: {out}");
                let out = run(&opts(&[
                    "verify", "--dir", &dir, "--sorted", &out_name, "--input", "in", "--block",
                    "4096",
                ]))
                .unwrap();
                assert!(out.contains("permutation"), "{codec}/{io}: {out}");
            }
        }
    }

    #[test]
    fn sort_kernel_flag_respected() {
        for kernel in ["radix", "comparison", "ips4o"] {
            let scratch = pdm::ScratchDir::new("cli-kernel").unwrap();
            let dir = scratch.path().to_str().unwrap().to_string();
            run(&opts(&[
                "gen", "--dir", &dir, "--name", "in", "--n", "5000",
            ]))
            .unwrap();
            let out = run(&opts(&[
                "sort", "--dir", &dir, "--input", "in", "--output", "out", "--mem", "65536",
                "--tapes", "4", "--block", "4096", "--kernel", kernel,
            ]))
            .unwrap();
            assert!(out.contains(&format!("({kernel} kernel)")), "{out}");
            run(&opts(&[
                "verify", "--dir", &dir, "--sorted", "out", "--input", "in", "--block", "4096",
            ]))
            .unwrap();
        }
    }

    #[test]
    fn sort_merge_workers_flag_matches_sequential() {
        let scratch = pdm::ScratchDir::new("cli-mw").unwrap();
        let dir = scratch.path().to_str().unwrap().to_string();
        run(&opts(&[
            "gen", "--dir", &dir, "--name", "in", "--n", "20000", "--seed", "5",
        ]))
        .unwrap();
        for algo in ["polyphase", "balanced"] {
            let out_name = format!("out-{algo}");
            let out = run(&opts(&[
                "sort",
                "--dir",
                &dir,
                "--input",
                "in",
                "--output",
                &out_name,
                "--mem",
                "65536",
                "--tapes",
                "4",
                "--block",
                "4096",
                "--algo",
                algo,
                "--merge-workers",
                "4",
            ]))
            .unwrap();
            assert!(out.contains("sorted 20000"), "{algo}: {out}");
            let out = run(&opts(&[
                "verify", "--dir", &dir, "--sorted", &out_name, "--input", "in", "--block", "4096",
            ]))
            .unwrap();
            assert!(out.contains("permutation"), "{algo}: {out}");
        }
    }

    #[test]
    fn cluster_merge_workers_flag_accepted() {
        let out = run(&opts(&[
            "cluster",
            "--n",
            "8000",
            "--perf",
            "1,1",
            "--mem",
            "4096",
            "--tapes",
            "4",
            "--msg",
            "512",
            "--block",
            "1024",
            "--merge-workers",
            "4",
        ]))
        .unwrap();
        assert!(out.contains("sublist expansion"), "{out}");
    }

    #[test]
    fn cluster_adaptive_merge_workers() {
        // `auto` hands the knobs to the planner; both devices must still
        // sort correctly (the plans differ, the output cannot).
        for disk in ["scsi", "nvme"] {
            let out = run(&opts(&[
                "cluster",
                "--n",
                "8000",
                "--perf",
                "1,1",
                "--mem",
                "4096",
                "--tapes",
                "4",
                "--block",
                "1024",
                "--merge-workers",
                "auto",
                "--disk",
                disk,
            ]))
            .unwrap();
            assert!(out.contains("sublist expansion"), "{disk}: {out}");
        }
        let err = run(&opts(&["cluster", "--merge-workers", "sideways"])).unwrap_err();
        assert!(err.contains("auto"), "{err}");
    }

    #[test]
    fn runtime_parsing() {
        assert_eq!(
            parse_runtime("threads").unwrap(),
            cluster::RuntimeKind::Threads
        );
        assert_eq!(
            parse_runtime("events").unwrap(),
            cluster::RuntimeKind::Events
        );
        assert!(parse_runtime("fibers").is_err());
    }

    #[test]
    fn cluster_runtime_flag_selects_identical_trials() {
        // The same trial under --runtime threads and --runtime events must
        // report the same virtual time, balance and traffic (blocking
        // exchange variants are bit-identical across runtimes).
        let base = [
            "cluster",
            "--n",
            "8000",
            "--perf",
            "1,1,4,4",
            "--mem",
            "4096",
            "--tapes",
            "4",
            "--msg",
            "512",
            "--block",
            "1024",
            "--seed",
            "3",
            "--runtime",
        ];
        let mut outs = Vec::new();
        for runtime in ["threads", "events"] {
            let mut args: Vec<&str> = base.to_vec();
            args.push(runtime);
            outs.push(run(&opts(&args)).unwrap());
        }
        assert!(outs[0].contains("sublist expansion"), "{}", outs[0]);
        assert_eq!(outs[0], outs[1], "runtimes reported different trials");
        let err = run(&opts(&["cluster", "--runtime", "fibers"])).unwrap_err();
        assert!(err.contains("threads or events"), "{err}");
    }

    #[test]
    fn cluster_kernel_flag_accepted() {
        let out = run(&opts(&[
            "cluster",
            "--n",
            "8000",
            "--perf",
            "1,1",
            "--mem",
            "4096",
            "--tapes",
            "4",
            "--msg",
            "512",
            "--block",
            "1024",
            "--kernel",
            "comparison",
        ]))
        .unwrap();
        assert!(out.contains("sublist expansion"), "{out}");
    }

    #[test]
    fn cluster_streaming_merge_flag() {
        let out = run(&opts(&[
            "cluster",
            "--n",
            "8000",
            "--perf",
            "1,1,4,4",
            "--mem",
            "4096",
            "--tapes",
            "4",
            "--msg",
            "256",
            "--block",
            "1024",
            "--streaming-merge",
        ]))
        .unwrap();
        assert!(out.contains("sublist expansion"), "{out}");
    }

    #[test]
    fn cluster_splitter_flag_accepted() {
        let base = [
            "cluster",
            "--n",
            "20000",
            "--perf",
            "1,1,4,4,2,2,1,4,2",
            "--mem",
            "4096",
            "--tapes",
            "4",
            "--msg",
            "512",
            "--block",
            "1024",
            "--seed",
            "3",
        ];
        let mut grouped: Vec<&str> = base.to_vec();
        grouped.extend_from_slice(&["--splitter", "grouped"]);
        let out = run(&opts(&grouped)).unwrap();
        assert!(out.contains("sublist expansion"), "{out}");
        // Unknown strategy names are rejected with the flag's vocabulary.
        let mut bad: Vec<&str> = base.to_vec();
        bad.extend_from_slice(&["--splitter", "tree"]);
        let err = run(&opts(&bad)).unwrap_err();
        assert!(err.contains("--splitter"), "{err}");
        assert_eq!(parse_splitter("flat").unwrap(), SplitterStrategy::Flat);
        assert!(parse_splitter("grouped").unwrap().is_grouped());
    }

    #[test]
    fn cluster_command_runs() {
        let out = run(&opts(&[
            "cluster", "--n", "20000", "--perf", "1,1,4,4", "--mem", "4096", "--tapes", "4",
            "--msg", "512", "--block", "1024", "--seed", "3",
        ]))
        .unwrap();
        assert!(out.contains("sublist expansion"), "{out}");
    }

    #[test]
    fn bool_flag_parsing() {
        // Bare --profile, followed by another flag: value not consumed.
        let o = opts(&["cluster", "--profile", "--n", "100"]);
        assert!(o.flag("profile").unwrap());
        assert_eq!(o.num_or("n", 0).unwrap(), 100);
        // Trailing bare --profile.
        let o = opts(&["cluster", "--n", "100", "--profile"]);
        assert!(o.flag("profile").unwrap());
        // Explicit value forms.
        assert!(opts(&["cluster", "--profile", "true"])
            .flag("profile")
            .unwrap());
        assert!(!opts(&["cluster", "--profile", "false"])
            .flag("profile")
            .unwrap());
        assert!(!opts(&["cluster"]).flag("profile").unwrap());
        assert!(opts(&["cluster", "--profile", "maybe"])
            .flag("profile")
            .is_err());
    }

    #[test]
    fn cluster_trace_flags_write_outputs() {
        let scratch = pdm::ScratchDir::new("cli-trace").unwrap();
        let trace = scratch.path().join("trace.json");
        let metrics = scratch.path().join("metrics.json");
        let out = run(&opts(&[
            "cluster",
            "--n",
            "20000",
            "--perf",
            "1,1,4,4",
            "--mem",
            "4096",
            "--tapes",
            "4",
            "--msg",
            "512",
            "--block",
            "1024",
            "--seed",
            "3",
            "--trace-out",
            trace.to_str().unwrap(),
            "--metrics-out",
            metrics.to_str().unwrap(),
            "--profile",
        ]))
        .unwrap();
        assert!(out.contains("wrote chrome trace"), "{out}");
        assert!(out.contains("wrote metrics"), "{out}");
        // The Gantt + skew dashboard made it to the terminal output.
        assert!(out.contains("node0"), "{out}");
        assert!(out.contains("skew"), "{out}");
        let trace_json = std::fs::read_to_string(&trace).unwrap();
        obs::json::validate(&trace_json).unwrap();
        for phase in ["local-sort", "pivots", "partition", "redistribute", "merge"] {
            assert!(trace_json.contains(phase), "trace missing {phase}");
        }
        let metrics_json = std::fs::read_to_string(&metrics).unwrap();
        obs::json::validate(&metrics_json).unwrap();
        assert!(metrics_json.contains("hetsort-metrics-v1"));
    }

    #[test]
    fn unknown_command_reports_usage() {
        let err = run(&opts(&["frobnicate"])).unwrap_err();
        assert!(err.contains("usage:"));
    }

    #[test]
    fn verify_detects_unsorted() {
        let scratch = pdm::ScratchDir::new("cli-bad").unwrap();
        let dir = scratch.path().to_str().unwrap().to_string();
        let disk = Disk::on_files(scratch.path(), 4096);
        disk.write_file::<u32>("bad", &[3, 1, 2]).unwrap();
        let err = run(&opts(&["verify", "--dir", &dir, "--sorted", "bad"])).unwrap_err();
        assert!(err.contains("NOT sorted"));
    }
}
