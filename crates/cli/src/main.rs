//! The `hetsort` command-line tool. See the library crate docs for the
//! subcommand and flag reference.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match hetsort_cli::Options::parse(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    match hetsort_cli::run(&opts) {
        Ok(msg) => println!("{msg}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
