//! Output verification helpers.
//!
//! A sort is correct iff the output is (a) non-decreasing and (b) a
//! permutation of the input. Permutation checking without materializing both
//! sides uses an order-independent multiset [`Fingerprint`]: count, a
//! wrapping sum of record hashes, and an XOR of record hashes. Collisions
//! would require adversarial inputs; for test data this is effectively exact.

use pdm::{BlockReader, Disk, PdmResult, Record};
use sim::SplitMix64;

/// Order-independent multiset fingerprint of a record collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Fingerprint {
    /// Number of records.
    pub count: u64,
    /// Wrapping sum of per-record hashes.
    pub sum: u64,
    /// XOR of per-record hashes.
    pub xor: u64,
}

impl Fingerprint {
    /// Folds one record into the fingerprint.
    pub fn add<R: Record>(&mut self, r: &R) {
        let mut stack = [0u8; 64];
        let mut heap;
        let buf: &mut [u8] = if R::SIZE <= stack.len() {
            &mut stack[..R::SIZE]
        } else {
            heap = vec![0u8; R::SIZE];
            &mut heap
        };
        r.write_to(buf);
        // Hash the record bytes 8 bytes at a time through SplitMix64.
        let mut h = 0xABCD_EF01_2345_6789u64;
        for chunk in buf.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            h = SplitMix64::mix(h ^ u64::from_le_bytes(word));
        }
        self.count += 1;
        self.sum = self.sum.wrapping_add(h);
        self.xor ^= h;
    }

    /// Merges two fingerprints (multiset union).
    #[must_use]
    pub fn combine(&self, other: &Fingerprint) -> Fingerprint {
        Fingerprint {
            count: self.count + other.count,
            sum: self.sum.wrapping_add(other.sum),
            xor: self.xor ^ other.xor,
        }
    }
}

/// Fingerprint of an in-memory slice.
pub fn fingerprint_slice<R: Record>(data: &[R]) -> Fingerprint {
    let mut f = Fingerprint::default();
    for r in data {
        f.add(r);
    }
    f
}

/// Streams a file as maximal borrowed record slices: whole decoded blocks
/// when the disk's codec can view them in place, single records otherwise.
/// `visit` returns `false` to stop early. Metering is identical to a
/// plain `next_record` scan either way.
fn scan_blocks<R: Record>(
    reader: &mut BlockReader<R>,
    mut visit: impl FnMut(&[R]) -> bool,
) -> PdmResult<()> {
    loop {
        let viewed = match reader.next_block_view()? {
            None => return Ok(()), // EOF
            Some(view) => {
                let n = view.len();
                if n > 0 && !visit(view) {
                    return Ok(());
                }
                n
            }
        };
        if viewed > 0 {
            reader.consume(viewed);
        } else {
            // The block cannot be viewed in place (copying codec or
            // misaligned buffer): fall back to one decoded record.
            match reader.next_record()? {
                Some(r) => {
                    if !visit(std::slice::from_ref(&r)) {
                        return Ok(());
                    }
                }
                None => return Ok(()),
            }
        }
    }
}

/// Fingerprint of a disk file (streams; meters its reads).
pub fn fingerprint_file<R: Record>(disk: &Disk, name: &str) -> PdmResult<Fingerprint> {
    let mut reader = disk.open_reader::<R>(name)?;
    let mut f = Fingerprint::default();
    scan_blocks(&mut reader, |view| {
        for r in view {
            f.add(r);
        }
        true
    })?;
    Ok(f)
}

/// Checks that a disk file is non-decreasing.
pub fn is_sorted_file<R: Record>(disk: &Disk, name: &str) -> PdmResult<bool> {
    let mut reader = disk.open_reader::<R>(name)?;
    let mut prev: Option<R> = None;
    let mut sorted = true;
    scan_blocks(&mut reader, |view| {
        if let (Some(p), Some(first)) = (&prev, view.first()) {
            if p > first {
                sorted = false;
                return false;
            }
        }
        if view.windows(2).any(|w| w[0] > w[1]) {
            sorted = false;
            return false;
        }
        prev = view.last().copied();
        true
    })?;
    Ok(sorted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm::Disk;

    #[test]
    fn fingerprint_is_order_independent() {
        let a = fingerprint_slice(&[1u32, 2, 3, 4]);
        let b = fingerprint_slice(&[4u32, 2, 1, 3]);
        assert_eq!(a, b);
    }

    #[test]
    fn fingerprint_detects_missing_record() {
        let a = fingerprint_slice(&[1u32, 2, 3]);
        let b = fingerprint_slice(&[1u32, 2]);
        assert_ne!(a, b);
    }

    #[test]
    fn fingerprint_detects_duplicate_count_change() {
        let a = fingerprint_slice(&[5u32, 5, 7]);
        let b = fingerprint_slice(&[5u32, 7, 7]);
        assert_ne!(a, b);
    }

    #[test]
    fn fingerprint_distinguishes_xor_collisions() {
        // {x, x} has XOR 0 like {}; sum and count catch it.
        let a = fingerprint_slice(&[9u32, 9]);
        let b = fingerprint_slice::<u32>(&[]);
        assert_ne!(a, b);
    }

    #[test]
    fn combine_matches_concatenation() {
        let whole = fingerprint_slice(&[1u32, 2, 3, 4, 5]);
        let left = fingerprint_slice(&[1u32, 2]);
        let right = fingerprint_slice(&[3u32, 4, 5]);
        assert_eq!(left.combine(&right), whole);
    }

    #[test]
    fn file_fingerprint_matches_slice() {
        let disk = Disk::in_memory(16);
        let data: Vec<u32> = (0..100).map(|i| i * 13 % 50).collect();
        disk.write_file("f", &data).unwrap();
        assert_eq!(
            fingerprint_file::<u32>(&disk, "f").unwrap(),
            fingerprint_slice(&data)
        );
    }

    #[test]
    fn sortedness_checks() {
        let disk = Disk::in_memory(16);
        disk.write_file::<u32>("sorted", &[1, 2, 2, 3]).unwrap();
        disk.write_file::<u32>("unsorted", &[1, 3, 2]).unwrap();
        disk.write_file::<u32>("empty", &[]).unwrap();
        disk.write_file::<u32>("single", &[9]).unwrap();
        assert!(is_sorted_file::<u32>(&disk, "sorted").unwrap());
        assert!(!is_sorted_file::<u32>(&disk, "unsorted").unwrap());
        assert!(is_sorted_file::<u32>(&disk, "empty").unwrap());
        assert!(is_sorted_file::<u32>(&disk, "single").unwrap());
    }
}
