//! Work reports returned by the sorters.
//!
//! The sorters do not know about clocks; they return *what happened* —
//! records moved, runs formed, passes made, comparisons performed, blocks
//! transferred — and the cluster layer converts that into virtual time with
//! its cost model. This is also what lets the harness compare measured I/O
//! counts against the PDM `Sort(N)` bound.

use pdm::IoSnapshot;

/// What a full external sort did.
#[derive(Debug, Clone, Default)]
pub struct SortReport {
    /// Records sorted.
    pub records: u64,
    /// Initial sorted runs produced by run formation.
    pub initial_runs: u64,
    /// Merge phases performed after run formation (polyphase phases or
    /// balanced-merge passes).
    pub merge_phases: u32,
    /// Comparisons performed (exact for merges, `n·⌈log₂ n⌉` estimate for
    /// the in-core chunk sorts). With the radix kernel this counts only the
    /// full-record comparisons that remain (equal-key cleanup, small-chunk
    /// insertion sorts).
    pub comparisons: u64,
    /// Key operations performed by the radix kernel (one per record per
    /// radix pass) and by key-cached tournament selects. Zero on the
    /// comparison kernel.
    pub key_ops: u64,
    /// Block-I/O delta attributable to this sort.
    pub io: IoSnapshot,
}

/// What a single multiway merge pass did.
#[derive(Debug, Clone, Default)]
pub struct MergeReport {
    /// Records merged to the output.
    pub records: u64,
    /// Number of input files.
    pub fan_in: usize,
    /// Comparisons performed (exact). Tournament selects resolved through
    /// cached keys are counted here on the comparison kernel, and in
    /// `key_ops` on the radix kernel.
    pub comparisons: u64,
    /// Key-cached tournament selects (radix kernel only; zero otherwise).
    pub key_ops: u64,
    /// Block-I/O delta attributable to this merge.
    pub io: IoSnapshot,
}

impl SortReport {
    /// Merges another report into this one (e.g. run formation + merging).
    pub fn absorb(&mut self, other: &SortReport) {
        self.records = self.records.max(other.records);
        self.initial_runs += other.initial_runs;
        self.merge_phases += other.merge_phases;
        self.comparisons += other.comparisons;
        self.key_ops += other.key_ops;
        self.io = self.io.plus(&other.io);
    }
}

/// Comparison-count estimate for an in-core sort of `n` records:
/// `n · ⌈log₂ n⌉` (the classical bound; `sort_unstable` tracks it closely).
pub fn incore_sort_comparisons(n: u64) -> u64 {
    if n < 2 {
        return 0;
    }
    n * (64 - (n - 1).leading_zeros()) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incore_estimate() {
        assert_eq!(incore_sort_comparisons(0), 0);
        assert_eq!(incore_sort_comparisons(1), 0);
        assert_eq!(incore_sort_comparisons(2), 2); // log2(2) = 1
        assert_eq!(incore_sort_comparisons(1024), 1024 * 10);
        assert_eq!(incore_sort_comparisons(1025), 1025 * 11);
    }

    #[test]
    fn absorb_accumulates() {
        let mut a = SortReport {
            records: 100,
            initial_runs: 4,
            merge_phases: 1,
            comparisons: 500,
            key_ops: 40,
            io: IoSnapshot {
                blocks_read: 10,
                ..Default::default()
            },
        };
        let b = SortReport {
            records: 100,
            initial_runs: 0,
            merge_phases: 2,
            comparisons: 700,
            key_ops: 60,
            io: IoSnapshot {
                blocks_read: 5,
                blocks_written: 3,
                ..Default::default()
            },
        };
        a.absorb(&b);
        assert_eq!(a.records, 100);
        assert_eq!(a.initial_runs, 4);
        assert_eq!(a.merge_phases, 3);
        assert_eq!(a.comparisons, 1200);
        assert_eq!(a.key_ops, 100);
        assert_eq!(a.io.blocks_read, 15);
        assert_eq!(a.io.blocks_written, 3);
    }
}
