//! Two-phase external sort over a `D`-disk array (the PDM's Figure 1(a)).
//!
//! The `Sort(N)` bound has a `1/D` factor: with `D` independent disks and
//! striped layout, each *parallel* I/O moves `D` blocks. This module
//! realizes that on [`pdm::DiskArray`]: run formation reads the striped
//! input and writes striped runs; a single loser-tree pass merges them into
//! the striped output. Blocks alternate across the disks, so the per-disk
//! maximum (the PDM's parallel-I/O count, [`DiskArray::parallel_ios`])
//! approaches `total / D`.
//!
//! A single merge pass needs one buffered block per run per disk, so the
//! memory budget must cover `⌈N/M⌉ · D` blocks; the function asserts this
//! (multi-pass striped merging would follow the same pattern and is not
//! needed for the bound study).

use pdm::stripe::StripedReader;
use pdm::{DiskArray, PdmResult, Record};

use crate::kernel::{sort_chunk, SortKernel};
use crate::loser_tree::LoserTree;
use crate::report::SortReport;
use crate::stream::RecordStream;

impl<R: Record> RecordStream<R> for StripedReader<R> {
    fn next_record(&mut self) -> PdmResult<Option<R>> {
        StripedReader::next_record(self)
    }
}

/// Sorts the striped logical file `input` into the striped logical file
/// `output` with one run-formation pass and one merge pass.
///
/// # Panics
/// Panics if the merge would need more than `mem_records` of block
/// buffers (use a larger memory budget or fewer, longer runs).
pub fn striped_two_phase_sort<R: Record>(
    arr: &DiskArray,
    input: &str,
    output: &str,
    job: &str,
    mem_records: usize,
) -> PdmResult<SortReport> {
    assert!(mem_records > 0, "memory budget must be positive");
    let io_before = arr.total_io();
    let mut report = SortReport::default();

    // Phase 1: run formation — memory loads, sorted, written striped.
    let mut reader = arr.striped_reader::<R>(input)?;
    let n = reader.len();
    report.records = n;
    let mut runs = 0usize;
    let mut chunk: Vec<R> = Vec::with_capacity(mem_records);
    loop {
        chunk.clear();
        while chunk.len() < mem_records {
            match reader.next_record()? {
                Some(x) => chunk.push(x),
                None => break,
            }
        }
        if chunk.is_empty() {
            break;
        }
        let kw = sort_chunk(&mut chunk, SortKernel::default());
        report.comparisons += kw.comparisons;
        report.key_ops += kw.key_ops;
        let mut w = arr.striped_writer::<R>(&format!("{job}.run{runs}"))?;
        w.push_all(&chunk)?;
        w.finish()?;
        runs += 1;
    }
    report.initial_runs = runs as u64;

    // Phase 2: one k-way merge pass over the striped runs.
    let records_per_block = arr.disk(0).block_bytes() / R::SIZE;
    let buffer_need = runs * arr.len() * records_per_block;
    assert!(
        runs <= 1 || buffer_need <= mem_records,
        "merge needs {buffer_need} records of block buffers but the budget is {mem_records}; \
         raise mem_records or reduce the run count"
    );
    if runs == 0 {
        arr.striped_writer::<R>(output)?.finish()?;
        report.io = arr.total_io().delta(&io_before);
        return Ok(report);
    }
    let sources = (0..runs)
        .map(|i| arr.striped_reader::<R>(&format!("{job}.run{i}")))
        .collect::<PdmResult<Vec<_>>>()?;
    let mut tree = LoserTree::new(sources)?;
    let mut out = arr.striped_writer::<R>(output)?;
    while let Some(x) = tree.next_record()? {
        out.push(x)?;
    }
    if SortKernel::default().key_based::<R>() {
        report.key_ops += tree.comparisons();
    } else {
        report.comparisons += tree.comparisons();
    }
    report.merge_phases = 1;
    debug_assert_eq!(out.finish()?, n, "records lost in the striped merge");
    for i in 0..runs {
        arr.remove(&format!("{job}.run{i}"))?;
    }
    report.io = arr.total_io().delta(&io_before);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::fingerprint_slice;
    use pdm::DiskArray;
    use sim::rng::{Pcg64, Rng};

    fn write_input(arr: &DiskArray, data: &[u32]) {
        let mut w = arr.striped_writer::<u32>("input").unwrap();
        w.push_all(data).unwrap();
        w.finish().unwrap();
    }

    fn read_output(arr: &DiskArray) -> Vec<u32> {
        let mut r = arr.striped_reader::<u32>("output").unwrap();
        let mut out = Vec::new();
        while let Some(x) = r.next_record().unwrap() {
            out.push(x);
        }
        out
    }

    fn random_data(n: usize, seed: u64) -> Vec<u32> {
        let mut rng = Pcg64::new(seed);
        (0..n).map(|_| rng.next_u32()).collect()
    }

    #[test]
    fn sorts_on_multiple_disks() {
        for d in [1usize, 2, 4] {
            let arr = DiskArray::in_memory(d, 64); // 16 records per block
            let data = random_data(4000, d as u64);
            write_input(&arr, &data);
            let report =
                striped_two_phase_sort::<u32>(&arr, "input", "output", "job", 1024).unwrap();
            assert_eq!(report.records, 4000);
            let out = read_output(&arr);
            assert!(out.windows(2).all(|w| w[0] <= w[1]), "D={d}");
            assert_eq!(fingerprint_slice(&out), fingerprint_slice(&data));
        }
    }

    #[test]
    fn parallel_ios_scale_with_d() {
        // The PDM promise: per-disk (parallel) I/O drops by ~D.
        let data = random_data(16384, 9);
        let mut per_disk = Vec::new();
        for d in [1usize, 2, 4] {
            let arr = DiskArray::in_memory(d, 64);
            write_input(&arr, &data);
            striped_two_phase_sort::<u32>(&arr, "input", "output", "job", 4096).unwrap();
            per_disk.push(arr.parallel_ios() as f64);
        }
        let r12 = per_disk[0] / per_disk[1];
        let r14 = per_disk[0] / per_disk[2];
        assert!((1.7..2.3).contains(&r12), "D=2 speedup {r12:.2}");
        assert!((3.2..4.8).contains(&r14), "D=4 speedup {r14:.2}");
    }

    #[test]
    fn empty_and_single_run_inputs() {
        let arr = DiskArray::in_memory(2, 64);
        write_input(&arr, &[]);
        let report = striped_two_phase_sort::<u32>(&arr, "input", "output", "j", 128).unwrap();
        assert_eq!(report.records, 0);
        assert!(read_output(&arr).is_empty());

        let arr2 = DiskArray::in_memory(2, 64);
        let data = random_data(100, 1);
        write_input(&arr2, &data);
        let report = striped_two_phase_sort::<u32>(&arr2, "input", "output", "j", 128).unwrap();
        assert_eq!(report.initial_runs, 1);
        let out = read_output(&arr2);
        assert!(out.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    #[should_panic(expected = "raise mem_records")]
    fn merge_buffer_budget_enforced() {
        let arr = DiskArray::in_memory(4, 64);
        write_input(&arr, &random_data(10_000, 2));
        // 100-record memory → 100 runs → buffers cannot fit.
        let _ = striped_two_phase_sort::<u32>(&arr, "input", "output", "j", 100);
    }
}
