//! Sequential external sorting.
//!
//! The paper's Algorithm 1 uses a **polyphase merge sort** (Knuth Vol. 3,
//! §5.4.2) as its per-node sequential sorter — both for the initial local
//! sort (step 1) and, conceptually, for the final merge (step 5). This crate
//! implements that sorter from scratch over the [`pdm`] block-file substrate,
//! plus the pieces it decomposes into, each independently reusable:
//!
//! * [`stream::RecordStream`] — a fallible record source (block files,
//!   in-memory vectors, bounded run views).
//! * [`kernel`] — pluggable in-core sort kernels: the radix fast path on
//!   order-preserving `sort_key()`s (the default) and the comparison-based
//!   reference path, byte-identical by construction.
//! * [`loser_tree::LoserTree`] — tournament-tree k-way merge with cached
//!   winner keys, branch-free replay and exact select counting.
//! * [`streaming::StreamingLoserTree`] — the push-model variant: the
//!   caller feeds head records as they become available (e.g. network
//!   chunks mid-flight), enabling the cluster layer's fused
//!   exchange-merge.
//! * [`run_formation`] — initial sorted-run creation, by memory-load chunk
//!   sorting or by replacement selection (runs of expected length `2M`).
//! * [`polyphase`] — polyphase merge sort with ideal (generalized-Fibonacci)
//!   run distribution and dummy runs.
//! * [`kway`] — a balanced k-way merge sort baseline (textbook external
//!   sort) and a single-pass multiway merge of pre-sorted files (used by
//!   PSRS step 5).
//! * [`distribution`] — the PDM *distribution sort* of the paper's §2
//!   (randomized splitters, S buckets, recursion), the other I/O-optimal
//!   paradigm, used as a comparison point in the ablations.
//! * [`striped`] — a two-phase sort over a `D`-disk [`pdm::DiskArray`],
//!   demonstrating the PDM's `1/D` parallel-I/O factor.
//! * [`verify`] — sortedness checks and an order-independent multiset
//!   fingerprint, used by every test and by the harness's self-checks.
//!
//! Every sorter returns a [`report::SortReport`] with record counts, run
//! counts, pass counts, comparison counts and the block-I/O delta, so the
//! layers above (the cluster cost model, the PDM-bound harness) can convert
//! work into virtual time without this crate knowing about clocks.

pub mod config;
pub mod distribution;
pub mod kernel;
pub mod kway;
pub mod loser_tree;
pub mod parallel_merge;
pub mod planner;
pub mod polyphase;
pub mod report;
pub mod run_formation;
pub mod stream;
pub mod streaming;
pub mod striped;
pub mod verify;

pub use config::{ExtSortConfig, PipelineConfig, RunFormation};
pub use distribution::distribution_sort;
pub use kernel::{sort_chunk, sort_chunk_pooled, KernelWork, SortKernel};
pub use kway::{
    balanced_kway_sort, merge_sorted_files, merge_sorted_files_kernel, merge_sorted_files_with,
};
pub use loser_tree::LoserTree;
pub use parallel_merge::{
    parallel_merge_segments, plan_cuts, planned_workers, seek_dominated, MergePlan, MergeSegment,
    ParallelMergeOutcome, MAX_MERGE_WORKERS,
};
pub use planner::{
    choose_merge_workers, plan_exchange, planned_depth, predict_merge_parts, predict_merge_time,
    CpuCost, ExchangePlan, MergeShape,
};
pub use polyphase::polyphase_sort;
pub use report::{MergeReport, SortReport};
pub use stream::{RecordStream, SliceStream};
pub use streaming::{MergeStep, StreamingLoserTree};
pub use striped::striped_two_phase_sort;
pub use verify::{fingerprint_file, fingerprint_slice, is_sorted_file, Fingerprint};
