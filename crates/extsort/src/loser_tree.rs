//! Tournament (loser) tree for k-way merging.
//!
//! The classic selection structure for external merging (Knuth §5.4.1):
//! with `k` sorted input streams, producing each output record costs exactly
//! `⌈log₂ k⌉` comparisons — replay the winner's path, recording losers.
//! Exhausted streams are treated as carrying a `+∞` sentinel; ties are
//! broken by stream index, which makes the merge **stable** with respect to
//! input order and therefore deterministic.
//!
//! The tree counts its comparisons; the cost models charge CPU time from
//! that count.

use pdm::{PdmResult, Record};

use crate::stream::RecordStream;

/// A k-way merge over sorted [`RecordStream`]s.
#[derive(Debug)]
pub struct LoserTree<R: Record, S: RecordStream<R>> {
    sources: Vec<S>,
    /// Current head record of each source (`None` = exhausted).
    heads: Vec<Option<R>>,
    /// Internal nodes: `tree[j]` holds the *loser* source index at node `j`;
    /// `tree[0]` holds the overall winner.
    tree: Vec<usize>,
    k: usize,
    comparisons: u64,
    produced: u64,
}

impl<R: Record, S: RecordStream<R>> LoserTree<R, S> {
    /// Builds the tree and primes it with the first record of every source.
    ///
    /// An empty source list is allowed (the merge is immediately exhausted).
    pub fn new(mut sources: Vec<S>) -> PdmResult<Self> {
        let k = sources.len().max(1);
        let mut heads = Vec::with_capacity(sources.len());
        for s in &mut sources {
            heads.push(s.next_record()?);
        }
        heads.resize(k, None);
        let mut lt = LoserTree {
            sources,
            heads,
            tree: vec![usize::MAX; k],
            k,
            comparisons: 0,
            produced: 0,
        };
        lt.build();
        Ok(lt)
    }

    /// Initial tournament: fills every internal node with its loser and
    /// `tree[0]` with the overall winner. O(k) comparisons.
    fn build(&mut self) {
        self.tree = vec![usize::MAX; self.k];
        let root_winner = self.init_node(1);
        self.tree[0] = root_winner;
    }

    /// Recursively plays the sub-tournament rooted at implicit tree node
    /// `node` (children `2·node`, `2·node+1`; nodes `>= k` are the leaves,
    /// leaf `j` holding source `j − k`). Stores the loser at `node` and
    /// returns the winner.
    fn init_node(&mut self, node: usize) -> usize {
        if node >= self.k {
            return node - self.k;
        }
        let left = self.init_node(2 * node);
        let right = self.init_node(2 * node + 1);
        let (winner, loser) = if self.beats(left, right) {
            (left, right)
        } else {
            (right, left)
        };
        self.tree[node] = loser;
        winner
    }

    /// Does source `a`'s head beat (sort before) source `b`'s head?
    /// `None` (exhausted) loses to everything; ties break by index.
    fn beats(&mut self, a: usize, b: usize) -> bool {
        self.comparisons += 1;
        match (&self.heads[a], &self.heads[b]) {
            (Some(x), Some(y)) => (x, a) < (y, b),
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => a < b,
        }
    }

    /// Pops the smallest head record, refilling from its source.
    pub fn next_record(&mut self) -> PdmResult<Option<R>> {
        let winner = self.tree[0];
        let out = match self.heads.get(winner).copied().flatten() {
            Some(r) => r,
            None => return Ok(None),
        };
        // Refill the winning source and replay its path to the root.
        self.heads[winner] = if winner < self.sources.len() {
            self.sources[winner].next_record()?
        } else {
            None
        };
        let mut cand = winner;
        let mut node = (winner + self.k) / 2;
        while node >= 1 {
            let stored = self.tree[node];
            if stored != usize::MAX && self.beats(stored, cand) {
                self.tree[node] = cand;
                cand = stored;
            }
            if node == 1 {
                break;
            }
            node /= 2;
        }
        self.tree[0] = cand;
        self.produced += 1;
        Ok(Some(out))
    }

    /// Comparisons performed so far.
    pub fn comparisons(&self) -> u64 {
        self.comparisons
    }

    /// Records produced so far.
    pub fn produced(&self) -> u64 {
        self.produced
    }

    /// Number of input streams.
    pub fn fan_in(&self) -> usize {
        self.sources.len()
    }
}

impl<R: Record, S: RecordStream<R>> RecordStream<R> for LoserTree<R, S> {
    fn next_record(&mut self) -> PdmResult<Option<R>> {
        LoserTree::next_record(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::SliceStream;

    fn merge_all(inputs: Vec<Vec<u32>>) -> Vec<u32> {
        let sources: Vec<_> = inputs.into_iter().map(SliceStream::new).collect();
        let mut lt = LoserTree::new(sources).unwrap();
        let mut out = Vec::new();
        while let Some(x) = lt.next_record().unwrap() {
            out.push(x);
        }
        out
    }

    #[test]
    fn merges_two_sorted_runs() {
        assert_eq!(
            merge_all(vec![vec![1, 3, 5], vec![2, 4, 6]]),
            vec![1, 2, 3, 4, 5, 6]
        );
    }

    #[test]
    fn merges_many_runs_with_duplicates() {
        let out = merge_all(vec![
            vec![1, 1, 8],
            vec![1, 5, 5],
            vec![0, 9],
            vec![],
            vec![5],
        ]);
        assert_eq!(out, vec![0, 1, 1, 1, 5, 5, 5, 8, 9]);
    }

    #[test]
    fn single_source_passthrough() {
        assert_eq!(merge_all(vec![vec![2, 4, 9]]), vec![2, 4, 9]);
    }

    #[test]
    fn no_sources() {
        assert_eq!(merge_all(vec![]), Vec::<u32>::new());
    }

    #[test]
    fn all_empty_sources() {
        assert_eq!(merge_all(vec![vec![], vec![], vec![]]), Vec::<u32>::new());
    }

    #[test]
    fn skewed_lengths() {
        let long: Vec<u32> = (0..1000).map(|i| i * 2).collect();
        let short = vec![1u32, 999, 1999];
        let mut expect = [long.clone(), short.clone()].concat();
        expect.sort_unstable();
        assert_eq!(merge_all(vec![long, short]), expect);
    }

    #[test]
    fn comparison_count_is_logarithmic() {
        // k=16 runs of 64 each: ~ n * log2(k) = 1024 * 4 comparisons.
        let inputs: Vec<Vec<u32>> = (0..16)
            .map(|s| (0..64).map(|i| (i * 16 + s) as u32).collect())
            .collect();
        let sources: Vec<_> = inputs.into_iter().map(SliceStream::new).collect();
        let mut lt = LoserTree::new(sources).unwrap();
        while lt.next_record().unwrap().is_some() {}
        assert_eq!(lt.produced(), 1024);
        let per_record = lt.comparisons() as f64 / 1024.0;
        assert!(
            per_record <= 5.0,
            "expected ~log2(16)=4 comparisons per record, got {per_record}"
        );
    }

    #[test]
    fn deterministic_with_equal_keys() {
        // Two identical merges must produce identical sequences.
        let a = merge_all(vec![vec![7; 10], vec![7; 10], vec![7; 3]]);
        let b = merge_all(vec![vec![7; 10], vec![7; 10], vec![7; 3]]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 23);
    }

    #[test]
    fn non_power_of_two_fanin() {
        for k in [3usize, 5, 6, 7, 9, 11, 13] {
            let inputs: Vec<Vec<u32>> = (0..k)
                .map(|s| (0..50).map(|i| (i * k + s) as u32).collect())
                .collect();
            let merged = merge_all(inputs);
            let expect: Vec<u32> = (0..(50 * k) as u32).collect();
            assert_eq!(merged, expect, "fan-in {k}");
        }
    }
}
