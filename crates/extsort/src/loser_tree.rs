//! Tournament (loser) tree for k-way merging.
//!
//! The classic selection structure for external merging (Knuth §5.4.1):
//! with `k` sorted input streams, producing each output record costs exactly
//! `⌈log₂ k⌉` comparisons — replay the winner's path, recording losers.
//! Exhausted streams are treated as carrying a `+∞` sentinel; ties are
//! broken by stream index, which makes the merge **stable** with respect to
//! input order and therefore deterministic.
//!
//! Two implementation choices keep the inner loop fast without changing any
//! observable behavior:
//!
//! * **Cached keys.** Each head's order-preserving [`Record::sort_key`] is
//!   cached in a flat `Vec<u64>` beside the heads (`u64::MAX` when the
//!   stream is exhausted). Most selects resolve on a single integer
//!   compare; only key ties (always, for records without a usable key —
//!   their cached key is 0) fall back to the full `(record, index)`
//!   comparison. Because `u64::MAX` is also a *valid* live key, the
//!   sentinel is disambiguated by that same fallback: equal cached keys
//!   consult `heads`, where `None` loses to everything.
//! * **Branch-free replay.** The tree is built iteratively bottom-up (a
//!   `winners` scratch array, no recursion — fan-ins of tens of thousands
//!   of streams cannot overflow the stack), which fills *every* internal
//!   node. Replay therefore needs no "empty node" guard and updates each
//!   node with two cmov-friendly selects instead of a data-dependent
//!   branch.
//!
//! The tree counts its selects in `comparisons`; the count is identical to
//! the classic implementation's, and the cost models charge CPU time from
//! it (as key ops when a key-based kernel drives the merge).

use pdm::{PdmResult, Record};

use crate::stream::RecordStream;

/// A k-way merge over sorted [`RecordStream`]s.
#[derive(Debug)]
pub struct LoserTree<R: Record, S: RecordStream<R>> {
    sources: Vec<S>,
    /// Current head record of each source (`None` = exhausted).
    heads: Vec<Option<R>>,
    /// Cached `sort_key()` of each head: `u64::MAX` when exhausted, 0 when
    /// the record type has no usable key (every select then falls through
    /// to the full comparison).
    keys: Vec<u64>,
    /// Internal nodes: `tree[j]` holds the *loser* source index at node `j`;
    /// `tree[0]` holds the overall winner.
    tree: Vec<usize>,
    k: usize,
    comparisons: u64,
    produced: u64,
}

impl<R: Record, S: RecordStream<R>> LoserTree<R, S> {
    /// Builds the tree and primes it with the first record of every source.
    ///
    /// An empty source list is allowed (the merge is immediately exhausted).
    pub fn new(mut sources: Vec<S>) -> PdmResult<Self> {
        let k = sources.len().max(1);
        let mut heads = Vec::with_capacity(sources.len());
        for s in &mut sources {
            heads.push(s.next_record()?);
        }
        heads.resize(k, None);
        let keys = heads.iter().map(Self::cached_key).collect();
        let mut lt = LoserTree {
            sources,
            heads,
            keys,
            tree: vec![usize::MAX; k],
            k,
            comparisons: 0,
            produced: 0,
        };
        lt.build();
        Ok(lt)
    }

    /// The cached key for a head slot. Live heads without a usable key all
    /// cache 0, degrading every select to the full comparison.
    fn cached_key(head: &Option<R>) -> u64 {
        match head {
            Some(r) if R::HAS_SORT_KEY => r.sort_key(),
            Some(_) => 0,
            None => u64::MAX,
        }
    }

    /// Initial tournament, bottom-up and iterative: `winners[j]` holds the
    /// winner of the subtree rooted at implicit node `j` (leaves `k..2k`
    /// hold the sources); each internal node stores its loser. O(k)
    /// comparisons, O(1) stack regardless of fan-in.
    fn build(&mut self) {
        self.tree = vec![usize::MAX; self.k];
        if self.k == 1 {
            self.tree[0] = 0;
            return;
        }
        let mut winners = vec![usize::MAX; 2 * self.k];
        for (j, w) in winners[self.k..].iter_mut().enumerate() {
            *w = j;
        }
        for node in (1..self.k).rev() {
            let left = winners[2 * node];
            let right = winners[2 * node + 1];
            let (winner, loser) = if self.beats(left, right) {
                (left, right)
            } else {
                (right, left)
            };
            self.tree[node] = loser;
            winners[node] = winner;
        }
        self.tree[0] = winners[1];
    }

    /// Does source `a`'s head beat (sort before) source `b`'s head?
    /// Resolved by the cached keys when they differ; ties (and keyless
    /// records, and the `u64::MAX`-key-vs-exhausted collision) fall back to
    /// the full comparison, where `None` loses to everything and record
    /// ties break by index.
    fn beats(&mut self, a: usize, b: usize) -> bool {
        self.comparisons += 1;
        let (ka, kb) = (self.keys[a], self.keys[b]);
        if ka != kb {
            return ka < kb;
        }
        match (&self.heads[a], &self.heads[b]) {
            (Some(x), Some(y)) => (x, a) < (y, b),
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => a < b,
        }
    }

    /// Pops the smallest head record, refilling from its source.
    pub fn next_record(&mut self) -> PdmResult<Option<R>> {
        let winner = self.tree[0];
        let out = match self.heads.get(winner).copied().flatten() {
            Some(r) => r,
            None => return Ok(None),
        };
        // Refill the winning source and replay its path to the root.
        self.heads[winner] = if winner < self.sources.len() {
            self.sources[winner].next_record()?
        } else {
            None
        };
        self.keys[winner] = Self::cached_key(&self.heads[winner]);
        let mut cand = winner;
        let mut node = (winner + self.k) / 2;
        while node >= 1 {
            // Every internal node is filled after build(), so no empty-node
            // guard: two selects the optimizer can lower branch-free.
            let stored = self.tree[node];
            let stored_wins = self.beats(stored, cand);
            self.tree[node] = if stored_wins { cand } else { stored };
            cand = if stored_wins { stored } else { cand };
            if node == 1 {
                break;
            }
            node /= 2;
        }
        self.tree[0] = cand;
        self.produced += 1;
        Ok(Some(out))
    }

    /// Comparisons performed so far (tournament selects; each is one cached
    /// u64 key compare plus, on ties only, one full record comparison).
    pub fn comparisons(&self) -> u64 {
        self.comparisons
    }

    /// Records produced so far.
    pub fn produced(&self) -> u64 {
        self.produced
    }

    /// Number of input streams.
    pub fn fan_in(&self) -> usize {
        self.sources.len()
    }
}

impl<R: Record, S: RecordStream<R>> RecordStream<R> for LoserTree<R, S> {
    fn next_record(&mut self) -> PdmResult<Option<R>> {
        LoserTree::next_record(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::SliceStream;

    fn merge_all(inputs: Vec<Vec<u32>>) -> Vec<u32> {
        let sources: Vec<_> = inputs.into_iter().map(SliceStream::new).collect();
        let mut lt = LoserTree::new(sources).unwrap();
        let mut out = Vec::new();
        while let Some(x) = lt.next_record().unwrap() {
            out.push(x);
        }
        out
    }

    #[test]
    fn merges_two_sorted_runs() {
        assert_eq!(
            merge_all(vec![vec![1, 3, 5], vec![2, 4, 6]]),
            vec![1, 2, 3, 4, 5, 6]
        );
    }

    #[test]
    fn merges_many_runs_with_duplicates() {
        let out = merge_all(vec![
            vec![1, 1, 8],
            vec![1, 5, 5],
            vec![0, 9],
            vec![],
            vec![5],
        ]);
        assert_eq!(out, vec![0, 1, 1, 1, 5, 5, 5, 8, 9]);
    }

    #[test]
    fn single_source_passthrough() {
        assert_eq!(merge_all(vec![vec![2, 4, 9]]), vec![2, 4, 9]);
    }

    #[test]
    fn no_sources() {
        assert_eq!(merge_all(vec![]), Vec::<u32>::new());
    }

    #[test]
    fn all_empty_sources() {
        assert_eq!(merge_all(vec![vec![], vec![], vec![]]), Vec::<u32>::new());
    }

    #[test]
    fn skewed_lengths() {
        let long: Vec<u32> = (0..1000).map(|i| i * 2).collect();
        let short = vec![1u32, 999, 1999];
        let mut expect = [long.clone(), short.clone()].concat();
        expect.sort_unstable();
        assert_eq!(merge_all(vec![long, short]), expect);
    }

    #[test]
    fn comparison_count_is_logarithmic() {
        // k=16 runs of 64 each: ~ n * log2(k) = 1024 * 4 comparisons.
        let inputs: Vec<Vec<u32>> = (0..16)
            .map(|s| (0..64).map(|i| (i * 16 + s) as u32).collect())
            .collect();
        let sources: Vec<_> = inputs.into_iter().map(SliceStream::new).collect();
        let mut lt = LoserTree::new(sources).unwrap();
        while lt.next_record().unwrap().is_some() {}
        assert_eq!(lt.produced(), 1024);
        let per_record = lt.comparisons() as f64 / 1024.0;
        assert!(
            per_record <= 5.0,
            "expected ~log2(16)=4 comparisons per record, got {per_record}"
        );
    }

    #[test]
    fn deterministic_with_equal_keys() {
        // Two identical merges must produce identical sequences.
        let a = merge_all(vec![vec![7; 10], vec![7; 10], vec![7; 3]]);
        let b = merge_all(vec![vec![7; 10], vec![7; 10], vec![7; 3]]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 23);
    }

    #[test]
    fn non_power_of_two_fanin() {
        for k in [3usize, 5, 6, 7, 9, 11, 13] {
            let inputs: Vec<Vec<u32>> = (0..k)
                .map(|s| (0..50).map(|i| (i * k + s) as u32).collect())
                .collect();
            let merged = merge_all(inputs);
            let expect: Vec<u32> = (0..(50 * k) as u32).collect();
            assert_eq!(merged, expect, "fan-in {k}");
        }
    }

    #[test]
    fn max_key_records_not_confused_with_exhaustion() {
        // u64::MAX is a *valid* live key and collides with the exhausted
        // sentinel; the full-comparison fallback must disambiguate.
        let inputs = vec![
            vec![1u64, u64::MAX, u64::MAX],
            vec![u64::MAX],
            vec![0, 2, u64::MAX - 1],
        ];
        let sources: Vec<_> = inputs.clone().into_iter().map(SliceStream::new).collect();
        let mut lt = LoserTree::new(sources).unwrap();
        let mut out = Vec::new();
        while let Some(x) = lt.next_record().unwrap() {
            out.push(x);
        }
        let mut expect: Vec<u64> = inputs.concat();
        expect.sort_unstable();
        assert_eq!(out, expect);
    }

    #[test]
    fn huge_fanin_64ki_streams() {
        // Regression for the recursive tournament build: 64 Ki streams must
        // build and merge without blowing the stack.
        let k = 1usize << 16;
        let sources: Vec<_> = (0..k).map(|s| SliceStream::new(vec![s as u32])).collect();
        let mut lt = LoserTree::new(sources).unwrap();
        let mut prev = None;
        let mut n = 0u64;
        while let Some(x) = lt.next_record().unwrap() {
            assert!(prev <= Some(x), "out of order at record {n}");
            prev = Some(x);
            n += 1;
        }
        assert_eq!(n, k as u64);
        assert_eq!(lt.produced(), k as u64);
    }
}
