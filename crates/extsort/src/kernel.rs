//! Pluggable CPU sort kernels for the in-core sorting steps.
//!
//! Every sorter in this crate (and the local sorts in `hetsort::incore`)
//! funnels its in-core sorting through [`sort_chunk`], selected by a
//! [`SortKernel`]:
//!
//! * [`SortKernel::Comparison`] — `sort_unstable`, priced by the classical
//!   `n·⌈log₂ n⌉` comparison estimate. The reference path: simplest, and
//!   what the paper's 2002 Alpha code did.
//! * [`SortKernel::Radix`] — LSD radix sort on the record's
//!   order-preserving [`pdm::Record::sort_key`], with an insertion-sort
//!   cutoff for small chunks and a skip for trivial digit passes. Priced
//!   by *counted key passes* ([`KernelWork::key_ops`]) instead of
//!   comparisons — each pass touches every record once with sequential
//!   access and no branch misprediction, so it is far cheaper per unit.
//! * [`SortKernel::Ips4o`] — in-place parallel-style super-scalar sample
//!   sort (the sequential core of ips⁴o): branchless classification into
//!   up to 256 buckets via an implicit splitter search tree, per-bucket
//!   staging buffers flushed block-at-a-time into the already-consumed
//!   prefix, an in-place block permutation, and recursion with an
//!   insertion-sort base case. Needs only O(k·B) extra memory (drawn from
//!   a shared [`pdm::BufferPool`]) instead of the radix kernel's O(n)
//!   scratch copy. Priced like radix: two key passes per recursion level.
//!
//! Both kernels produce **byte-identical** output: every [`pdm::Record`]
//! has a total `Ord`, so equal records are bitwise equal and any correct
//! sort yields the same byte sequence. Records whose key is not a total
//! order ([`pdm::Record::KEY_IS_TOTAL`] `== false`, e.g.
//! [`pdm::record::KeyPayload`]) get a cleanup pass that finishes equal-key
//! groups with the full `Ord`. Records without a usable key fall back to
//! the comparison path. The differential tests in
//! `tests/kernel_differential.rs` enforce byte identity across kernels.

use pdm::{BufferPool, Record};

use crate::report::incore_sort_comparisons;

/// Which in-core sorting kernel the sorters use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SortKernel {
    /// `sort_unstable` on the full record `Ord` — the reference path kept
    /// for differential testing and for the paper-faithful Table 2 pricing.
    Comparison,
    /// LSD radix sort on `sort_key()` — the default fast path.
    #[default]
    Radix,
    /// Branchless in-place sample sort on `sort_key()` — the cache-friendly
    /// alternative fast path with O(k·B) extra memory.
    Ips4o,
}

impl SortKernel {
    /// Parses a CLI spelling (`comparison` | `radix` | `ips4o`).
    pub fn parse(s: &str) -> Option<SortKernel> {
        match s {
            "comparison" => Some(SortKernel::Comparison),
            "radix" => Some(SortKernel::Radix),
            "ips4o" => Some(SortKernel::Ips4o),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn name(&self) -> &'static str {
        match self {
            SortKernel::Comparison => "comparison",
            SortKernel::Radix => "radix",
            SortKernel::Ips4o => "ips4o",
        }
    }

    /// Whether this kernel sorts type `R` by its cached key (and therefore
    /// whether tournament selects over `R` should be priced as key ops).
    pub fn key_based<R: Record>(&self) -> bool {
        matches!(self, SortKernel::Radix | SortKernel::Ips4o) && R::HAS_SORT_KEY
    }
}

/// Work counted by one kernel invocation. Deterministic in the input data,
/// so pipelined and sequential executions report identical counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelWork {
    /// Full-record comparisons (comparison kernel, insertion-sorted small
    /// chunks, cleanup of equal-key groups).
    pub comparisons: u64,
    /// Key-pass record touches: one per record per radix pass (histogram,
    /// distribution, and cleanup-scan passes alike).
    pub key_ops: u64,
}

impl KernelWork {
    /// Combines two work tallies.
    #[must_use]
    pub fn plus(self, other: KernelWork) -> KernelWork {
        KernelWork {
            comparisons: self.comparisons + other.comparisons,
            key_ops: self.key_ops + other.key_ops,
        }
    }
}

/// Below this length the radix kernel insertion-sorts instead: per-digit
/// histograms over 256 buckets cost more than they save on tiny chunks.
pub const RADIX_INSERTION_CUTOFF: usize = 64;

/// Below this length the ips4o kernel insertion-sorts: sampling, tree
/// building and block bookkeeping dwarf the sort itself on tiny inputs.
pub const IPS4O_BASE_CUTOFF: usize = 64;

/// Buckets at or below this record count are finished with the LSD radix
/// base case instead of further partitioning levels. 2¹⁶ 4-byte records is
/// 256 KiB — the bucket and its radix scratch stay L2-resident, which is
/// the whole point of ips4o's partitioning: one cache-aware classify +
/// permute level turns a memory-bound sort into cache-sized base sorts.
pub const IPS4O_RADIX_CUTOFF: usize = 1 << 16;

/// Records classified per batch in the ips4o scan: the splitter-tree
/// descent is a serial dependency chain per record, so classifying a small
/// batch into a local index array first lets independent chains overlap in
/// the pipeline before the (cache-random) bucket stores happen.
const IPS4O_CLASSIFY_BATCH: usize = 16;

/// Records per ips4o staging block: bucket buffers fill to this size before
/// being flushed into the consumed prefix, and the in-place permutation
/// moves blocks of exactly this many records.
pub const IPS4O_BLOCK: usize = 128;

/// Upper bound on ips4o buckets per recursion level (a power of two; the
/// implicit search tree then classifies with `log₂ k` branch-free steps).
pub const IPS4O_MAX_BUCKETS: usize = 256;

/// Sorts `data` in-core with the chosen kernel and returns the counted
/// work. The result is byte-identical to `data.sort_unstable()` for every
/// kernel (total `Ord` ⇒ equal records are bitwise equal).
pub fn sort_chunk<R: Record>(data: &mut [R], kernel: SortKernel) -> KernelWork {
    sort_chunk_pooled(data, kernel, None)
}

/// [`sort_chunk`] with an optional shared [`BufferPool`]: kernels that
/// stage through scratch blocks (ips4o) draw them from `pool` instead of
/// allocating fresh, so repeated chunk sorts recycle the same memory.
pub fn sort_chunk_pooled<R: Record>(
    data: &mut [R],
    kernel: SortKernel,
    pool: Option<&BufferPool>,
) -> KernelWork {
    match kernel {
        SortKernel::Comparison => comparison_sort(data),
        SortKernel::Radix => {
            if !R::HAS_SORT_KEY {
                // No usable key: the comparison path is the radix fallback.
                comparison_sort(data)
            } else if data.len() <= RADIX_INSERTION_CUTOFF {
                KernelWork {
                    comparisons: insertion_sort(data),
                    key_ops: 0,
                }
            } else {
                radix_sort(data)
            }
        }
        SortKernel::Ips4o => {
            if !R::HAS_SORT_KEY || R::view_bytes(&data[..0]).is_none() {
                // No usable key, or the record has no in-place byte view
                // (big-endian target): fall back to the reference path.
                comparison_sort(data)
            } else if data.len() <= IPS4O_BASE_CUTOFF {
                KernelWork {
                    comparisons: insertion_sort(data),
                    key_ops: 0,
                }
            } else {
                ips4o_sort(data, pool)
            }
        }
    }
}

fn comparison_sort<R: Record>(data: &mut [R]) -> KernelWork {
    data.sort_unstable();
    KernelWork {
        comparisons: incore_sort_comparisons(data.len() as u64),
        key_ops: 0,
    }
}

/// Stable insertion sort, counting its actual comparisons.
fn insertion_sort<R: Record>(data: &mut [R]) -> u64 {
    let mut comparisons = 0u64;
    for i in 1..data.len() {
        let x = data[i];
        let mut j = i;
        while j > 0 {
            comparisons += 1;
            if data[j - 1] > x {
                data[j] = data[j - 1];
                j -= 1;
            } else {
                break;
            }
        }
        data[j] = x;
    }
    comparisons
}

/// LSD radix sort on `sort_key()`, 8-bit digits, all 8 histograms built in
/// one read pass, trivial digit passes (every key sharing one digit value)
/// skipped. Stable; finished by a full-`Ord` cleanup of equal-key groups
/// when the key is not a total order.
fn radix_sort<R: Record>(data: &mut [R]) -> KernelWork {
    let n = data.len();
    let mut hist = [[0usize; 256]; 8];
    for r in data.iter() {
        let k = r.sort_key();
        for (d, h) in hist.iter_mut().enumerate() {
            h[(k >> (8 * d)) as u8 as usize] += 1;
        }
    }
    let mut key_ops = n as u64; // the histogram pass

    let mut scratch: Vec<R> = data.to_vec();
    let mut in_data = true;
    for (d, h) in hist.iter().enumerate() {
        if h.contains(&n) {
            continue; // every key shares this digit: pass is a no-op
        }
        let mut offs = [0usize; 256];
        let mut sum = 0usize;
        for (o, &c) in offs.iter_mut().zip(h.iter()) {
            *o = sum;
            sum += c;
        }
        if in_data {
            distribute(data, &mut scratch, d, &mut offs);
        } else {
            distribute(&scratch, data, d, &mut offs);
        }
        in_data = !in_data;
        key_ops += n as u64;
    }
    if !in_data {
        data.copy_from_slice(&scratch);
    }

    let mut comparisons = 0u64;
    if !R::KEY_IS_TOTAL {
        // Equal keys do not imply equal records: finish each equal-key
        // group with the full `Ord` (one scan pass + small sorts).
        key_ops += n as u64;
        let mut i = 0usize;
        while i < n {
            let k = data[i].sort_key();
            let mut j = i + 1;
            while j < n && data[j].sort_key() == k {
                j += 1;
            }
            if j - i > 1 {
                data[i..j].sort_unstable();
                comparisons += incore_sort_comparisons((j - i) as u64);
            }
            i = j;
        }
    }
    KernelWork {
        comparisons,
        key_ops,
    }
}

fn distribute<R: Record>(src: &[R], dst: &mut [R], digit: usize, offs: &mut [usize; 256]) {
    let shift = 8 * digit;
    for &r in src {
        let b = (r.sort_key() >> shift) as u8 as usize;
        dst[offs[b]] = r;
        offs[b] += 1;
    }
}

// ---------------------------------------------------------------------------
// ips4o: in-place super-scalar sample sort (sequential core).
//
// One recursion level runs four phases over a slice of `n` records:
//
// 1. **Sample & tree.** A deterministic stride sample is key-sorted, its
//    distinct splitters padded to `k-1` entries (k a power of two) and laid
//    out as an implicit binary search tree, so classification is `log₂ k`
//    iterations of `i = 2i + (key > tree[i])` — branch-free.
// 2. **Classify & stage.** A single left-to-right scan classifies every
//    record into one of `k` byte buffers of `IPS4O_BLOCK` records. A full
//    buffer flushes as one block to the write cursor `w`; because at least
//    one full buffer's worth of records is always pending, `w + B ≤ read`
//    and the flush only overwrites already-consumed records.
// 3. **Block permutation.** Flushed blocks are pure (one bucket each).
//    Cycle-following moves each block to the next aligned slot inside its
//    bucket's final range `[dᵢ, eᵢ)`; at most one block per bucket does not
//    fit an interior slot (`⌊eᵢ/B⌋ - ⌈dᵢ/B⌉ ≥ fᵢ - 1`) and is parked in an
//    overflow buffer.
// 4. **Cleanup.** The head gap `[dᵢ, ⌈dᵢ/B⌉·B)`, the tail gap after the
//    last placed block, the overflow block and the partial buffer balance
//    exactly; the gaps are filled and the level is done.
//
// Buckets then recurse until they fit in cache (`IPS4O_RADIX_CUTOFF`),
// where the LSD radix base case finishes them with L2-resident passes —
// partitioning exists to make the base sorts cache-sized, not to replace
// them. Equal-key buckets make no progress and drop to the comparison
// path, which also finishes `!KEY_IS_TOTAL` records with the full `Ord` —
// so no separate equal-key cleanup pass is needed.
// ---------------------------------------------------------------------------

/// Scratch-block allocator for one ips4o invocation: blocks come from the
/// shared [`BufferPool`] when one is supplied and are recycled across
/// recursion levels either way.
struct Ips4oScratch<'p> {
    pool: Option<&'p BufferPool>,
    free: Vec<Vec<u8>>,
}

impl<'p> Ips4oScratch<'p> {
    fn new(pool: Option<&'p BufferPool>) -> Self {
        Ips4oScratch {
            pool,
            free: Vec::new(),
        }
    }

    /// A cleared buffer with at least `bytes` capacity.
    fn take(&mut self, bytes: usize) -> Vec<u8> {
        if let Some(mut b) = self.free.pop() {
            b.clear();
            b.reserve(bytes);
            return b;
        }
        match self.pool {
            Some(p) => p.take(bytes),
            None => Vec::with_capacity(bytes),
        }
    }

    fn put(&mut self, buf: Vec<u8>) {
        self.free.push(buf);
    }
}

impl Drop for Ips4oScratch<'_> {
    fn drop(&mut self) {
        if let Some(p) = self.pool {
            for b in self.free.drain(..) {
                p.put(b);
            }
        }
    }
}

/// The implicit splitter search tree plus the classification step count.
struct SplitterTree {
    /// 1-indexed heap layout; `tree[0]` unused.
    tree: Vec<u64>,
    /// Number of buckets `k` (power of two).
    k: usize,
    /// `log₂ k` — classification iterations per record.
    log_k: u32,
}

impl SplitterTree {
    /// Builds the tree from `splitters` (sorted, deduplicated, non-empty),
    /// padding to `k - 1` entries by repeating the largest splitter. The
    /// padded duplicates create empty buckets, never wrong ones.
    fn build(splitters: &[u64], max_buckets: usize) -> SplitterTree {
        debug_assert!(!splitters.is_empty());
        let k = (splitters.len() + 1)
            .next_power_of_two()
            .min(max_buckets)
            .max(2);
        let mut padded = Vec::with_capacity(k - 1);
        padded.extend_from_slice(&splitters[..splitters.len().min(k - 1)]);
        while padded.len() < k - 1 {
            padded.push(*padded.last().expect("non-empty splitters"));
        }
        let mut tree = vec![0u64; k];
        fill_tree(&mut tree, &padded, 1, 0, k - 1);
        SplitterTree {
            tree,
            k,
            log_k: k.trailing_zeros(),
        }
    }

    /// Bucket index for `key`: branch-free descent, `key > tree[i]` goes
    /// right. Bucket `b` holds keys in `(splitter[b-1], splitter[b]]`, so
    /// equal keys always land in the same bucket.
    #[inline]
    fn classify(&self, key: u64) -> usize {
        let mut i = 1usize;
        for _ in 0..self.log_k {
            i = 2 * i + (key > self.tree[i]) as usize;
        }
        i - self.k
    }
}

/// Lays `splitters[lo..hi]`'s median at `node`, recursing into the halves —
/// the in-order traversal of the heap reads back the sorted splitters.
fn fill_tree(tree: &mut [u64], splitters: &[u64], node: usize, lo: usize, hi: usize) {
    if lo >= hi {
        return;
    }
    let mid = lo + (hi - lo) / 2;
    tree[node] = splitters[mid];
    fill_tree(tree, splitters, 2 * node, lo, mid);
    fill_tree(tree, splitters, 2 * node + 1, mid + 1, hi);
}

/// The native byte view of a record slice. Only called on types that passed
/// the `view_bytes` gate in [`sort_chunk_pooled`].
#[inline]
fn rec_bytes<R: Record>(recs: &[R]) -> &[u8] {
    R::view_bytes(recs).expect("record type gated as byte-viewable")
}

fn ips4o_sort<R: Record>(data: &mut [R], pool: Option<&BufferPool>) -> KernelWork {
    // Depth budget ~2·log₂ n: adversarial splitter luck degrades to the
    // comparison path instead of deep recursion.
    let depth = 2 * (usize::BITS - data.len().leading_zeros());
    let mut scratch = Ips4oScratch::new(pool);
    let mut work = KernelWork::default();
    ips4o_rec(data, depth, &mut scratch, &mut work);
    work
}

fn ips4o_rec<R: Record>(
    data: &mut [R],
    depth: u32,
    scratch: &mut Ips4oScratch<'_>,
    work: &mut KernelWork,
) {
    let n = data.len();
    if n <= IPS4O_BASE_CUTOFF {
        work.comparisons += insertion_sort(data);
        return;
    }
    if n <= IPS4O_RADIX_CUTOFF {
        // Cache-sized base case: the bucket fits in L2, where the LSD
        // radix passes are fastest. Further partitioning levels would cost
        // more classify+move passes than they save.
        *work = work.plus(radix_sort(data));
        return;
    }
    if depth == 0 {
        *work = work.plus(comparison_sort(data));
        return;
    }

    // Phase 1: deterministic stride sample, sorted and deduplicated.
    let target_k = (n / (2 * IPS4O_BLOCK))
        .next_power_of_two()
        .clamp(2, IPS4O_MAX_BUCKETS);
    let sample_size = (2 * target_k - 1).min(n);
    let stride = n / sample_size;
    let mut sample: Vec<u64> = (0..sample_size)
        .map(|i| data[i * stride].sort_key())
        .collect();
    sample.sort_unstable();
    work.comparisons += incore_sort_comparisons(sample_size as u64);
    let mut splitters: Vec<u64> = Vec::with_capacity(target_k - 1);
    for i in 0..target_k - 1 {
        let s = sample[(i + 1) * sample_size / target_k];
        if splitters.last() != Some(&s) {
            splitters.push(s);
        }
    }
    if splitters.is_empty() {
        // Whole sample is one key: classification cannot make progress.
        *work = work.plus(comparison_sort(data));
        return;
    }
    let tree = SplitterTree::build(&splitters, IPS4O_MAX_BUCKETS);
    let k = tree.k;
    let rs = R::SIZE;
    let block_bytes = IPS4O_BLOCK * rs;

    // Phase 2: classify into per-bucket staging buffers; full buffers
    // flush as blocks to the consumed prefix at `w`.
    let mut bufs: Vec<Vec<u8>> = (0..k).map(|_| scratch.take(block_bytes)).collect();
    let mut counts = vec![0usize; k];
    let mut w = 0usize;
    let mut idx = [0usize; IPS4O_CLASSIFY_BATCH];
    let mut i = 0usize;
    while i < n {
        // Classify a batch first: the tree descents are independent across
        // records, so they overlap; the bucket stores follow.
        let m = IPS4O_CLASSIFY_BATCH.min(n - i);
        for (j, slot) in idx[..m].iter_mut().enumerate() {
            *slot = tree.classify(data[i + j].sort_key());
        }
        for (j, &b) in idx[..m].iter().enumerate() {
            counts[b] += 1;
            let buf = &mut bufs[b];
            buf.extend_from_slice(rec_bytes(std::slice::from_ref(&data[i + j])));
            if buf.len() == block_bytes {
                // ≥ B records are staged, so w ≤ (i+j+1) - B: this only
                // overwrites records already consumed by the scan.
                R::decode_slice_into(buf, &mut data[w..w + IPS4O_BLOCK]);
                buf.clear();
                w += IPS4O_BLOCK;
            }
        }
        i += m;
    }
    work.key_ops += n as u64; // classification pass

    // Bucket geometry. `d[b]..e[b]` is bucket b's final range; its flushed
    // blocks go to the aligned slots wholly inside it. At most one block
    // per bucket overflows: ⌊e/B⌋ - ⌈d/B⌉ > (e - d - 2B)/B ≥ f - 2.
    let mut d = vec![0usize; k + 1];
    for b in 0..k {
        d[b + 1] = d[b] + counts[b];
    }
    let mut slot_next = vec![0usize; k]; // next slot, block units
    let mut slots_left = vec![0usize; k]; // interior slots granted
    let mut placed = vec![0usize; k]; // blocks actually placed
    for b in 0..k {
        let start = d[b].div_ceil(IPS4O_BLOCK);
        let end = d[b + 1] / IPS4O_BLOCK;
        let f = (counts[b] - bufs[b].len() / rs) / IPS4O_BLOCK;
        let avail = end.saturating_sub(start);
        debug_assert!(f <= avail + 1, "more than one overflow block");
        slot_next[b] = start;
        slots_left[b] = f.min(avail);
        placed[b] = f.min(avail);
    }

    // Phase 3: cycle-following block permutation over the flushed prefix.
    let w_blocks = w / IPS4O_BLOCK;
    let mut processed = vec![false; w_blocks];
    let mut overflow: Vec<Option<Vec<u8>>> = (0..k).map(|_| None).collect();
    let mut cur = scratch.take(block_bytes);
    let mut nxt = scratch.take(block_bytes);
    for start in 0..w_blocks {
        if processed[start] {
            continue;
        }
        let pos = start * IPS4O_BLOCK;
        cur.clear();
        cur.extend_from_slice(rec_bytes(&data[pos..pos + IPS4O_BLOCK]));
        processed[start] = true;
        let mut b = tree.classify(data[pos].sort_key());
        loop {
            if slots_left[b] == 0 {
                // The one block that does not fit an interior slot.
                debug_assert!(overflow[b].is_none());
                overflow[b] = Some(std::mem::replace(&mut cur, scratch.take(block_bytes)));
                break;
            }
            let t = slot_next[b];
            slot_next[b] += 1;
            slots_left[b] -= 1;
            let dst = t * IPS4O_BLOCK;
            if t < w_blocks && !processed[t] {
                // Slot holds an unmoved block: displace it, keep chaining.
                nxt.clear();
                nxt.extend_from_slice(rec_bytes(&data[dst..dst + IPS4O_BLOCK]));
                processed[t] = true;
                let nb = tree.classify(data[dst].sort_key());
                R::decode_slice_into(&cur, &mut data[dst..dst + IPS4O_BLOCK]);
                std::mem::swap(&mut cur, &mut nxt);
                b = nb;
            } else {
                // Beyond the flushed prefix or already lifted: slot is free.
                R::decode_slice_into(&cur, &mut data[dst..dst + IPS4O_BLOCK]);
                break;
            }
        }
    }
    scratch.put(cur);
    scratch.put(nxt);

    // Phase 4: fill each bucket's head and tail gaps from its overflow
    // block and partial buffer — the byte counts balance exactly.
    for b in 0..k {
        if counts[b] == 0 {
            continue;
        }
        let (lo, hi) = (d[b], d[b + 1]);
        let mut fill = match overflow[b].take() {
            Some(mut ofl) => {
                ofl.extend_from_slice(&bufs[b]);
                ofl
            }
            None => std::mem::take(&mut bufs[b]),
        };
        if placed[b] == 0 {
            debug_assert_eq!(fill.len(), (hi - lo) * rs);
            R::decode_slice_into(&fill, &mut data[lo..hi]);
        } else {
            let slot_start = d[b].div_ceil(IPS4O_BLOCK) * IPS4O_BLOCK;
            let head = slot_start - lo;
            let written_end = slot_start + placed[b] * IPS4O_BLOCK;
            debug_assert_eq!(head * rs + (hi - written_end) * rs, fill.len());
            R::decode_slice_into(&fill[..head * rs], &mut data[lo..slot_start]);
            R::decode_slice_into(&fill[head * rs..], &mut data[written_end..hi]);
        }
        fill.clear();
        scratch.put(fill);
    }
    for buf in bufs {
        scratch.put(buf);
    }
    work.key_ops += n as u64; // permutation + cleanup move every record once

    // Recurse per bucket; a bucket that absorbed everything means the
    // splitters made no progress (e.g. all keys equal) — finish it with
    // the comparison path, which also orders `!KEY_IS_TOTAL` ties fully.
    for b in 0..k {
        let (lo, hi) = (d[b], d[b + 1]);
        if hi - lo <= 1 {
            continue;
        }
        if hi - lo == n {
            *work = work.plus(comparison_sort(data));
            return;
        }
        ips4o_rec(&mut data[lo..hi], depth - 1, scratch, work);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm::record::KeyPayload;
    use sim::rng::{Pcg64, Rng};

    fn check_matches_reference<R: Record>(data: Vec<R>) -> KernelWork {
        check_kernel(data, SortKernel::Radix)
    }

    fn check_kernel<R: Record>(mut data: Vec<R>, kernel: SortKernel) -> KernelWork {
        let mut expect = data.clone();
        expect.sort_unstable();
        let work = sort_chunk(&mut data, kernel);
        assert_eq!(
            data,
            expect,
            "{} kernel must match sort_unstable",
            kernel.name()
        );
        work
    }

    #[test]
    fn radix_sorts_u32_u64() {
        let mut rng = Pcg64::new(7);
        check_matches_reference((0..5000).map(|_| rng.next_u32()).collect::<Vec<_>>());
        check_matches_reference((0..5000).map(|_| rng.next_u64()).collect::<Vec<_>>());
    }

    #[test]
    fn radix_sorts_signed() {
        let mut rng = Pcg64::new(8);
        check_matches_reference((0..3000).map(|_| rng.next_u32() as i32).collect::<Vec<_>>());
        check_matches_reference((0..3000).map(|_| rng.next_u64() as i64).collect::<Vec<_>>());
        check_matches_reference(vec![i32::MIN, i32::MAX, -1, 0, 1]);
    }

    #[test]
    fn radix_sorts_keypayload_with_duplicate_keys() {
        // Non-total key: payload ties must still come out in full-Ord order.
        let mut rng = Pcg64::new(9);
        let data: Vec<KeyPayload> = (0..4000)
            .map(|_| KeyPayload::new(rng.next_u64() % 16, rng.next_u64()))
            .collect();
        let work = check_matches_reference(data);
        assert!(work.comparisons > 0, "cleanup pass must have sorted ties");
    }

    #[test]
    fn small_chunks_use_insertion_sort() {
        let mut rng = Pcg64::new(10);
        for n in [0usize, 1, 2, 3, RADIX_INSERTION_CUTOFF] {
            let work = check_matches_reference((0..n).map(|_| rng.next_u32()).collect::<Vec<_>>());
            assert_eq!(work.key_ops, 0, "n = {n} should not radix");
        }
    }

    #[test]
    fn trivial_passes_skipped_for_narrow_keys() {
        // u32 keys: the top four digit passes are trivial, u16 the top six.
        let mut rng = Pcg64::new(11);
        let n = 1000u64;
        let w32 = check_matches_reference((0..n).map(|_| rng.next_u32()).collect::<Vec<_>>());
        assert!(w32.key_ops <= 5 * n, "u32: {} key ops", w32.key_ops);
        let w16 =
            check_matches_reference((0..n).map(|_| rng.next_u32() as u16).collect::<Vec<_>>());
        assert!(w16.key_ops <= 3 * n, "u16: {} key ops", w16.key_ops);
    }

    #[test]
    fn duplicate_heavy_input_is_cheap() {
        // All-equal keys: every digit pass is trivial — only the histogram
        // pass remains.
        let work = check_matches_reference(vec![42u32; 1000]);
        assert_eq!(work.key_ops, 1000);
        assert_eq!(work.comparisons, 0);
    }

    #[test]
    fn comparison_kernel_counts_estimate() {
        let mut data: Vec<u32> = (0..1024).rev().collect();
        let work = sort_chunk(&mut data, SortKernel::Comparison);
        assert_eq!(work.comparisons, incore_sort_comparisons(1024));
        assert_eq!(work.key_ops, 0);
        assert!(data.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn kernel_parse_roundtrip() {
        for k in [SortKernel::Comparison, SortKernel::Radix, SortKernel::Ips4o] {
            assert_eq!(SortKernel::parse(k.name()), Some(k));
        }
        assert_eq!(SortKernel::parse("bogus"), None);
        assert_eq!(SortKernel::default(), SortKernel::Radix);
        assert!(SortKernel::Radix.key_based::<u32>());
        assert!(SortKernel::Ips4o.key_based::<u32>());
        assert!(!SortKernel::Comparison.key_based::<u32>());
    }

    #[test]
    fn ips4o_sorts_u32_u64() {
        // Above IPS4O_RADIX_CUTOFF so the partitioning level really runs.
        let n = 2 * IPS4O_RADIX_CUTOFF + 1234;
        let mut rng = Pcg64::new(20);
        let w = check_kernel(
            (0..n).map(|_| rng.next_u32()).collect::<Vec<_>>(),
            SortKernel::Ips4o,
        );
        assert!(
            w.key_ops > 0,
            "large uniform input must take the ips4o path"
        );
        check_kernel(
            (0..n).map(|_| rng.next_u64()).collect::<Vec<_>>(),
            SortKernel::Ips4o,
        );
    }

    #[test]
    fn ips4o_sorts_signed_and_small() {
        let mut rng = Pcg64::new(21);
        check_kernel(
            (0..3000).map(|_| rng.next_u32() as i32).collect::<Vec<_>>(),
            SortKernel::Ips4o,
        );
        check_kernel(vec![i64::MIN, i64::MAX, -1, 0, 1], SortKernel::Ips4o);
        for n in [0usize, 1, 2, IPS4O_BASE_CUTOFF, IPS4O_BASE_CUTOFF + 1] {
            check_kernel(
                (0..n).map(|_| rng.next_u32()).collect::<Vec<_>>(),
                SortKernel::Ips4o,
            );
        }
    }

    #[test]
    fn ips4o_handles_adversarial_shapes() {
        // Sizes above IPS4O_RADIX_CUTOFF: these shapes must survive the
        // partitioning level itself, not just the radix base case.
        let n = (2 * IPS4O_RADIX_CUTOFF) as u32;
        let mut rng = Pcg64::new(22);
        // All equal: no splitter progress, must fall to the comparison path.
        check_kernel(vec![7u32; n as usize], SortKernel::Ips4o);
        // Sorted / reversed / sawtooth / few distinct values.
        check_kernel((0..n).collect::<Vec<_>>(), SortKernel::Ips4o);
        check_kernel((0..n).rev().collect::<Vec<_>>(), SortKernel::Ips4o);
        check_kernel(
            (0..n).map(|i| i % 257).collect::<Vec<_>>(),
            SortKernel::Ips4o,
        );
        check_kernel(
            (0..n).map(|_| rng.next_u64() % 4).collect::<Vec<_>>(),
            SortKernel::Ips4o,
        );
        // Exactly block-aligned and one-off-block-aligned lengths.
        for n in [
            IPS4O_BLOCK * 1024,
            IPS4O_BLOCK * 1024 + 1,
            IPS4O_BLOCK * 1024 - 1,
        ] {
            check_kernel(
                (0..n).map(|_| rng.next_u32()).collect::<Vec<_>>(),
                SortKernel::Ips4o,
            );
        }
    }

    #[test]
    fn ips4o_sorts_keypayload_with_duplicate_keys() {
        // Non-total key: payload ties must come out in full-Ord order even
        // though the classifier only sees the key.
        let mut rng = Pcg64::new(23);
        let data: Vec<KeyPayload> = (0..2 * IPS4O_RADIX_CUTOFF)
            .map(|_| KeyPayload::new(rng.next_u64() % 16, rng.next_u64()))
            .collect();
        let work = check_kernel(data, SortKernel::Ips4o);
        assert!(work.comparisons > 0, "equal-key buckets must full-Ord sort");
    }

    #[test]
    fn ips4o_pooled_recycles_buffers() {
        let mut rng = Pcg64::new(24);
        let pool = pdm::BufferPool::new(64);
        for _ in 0..3 {
            let mut data: Vec<u32> = (0..2 * IPS4O_RADIX_CUTOFF)
                .map(|_| rng.next_u32())
                .collect();
            let mut expect = data.clone();
            expect.sort_unstable();
            sort_chunk_pooled(&mut data, SortKernel::Ips4o, Some(&pool));
            assert_eq!(data, expect);
        }
        assert!(pool.hits() > 0, "later passes must reuse pooled blocks");
        assert!(pool.idle() > 0, "scratch must return blocks to the pool");
    }

    #[test]
    fn ips4o_work_is_deterministic() {
        let mut rng = Pcg64::new(25);
        let data: Vec<u64> = (0..2 * IPS4O_RADIX_CUTOFF)
            .map(|_| rng.next_u64())
            .collect();
        let (mut a, mut b) = (data.clone(), data);
        let pool = pdm::BufferPool::new(16);
        assert_eq!(
            sort_chunk(&mut a, SortKernel::Ips4o),
            sort_chunk_pooled(&mut b, SortKernel::Ips4o, Some(&pool)),
            "pooling must not change counted work"
        );
    }

    #[test]
    fn work_is_deterministic() {
        let mut rng = Pcg64::new(12);
        let data: Vec<u64> = (0..2000).map(|_| rng.next_u64()).collect();
        let (mut a, mut b) = (data.clone(), data);
        assert_eq!(
            sort_chunk(&mut a, SortKernel::Radix),
            sort_chunk(&mut b, SortKernel::Radix)
        );
    }
}
