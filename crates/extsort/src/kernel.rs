//! Pluggable CPU sort kernels for the in-core sorting steps.
//!
//! Every sorter in this crate (and the local sorts in `hetsort::incore`)
//! funnels its in-core sorting through [`sort_chunk`], selected by a
//! [`SortKernel`]:
//!
//! * [`SortKernel::Comparison`] — `sort_unstable`, priced by the classical
//!   `n·⌈log₂ n⌉` comparison estimate. The reference path: simplest, and
//!   what the paper's 2002 Alpha code did.
//! * [`SortKernel::Radix`] — LSD radix sort on the record's
//!   order-preserving [`pdm::Record::sort_key`], with an insertion-sort
//!   cutoff for small chunks and a skip for trivial digit passes. Priced
//!   by *counted key passes* ([`KernelWork::key_ops`]) instead of
//!   comparisons — each pass touches every record once with sequential
//!   access and no branch misprediction, so it is far cheaper per unit.
//!
//! Both kernels produce **byte-identical** output: every [`pdm::Record`]
//! has a total `Ord`, so equal records are bitwise equal and any correct
//! sort yields the same byte sequence. Records whose key is not a total
//! order ([`pdm::Record::KEY_IS_TOTAL`] `== false`, e.g.
//! [`pdm::record::KeyPayload`]) get a cleanup pass that finishes equal-key
//! groups with the full `Ord`. Records without a usable key fall back to
//! the comparison path. The differential tests in
//! `tests/kernel_differential.rs` enforce byte identity across kernels.

use pdm::Record;

use crate::report::incore_sort_comparisons;

/// Which in-core sorting kernel the sorters use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SortKernel {
    /// `sort_unstable` on the full record `Ord` — the reference path kept
    /// for differential testing and for the paper-faithful Table 2 pricing.
    Comparison,
    /// LSD radix sort on `sort_key()` — the default fast path.
    #[default]
    Radix,
}

impl SortKernel {
    /// Parses a CLI spelling (`comparison` | `radix`).
    pub fn parse(s: &str) -> Option<SortKernel> {
        match s {
            "comparison" => Some(SortKernel::Comparison),
            "radix" => Some(SortKernel::Radix),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn name(&self) -> &'static str {
        match self {
            SortKernel::Comparison => "comparison",
            SortKernel::Radix => "radix",
        }
    }

    /// Whether this kernel sorts type `R` by its cached key (and therefore
    /// whether tournament selects over `R` should be priced as key ops).
    pub fn key_based<R: Record>(&self) -> bool {
        *self == SortKernel::Radix && R::HAS_SORT_KEY
    }
}

/// Work counted by one kernel invocation. Deterministic in the input data,
/// so pipelined and sequential executions report identical counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelWork {
    /// Full-record comparisons (comparison kernel, insertion-sorted small
    /// chunks, cleanup of equal-key groups).
    pub comparisons: u64,
    /// Key-pass record touches: one per record per radix pass (histogram,
    /// distribution, and cleanup-scan passes alike).
    pub key_ops: u64,
}

impl KernelWork {
    /// Combines two work tallies.
    #[must_use]
    pub fn plus(self, other: KernelWork) -> KernelWork {
        KernelWork {
            comparisons: self.comparisons + other.comparisons,
            key_ops: self.key_ops + other.key_ops,
        }
    }
}

/// Below this length the radix kernel insertion-sorts instead: per-digit
/// histograms over 256 buckets cost more than they save on tiny chunks.
pub const RADIX_INSERTION_CUTOFF: usize = 64;

/// Sorts `data` in-core with the chosen kernel and returns the counted
/// work. The result is byte-identical to `data.sort_unstable()` for every
/// kernel (total `Ord` ⇒ equal records are bitwise equal).
pub fn sort_chunk<R: Record>(data: &mut [R], kernel: SortKernel) -> KernelWork {
    match kernel {
        SortKernel::Comparison => comparison_sort(data),
        SortKernel::Radix => {
            if !R::HAS_SORT_KEY {
                // No usable key: the comparison path is the radix fallback.
                comparison_sort(data)
            } else if data.len() <= RADIX_INSERTION_CUTOFF {
                KernelWork {
                    comparisons: insertion_sort(data),
                    key_ops: 0,
                }
            } else {
                radix_sort(data)
            }
        }
    }
}

fn comparison_sort<R: Record>(data: &mut [R]) -> KernelWork {
    data.sort_unstable();
    KernelWork {
        comparisons: incore_sort_comparisons(data.len() as u64),
        key_ops: 0,
    }
}

/// Stable insertion sort, counting its actual comparisons.
fn insertion_sort<R: Record>(data: &mut [R]) -> u64 {
    let mut comparisons = 0u64;
    for i in 1..data.len() {
        let x = data[i];
        let mut j = i;
        while j > 0 {
            comparisons += 1;
            if data[j - 1] > x {
                data[j] = data[j - 1];
                j -= 1;
            } else {
                break;
            }
        }
        data[j] = x;
    }
    comparisons
}

/// LSD radix sort on `sort_key()`, 8-bit digits, all 8 histograms built in
/// one read pass, trivial digit passes (every key sharing one digit value)
/// skipped. Stable; finished by a full-`Ord` cleanup of equal-key groups
/// when the key is not a total order.
fn radix_sort<R: Record>(data: &mut [R]) -> KernelWork {
    let n = data.len();
    let mut hist = [[0usize; 256]; 8];
    for r in data.iter() {
        let k = r.sort_key();
        for (d, h) in hist.iter_mut().enumerate() {
            h[(k >> (8 * d)) as u8 as usize] += 1;
        }
    }
    let mut key_ops = n as u64; // the histogram pass

    let mut scratch: Vec<R> = data.to_vec();
    let mut in_data = true;
    for (d, h) in hist.iter().enumerate() {
        if h.contains(&n) {
            continue; // every key shares this digit: pass is a no-op
        }
        let mut offs = [0usize; 256];
        let mut sum = 0usize;
        for (o, &c) in offs.iter_mut().zip(h.iter()) {
            *o = sum;
            sum += c;
        }
        if in_data {
            distribute(data, &mut scratch, d, &mut offs);
        } else {
            distribute(&scratch, data, d, &mut offs);
        }
        in_data = !in_data;
        key_ops += n as u64;
    }
    if !in_data {
        data.copy_from_slice(&scratch);
    }

    let mut comparisons = 0u64;
    if !R::KEY_IS_TOTAL {
        // Equal keys do not imply equal records: finish each equal-key
        // group with the full `Ord` (one scan pass + small sorts).
        key_ops += n as u64;
        let mut i = 0usize;
        while i < n {
            let k = data[i].sort_key();
            let mut j = i + 1;
            while j < n && data[j].sort_key() == k {
                j += 1;
            }
            if j - i > 1 {
                data[i..j].sort_unstable();
                comparisons += incore_sort_comparisons((j - i) as u64);
            }
            i = j;
        }
    }
    KernelWork {
        comparisons,
        key_ops,
    }
}

fn distribute<R: Record>(src: &[R], dst: &mut [R], digit: usize, offs: &mut [usize; 256]) {
    let shift = 8 * digit;
    for &r in src {
        let b = (r.sort_key() >> shift) as u8 as usize;
        dst[offs[b]] = r;
        offs[b] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm::record::KeyPayload;
    use sim::rng::{Pcg64, Rng};

    fn check_matches_reference<R: Record>(mut data: Vec<R>) -> KernelWork {
        let mut expect = data.clone();
        expect.sort_unstable();
        let work = sort_chunk(&mut data, SortKernel::Radix);
        assert_eq!(data, expect, "radix kernel must match sort_unstable");
        work
    }

    #[test]
    fn radix_sorts_u32_u64() {
        let mut rng = Pcg64::new(7);
        check_matches_reference((0..5000).map(|_| rng.next_u32()).collect::<Vec<_>>());
        check_matches_reference((0..5000).map(|_| rng.next_u64()).collect::<Vec<_>>());
    }

    #[test]
    fn radix_sorts_signed() {
        let mut rng = Pcg64::new(8);
        check_matches_reference((0..3000).map(|_| rng.next_u32() as i32).collect::<Vec<_>>());
        check_matches_reference((0..3000).map(|_| rng.next_u64() as i64).collect::<Vec<_>>());
        check_matches_reference(vec![i32::MIN, i32::MAX, -1, 0, 1]);
    }

    #[test]
    fn radix_sorts_keypayload_with_duplicate_keys() {
        // Non-total key: payload ties must still come out in full-Ord order.
        let mut rng = Pcg64::new(9);
        let data: Vec<KeyPayload> = (0..4000)
            .map(|_| KeyPayload::new(rng.next_u64() % 16, rng.next_u64()))
            .collect();
        let work = check_matches_reference(data);
        assert!(work.comparisons > 0, "cleanup pass must have sorted ties");
    }

    #[test]
    fn small_chunks_use_insertion_sort() {
        let mut rng = Pcg64::new(10);
        for n in [0usize, 1, 2, 3, RADIX_INSERTION_CUTOFF] {
            let work = check_matches_reference((0..n).map(|_| rng.next_u32()).collect::<Vec<_>>());
            assert_eq!(work.key_ops, 0, "n = {n} should not radix");
        }
    }

    #[test]
    fn trivial_passes_skipped_for_narrow_keys() {
        // u32 keys: the top four digit passes are trivial, u16 the top six.
        let mut rng = Pcg64::new(11);
        let n = 1000u64;
        let w32 = check_matches_reference((0..n).map(|_| rng.next_u32()).collect::<Vec<_>>());
        assert!(w32.key_ops <= 5 * n, "u32: {} key ops", w32.key_ops);
        let w16 =
            check_matches_reference((0..n).map(|_| rng.next_u32() as u16).collect::<Vec<_>>());
        assert!(w16.key_ops <= 3 * n, "u16: {} key ops", w16.key_ops);
    }

    #[test]
    fn duplicate_heavy_input_is_cheap() {
        // All-equal keys: every digit pass is trivial — only the histogram
        // pass remains.
        let work = check_matches_reference(vec![42u32; 1000]);
        assert_eq!(work.key_ops, 1000);
        assert_eq!(work.comparisons, 0);
    }

    #[test]
    fn comparison_kernel_counts_estimate() {
        let mut data: Vec<u32> = (0..1024).rev().collect();
        let work = sort_chunk(&mut data, SortKernel::Comparison);
        assert_eq!(work.comparisons, incore_sort_comparisons(1024));
        assert_eq!(work.key_ops, 0);
        assert!(data.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn kernel_parse_roundtrip() {
        for k in [SortKernel::Comparison, SortKernel::Radix] {
            assert_eq!(SortKernel::parse(k.name()), Some(k));
        }
        assert_eq!(SortKernel::parse("bogus"), None);
        assert_eq!(SortKernel::default(), SortKernel::Radix);
        assert!(SortKernel::Radix.key_based::<u32>());
        assert!(!SortKernel::Comparison.key_based::<u32>());
    }

    #[test]
    fn work_is_deterministic() {
        let mut rng = Pcg64::new(12);
        let data: Vec<u64> = (0..2000).map(|_| rng.next_u64()).collect();
        let (mut a, mut b) = (data.clone(), data);
        assert_eq!(
            sort_chunk(&mut a, SortKernel::Radix),
            sort_chunk(&mut b, SortKernel::Radix)
        );
    }
}
