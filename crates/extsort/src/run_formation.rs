//! Initial run formation with polyphase distribution.
//!
//! Reads the unsorted input once and writes sorted runs directly onto the
//! `T − 1` input tapes, laid out according to the **ideal (generalized
//! Fibonacci) distribution** of Knuth §5.4.2 so that the polyphase merge
//! terminates with a single run. Missing runs at the final level are
//! recorded as *dummy runs* (they merge for free).
//!
//! Two strategies:
//!
//! * **Chunk sort** — one memory load at a time, `⌈N/M⌉` runs of length `M`
//!   (what the paper's polyphase uses).
//! * **Replacement selection** — a heap of `M` records produces runs of
//!   expected length `2M` on random input and a single run on sorted input
//!   (the classic optimization; exercised by the ablation benches).
//!
//! With [`crate::config::PipelineConfig`] enabled, chunk sorting runs as a
//! read → sort → write pipeline: a prefetching reader loads chunk `i+1`
//! while a pool of worker threads sorts chunks in flight and write-behind
//! writers flush chunk `i−1`. A reorder buffer hands sorted chunks to the
//! distributor strictly in input order, so tape assignment, file bytes and
//! metered block-I/O are identical to the sequential path.

use std::collections::{BTreeMap, BinaryHeap, VecDeque};
use std::sync::mpsc::{channel, sync_channel};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use pdm::{BlockReader, BufferPool, Disk, PdmResult, Record, WriteBehindWriter};

use crate::config::{ExtSortConfig, RunFormation};
use crate::kernel::{sort_chunk_pooled, KernelWork};

/// Static span name for a pipeline worker (worker handles are `!Send`, so
/// workers report wall offsets back to the node thread, which records the
/// span under the worker's name).
fn worker_span_name(w: usize) -> &'static str {
    const NAMES: [&str; 8] = [
        "chunk-sort-0",
        "chunk-sort-1",
        "chunk-sort-2",
        "chunk-sort-3",
        "chunk-sort-4",
        "chunk-sort-5",
        "chunk-sort-6",
        "chunk-sort-7",
    ];
    NAMES.get(w).copied().unwrap_or("chunk-sort")
}

/// Where the runs of one tape ended up.
#[derive(Debug)]
pub struct TapeRuns {
    /// Disk file holding this tape's runs, concatenated front to back.
    pub name: String,
    /// Real run lengths, in order.
    pub runs: VecDeque<u64>,
    /// Dummy runs assigned to this tape by the ideal distribution.
    pub dummies: u64,
}

/// The result of run formation: per-tape run layouts plus work accounting.
#[derive(Debug)]
pub struct FormedRuns {
    /// One entry per input tape (`T − 1` of them).
    pub tapes: Vec<TapeRuns>,
    /// Total real runs across tapes.
    pub total_runs: u64,
    /// Records read from the input.
    pub records: u64,
    /// Full-record comparisons spent sorting the runs (the `n·⌈log₂ n⌉`
    /// estimate on the comparison kernel; cleanup/insertion-sort residue on
    /// the radix kernel).
    pub comparisons: u64,
    /// Key operations spent by the radix kernel (zero otherwise).
    pub key_ops: u64,
}

/// Chooses a destination tape for each new run so that the final layout
/// (real + dummy runs) matches an ideal polyphase level.
///
/// Level 0 is `(1, 0, …, 0)`; level `n` follows
/// `dₙ[j] = dₙ₋₁[0] + dₙ₋₁[j+1]` (with `dₙ[k−1] = dₙ₋₁[0]`), the
/// generalized Fibonacci recurrence of order `k`.
#[derive(Debug)]
pub struct Distributor {
    ideal: Vec<u64>,
    actual: Vec<u64>,
    level: u32,
}

impl Distributor {
    /// A distributor over `k ≥ 2` input tapes.
    ///
    /// Fails with [`pdm::PdmError::InvalidConfig`] for `k < 2` — polyphase
    /// cannot merge from fewer than two input tapes.
    pub fn new(k: usize) -> PdmResult<Self> {
        if k < 2 {
            return Err(pdm::PdmError::InvalidConfig(format!(
                "polyphase needs at least 2 input tapes, got {k}"
            )));
        }
        let mut ideal = vec![0u64; k];
        ideal[0] = 1;
        Ok(Distributor {
            ideal,
            actual: vec![0u64; k],
            level: 0,
        })
    }

    /// Advances to the next ideal level.
    fn level_up(&mut self) {
        let prev = self.ideal.clone();
        let k = prev.len();
        for j in 0..k {
            self.ideal[j] = prev[0] + if j + 1 < k { prev[j + 1] } else { 0 };
        }
        self.level += 1;
    }

    /// Assigns the next run to a tape (the one with the largest deficit
    /// against the ideal level, lowest index on ties) and returns its index.
    pub fn next_tape(&mut self) -> usize {
        if self.deficit_total() == 0 {
            self.level_up();
        }
        let j = (0..self.ideal.len())
            .max_by_key(|&j| self.ideal[j] - self.actual[j])
            .expect("non-empty tape set");
        debug_assert!(self.ideal[j] > self.actual[j]);
        self.actual[j] += 1;
        j
    }

    /// Runs still missing to complete the current level.
    fn deficit_total(&self) -> u64 {
        self.ideal
            .iter()
            .zip(&self.actual)
            .map(|(i, a)| i - a)
            .sum()
    }

    /// Dummy runs per tape needed to pad the layout to the current level.
    pub fn dummies(&self) -> Vec<u64> {
        self.ideal
            .iter()
            .zip(&self.actual)
            .map(|(i, a)| i - a)
            .collect()
    }

    /// The ideal distribution currently targeted.
    pub fn ideal(&self) -> &[u64] {
        &self.ideal
    }

    /// The current level number.
    pub fn level(&self) -> u32 {
        self.level
    }
}

/// Reads `input` once and distributes sorted runs over `k` fresh tape files
/// named `"{job}.tape{j}"`.
pub fn form_runs<R: Record>(
    disk: &Disk,
    input: &str,
    job: &str,
    k: usize,
    cfg: &ExtSortConfig,
) -> PdmResult<FormedRuns> {
    let _span = obs::scoped("extsort.run-formation");
    let names: Vec<String> = (0..k).map(|j| format!("{job}.tape{j}")).collect();
    let mut dist = Distributor::new(k)?;

    if cfg.pipeline.enabled && cfg.run_formation == RunFormation::ChunkSort {
        return form_runs_pipelined::<R>(disk, input, names, cfg, dist);
    }

    let mut reader = disk.open_reader::<R>(input)?;
    let mut writers = names
        .iter()
        .map(|n| disk.create_writer::<R>(n))
        .collect::<PdmResult<Vec<_>>>()?;
    let mut runs: Vec<VecDeque<u64>> = vec![VecDeque::new(); k];
    let mut total_runs = 0u64;
    let mut records = 0u64;
    let mut work = KernelWork::default();

    match cfg.run_formation {
        RunFormation::ChunkSort => {
            let scratch = BufferPool::default();
            let mut chunk: Vec<R> = Vec::with_capacity(cfg.mem_records);
            loop {
                chunk.clear();
                reader.read_into(&mut chunk, cfg.mem_records)?;
                if chunk.is_empty() {
                    break;
                }
                work = work.plus(sort_chunk_pooled(&mut chunk, cfg.kernel, Some(&scratch)));
                let t = dist.next_tape();
                writers[t].push_all(&chunk)?;
                runs[t].push_back(chunk.len() as u64);
                obs::hist_record("extsort.run_records", chunk.len() as u64);
                total_runs += 1;
                records += chunk.len() as u64;
            }
        }
        RunFormation::ReplacementSelection => {
            let (r, c, t) =
                replacement_selection(&mut reader, &mut writers, &mut runs, &mut dist, cfg)?;
            records = r;
            work.comparisons = c;
            total_runs = t;
        }
    }

    for w in writers {
        w.finish()?;
    }
    Ok(assemble(names, runs, &dist, total_runs, records, work))
}

/// Packs per-tape results into a [`FormedRuns`].
fn assemble(
    names: Vec<String>,
    runs: Vec<VecDeque<u64>>,
    dist: &Distributor,
    total_runs: u64,
    records: u64,
    work: KernelWork,
) -> FormedRuns {
    let dummies = dist.dummies();
    let tapes = names
        .into_iter()
        .zip(runs)
        .zip(dummies)
        .map(|((name, runs), dummies)| TapeRuns {
            name,
            runs,
            dummies,
        })
        .collect();
    FormedRuns {
        tapes,
        total_runs,
        records,
        comparisons: work.comparisons,
        key_ops: work.key_ops,
    }
}

/// Chunk-sort run formation as a read → sort → write pipeline.
///
/// A prefetching reader streams the input, a pool of `workers` threads sorts
/// chunks concurrently, and write-behind writers flush the tapes — so block
/// transfers overlap the in-core sorts. Sorted chunks pass through a reorder
/// buffer and reach the distributor strictly in input order, which keeps the
/// tape assignment, the file contents and the metered I/O identical to the
/// sequential path.
fn form_runs_pipelined<R: Record>(
    disk: &Disk,
    input: &str,
    names: Vec<String>,
    cfg: &ExtSortConfig,
    mut dist: Distributor,
) -> PdmResult<FormedRuns> {
    let workers = cfg.pipeline.effective_workers();
    let depth = cfg.pipeline.depth_for(disk.model(), workers + 1);
    let pool = BufferPool::default();
    let mut reader = disk.open_prefetch_reader::<R>(input, depth, pool.clone())?;
    let mut writers = names
        .iter()
        .map(|n| disk.create_write_behind::<R>(n, depth, pool.clone()))
        .collect::<PdmResult<Vec<WriteBehindWriter<R>>>>()?;
    let k = names.len();
    let mut runs: Vec<VecDeque<u64>> = vec![VecDeque::new(); k];
    let mut total_runs = 0u64;
    let mut records = 0u64;
    let mut work = KernelWork::default();
    let kernel = cfg.kernel;

    // Unsorted chunks flow to the workers through a bounded queue (so at
    // most `workers + 1` chunks queue up beyond the ones being sorted);
    // sorted chunks come back tagged with their sequence number and the
    // kernel work they cost (deterministic in the chunk contents, so the
    // totals match the sequential path exactly).
    let (work_tx, work_rx) = sync_channel::<(u64, Vec<R>)>(workers + 1);
    let work_rx = Arc::new(Mutex::new(work_rx));
    // Each sorted chunk optionally carries `(worker, start, end)` wall
    // offsets (seconds since `epoch`) so the node thread can record a span
    // per worker sort — the tracing handle itself is `!Send`.
    type SortStat = Option<(usize, f64, f64)>;
    let (done_tx, done_rx) = channel::<(u64, Vec<R>, KernelWork, SortStat)>();
    let node_obs = obs::current();
    let traced = node_obs.is_enabled();
    let wall_base = node_obs.elapsed();
    let epoch = Instant::now();

    std::thread::scope(|scope| -> PdmResult<()> {
        for w in 0..workers {
            let work_rx = Arc::clone(&work_rx);
            let done_tx = done_tx.clone();
            std::thread::Builder::new()
                .name(format!("chunk-sort-{w}"))
                .spawn_scoped(scope, move || {
                    // Each worker keeps its own scratch pool so ips4o block
                    // buffers recycle across chunks without cross-thread
                    // contention.
                    let scratch = BufferPool::default();
                    loop {
                        // Hold the receiver lock only while dequeueing.
                        let job = work_rx.lock().unwrap().recv();
                        match job {
                            Ok((seq, mut chunk)) => {
                                let t0 = traced.then(|| epoch.elapsed().as_secs_f64());
                                let kw = sort_chunk_pooled(&mut chunk, kernel, Some(&scratch));
                                let stat = t0.map(|s| (w, s, epoch.elapsed().as_secs_f64()));
                                if done_tx.send((seq, chunk, kw, stat)).is_err() {
                                    return; // consumer bailed on an I/O error
                                }
                            }
                            Err(_) => return, // input exhausted
                        }
                    }
                })
                .expect("spawn chunk-sort worker");
        }
        drop(done_tx);

        // Reorder buffer: sorted chunks arrive in any order, leave in input
        // order. Its size is bounded by the number of chunks in flight
        // (workers + queue), not by the input.
        let mut ready: BTreeMap<u64, (Vec<R>, KernelWork, SortStat)> = BTreeMap::new();
        let mut next_out = 0u64;
        let mut spare: Vec<Vec<R>> = Vec::new();
        let mut emit = |(chunk, kw, stat): (Vec<R>, KernelWork, SortStat),
                        writers: &mut [WriteBehindWriter<R>],
                        spare: &mut Vec<Vec<R>>|
         -> PdmResult<()> {
            if let Some((wkr, s0, s1)) = stat {
                node_obs.record_span(
                    worker_span_name(wkr),
                    obs::SpanKind::Task,
                    wall_base + s0,
                    wall_base + s1,
                    None,
                );
                node_obs.hist_record("extsort.pipeline.sort_us", ((s1 - s0) * 1e6) as u64);
            }
            work = work.plus(kw);
            let t = dist.next_tape();
            writers[t].push_all(&chunk)?;
            runs[t].push_back(chunk.len() as u64);
            obs::hist_record("extsort.run_records", chunk.len() as u64);
            total_runs += 1;
            records += chunk.len() as u64;
            let mut chunk = chunk;
            chunk.clear();
            spare.push(chunk);
            Ok(())
        };

        let mut seq = 0u64;
        loop {
            let mut chunk = spare.pop().unwrap_or_default();
            chunk.reserve(cfg.mem_records);
            reader.read_into(&mut chunk, cfg.mem_records)?;
            if chunk.is_empty() {
                break;
            }
            work_tx
                .send((seq, chunk))
                .expect("sort workers exited early");
            seq += 1;
            // Opportunistically drain finished chunks in order, without
            // blocking the read side.
            while let Ok((s, sorted, kw, stat)) = done_rx.try_recv() {
                ready.insert(s, (sorted, kw, stat));
            }
            while let Some(sorted) = ready.remove(&next_out) {
                emit(sorted, &mut writers, &mut spare)?;
                next_out += 1;
            }
        }
        drop(work_tx); // input done: workers drain the queue and exit

        for (s, sorted, kw, stat) in done_rx.iter() {
            ready.insert(s, (sorted, kw, stat));
            while let Some(sorted) = ready.remove(&next_out) {
                emit(sorted, &mut writers, &mut spare)?;
                next_out += 1;
            }
        }
        debug_assert_eq!(next_out, seq, "all chunks must come back sorted");
        Ok(())
    })?;

    for w in writers {
        w.finish()?;
    }
    Ok(assemble(names, runs, &dist, total_runs, records, work))
}

/// Replacement selection: a min-heap of `(generation, record)` produces
/// maximal runs; records smaller than the last one emitted are deferred to
/// the next generation.
fn replacement_selection<R: Record>(
    reader: &mut BlockReader<R>,
    writers: &mut [pdm::BlockWriter<R>],
    runs: &mut [VecDeque<u64>],
    dist: &mut Distributor,
    cfg: &ExtSortConfig,
) -> PdmResult<(u64, u64, u64)> {
    use std::cmp::Reverse;

    let mut heap: BinaryHeap<Reverse<(u64, R)>> = BinaryHeap::with_capacity(cfg.mem_records);
    let mut records = 0u64;
    for _ in 0..cfg.mem_records {
        match reader.next_record()? {
            Some(x) => {
                heap.push(Reverse((0, x)));
                records += 1;
            }
            None => break,
        }
    }
    let mut total_runs = 0u64;
    let mut comparisons = 0u64;
    let mut gen = 0u64;
    while let Some(&Reverse((g, _))) = heap.peek() {
        // Start a run for generation `g`.
        debug_assert!(g >= gen);
        gen = g;
        let tape = dist.next_tape();
        total_runs += 1;
        let mut run_len = 0u64;
        while let Some(&Reverse((g2, x))) = heap.peek() {
            if g2 != gen {
                break;
            }
            heap.pop();
            writers[tape].push(x)?;
            run_len += 1;
            // Each heap pop/push costs ~log2(M) comparisons.
            comparisons += heap_log2(cfg.mem_records);
            if let Some(nxt) = reader.next_record()? {
                records += 1;
                // A record smaller than the one just emitted cannot extend
                // the current run; defer it to the next generation.
                let g_next = if nxt >= x { gen } else { gen + 1 };
                heap.push(Reverse((g_next, nxt)));
                comparisons += heap_log2(cfg.mem_records);
            }
        }
        runs[tape].push_back(run_len);
        obs::hist_record("extsort.run_records", run_len);
    }
    Ok((records, comparisons, total_runs))
}

fn heap_log2(m: usize) -> u64 {
    (usize::BITS - m.max(2).leading_zeros()) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm::Disk;

    fn cfg(mem: usize) -> ExtSortConfig {
        ExtSortConfig::new(mem).with_tapes(4)
    }

    #[test]
    fn distributor_fibonacci_levels_k2() {
        let mut d = Distributor::new(2).unwrap();
        assert_eq!(d.ideal(), &[1, 0]);
        d.next_tape(); // consumes level 0
        d.next_tape(); // forces level 1: (1,1) → one deficit left
        assert_eq!(d.ideal(), &[1, 1]);
        d.next_tape(); // level 2: (2,1)
        assert_eq!(d.ideal(), &[2, 1]);
        // Fibonacci totals: 1, 2, 3, 5, 8…
        for _ in 0..2 {
            d.next_tape();
        }
        assert_eq!(d.ideal().iter().sum::<u64>(), 5);
        assert_eq!(d.ideal(), &[3, 2]);
    }

    #[test]
    fn distributor_k3_levels() {
        let mut d = Distributor::new(3).unwrap();
        // Levels for order-3: (1,0,0)=1, (1,1,1)=3, (2,2,1)? — recurrence:
        // d1 = (1+0, 1+0, 1) = (1,1,1); d2 = (1+1, 1+1, 1) = (2,2,1).
        d.next_tape();
        d.next_tape();
        assert_eq!(d.ideal(), &[1, 1, 1]);
        for _ in 0..3 {
            d.next_tape();
        }
        assert_eq!(d.ideal(), &[2, 2, 1]);
    }

    #[test]
    fn distributor_dummies_complete_level() {
        let mut d = Distributor::new(3).unwrap();
        for _ in 0..4 {
            d.next_tape();
        }
        // 4 runs placed; level (2,2,1) totals 5 → one dummy somewhere.
        assert_eq!(d.dummies().iter().sum::<u64>(), 1);
    }

    #[test]
    fn chunk_sort_forms_sorted_runs() {
        let disk = Disk::in_memory(16);
        let data: Vec<u32> = vec![9, 3, 7, 1, 8, 2, 6, 4, 5, 0];
        disk.write_file("in", &data).unwrap();
        let formed = form_runs::<u32>(&disk, "in", "job", 3, &cfg(4)).unwrap();
        assert_eq!(formed.records, 10);
        assert_eq!(formed.total_runs, 3); // 4+4+2
                                          // Each tape's runs are individually sorted.
        for tape in &formed.tapes {
            let content = disk.read_file::<u32>(&tape.name).unwrap();
            let mut off = 0usize;
            for &len in &tape.runs {
                let run = &content[off..off + len as usize];
                assert!(run.windows(2).all(|w| w[0] <= w[1]), "unsorted run");
                off += len as usize;
            }
            assert_eq!(off, content.len());
        }
        // Ideal layout: real + dummies equals an ideal level.
        let real: u64 = formed.tapes.iter().map(|t| t.runs.len() as u64).sum();
        let dum: u64 = formed.tapes.iter().map(|t| t.dummies).sum();
        assert_eq!(real, 3);
        assert_eq!(real + dum, 3); // level (1,1,1) fits exactly
    }

    #[test]
    fn empty_input_forms_no_runs() {
        let disk = Disk::in_memory(16);
        disk.write_file::<u32>("in", &[]).unwrap();
        let formed = form_runs::<u32>(&disk, "in", "j", 3, &cfg(4)).unwrap();
        assert_eq!(formed.total_runs, 0);
        assert_eq!(formed.records, 0);
    }

    #[test]
    fn replacement_selection_runs_are_longer() {
        let disk = Disk::in_memory(64);
        let mut rng = sim::Pcg64::new(42);
        use sim::rng::Rng;
        let data: Vec<u32> = (0..1000).map(|_| rng.next_u32()).collect();
        disk.write_file("in", &data).unwrap();

        let c_chunk = cfg(50);
        let chunk = form_runs::<u32>(&disk, "in", "a", 3, &c_chunk).unwrap();
        let c_rs = cfg(50).with_run_formation(RunFormation::ReplacementSelection);
        let rs = form_runs::<u32>(&disk, "in", "b", 3, &c_rs).unwrap();
        assert_eq!(rs.records, 1000);
        assert!(
            rs.total_runs < chunk.total_runs,
            "replacement selection ({}) should beat chunking ({})",
            rs.total_runs,
            chunk.total_runs
        );
    }

    #[test]
    fn replacement_selection_sorted_input_single_run() {
        let disk = Disk::in_memory(64);
        let data: Vec<u32> = (0..500).collect();
        disk.write_file("in", &data).unwrap();
        let c = cfg(32).with_run_formation(RunFormation::ReplacementSelection);
        let formed = form_runs::<u32>(&disk, "in", "j", 3, &c).unwrap();
        assert_eq!(formed.total_runs, 1, "sorted input → one maximal run");
        let tape = formed.tapes.iter().find(|t| !t.runs.is_empty()).unwrap();
        assert_eq!(disk.read_file::<u32>(&tape.name).unwrap(), data);
    }

    #[test]
    fn replacement_selection_preserves_multiset() {
        let disk = Disk::in_memory(32);
        let data: Vec<u32> = vec![5, 5, 1, 9, 1, 3, 3, 3, 0, 7, 2, 8];
        disk.write_file("in", &data).unwrap();
        let c = cfg(4).with_run_formation(RunFormation::ReplacementSelection);
        let formed = form_runs::<u32>(&disk, "in", "j", 3, &c).unwrap();
        let mut all: Vec<u32> = Vec::new();
        for t in &formed.tapes {
            all.extend(disk.read_file::<u32>(&t.name).unwrap());
        }
        let mut expect = data.clone();
        expect.sort_unstable();
        all.sort_unstable();
        assert_eq!(all, expect);
        assert_eq!(formed.records, 12);
    }

    #[test]
    fn distributor_needs_two_tapes() {
        let err = Distributor::new(1).unwrap_err();
        assert!(err.to_string().contains("at least 2 input tapes"), "{err}");
    }
}
