//! Polyphase merge sort (Knuth §5.4.2).
//!
//! The paper's step-1 sequential sorter: with `T` tape files, polyphase
//! achieves a `(T−1)`-way merge *without* a redistribution pass, by keeping
//! the initial runs in an ideal generalized-Fibonacci distribution and
//! rotating the emptied tape into the output role after every phase.
//!
//! Phase invariant (proved by the Fibonacci recurrence): if the run counts
//! (real + dummy) form an ideal level-`n` distribution, merging
//! `min_j(runs_j)` steps empties exactly one tape and leaves a level-`n−1`
//! distribution. Level 0 is a single run — the sorted output.

use std::collections::VecDeque;

use pdm::{BlockReader, BlockWriter, BufferPool, Disk, PdmResult, Record, WriteBehindWriter};

use crate::config::ExtSortConfig;
use crate::loser_tree::LoserTree;
use crate::parallel_merge::{parallel_merge_segments, planned_workers, MergeSegment};
use crate::report::SortReport;
use crate::run_formation::{form_runs, FormedRuns};
use crate::stream::Bounded;

/// Sorts `input` into a new file `output` using polyphase merge sort.
///
/// Temporary tape files are created as `"{job}.tape*"` and removed before
/// returning; `job` must be unique per concurrent sort on the same disk.
///
/// ```
/// use extsort::{polyphase_sort, ExtSortConfig};
/// use pdm::Disk;
///
/// let disk = Disk::in_memory(64); // 16 u32 records per block
/// disk.write_file::<u32>("input", &[9, 1, 8, 2, 7, 3, 6, 4, 5, 0]).unwrap();
/// // Sort with a 4-record memory budget — genuinely out-of-core.
/// let cfg = ExtSortConfig::new(64).with_tapes(4);
/// let report = polyphase_sort::<u32>(&disk, "input", "sorted", "job", &cfg).unwrap();
/// assert_eq!(report.records, 10);
/// assert_eq!(disk.read_file::<u32>("sorted").unwrap(), (0..10).collect::<Vec<_>>());
/// ```
pub fn polyphase_sort<R: Record>(
    disk: &Disk,
    input: &str,
    output: &str,
    job: &str,
    cfg: &ExtSortConfig,
) -> PdmResult<SortReport> {
    let records_per_block = disk.block_bytes() / R::SIZE;
    cfg.validate(records_per_block)?;
    let io_before = disk.stats().snapshot();

    let k = cfg.tapes - 1;
    let formed = form_runs::<R>(disk, input, job, k, cfg)?;
    let mut report = SortReport {
        records: formed.records,
        initial_runs: formed.total_runs,
        merge_phases: 0,
        comparisons: formed.comparisons,
        key_ops: formed.key_ops,
        io: Default::default(),
    };

    merge_phases::<R>(disk, formed, output, job, cfg, &mut report)?;

    report.io = disk.stats().snapshot().delta(&io_before);
    Ok(report)
}

/// The per-phase output sink: a plain block writer, or a write-behind writer
/// when the pipeline is on (the merge then overlaps the output transfers).
enum PhaseWriter<R: Record> {
    Sync(BlockWriter<R>),
    Pipelined(WriteBehindWriter<R>),
}

impl<R: Record> PhaseWriter<R> {
    fn create(disk: &Disk, name: &str, cfg: &ExtSortConfig, pool: &BufferPool) -> PdmResult<Self> {
        if cfg.pipeline.enabled {
            Ok(PhaseWriter::Pipelined(disk.create_write_behind::<R>(
                name,
                cfg.pipeline.depth_for(disk.model(), 2),
                pool.clone(),
            )?))
        } else {
            Ok(PhaseWriter::Sync(disk.create_writer::<R>(name)?))
        }
    }

    fn push(&mut self, r: R) -> PdmResult<()> {
        match self {
            PhaseWriter::Sync(w) => w.push(r),
            PhaseWriter::Pipelined(w) => w.push(r),
        }
    }

    fn push_all(&mut self, rs: &[R]) -> PdmResult<()> {
        match self {
            PhaseWriter::Sync(w) => w.push_all(rs),
            PhaseWriter::Pipelined(w) => w.push_all(rs),
        }
    }

    fn finish(self) -> PdmResult<u64> {
        match self {
            PhaseWriter::Sync(w) => w.finish(),
            PhaseWriter::Pipelined(w) => w.finish(),
        }
    }
}

/// One tape during the merge: a file plus its queue of run lengths.
struct Tape<R: Record> {
    name: String,
    runs: VecDeque<u64>,
    dummies: u64,
    reader: Option<BlockReader<R>>,
    /// Records of this file consumed by earlier merge steps (the cursor the
    /// range-partitioned path resumes from; the sequential path keeps the
    /// cursor inside `reader` instead).
    consumed: u64,
}

impl<R: Record> Tape<R> {
    fn total_runs(&self) -> u64 {
        self.runs.len() as u64 + self.dummies
    }
}

/// Drives the polyphase phases until a single run remains, then renames it
/// to `output` and cleans up the tapes.
fn merge_phases<R: Record>(
    disk: &Disk,
    formed: FormedRuns,
    output: &str,
    job: &str,
    cfg: &ExtSortConfig,
    report: &mut SortReport,
) -> PdmResult<()> {
    // One shared buffer pool for the whole merge: every tape reader and
    // phase writer recycles its block buffer through it, so the steady-state
    // merge loop performs no block-buffer allocations.
    let pool = BufferPool::default();
    // Degenerate inputs: zero runs → empty output; the general loop handles
    // a single run via zero phases.
    if formed.total_runs == 0 {
        for t in &formed.tapes {
            disk.remove(&t.name)?;
        }
        disk.create_writer::<R>(output)?.finish()?;
        return Ok(());
    }

    let mut tapes: Vec<Tape<R>> = formed
        .tapes
        .into_iter()
        .map(|t| Tape {
            name: t.name,
            runs: t.runs,
            dummies: t.dummies,
            reader: None,
            consumed: 0,
        })
        .collect();
    // The output tape starts empty.
    let mut out_idx = tapes.len();
    tapes.push(Tape {
        name: format!("{job}.tape{}", tapes.len()),
        runs: VecDeque::new(),
        dummies: 0,
        reader: None,
        consumed: 0,
    });
    // Range-partitioned merging applies only when positional cuts reproduce
    // the tree's tie-break (total-order keys); every step then goes through
    // the segment API so the resume metering stays self-consistent.
    let par_mode = cfg.pipeline.effective_merge_workers() > 1 && R::HAS_SORT_KEY && R::KEY_IS_TOTAL;

    let mut phase_guard = 0u32;
    loop {
        let live: Vec<usize> = (0..tapes.len())
            .filter(|&i| i != out_idx && tapes[i].total_runs() > 0)
            .collect();
        let total_real: u64 = tapes.iter().map(|t| t.runs.len() as u64).sum();
        if total_real == 1 && live.len() <= 1 && tapes.iter().all(|t| t.dummies == 0) {
            break;
        }
        phase_guard += 1;
        assert!(
            phase_guard < 10_000,
            "polyphase failed to converge — distribution invariant broken"
        );
        let _span = obs::scoped("extsort.merge-pass");

        // A phase merges as many steps as the thinnest input tape has runs.
        let steps = (0..tapes.len())
            .filter(|&i| i != out_idx)
            .map(|i| tapes[i].total_runs())
            .min()
            .expect("at least one input tape");
        debug_assert!(steps > 0, "ideal distribution guarantees non-empty tapes");

        // Fresh file for this phase's output.
        disk.remove(&tapes[out_idx].name)?;
        let mut writer = PhaseWriter::<R>::create(disk, &tapes[out_idx].name, cfg, &pool)?;
        let mut out_runs: VecDeque<u64> = VecDeque::new();
        let mut out_dummies = 0u64;

        for _ in 0..steps {
            // Collect this step's run view from every input tape; dummies
            // contribute nothing (consumed first, per Knuth).
            let mut contributors: Vec<(usize, u64)> = Vec::new();
            for (i, tape) in tapes.iter_mut().enumerate() {
                if i == out_idx {
                    continue;
                }
                if tape.dummies > 0 {
                    tape.dummies -= 1;
                } else if let Some(len) = tape.runs.pop_front() {
                    contributors.push((i, len));
                } else {
                    unreachable!("phase steps exceed tape runs");
                }
            }
            if contributors.is_empty() {
                // All inputs contributed dummies → the merged run is a dummy.
                out_dummies += 1;
                continue;
            }
            let merged_len: u64 = contributors.iter().map(|&(_, l)| l).sum();
            if par_mode {
                let segments: Vec<MergeSegment> = contributors
                    .iter()
                    .map(|&(i, len)| {
                        MergeSegment::new(tapes[i].name.clone(), tapes[i].consumed, len)
                            .resumed(tapes[i].consumed > 0)
                    })
                    .collect();
                let step_workers = planned_workers::<R>(
                    disk,
                    &cfg.pipeline,
                    contributors.len(),
                    merged_len,
                    cfg.kernel,
                );
                let out =
                    parallel_merge_segments::<R, _>(disk, &segments, step_workers, &pool, |b| {
                        writer.push_all(b)
                    })?;
                debug_assert_eq!(out.records, merged_len);
                if cfg.kernel.key_based::<R>() {
                    report.key_ops += out.comparisons;
                } else {
                    report.comparisons += out.comparisons;
                }
                for &(i, len) in &contributors {
                    tapes[i].consumed += len;
                }
                out_runs.push_back(merged_len);
                continue;
            }
            // Open readers lazily; build bounded views of one run each.
            for &(i, _) in &contributors {
                if tapes[i].reader.is_none() {
                    tapes[i].reader =
                        Some(disk.open_reader_pooled::<R>(&tapes[i].name, Some(pool.clone()))?);
                }
            }
            {
                // Split mutable borrows: collect raw readers by index.
                let mut views: Vec<Bounded<'_, R, BlockReader<R>>> = Vec::new();
                let mut split: Vec<&mut Tape<R>> = tapes.iter_mut().collect();
                // Sort contributor indices so we can use split_off_mut style
                // extraction via pointers is overkill; instead use unsafe-free
                // approach: take readers out, then put them back.
                let mut taken: Vec<(usize, BlockReader<R>)> = Vec::new();
                for &(i, len) in &contributors {
                    let r = split[i].reader.take().expect("opened above");
                    taken.push((i, r));
                    let _ = len;
                }
                drop(split);
                for (slot, &(_, len)) in taken.iter_mut().zip(&contributors) {
                    views.push(Bounded::new(&mut slot.1, len));
                }
                let mut tree = LoserTree::new(views)?;
                while let Some(x) = tree.next_record()? {
                    writer.push(x)?;
                }
                // Cached-key selects are key ops under a key-based kernel,
                // full comparisons under the reference kernel.
                if cfg.kernel.key_based::<R>() {
                    report.key_ops += tree.comparisons();
                } else {
                    report.comparisons += tree.comparisons();
                }
                debug_assert_eq!(tree.produced(), merged_len);
                for (i, r) in taken {
                    tapes[i].reader = Some(r);
                }
            }
            out_runs.push_back(merged_len);
        }

        writer.finish()?;
        tapes[out_idx].runs = out_runs;
        tapes[out_idx].dummies = out_dummies;
        tapes[out_idx].reader = None;
        // Freshly written file: the resume cursor restarts at the beginning.
        tapes[out_idx].consumed = 0;
        report.merge_phases += 1;

        // The tape that just emptied becomes the next output.
        let emptied = (0..tapes.len())
            .find(|&i| i != out_idx && tapes[i].total_runs() == 0)
            .expect("polyphase phase must empty exactly one tape");
        // Its reader (if any) is done; drop it so the file can be reused.
        tapes[emptied].reader = None;
        out_idx = emptied;
    }

    // Exactly one tape holds exactly one run — the sorted data. Its file may
    // also contain earlier, already-consumed runs only if it never became an
    // output; but a tape holding the final run was always the last phase's
    // output (or the sole initial tape), so the file contains only the run.
    let final_idx = (0..tapes.len())
        .find(|&i| !tapes[i].runs.is_empty())
        .expect("one run must remain");
    for (i, t) in tapes.iter_mut().enumerate() {
        t.reader = None;
        if i != final_idx {
            disk.remove(&t.name)?;
        }
    }
    disk.rename(&tapes[final_idx].name, output)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{fingerprint_file, fingerprint_slice, is_sorted_file};
    use pdm::{Disk, ScratchDir};
    use sim::rng::{Pcg64, Rng};

    fn random_data(n: usize, seed: u64) -> Vec<u32> {
        let mut rng = Pcg64::new(seed);
        (0..n).map(|_| rng.next_u32()).collect()
    }

    fn check_sort(disk: &Disk, data: &[u32], cfg: &ExtSortConfig) -> SortReport {
        disk.write_file("in", data).unwrap();
        let report = polyphase_sort::<u32>(disk, "in", "out", "pp", cfg).unwrap();
        assert!(is_sorted_file::<u32>(disk, "out").unwrap());
        assert_eq!(
            fingerprint_file::<u32>(disk, "out").unwrap(),
            fingerprint_slice(data),
            "output must be a permutation of the input"
        );
        assert_eq!(report.records, data.len() as u64);
        // No temp tapes left behind.
        for t in 0..8 {
            assert!(!disk.exists(&format!("pp.tape{t}")), "leaked tape {t}");
        }
        report
    }

    #[test]
    fn sorts_random_input() {
        let disk = Disk::in_memory(16);
        let cfg = ExtSortConfig::new(16).with_tapes(4);
        let report = check_sort(&disk, &random_data(300, 1), &cfg);
        assert_eq!(report.initial_runs, 19); // ceil(300/16)
        assert!(report.merge_phases >= 3);
    }

    #[test]
    fn sorts_on_real_files() {
        let scratch = ScratchDir::new("polyphase-test").unwrap();
        let disk = Disk::on_files(scratch.path(), 64);
        let cfg = ExtSortConfig::new(64).with_tapes(4);
        check_sort(&disk, &random_data(2000, 2), &cfg);
    }

    #[test]
    fn empty_input() {
        let disk = Disk::in_memory(16);
        let cfg = ExtSortConfig::new(16).with_tapes(4);
        let report = check_sort(&disk, &[], &cfg);
        assert_eq!(report.initial_runs, 0);
        assert_eq!(report.merge_phases, 0);
    }

    #[test]
    fn single_run_input() {
        let disk = Disk::in_memory(16);
        let cfg = ExtSortConfig::new(64).with_tapes(4);
        // 50 records < 64 memory → one run, zero merge phases.
        let report = check_sort(&disk, &random_data(50, 3), &cfg);
        assert_eq!(report.initial_runs, 1);
        assert_eq!(report.merge_phases, 0);
    }

    #[test]
    fn already_sorted_and_reverse_inputs() {
        let disk = Disk::in_memory(16);
        let cfg = ExtSortConfig::new(16).with_tapes(4);
        let sorted: Vec<u32> = (0..200).collect();
        check_sort(&disk, &sorted, &cfg);
        let disk2 = Disk::in_memory(16);
        let reverse: Vec<u32> = (0..200).rev().collect();
        check_sort(&disk2, &reverse, &cfg);
    }

    #[test]
    fn all_duplicates() {
        let disk = Disk::in_memory(16);
        let cfg = ExtSortConfig::new(16).with_tapes(4);
        check_sort(&disk, &vec![7u32; 100], &cfg);
    }

    #[test]
    fn run_count_exactly_at_level_boundary() {
        // k=3 tapes: levels total 1, 3, 5, 9, 17… make exactly 5 runs.
        let disk = Disk::in_memory(16);
        let cfg = ExtSortConfig::new(20).with_tapes(4);
        let report = check_sort(&disk, &random_data(100, 4), &cfg);
        assert_eq!(report.initial_runs, 5);
    }

    #[test]
    fn run_count_needing_dummies() {
        // 4 runs with k=3 → level (2,2,1) = 5 needs one dummy.
        let disk = Disk::in_memory(16);
        let cfg = ExtSortConfig::new(25).with_tapes(4);
        let report = check_sort(&disk, &random_data(100, 5), &cfg);
        assert_eq!(report.initial_runs, 4);
    }

    #[test]
    fn many_tapes_fewer_phases() {
        let data = random_data(4000, 6);
        let disk_few = Disk::in_memory(16);
        let few = check_sort(&disk_few, &data, &ExtSortConfig::new(100).with_tapes(3));
        let disk_many = Disk::in_memory(16);
        let many = check_sort(&disk_many, &data, &ExtSortConfig::new(100).with_tapes(8));
        assert!(
            many.merge_phases < few.merge_phases,
            "higher fan-in must reduce phases: {} vs {}",
            many.merge_phases,
            few.merge_phases
        );
        assert!(many.io.total_blocks() < few.io.total_blocks());
    }

    #[test]
    fn replacement_selection_end_to_end() {
        use crate::config::RunFormation;
        let disk = Disk::in_memory(16);
        let cfg = ExtSortConfig::new(32)
            .with_tapes(4)
            .with_run_formation(RunFormation::ReplacementSelection);
        check_sort(&disk, &random_data(500, 7), &cfg);
    }

    #[test]
    fn pipelined_matches_sequential() {
        use crate::config::PipelineConfig;
        let data = random_data(1000, 9);
        let d1 = Disk::in_memory(16);
        let seq = check_sort(&d1, &data, &ExtSortConfig::new(64).with_tapes(4));
        let d2 = Disk::in_memory(16);
        let cfg = ExtSortConfig::new(64)
            .with_tapes(4)
            .with_pipeline(PipelineConfig::with_workers(4));
        let pipe = check_sort(&d2, &data, &cfg);
        assert_eq!(seq.io, pipe.io, "pipelining must not change metered I/O");
        assert_eq!(seq.initial_runs, pipe.initial_runs);
        assert_eq!(seq.comparisons, pipe.comparisons);
        assert_eq!(seq.key_ops, pipe.key_ops);
        assert_eq!(
            d1.read_file::<u32>("out").unwrap(),
            d2.read_file::<u32>("out").unwrap()
        );
    }

    #[test]
    fn parallel_merge_workers_match_sequential() {
        let data = random_data(3000, 11);
        let d1 = Disk::in_memory(16);
        let seq = check_sort(&d1, &data, &ExtSortConfig::new(64).with_tapes(4));
        for &w in &[2usize, 4, 8] {
            let d2 = Disk::in_memory(16);
            let cfg = ExtSortConfig::new(64).with_tapes(4).with_merge_workers(w);
            let par = check_sort(&d2, &data, &cfg);
            assert_eq!(
                d1.read_file::<u32>("out").unwrap(),
                d2.read_file::<u32>("out").unwrap(),
                "workers={w}: output must be byte-identical"
            );
            assert_eq!(seq.initial_runs, par.initial_runs);
            assert_eq!(seq.merge_phases, par.merge_phases);
            // Range partitioning adds splitter probes and boundary-block
            // prefills, all metered as seeking reads; the streaming I/O and
            // every write must match the sequential oracle exactly.
            assert_eq!(
                seq.io.blocks_read - seq.io.random_reads,
                par.io.blocks_read - par.io.random_reads,
                "workers={w}: non-seek block reads diverged"
            );
            assert_eq!(
                seq.io.bytes_read - seq.io.seek_bytes,
                par.io.bytes_read - par.io.seek_bytes,
                "workers={w}: non-seek read bytes diverged"
            );
            assert_eq!(seq.io.blocks_written, par.io.blocks_written);
            assert_eq!(seq.io.bytes_written, par.io.bytes_written);
            assert_eq!(seq.io.files_created, par.io.files_created);
        }
    }

    #[test]
    fn parallel_merge_workers_on_real_files() {
        let scratch = ScratchDir::new("polyphase-par-test").unwrap();
        let disk = Disk::on_files(scratch.path(), 64);
        let cfg = ExtSortConfig::new(64).with_tapes(4).with_merge_workers(4);
        check_sort(&disk, &random_data(2000, 12), &cfg);
    }

    #[test]
    fn invalid_config_is_typed_error() {
        let disk = Disk::in_memory(16);
        disk.write_file::<u32>("in", &[3, 1, 2]).unwrap();
        let cfg = ExtSortConfig::new(4).with_tapes(2);
        let err = polyphase_sort::<u32>(&disk, "in", "out", "pp", &cfg).unwrap_err();
        assert!(matches!(err, pdm::PdmError::InvalidConfig(_)), "{err}");
    }

    #[test]
    fn io_scales_with_phases() {
        // Sanity: total block I/O stays within a small multiple of the
        // run-formation floor (2 reads+writes of everything per pass).
        let disk = Disk::in_memory(64); // 16 records/block
        let cfg = ExtSortConfig::new(128).with_tapes(8);
        let data = random_data(4096, 8);
        let report = check_sort(&disk, &data, &cfg);
        let floor = 2 * (4096 / 16); // read+write once
        let total = report.io.total_blocks();
        assert!(total >= floor as u64);
        assert!(
            total <= 6 * floor as u64,
            "I/O blew up: {total} blocks vs floor {floor}"
        );
    }
}
