//! Fallible record streams.
//!
//! The merge machinery is generic over where records come from: a block
//! file, an in-memory slice (tests), or a *bounded view* of the next `L`
//! records of a tape (polyphase reads one run at a time from each tape).

use pdm::{BlockReader, PdmResult, PrefetchReader, Record};

/// A fallible source of records, like `Iterator` but with I/O errors.
pub trait RecordStream<R: Record> {
    /// Returns the next record, or `None` when exhausted.
    fn next_record(&mut self) -> PdmResult<Option<R>>;
}

impl<R: Record> RecordStream<R> for BlockReader<R> {
    fn next_record(&mut self) -> PdmResult<Option<R>> {
        BlockReader::next_record(self)
    }
}

impl<R: Record> RecordStream<R> for PrefetchReader<R> {
    fn next_record(&mut self) -> PdmResult<Option<R>> {
        PrefetchReader::next_record(self)
    }
}

/// An in-memory stream over a vector of records (mainly for tests and for
/// merging in-core chunks).
#[derive(Debug)]
pub struct SliceStream<R> {
    data: Vec<R>,
    pos: usize,
}

impl<R: Record> SliceStream<R> {
    /// Wraps a vector as a stream.
    pub fn new(data: Vec<R>) -> Self {
        SliceStream { data, pos: 0 }
    }
}

impl<R: Record> RecordStream<R> for SliceStream<R> {
    fn next_record(&mut self) -> PdmResult<Option<R>> {
        if self.pos < self.data.len() {
            let r = self.data[self.pos];
            self.pos += 1;
            Ok(Some(r))
        } else {
            Ok(None)
        }
    }
}

/// A stream that yields at most `limit` records from an underlying stream —
/// a *view of one run* on a tape whose cursor then stays positioned at the
/// start of the next run.
#[derive(Debug)]
pub struct Bounded<'a, R: Record, S: RecordStream<R>> {
    inner: &'a mut S,
    left: u64,
    _marker: std::marker::PhantomData<R>,
}

impl<'a, R: Record, S: RecordStream<R>> Bounded<'a, R, S> {
    /// Takes the next `limit` records of `inner` as a sub-stream.
    pub fn new(inner: &'a mut S, limit: u64) -> Self {
        Bounded {
            inner,
            left: limit,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<R: Record, S: RecordStream<R>> RecordStream<R> for Bounded<'_, R, S> {
    fn next_record(&mut self) -> PdmResult<Option<R>> {
        if self.left == 0 {
            return Ok(None);
        }
        self.left -= 1;
        let r = self.inner.next_record()?;
        debug_assert!(r.is_some(), "bounded stream ran past underlying end");
        Ok(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm::Disk;

    fn drain<R: Record>(s: &mut impl RecordStream<R>) -> Vec<R> {
        let mut out = Vec::new();
        while let Some(x) = s.next_record().unwrap() {
            out.push(x);
        }
        out
    }

    #[test]
    fn slice_stream_yields_all() {
        let mut s = SliceStream::new(vec![3u32, 1, 4, 1, 5]);
        assert_eq!(drain(&mut s), vec![3, 1, 4, 1, 5]);
        assert_eq!(s.next_record().unwrap(), None); // stays exhausted
    }

    #[test]
    fn block_reader_is_a_stream() {
        let disk = Disk::in_memory(16);
        disk.write_file::<u32>("f", &[9, 8, 7]).unwrap();
        let mut r = disk.open_reader::<u32>("f").unwrap();
        assert_eq!(drain(&mut r), vec![9, 8, 7]);
    }

    #[test]
    fn bounded_takes_prefix_and_leaves_cursor() {
        let mut s = SliceStream::new((0u32..10).collect());
        {
            let mut b = Bounded::new(&mut s, 4);
            assert_eq!(drain(&mut b), vec![0, 1, 2, 3]);
            assert_eq!(b.next_record().unwrap(), None);
        }
        // The underlying stream continues where the bound left off.
        assert_eq!(drain(&mut s), vec![4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn bounded_zero_is_empty() {
        let mut s = SliceStream::new(vec![1u32]);
        let mut b = Bounded::new(&mut s, 0);
        assert_eq!(b.next_record().unwrap(), None);
    }
}
