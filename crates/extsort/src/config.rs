//! External-sort configuration.

use pdm::{PdmError, PdmResult};

use crate::kernel::SortKernel;

/// How initial sorted runs are formed from the unsorted input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunFormation {
    /// Read one memory load (`M` records), sort it in-core, write it out.
    /// Produces `⌈N/M⌉` runs of length `M`.
    ChunkSort,
    /// Replacement selection with a heap of `M` records. Produces runs of
    /// expected length `2M` on random input (fewer, longer runs → fewer
    /// merge passes), and a *single* run on already-sorted input.
    ReplacementSelection,
}

/// Pipelined-execution knobs: whether the sorters overlap I/O with
/// computation, and how wide the in-core sort pool is.
///
/// The pipelined path is *observationally identical* to the sequential one —
/// byte-identical outputs and identical metered block-I/O — so the
/// sequential path (`PipelineConfig::off()`, the default) remains the
/// reference oracle the differential tests compare against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Overlap block I/O with computation (prefetching readers, write-behind
    /// writers, parallel chunk sorting).
    pub enabled: bool,
    /// Worker threads for in-core chunk sorting during run formation.
    /// Ignored when `enabled` is false; clamped to ≥ 1.
    pub workers: usize,
    /// Blocks each pipelined reader/writer keeps in flight (queue depth).
    /// Clamped to ≥ 1; the default is double buffering.
    pub prefetch_blocks: usize,
    /// Worker threads for range-partitioned parallel merging. `1` (the
    /// default) keeps every merge on the sequential loser tree; larger
    /// values split each merge into disjoint key ranges. Works with or
    /// without `enabled` (it parallelizes CPU, not I/O). Clamped to ≥ 1.
    pub merge_workers: usize,
    /// Whether `merge_workers` was set explicitly (an order) rather than as
    /// an advisory default. The merge planner honours explicit requests
    /// unconditionally; advisory ones are a ceiling — the planner prices
    /// every candidate with the device's contention model and picks the
    /// cheapest (possibly the sequential merge).
    pub merge_workers_explicit: bool,
    /// Device-adaptive mode: secondary knobs the user did not pin (prefetch
    /// depth, for now) are derived from the disk model instead of their
    /// defaults. Set via [`PipelineConfig::adaptive`].
    pub adaptive: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig::off()
    }
}

impl PipelineConfig {
    /// Strictly sequential execution — the reference oracle.
    pub fn off() -> Self {
        PipelineConfig {
            enabled: false,
            workers: 1,
            prefetch_blocks: pdm::DEFAULT_PIPELINE_DEPTH,
            merge_workers: 1,
            merge_workers_explicit: false,
            adaptive: false,
        }
    }

    /// Pipelined execution with `workers` sort threads and double-buffered
    /// I/O queues.
    pub fn with_workers(workers: usize) -> Self {
        PipelineConfig {
            enabled: true,
            workers: workers.max(1),
            prefetch_blocks: pdm::DEFAULT_PIPELINE_DEPTH,
            merge_workers: 1,
            merge_workers_explicit: false,
            adaptive: false,
        }
    }

    /// Fully device-adaptive execution: `workers` sort threads, merge
    /// workers advisory up to the cap (the planner prices candidates per
    /// device and may fall back to sequential), prefetch depth derived from
    /// the device's queue depth. Every knob remains overridable with the
    /// explicit builders.
    pub fn adaptive(workers: usize) -> Self {
        let mut p = PipelineConfig::with_workers(workers)
            .with_advisory_merge_workers(crate::parallel_merge::MAX_MERGE_WORKERS);
        p.adaptive = true;
        p
    }

    /// Effective I/O queue depth for a device shared by `streams` request
    /// streams: the explicit knob, unless this config is adaptive — then
    /// the device model decides ([`crate::planner::planned_depth`]).
    pub fn depth_for(&self, model: &pdm::DiskModel, streams: usize) -> usize {
        if self.adaptive {
            crate::planner::planned_depth(model, streams)
        } else {
            self.depth()
        }
    }

    /// Sets the I/O queue depth (builder style; clamped to ≥ 1).
    #[must_use]
    pub fn with_prefetch_blocks(mut self, depth: usize) -> Self {
        self.prefetch_blocks = depth.max(1);
        self
    }

    /// Sets the parallel-merge worker count explicitly (builder style;
    /// clamped to ≥ 1). The planner honours the count even where its device
    /// model predicts a loss.
    #[must_use]
    pub fn with_merge_workers(mut self, workers: usize) -> Self {
        self.merge_workers = workers.max(1);
        self.merge_workers_explicit = true;
        self
    }

    /// Sets the parallel-merge worker count as an *advisory* target
    /// (builder style; clamped to ≥ 1): the planner may fall back to the
    /// sequential merge when the device model says splitter probes would
    /// cost more than the parallelism saves.
    #[must_use]
    pub fn with_advisory_merge_workers(mut self, workers: usize) -> Self {
        self.merge_workers = workers.max(1);
        self.merge_workers_explicit = false;
        self
    }

    /// Effective sort-worker count (≥ 1).
    pub fn effective_workers(&self) -> usize {
        self.workers.max(1)
    }

    /// Effective merge-worker count (≥ 1).
    pub fn effective_merge_workers(&self) -> usize {
        self.merge_workers.max(1)
    }

    /// Effective I/O queue depth (≥ 1).
    pub fn depth(&self) -> usize {
        self.prefetch_blocks.max(1)
    }
}

/// Parameters for the sequential external sorts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtSortConfig {
    /// Internal memory budget `M`, in records. Run formation sorts chunks of
    /// this size; merging keeps one block per tape plus one output block.
    /// With pipelining enabled, run formation holds up to
    /// `workers + prefetch_blocks + 1` chunks of this size in flight.
    pub mem_records: usize,
    /// Total number of tape files available to polyphase merge sort (the
    /// paper's "2m files for a (2m−1)-way merge"; Table 3 uses 15
    /// intermediate files + the output). Minimum 3.
    pub tapes: usize,
    /// Initial run formation strategy.
    pub run_formation: RunFormation,
    /// In-core sorting kernel (radix fast path by default; the comparison
    /// kernel is the byte-identical reference oracle).
    pub kernel: SortKernel,
    /// Pipelined-execution knobs (off by default: sequential oracle).
    pub pipeline: PipelineConfig,
}

impl ExtSortConfig {
    /// A reasonable default: the paper's 16-file setup (15 intermediate
    /// files, as in Table 3) with chunk-sort run formation, sequential.
    pub fn new(mem_records: usize) -> Self {
        ExtSortConfig {
            mem_records,
            tapes: 16,
            run_formation: RunFormation::ChunkSort,
            kernel: SortKernel::default(),
            pipeline: PipelineConfig::off(),
        }
    }

    /// Sets the tape count (builder style).
    #[must_use]
    pub fn with_tapes(mut self, tapes: usize) -> Self {
        self.tapes = tapes;
        self
    }

    /// Sets the run-formation strategy (builder style).
    #[must_use]
    pub fn with_run_formation(mut self, rf: RunFormation) -> Self {
        self.run_formation = rf;
        self
    }

    /// Sets the in-core sorting kernel (builder style).
    #[must_use]
    pub fn with_kernel(mut self, kernel: SortKernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Sets the pipeline knobs (builder style).
    #[must_use]
    pub fn with_pipeline(mut self, pipeline: PipelineConfig) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// Sets the parallel-merge worker count (builder style, forwarded to the
    /// pipeline knobs; clamped to ≥ 1).
    #[must_use]
    pub fn with_merge_workers(mut self, workers: usize) -> Self {
        self.pipeline = self.pipeline.with_merge_workers(workers);
        self
    }

    /// Validates against a block size (records per block): memory must hold
    /// one block per tape so the merge can stream.
    ///
    /// Fails with [`PdmError::InvalidConfig`] if the configuration cannot
    /// support a streaming merge.
    pub fn validate(&self, records_per_block: usize) -> PdmResult<()> {
        if records_per_block == 0 {
            return Err(PdmError::InvalidConfig(
                "block size smaller than record size".to_string(),
            ));
        }
        if self.mem_records == 0 {
            return Err(PdmError::InvalidConfig(
                "memory budget must be positive".to_string(),
            ));
        }
        if self.tapes < 3 {
            return Err(PdmError::InvalidConfig(format!(
                "polyphase needs at least 3 tapes, got {}",
                self.tapes
            )));
        }
        if self.mem_records < self.tapes * records_per_block {
            return Err(PdmError::InvalidConfig(format!(
                "memory budget {} records cannot buffer one {}-record block per tape ({} tapes)",
                self.mem_records, records_per_block, self.tapes
            )));
        }
        Ok(())
    }

    /// Merge order (fan-in): tapes − 1.
    pub fn merge_order(&self) -> usize {
        self.tapes - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let c = ExtSortConfig::new(1 << 20);
        assert_eq!(c.tapes, 16);
        assert_eq!(c.merge_order(), 15);
        assert_eq!(c.run_formation, RunFormation::ChunkSort);
        assert_eq!(
            c.kernel,
            SortKernel::Radix,
            "radix is the default fast path"
        );
        assert!(!c.pipeline.enabled, "sequential oracle by default");
    }

    #[test]
    fn builders() {
        let c = ExtSortConfig::new(4096)
            .with_tapes(4)
            .with_run_formation(RunFormation::ReplacementSelection)
            .with_kernel(SortKernel::Comparison)
            .with_pipeline(PipelineConfig::with_workers(4));
        assert_eq!(c.tapes, 4);
        assert_eq!(c.run_formation, RunFormation::ReplacementSelection);
        assert_eq!(c.kernel, SortKernel::Comparison);
        assert!(c.pipeline.enabled);
        assert_eq!(c.pipeline.effective_workers(), 4);
    }

    #[test]
    fn merge_worker_builders() {
        let c = ExtSortConfig::new(4096).with_merge_workers(4);
        assert!(!c.pipeline.enabled, "merge workers do not imply pipelining");
        assert_eq!(c.pipeline.effective_merge_workers(), 4);
        let p = PipelineConfig::with_workers(2).with_merge_workers(2);
        assert_eq!(p.effective_merge_workers(), 2);
        assert_eq!(
            PipelineConfig::off().effective_merge_workers(),
            1,
            "sequential merge by default"
        );
    }

    #[test]
    fn adaptive_config_derives_knobs_from_the_device() {
        let p = PipelineConfig::adaptive(4);
        assert!(p.enabled && p.adaptive);
        assert!(!p.merge_workers_explicit, "adaptive is advisory");
        assert_eq!(
            p.effective_merge_workers(),
            crate::parallel_merge::MAX_MERGE_WORKERS
        );
        assert_eq!(p.depth_for(&pdm::DiskModel::scsi_2000(), 1), 2);
        assert_eq!(p.depth_for(&pdm::DiskModel::nvme_modern(), 1), 8);
        // Non-adaptive configs keep their explicit knob regardless of device.
        let fixed = PipelineConfig::with_workers(2).with_prefetch_blocks(3);
        assert_eq!(fixed.depth_for(&pdm::DiskModel::nvme_modern(), 1), 3);
        // An explicit worker order still wins over the adaptive ceiling.
        let pinned = PipelineConfig::adaptive(4).with_merge_workers(2);
        assert!(pinned.merge_workers_explicit);
        assert_eq!(pinned.effective_merge_workers(), 2);
    }

    #[test]
    fn pipeline_clamps_degenerate_knobs() {
        let p = PipelineConfig::with_workers(0)
            .with_prefetch_blocks(0)
            .with_merge_workers(0);
        assert_eq!(p.effective_workers(), 1);
        assert_eq!(p.depth(), 1);
        assert_eq!(p.effective_merge_workers(), 1);
    }

    #[test]
    fn validate_accepts_streaming_config() {
        ExtSortConfig::new(64).with_tapes(4).validate(16).unwrap();
    }

    #[test]
    fn too_few_tapes() {
        let err = ExtSortConfig::new(1024)
            .with_tapes(2)
            .validate(8)
            .unwrap_err();
        assert!(err.to_string().contains("at least 3 tapes"), "{err}");
    }

    #[test]
    fn memory_too_small_for_tapes() {
        let err = ExtSortConfig::new(32)
            .with_tapes(16)
            .validate(8)
            .unwrap_err();
        assert!(err.to_string().contains("cannot buffer"), "{err}");
    }

    #[test]
    fn zero_block_rejected() {
        let err = ExtSortConfig::new(32).validate(0).unwrap_err();
        assert!(matches!(err, PdmError::InvalidConfig(_)));
    }
}
