//! External-sort configuration.

/// How initial sorted runs are formed from the unsorted input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunFormation {
    /// Read one memory load (`M` records), sort it in-core, write it out.
    /// Produces `⌈N/M⌉` runs of length `M`.
    ChunkSort,
    /// Replacement selection with a heap of `M` records. Produces runs of
    /// expected length `2M` on random input (fewer, longer runs → fewer
    /// merge passes), and a *single* run on already-sorted input.
    ReplacementSelection,
}

/// Parameters for the sequential external sorts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtSortConfig {
    /// Internal memory budget `M`, in records. Run formation sorts chunks of
    /// this size; merging keeps one block per tape plus one output block.
    pub mem_records: usize,
    /// Total number of tape files available to polyphase merge sort (the
    /// paper's "2m files for a (2m−1)-way merge"; Table 3 uses 15
    /// intermediate files + the output). Minimum 3.
    pub tapes: usize,
    /// Initial run formation strategy.
    pub run_formation: RunFormation,
}

impl ExtSortConfig {
    /// A reasonable default: the paper's 16-file setup (15 intermediate
    /// files, as in Table 3) with chunk-sort run formation.
    pub fn new(mem_records: usize) -> Self {
        ExtSortConfig {
            mem_records,
            tapes: 16,
            run_formation: RunFormation::ChunkSort,
        }
    }

    /// Sets the tape count (builder style).
    #[must_use]
    pub fn with_tapes(mut self, tapes: usize) -> Self {
        self.tapes = tapes;
        self
    }

    /// Sets the run-formation strategy (builder style).
    #[must_use]
    pub fn with_run_formation(mut self, rf: RunFormation) -> Self {
        self.run_formation = rf;
        self
    }

    /// Validates against a block size (records per block): memory must hold
    /// one block per tape so the merge can stream.
    ///
    /// # Panics
    /// Panics if the configuration cannot support a streaming merge.
    pub fn validate(&self, records_per_block: usize) {
        assert!(self.mem_records > 0, "memory budget must be positive");
        assert!(
            self.tapes >= 3,
            "polyphase needs at least 3 tapes, got {}",
            self.tapes
        );
        assert!(
            self.mem_records >= self.tapes * records_per_block,
            "memory budget {} records cannot buffer one {}-record block per tape ({} tapes)",
            self.mem_records,
            records_per_block,
            self.tapes
        );
    }

    /// Merge order (fan-in): tapes − 1.
    pub fn merge_order(&self) -> usize {
        self.tapes - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let c = ExtSortConfig::new(1 << 20);
        assert_eq!(c.tapes, 16);
        assert_eq!(c.merge_order(), 15);
        assert_eq!(c.run_formation, RunFormation::ChunkSort);
    }

    #[test]
    fn builders() {
        let c = ExtSortConfig::new(4096)
            .with_tapes(4)
            .with_run_formation(RunFormation::ReplacementSelection);
        assert_eq!(c.tapes, 4);
        assert_eq!(c.run_formation, RunFormation::ReplacementSelection);
    }

    #[test]
    fn validate_accepts_streaming_config() {
        ExtSortConfig::new(64).with_tapes(4).validate(16);
    }

    #[test]
    #[should_panic(expected = "at least 3 tapes")]
    fn too_few_tapes() {
        ExtSortConfig::new(1024).with_tapes(2).validate(8);
    }

    #[test]
    #[should_panic(expected = "cannot buffer")]
    fn memory_too_small_for_tapes() {
        ExtSortConfig::new(32).with_tapes(16).validate(8);
    }
}
