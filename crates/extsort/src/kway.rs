//! Balanced k-way merge sort and single-pass multiway merge.
//!
//! [`balanced_kway_sort`] is the textbook external merge sort the paper's
//! polyphase is compared against in the ablation benches: with `T` tape
//! files split into two halves, each pass merges groups of `T/2` runs and
//! writes them to the other half, so every pass moves *all* the data.
//! Polyphase gets a `(T−1)`-way merge out of the same `T` files.
//!
//! [`merge_sorted_files`] is the single-pass multiway merge used as the
//! final step (step 5) of the paper's Algorithm 1, where each node merges
//! the `p` sorted partition files it received.

use pdm::{BufferPool, Disk, PdmResult, Record};

use crate::config::{ExtSortConfig, PipelineConfig};
use crate::kernel::SortKernel;
use crate::loser_tree::LoserTree;
use crate::parallel_merge::{parallel_merge_segments, planned_workers, MergeSegment};
use crate::report::{MergeReport, SortReport};
use crate::run_formation::{form_runs, FormedRuns};
use crate::stream::Bounded;

/// Sorts `input` into `output` with a balanced k-way merge sort using the
/// same file budget as [`crate::polyphase::polyphase_sort`] (fan-in `T/2`).
pub fn balanced_kway_sort<R: Record>(
    disk: &Disk,
    input: &str,
    output: &str,
    job: &str,
    cfg: &ExtSortConfig,
) -> PdmResult<SortReport> {
    let records_per_block = disk.block_bytes() / R::SIZE;
    cfg.validate(records_per_block)?;
    let fan_in = (cfg.tapes / 2).max(2);
    let io_before = disk.stats().snapshot();
    let pool = BufferPool::default();

    // Run formation over `fan_in` staging tapes (reusing the distributor is
    // unnecessary here — balanced merge re-groups runs every pass — so we
    // simply round-robin runs onto the first tape set).
    let formed = form_runs::<R>(disk, input, job, fan_in, cfg)?;
    let mut report = SortReport {
        records: formed.records,
        initial_runs: formed.total_runs,
        merge_phases: 0,
        comparisons: formed.comparisons,
        key_ops: formed.key_ops,
        io: Default::default(),
    };

    // Flatten the formed layout into a work list of (file, offset, len).
    let mut runs: Vec<RunRef> = Vec::new();
    let mut files: Vec<String> = Vec::new();
    for tape in &formed.tapes {
        let mut off = 0u64;
        for &len in &tape.runs {
            runs.push(RunRef {
                file: files.len(),
                offset: off,
                len,
            });
            off += len;
        }
        files.push(tape.name.clone());
    }
    let _ = &formed as &FormedRuns;

    if runs.is_empty() {
        for f in &files {
            disk.remove(f)?;
        }
        disk.create_writer::<R>(output)?.finish()?;
        report.io = disk.stats().snapshot().delta(&io_before);
        return Ok(report);
    }

    // Merge passes: groups of `fan_in` runs → new generation files.
    let mut generation = 0u32;
    while runs.len() > 1 {
        generation += 1;
        let _span = obs::scoped("extsort.merge-pass");
        let mut next_runs: Vec<RunRef> = Vec::new();
        let mut next_files: Vec<String> = Vec::new();
        for (g, group) in runs.chunks(fan_in).enumerate() {
            let name = format!("{job}.gen{generation}.{g}");
            let merged = merge_run_group::<R>(disk, &files, group, &name, cfg, &pool)?;
            report.comparisons += merged.comparisons;
            report.key_ops += merged.key_ops;
            next_runs.push(RunRef {
                file: next_files.len(),
                offset: 0,
                len: merged.records,
            });
            next_files.push(name);
        }
        for f in &files {
            disk.remove(f)?;
        }
        files = next_files;
        runs = next_runs;
        report.merge_phases += 1;
    }

    disk.rename(&files[runs[0].file], output)?;
    for (i, f) in files.iter().enumerate() {
        if i != runs[0].file {
            disk.remove(f)?;
        }
    }
    report.io = disk.stats().snapshot().delta(&io_before);
    Ok(report)
}

#[derive(Debug, Clone, Copy)]
struct RunRef {
    file: usize,
    offset: u64,
    len: u64,
}

/// Merges one group of runs (possibly from different files/offsets) into a
/// fresh output file.
///
/// Run inputs need `seek`, so they always use (pooled) synchronous readers;
/// with the pipeline on, the output side is write-behind, overlapping the
/// merge computation with the output transfers.
fn merge_run_group<R: Record>(
    disk: &Disk,
    files: &[String],
    group: &[RunRef],
    output: &str,
    cfg: &ExtSortConfig,
    pool: &BufferPool,
) -> PdmResult<MergeReport> {
    let records: u64 = group.iter().map(|r| r.len).sum();
    let workers = planned_workers::<R>(disk, &cfg.pipeline, group.len(), records, cfg.kernel);
    if workers > 1 {
        let segments: Vec<MergeSegment> = group
            .iter()
            .map(|r| MergeSegment::new(files[r.file].clone(), r.offset, r.len))
            .collect();
        let (produced, comparisons) = if cfg.pipeline.enabled {
            let depth = cfg.pipeline.depth_for(disk.model(), workers + 1);
            let mut writer = disk.create_write_behind::<R>(output, depth, pool.clone())?;
            let out = parallel_merge_segments::<R, _>(disk, &segments, workers, pool, |batch| {
                writer.push_all(batch)
            })?;
            writer.finish()?;
            (out.records, out.comparisons)
        } else {
            let mut writer = disk.create_writer_pooled::<R>(output, Some(pool.clone()))?;
            let out = parallel_merge_segments::<R, _>(disk, &segments, workers, pool, |batch| {
                writer.push_all(batch)
            })?;
            writer.finish()?;
            (out.records, out.comparisons)
        };
        let key_based = cfg.kernel.key_based::<R>();
        return Ok(MergeReport {
            records: produced,
            fan_in: group.len(),
            comparisons: if key_based { 0 } else { comparisons },
            key_ops: if key_based { comparisons } else { 0 },
            io: Default::default(),
        });
    }
    let mut readers = Vec::with_capacity(group.len());
    for r in group {
        let mut rd = disk.open_reader_pooled::<R>(&files[r.file], Some(pool.clone()))?;
        rd.seek(r.offset);
        readers.push(rd);
    }
    let mut views = Vec::with_capacity(group.len());
    for (rd, r) in readers.iter_mut().zip(group) {
        views.push(Bounded::new(rd, r.len));
    }
    let mut tree = LoserTree::new(views)?;
    let mut produced = 0u64;
    let comparisons;
    if cfg.pipeline.enabled {
        let depth = cfg.pipeline.depth_for(disk.model(), group.len() + 1);
        let mut writer = disk.create_write_behind::<R>(output, depth, pool.clone())?;
        while let Some(x) = tree.next_record()? {
            writer.push(x)?;
            produced += 1;
        }
        comparisons = tree.comparisons();
        writer.finish()?;
    } else {
        let mut writer = disk.create_writer_pooled::<R>(output, Some(pool.clone()))?;
        while let Some(x) = tree.next_record()? {
            writer.push(x)?;
            produced += 1;
        }
        comparisons = tree.comparisons();
        writer.finish()?;
    }
    let key_based = cfg.kernel.key_based::<R>();
    Ok(MergeReport {
        records: produced,
        fan_in: group.len(),
        comparisons: if key_based { 0 } else { comparisons },
        key_ops: if key_based { comparisons } else { 0 },
        io: Default::default(),
    })
}

/// Single-pass multiway merge of complete sorted files into `output`.
/// This is PSRS step 5: each node merges the `p` partitions it received.
pub fn merge_sorted_files<R: Record>(
    disk: &Disk,
    inputs: &[String],
    output: &str,
) -> PdmResult<MergeReport> {
    merge_sorted_files_with::<R>(disk, inputs, output, &PipelineConfig::off())
}

/// [`merge_sorted_files`] with explicit pipeline knobs: when enabled, every
/// input is prefetched by a background reader and the output is written
/// behind, so the p-way merge computation overlaps all its transfers.
/// Selects are priced with the default kernel; use
/// [`merge_sorted_files_kernel`] to pin it.
pub fn merge_sorted_files_with<R: Record>(
    disk: &Disk,
    inputs: &[String],
    output: &str,
    pipeline: &PipelineConfig,
) -> PdmResult<MergeReport> {
    merge_sorted_files_kernel::<R>(disk, inputs, output, pipeline, SortKernel::default())
}

/// [`merge_sorted_files_with`] with an explicit kernel choice, which only
/// affects how the tournament selects are *billed* (`key_ops` under a
/// key-based kernel, `comparisons` otherwise) — the merge itself is
/// identical either way.
pub fn merge_sorted_files_kernel<R: Record>(
    disk: &Disk,
    inputs: &[String],
    output: &str,
    pipeline: &PipelineConfig,
    kernel: SortKernel,
) -> PdmResult<MergeReport> {
    let _span = obs::scoped("extsort.kway-merge");
    let io_before = disk.stats().snapshot();
    // One pool for the whole merge: readers and the writer recycle each
    // other's block buffers instead of allocating per file (and per block).
    let pool = BufferPool::default();
    let mut total = 0u64;
    for name in inputs {
        total += disk.len_records::<R>(name)?;
    }
    let workers = planned_workers::<R>(disk, pipeline, inputs.len(), total, kernel);
    let produced;
    let comparisons;
    if workers > 1 {
        let mut segments = Vec::with_capacity(inputs.len());
        for name in inputs {
            segments.push(MergeSegment::new(
                name.clone(),
                0,
                disk.len_records::<R>(name)?,
            ));
        }
        let out = if pipeline.enabled {
            let depth = pipeline.depth_for(disk.model(), workers + 1);
            let mut writer = disk.create_write_behind::<R>(output, depth, pool.clone())?;
            let out = parallel_merge_segments::<R, _>(disk, &segments, workers, &pool, |batch| {
                writer.push_all(batch)
            })?;
            writer.finish()?;
            out
        } else {
            let mut writer = disk.create_writer_pooled::<R>(output, Some(pool.clone()))?;
            let out = parallel_merge_segments::<R, _>(disk, &segments, workers, &pool, |batch| {
                writer.push_all(batch)
            })?;
            writer.finish()?;
            out
        };
        produced = out.records;
        comparisons = out.comparisons;
    } else if pipeline.enabled {
        let depth = pipeline.depth_for(disk.model(), inputs.len() + 1);
        let mut readers = Vec::with_capacity(inputs.len());
        for name in inputs {
            readers.push(disk.open_prefetch_reader::<R>(name, depth, pool.clone())?);
        }
        let mut writer = disk.create_write_behind::<R>(output, depth, pool.clone())?;
        let mut tree = LoserTree::new(readers)?;
        let mut n = 0u64;
        while let Some(x) = tree.next_record()? {
            writer.push(x)?;
            n += 1;
        }
        produced = n;
        comparisons = tree.comparisons();
        writer.finish()?;
    } else {
        let mut readers = Vec::with_capacity(inputs.len());
        for name in inputs {
            readers.push(disk.open_reader_pooled::<R>(name, Some(pool.clone()))?);
        }
        let mut writer = disk.create_writer_pooled::<R>(output, Some(pool.clone()))?;
        let mut tree = LoserTree::new(readers)?;
        let mut n = 0u64;
        while let Some(x) = tree.next_record()? {
            writer.push(x)?;
            n += 1;
        }
        produced = n;
        comparisons = tree.comparisons();
        writer.finish()?;
    }
    let key_based = kernel.key_based::<R>();
    Ok(MergeReport {
        records: produced,
        fan_in: inputs.len(),
        comparisons: if key_based { 0 } else { comparisons },
        key_ops: if key_based { comparisons } else { 0 },
        io: disk.stats().snapshot().delta(&io_before),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{fingerprint_file, fingerprint_slice, is_sorted_file};
    use pdm::Disk;
    use sim::rng::{Pcg64, Rng};

    fn random_data(n: usize, seed: u64) -> Vec<u32> {
        let mut rng = Pcg64::new(seed);
        (0..n).map(|_| rng.next_u32()).collect()
    }

    fn check_balanced(disk: &Disk, data: &[u32], cfg: &ExtSortConfig) -> SortReport {
        disk.write_file("in", data).unwrap();
        let report = balanced_kway_sort::<u32>(disk, "in", "out", "kw", cfg).unwrap();
        assert!(is_sorted_file::<u32>(disk, "out").unwrap());
        assert_eq!(
            fingerprint_file::<u32>(disk, "out").unwrap(),
            fingerprint_slice(data)
        );
        report
    }

    #[test]
    fn balanced_sorts_random() {
        let disk = Disk::in_memory(16);
        let cfg = ExtSortConfig::new(16).with_tapes(4);
        let report = check_balanced(&disk, &random_data(500, 1), &cfg);
        assert_eq!(report.records, 500);
        assert!(report.merge_phases >= 2);
    }

    #[test]
    fn balanced_empty_and_tiny() {
        let disk = Disk::in_memory(16);
        let cfg = ExtSortConfig::new(16).with_tapes(4);
        check_balanced(&disk, &[], &cfg);
        let disk2 = Disk::in_memory(16);
        check_balanced(&disk2, &[42], &cfg);
    }

    #[test]
    fn balanced_single_run() {
        let disk = Disk::in_memory(16);
        let cfg = ExtSortConfig::new(64).with_tapes(4);
        let report = check_balanced(&disk, &random_data(30, 2), &cfg);
        assert_eq!(report.initial_runs, 1);
        assert_eq!(report.merge_phases, 0);
    }

    #[test]
    fn polyphase_beats_balanced_on_io() {
        // Same file budget: polyphase's higher fan-in should need fewer or
        // equal block transfers for a multi-pass problem.
        let data = random_data(4096, 3);
        let cfg = ExtSortConfig::new(160).with_tapes(8);
        let d1 = Disk::in_memory(64);
        let poly = {
            d1.write_file("in", &data).unwrap();
            crate::polyphase::polyphase_sort::<u32>(&d1, "in", "out", "pp", &cfg).unwrap()
        };
        assert!(is_sorted_file::<u32>(&d1, "out").unwrap());
        let d2 = Disk::in_memory(64);
        let bal = check_balanced(&d2, &data, &cfg);
        assert!(
            poly.io.total_blocks() <= bal.io.total_blocks(),
            "polyphase {} blocks vs balanced {} blocks",
            poly.io.total_blocks(),
            bal.io.total_blocks()
        );
    }

    #[test]
    fn merge_sorted_files_combines() {
        let disk = Disk::in_memory(16);
        let a: Vec<u32> = (0..50).map(|i| i * 3).collect();
        let b: Vec<u32> = (0..50).map(|i| i * 3 + 1).collect();
        let c: Vec<u32> = (0..50).map(|i| i * 3 + 2).collect();
        disk.write_file("a", &a).unwrap();
        disk.write_file("b", &b).unwrap();
        disk.write_file("c", &c).unwrap();
        let report =
            merge_sorted_files::<u32>(&disk, &["a".into(), "b".into(), "c".into()], "merged")
                .unwrap();
        assert_eq!(report.records, 150);
        assert_eq!(report.fan_in, 3);
        assert_eq!(
            disk.read_file::<u32>("merged").unwrap(),
            (0..150).collect::<Vec<u32>>()
        );
        // Single pass: reads everything once, writes everything once.
        assert_eq!(report.io.bytes_read, 600);
        assert_eq!(report.io.bytes_written, 600);
    }

    #[test]
    fn merge_sorted_files_parallel_matches_sequential() {
        let disk = Disk::in_memory(16);
        let a: Vec<u32> = (0..500).map(|i| i * 2).collect();
        let b: Vec<u32> = (0..500).map(|i| i * 2 + 1).collect();
        disk.write_file("a", &a).unwrap();
        disk.write_file("b", &b).unwrap();
        merge_sorted_files::<u32>(&disk, &["a".into(), "b".into()], "seq").unwrap();
        let par = PipelineConfig::off().with_merge_workers(4);
        let report =
            merge_sorted_files_with::<u32>(&disk, &["a".into(), "b".into()], "par", &par).unwrap();
        assert_eq!(report.records, 1000);
        assert_eq!(
            disk.read_file::<u32>("par").unwrap(),
            disk.read_file::<u32>("seq").unwrap()
        );
    }

    #[test]
    fn balanced_parallel_merge_matches_sequential() {
        let data = random_data(3000, 9);
        let d1 = Disk::in_memory(64);
        let cfg = ExtSortConfig::new(160).with_tapes(8);
        check_balanced(&d1, &data, &cfg);
        let d2 = Disk::in_memory(64);
        let par = cfg.clone().with_merge_workers(4);
        check_balanced(&d2, &data, &par);
        assert_eq!(
            d1.read_file::<u32>("out").unwrap(),
            d2.read_file::<u32>("out").unwrap()
        );
    }

    #[test]
    fn merge_handles_empty_inputs() {
        let disk = Disk::in_memory(16);
        disk.write_file::<u32>("a", &[1, 5]).unwrap();
        disk.write_file::<u32>("b", &[]).unwrap();
        let report = merge_sorted_files::<u32>(&disk, &["a".into(), "b".into()], "m").unwrap();
        assert_eq!(report.records, 2);
        assert_eq!(disk.read_file::<u32>("m").unwrap(), vec![1, 5]);
    }
}
