//! PDM distribution sort (the paper's §2 counterpart to merge-based
//! sorting).
//!
//! "Distribution sort is a recursive algorithm in which the inputs are
//! partitioned by a set of S−1 splitters into S buckets. The individual
//! buckets are sorted recursively. […] If each level of recursion uses
//! Θ(n/D) I/Os, distribution sort performs with I/O complexity
//! O((n/D)·log_m n), which is optimal."
//!
//! This implementation uses randomized splitter selection (the paper quotes
//! Vitter on the difficulty of *deterministically* finding Θ(m) splitters
//! with balanced buckets — random oversampling is the practical answer, cf.
//! DeWitt et al.), streams each level in `Θ(n/B)` block I/Os with one
//! buffered block per bucket, and falls back to an in-core sort as soon as
//! a bucket fits in memory. Duplicate-degenerate buckets (all keys equal)
//! are detected and emitted without further recursion.

use pdm::{Disk, PdmResult, Record};
use sim::rng::{Pcg64, Rng};

use crate::config::ExtSortConfig;
use crate::kernel::sort_chunk;
use crate::report::{incore_sort_comparisons, SortReport};

/// How many sample records per splitter the randomized selection draws.
const OVERSAMPLE: u64 = 8;

/// Sorts `input` into `output` with the recursive distribution sort.
///
/// `cfg.tapes` plays the role of the fan-out bound: at most `tapes − 1`
/// buckets per level (mirroring polyphase's `tapes − 1` fan-in), each
/// buffered by one block, so the memory discipline matches the merge sorts.
pub fn distribution_sort<R: Record>(
    disk: &Disk,
    input: &str,
    output: &str,
    job: &str,
    cfg: &ExtSortConfig,
) -> PdmResult<SortReport> {
    let records_per_block = disk.block_bytes() / R::SIZE;
    cfg.validate(records_per_block)?;
    let io_before = disk.stats().snapshot();
    let mut report = SortReport::default();
    let mut rng = Pcg64::with_stream(0xD157, 0x50F7);

    let mut writer = disk.create_writer::<R>(output)?;
    let n = disk.len_records::<R>(input)?;
    report.records = n;
    sort_range(
        disk,
        input.to_string(),
        job,
        0,
        cfg,
        &mut writer,
        &mut report,
        &mut rng,
    )?;
    let written = writer.finish()?;
    debug_assert_eq!(written, n, "distribution sort lost records");
    report.io = disk.stats().snapshot().delta(&io_before);
    Ok(report)
}

/// Recursively sorts the file `name` (consumed: removed when done unless it
/// is the original input at depth 0 — the caller's input is preserved)
/// appending the sorted records to `out`.
#[allow(clippy::too_many_arguments)]
fn sort_range<R: Record>(
    disk: &Disk,
    name: String,
    job: &str,
    depth: u32,
    cfg: &ExtSortConfig,
    out: &mut pdm::BlockWriter<R>,
    report: &mut SortReport,
    rng: &mut Pcg64,
) -> PdmResult<()> {
    assert!(depth < 64, "distribution sort failed to shrink buckets");
    let len = disk.len_records::<R>(&name)?;

    // Base case: one memory load — sort in-core and emit.
    if len as usize <= cfg.mem_records {
        let mut data = disk.read_file::<R>(&name)?;
        let kw = sort_chunk(&mut data, cfg.kernel);
        report.comparisons += kw.comparisons;
        report.key_ops += kw.key_ops;
        out.push_all(&data)?;
        if depth > 0 {
            disk.remove(&name)?;
        }
        report.initial_runs += 1;
        return Ok(());
    }

    // Randomized splitter selection: oversample, sort, pick evenly.
    let fan_out = cfg.tapes - 1;
    let mut reader = disk.open_reader::<R>(&name)?;
    let sample_size = (fan_out as u64 * OVERSAMPLE).min(len);
    let mut sample = Vec::with_capacity(sample_size as usize);
    for _ in 0..sample_size {
        sample.push(reader.read_at(rng.below(len))?);
    }
    drop(reader);
    sample.sort_unstable();
    report.comparisons += incore_sort_comparisons(sample.len() as u64);
    let mut splitters: Vec<R> = (1..fan_out as u64)
        .map(|q| sample[(q * sample.len() as u64 / fan_out as u64) as usize])
        .collect();
    splitters.dedup();

    // Classify; if one bucket swallowed everything (possible when the
    // sample missed the key diversity — e.g. a lone splitter equal to the
    // maximum), retry with a guaranteed-progress min-splitter, or emit
    // directly when the bucket is genuinely constant.
    let mut sizes = classify::<R>(disk, &name, &splitters, job, depth, report)?;
    if sizes.len() > 1 && sizes.contains(&len) || splitters.is_empty() {
        for b in 0..sizes.len() {
            disk.remove(&format!("{job}.d{depth}.{b}"))?;
        }
        let (min, max) = file_min_max::<R>(disk, &name)?;
        if min == max {
            // All keys equal: already sorted, copy through.
            let mut reader = disk.open_reader::<R>(&name)?;
            while let Some(x) = reader.next_record()? {
                out.push(x)?;
            }
            if depth > 0 {
                disk.remove(&name)?;
            }
            return Ok(());
        }
        // Splitting at the minimum peels off its duplicates: both buckets
        // are strictly smaller than the input, so recursion terminates.
        splitters = vec![min];
        sizes = classify::<R>(disk, &name, &splitters, job, depth, report)?;
    }
    if depth > 0 {
        disk.remove(&name)?;
    }
    report.merge_phases += 1; // a distribution level, in report terms

    // Recurse in key order.
    for (b, &size) in sizes.iter().enumerate() {
        let child = format!("{job}.d{depth}.{b}");
        if size == 0 {
            disk.remove(&child)?;
            continue;
        }
        sort_range(disk, child, job, depth + 1, cfg, out, report, rng)?;
    }
    Ok(())
}

/// One streaming pass: splits `name` into `splitters.len() + 1` bucket
/// files named `"{job}.d{depth}.{b}"`; returns the bucket sizes.
fn classify<R: Record>(
    disk: &Disk,
    name: &str,
    splitters: &[R],
    job: &str,
    depth: u32,
    report: &mut SortReport,
) -> PdmResult<Vec<u64>> {
    let buckets = splitters.len() + 1;
    let mut writers = (0..buckets)
        .map(|b| disk.create_writer::<R>(&format!("{job}.d{depth}.{b}")))
        .collect::<PdmResult<Vec<_>>>()?;
    let mut sizes = vec![0u64; buckets];
    let mut reader = disk.open_reader::<R>(name)?;
    let mut n = 0u64;
    while let Some(x) = reader.next_record()? {
        let b = splitters.partition_point(|s| *s < x);
        writers[b].push(x)?;
        sizes[b] += 1;
        n += 1;
    }
    report.comparisons += n * (usize::BITS - buckets.leading_zeros()) as u64;
    for w in writers {
        w.finish()?;
    }
    Ok(sizes)
}

/// Streams a file once for its extrema (used only on degenerate buckets).
fn file_min_max<R: Record>(disk: &Disk, name: &str) -> PdmResult<(R, R)> {
    let mut reader = disk.open_reader::<R>(name)?;
    let first = reader
        .next_record()?
        .expect("min_max of empty file is unreachable: len > mem >= 1");
    let (mut min, mut max) = (first, first);
    while let Some(x) = reader.next_record()? {
        if x < min {
            min = x;
        }
        if x > max {
            max = x;
        }
    }
    Ok((min, max))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{fingerprint_file, fingerprint_slice, is_sorted_file};
    use pdm::Disk;
    use sim::rng::{Pcg64, Rng};

    fn check(disk: &Disk, data: &[u32], cfg: &ExtSortConfig) -> SortReport {
        disk.write_file("in", data).unwrap();
        let report = distribution_sort::<u32>(disk, "in", "out", "ds", cfg).unwrap();
        assert!(is_sorted_file::<u32>(disk, "out").unwrap());
        assert_eq!(
            fingerprint_file::<u32>(disk, "out").unwrap(),
            fingerprint_slice(data)
        );
        assert_eq!(report.records, data.len() as u64);
        report
    }

    fn random_data(n: usize, seed: u64) -> Vec<u32> {
        let mut rng = Pcg64::new(seed);
        (0..n).map(|_| rng.next_u32()).collect()
    }

    #[test]
    fn sorts_random_data() {
        let disk = Disk::in_memory(16);
        let cfg = ExtSortConfig::new(64).with_tapes(4);
        let report = check(&disk, &random_data(3000, 1), &cfg);
        assert!(report.merge_phases >= 2, "should need recursion levels");
    }

    #[test]
    fn sorts_in_core_when_small() {
        let disk = Disk::in_memory(16);
        let cfg = ExtSortConfig::new(64).with_tapes(4);
        let report = check(&disk, &random_data(50, 2), &cfg);
        assert_eq!(report.merge_phases, 0);
        assert_eq!(report.initial_runs, 1);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let disk = Disk::in_memory(16);
        let cfg = ExtSortConfig::new(64).with_tapes(4);
        check(&disk, &[], &cfg);
        let disk2 = Disk::in_memory(16);
        check(&disk2, &[7], &cfg);
    }

    #[test]
    fn all_duplicates_terminate() {
        let disk = Disk::in_memory(16);
        let cfg = ExtSortConfig::new(64).with_tapes(4);
        check(&disk, &vec![42u32; 2000], &cfg);
    }

    #[test]
    fn few_distinct_keys_terminate() {
        let disk = Disk::in_memory(16);
        let cfg = ExtSortConfig::new(64).with_tapes(4);
        let data: Vec<u32> = (0..3000).map(|i| i % 3).collect();
        check(&disk, &data, &cfg);
    }

    #[test]
    fn sorted_and_reverse_inputs() {
        let cfg = ExtSortConfig::new(64).with_tapes(4);
        let disk = Disk::in_memory(16);
        check(&disk, &(0..2000).collect::<Vec<u32>>(), &cfg);
        let disk2 = Disk::in_memory(16);
        check(&disk2, &(0..2000).rev().collect::<Vec<u32>>(), &cfg);
    }

    #[test]
    fn io_within_constant_of_bound() {
        let disk = Disk::in_memory(64); // 16 records/block
        let cfg = ExtSortConfig::new(256).with_tapes(8);
        let data = random_data(16384, 3);
        let report = check(&disk, &data, &cfg);
        // Each level reads + writes everything once; the sampling adds a
        // few random reads. Levels ≈ log_7(16384/256) = ~2.1.
        let blocks_per_pass = 2 * (16384 / 16);
        assert!(
            report.io.total_blocks() < 5 * blocks_per_pass as u64,
            "I/O blew past the distribution bound: {} blocks",
            report.io.total_blocks()
        );
    }

    #[test]
    fn cleans_up_bucket_files() {
        let disk = Disk::in_memory(16);
        let cfg = ExtSortConfig::new(64).with_tapes(4);
        check(&disk, &random_data(2000, 4), &cfg);
        for d in 0..8 {
            for b in 0..4 {
                assert!(
                    !disk.exists(&format!("ds.d{d}.{b}")),
                    "leaked bucket ds.d{d}.{b}"
                );
            }
        }
    }

    #[test]
    fn input_file_preserved() {
        let disk = Disk::in_memory(16);
        let cfg = ExtSortConfig::new(64).with_tapes(4);
        let data = random_data(1000, 5);
        check(&disk, &data, &cfg);
        assert_eq!(disk.read_file::<u32>("in").unwrap(), data);
    }
}
